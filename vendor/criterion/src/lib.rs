//! Offline stub of `criterion` — enough surface for the workspace's
//! `benches/` targets to compile and run without network access.
//!
//! Instead of statistical sampling, each benchmark body is timed over a
//! small fixed number of iterations and a single `name: mean` line is
//! printed. This keeps `cargo bench` meaningful as a smoke test while the
//! real criterion crate is unavailable.

use std::time::Instant;

pub use std::hint::black_box;

/// Iterations per benchmark body (after one warm-up call).
const ITERS: u32 = 10;

/// Benchmark driver handed to `b.iter(...)` closures.
pub struct Bencher {
    last_nanos_per_iter: f64,
}

impl Bencher {
    /// Times `f` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(f());
        }
        self.last_nanos_per_iter = start.elapsed().as_nanos() as f64 / f64::from(ITERS);
    }
}

/// Top-level benchmark registry, mirroring `criterion::Criterion`.
pub struct Criterion {
    _sample_size: usize,
}

impl Criterion {
    /// Default-configured registry (inherent, like upstream's
    /// `Criterion::default()`).
    #[allow(clippy::should_implement_trait)]
    pub fn default() -> Self {
        Criterion { _sample_size: 100 }
    }

    /// Accepted for API compatibility; sampling is fixed in this stub.
    pub fn sample_size(mut self, n: usize) -> Self {
        self._sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            last_nanos_per_iter: 0.0,
        };
        f(&mut b);
        report(name, b.last_nanos_per_iter);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            last_nanos_per_iter: 0.0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, name), b.last_nanos_per_iter);
        self
    }

    /// Ends the group (no-op).
    pub fn finish(self) {}
}

fn report(name: &str, nanos: f64) {
    if nanos >= 1_000_000.0 {
        println!("{name:<40} {:>12.3} ms/iter", nanos / 1_000_000.0);
    } else if nanos >= 1_000.0 {
        println!("{name:<40} {:>12.3} us/iter", nanos / 1_000.0);
    } else {
        println!("{name:<40} {nanos:>12.1} ns/iter");
    }
}

/// Declares a benchmark group function, mirroring upstream's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` function.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.bench_function("inner", |b| b.iter(|| black_box(2 * 2)));
        g.finish();
    }

    #[test]
    fn api_surface_runs() {
        let mut c = Criterion::default().sample_size(10);
        sample_bench(&mut c);
    }
}
