//! Offline stub of `serde_derive`.
//!
//! The build environment has no network access, and nothing in this
//! workspace actually serialises (no `serde_json` or similar is used):
//! the `#[derive(Serialize, Deserialize)]` attributes across the crates
//! only express intent. These derive macros therefore expand to nothing;
//! the marker traits live in the sibling `serde` stub, which blanket-
//! implements them so generic bounds still hold.

use proc_macro::TokenStream;

/// Expands to nothing (see crate docs).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing (see crate docs).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
