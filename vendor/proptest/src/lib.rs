//! Offline stub of `proptest` — the subset this workspace's property
//! tests use: the `proptest!` macro over `pat in strategy` arguments,
//! half-open range strategies, tuple strategies, `collection::vec`, and
//! the `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from upstream: sampling is deterministic per test (seeded
//! from the test name), there is no shrinking (a failing case panics with
//! the sampled values unreduced), and each test runs [`CASES`]
//! iterations.

use std::ops::Range;

/// Number of sampled cases per property test.
pub const CASES: u32 = 48;

/// Deterministic per-test sampling stream (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the stream from a test name, so every property test draws an
    /// independent but reproducible sequence.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A value generator (upstream proptest's `Strategy`, minus shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let off = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + off
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}

signed_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let x = self.start + rng.unit_f64() * (self.end - self.start);
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        Strategy::sample(&(f64::from(self.start)..f64::from(self.end)), rng) as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s of values from `element`, with a length
    /// drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The common imports property tests pull in.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, Strategy};
}

/// Asserts a condition inside a property test (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality inside a property test (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples [`CASES`] inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut __proptest_rng = $crate::TestRng::from_name(stringify!($name));
                for __proptest_case in 0..$crate::CASES {
                    let _ = __proptest_case;
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)+
                    $body
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {

    proptest! {
        #[test]
        fn ranges_respect_bounds(a in 3u32..9, b in -5i64..5, x in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.25..0.75).contains(&x));
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec((0u8..4, 0.0f64..1.0), 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            for (i, f) in v {
                prop_assert!(i < 4);
                prop_assert!((0.0..1.0).contains(&f));
            }
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = super::TestRng::from_name("x");
        let mut b = super::TestRng::from_name("x");
        let mut c = super::TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
