//! Offline stub of `rand` — exactly the API surface `chameleon-simcore`
//! uses (`StdRng`, `SeedableRng::seed_from_u64`, `RngCore`, and the `Rng`
//! extension methods `gen`, `gen_range`, `gen_bool`).
//!
//! The generator behind `StdRng` is xoshiro256++ seeded through SplitMix64.
//! It is *not* bit-compatible with upstream `rand`'s ChaCha12-based
//! `StdRng`; the simulation only requires determinism within one build of
//! the workspace, which this provides.

use std::ops::Range;

/// Error type for fallible filling (never produced by this stub).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// Core random-number generation interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill (infallible here).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of upstream `rand`).
pub trait SampleStandard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable uniformly (the subset of `SampleRange` the workspace
/// needs: half-open integer and float ranges).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Widening-multiply mapping; bias is negligible for the
                // span sizes the simulator draws from.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + hi
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize);

macro_rules! signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}

signed_range!(i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample_standard(rng);
        let x = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        let u = f32::sample_standard(rng);
        let x = self.start + u * (self.end - self.start);
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        if p >= 1.0 {
            return true;
        }
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let r = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *w = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0x2545_f491_4f6c_dd1d,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let x = r.gen_range(-2.5f64..4.0);
            assert!((-2.5..4.0).contains(&x));
        }
    }

    #[test]
    fn bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
