//! Offline stub of `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never serialises anything (there is no `serde_json` or other format
//! crate in the tree). This stub keeps those derives compiling without
//! network access: the derive macros (from the sibling `serde_derive`
//! stub) expand to nothing, and the traits here are blanket-implemented
//! so `T: Serialize` bounds are always satisfiable.
//!
//! If real serialisation is ever needed, replace these stubs with the
//! actual crates in the workspace `Cargo.toml`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
