//! Umbrella crate for the Chameleon reproduction.
//!
//! Re-exports every subsystem crate under one roof so examples, integration
//! tests and downstream users can depend on a single package. See the
//! repository `README.md` for the architecture overview and `DESIGN.md` for
//! the per-experiment index.
//!
//! ```
//! use chameleon_repro::models::LlmSpec;
//! let llama = LlmSpec::llama_7b();
//! assert_eq!(llama.name(), "Llama-7B");
//! ```

pub use chameleon_cache as cache;
pub use chameleon_core as core;
pub use chameleon_engine as engine;
pub use chameleon_fault as fault;
pub use chameleon_gpu as gpu;
pub use chameleon_metrics as metrics;
pub use chameleon_models as models;
pub use chameleon_predictor as predictor;
pub use chameleon_router as router;
pub use chameleon_sched as sched;
pub use chameleon_simcore as simcore;
pub use chameleon_trace as trace;
pub use chameleon_workload as workload;

/// Convenience prelude bringing the most common types into scope.
pub mod prelude {
    pub use chameleon_core::preset;
    pub use chameleon_core::report::RunReport;
    pub use chameleon_core::sim::Simulation;
    pub use chameleon_core::system::SystemConfig;
    pub use chameleon_models::{AdapterRank, GpuSpec, LlmSpec};
    pub use chameleon_router::RouterPolicy;
    pub use chameleon_simcore::{SimDuration, SimRng, SimTime};
    pub use chameleon_workload::{Request, Trace};
}
