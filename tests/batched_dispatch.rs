//! Determinism suite for amortised dispatch barriers.
//!
//! Batched dispatch is a perf optimisation, so its contract is equality:
//!
//! * **State-independent routing** (pure weighted rendezvous, spill off;
//!   round-robin) reads no load state, so routing a whole arrival batch
//!   from one cached snapshot generation must be **byte-identical** — at
//!   the [`RunReport::canonical_text`] level — to per-arrival dispatch.
//!   Only the barrier count may change.
//! * **Bounded-staleness routing** (load-aware policies with a declared
//!   `(max_batch, max_age)` budget) intentionally routes from snapshots
//!   up to one batch stale (coordinator echoes included), so it is *not*
//!   compared against per-arrival; instead it must be bit-identical
//!   between serial and parallel execution for every worker count,
//!   across seeds — including with the fault plane armed (crashes,
//!   stragglers, flaky PCIe, shedding, recovery re-dispatch).
//! * **Retry generation sharing**: recovery re-dispatches due at the
//!   same instant as an arrival batch route from that batch's snapshot
//!   generation instead of re-snapshotting (asserted via the dispatch
//!   counters and the traced `dispatch_batch`/`retry_batch` events).

use chameleon_repro::cache::{AdapterCache, EvictionPolicy};
use chameleon_repro::core::{
    preset, sim::Simulation, workloads, DispatchSpec, FaultSpec, RouterPolicy, SystemConfig,
};
use chameleon_repro::engine::{Cluster, Engine, EngineConfig};
use chameleon_repro::models::{AdapterPool, GpuSpec, LlmSpec, PoolConfig};
use chameleon_repro::predictor::OraclePredictor;
use chameleon_repro::sched::{FifoScheduler, WrsConfig};
use chameleon_repro::simcore::{SimDuration, SimTime};
use chameleon_repro::workload::{Request, Trace};

const SEEDS: [u64; 2] = [3, 11];
/// One worker (trivially serial), two, and an oversubscribed pool (more
/// workers than engines or host cores).
const WORKER_COUNTS: [usize; 3] = [1, 2, 7];

fn canonical(cfg: SystemConfig, seed: u64, rps: f64, secs: f64) -> String {
    let mut sim = Simulation::new(cfg, seed);
    let trace = workloads::splitwise(rps, secs, seed, sim.pool());
    let n = trace.len();
    let report = sim.run(&trace);
    report.assert_request_conservation(n);
    report.canonical_text()
}

/// Tentpole oracle: with state-independent routing, batched dispatch is
/// byte-identical to per-arrival dispatch — same placements, timings,
/// affinity hits, event totals — while coalescing arrivals into
/// multi-request batches with one snapshot refresh each (and the
/// rendezvous case refreshes purely pro forma: the router never reads
/// the buffer).
#[test]
fn state_independent_batching_is_byte_identical_to_per_arrival() {
    let cases = [
        (RouterPolicy::AdapterAffinityNoSpill, "rendezvous"),
        (RouterPolicy::RoundRobin, "round-robin"),
    ];
    for (router, name) in cases {
        for seed in SEEDS {
            let base = preset::chameleon_cluster_rendezvous(4)
                .with_router(router)
                .with_label("dispatch-oracle");
            let per_arrival = canonical(base.clone(), seed, 40.0, 10.0);
            let batched = canonical(
                base.clone().with_dispatch(DispatchSpec::new()),
                seed,
                40.0,
                10.0,
            );
            assert_eq!(
                per_arrival, batched,
                "{name}, seed {seed}: batched dispatch diverged from per-arrival"
            );

            // The equality is meaningful only if batching actually
            // happened: re-run and inspect the dispatch counters.
            let mut sim = Simulation::new(base.with_dispatch(DispatchSpec::new()), seed);
            let trace = workloads::splitwise(40.0, 10.0, seed, sim.pool());
            let report = sim.run(&trace);
            let d = &report.routing.dispatch;
            assert!(d.enabled, "{name}: dispatch stats not armed");
            assert!(
                d.mean_batch() > 1.5,
                "{name}, seed {seed}: arrivals barely coalesced (mean batch {})",
                d.mean_batch()
            );
            assert_eq!(d.snapshot_refreshes, d.batches);
        }
    }
}

/// Bounded-staleness batching (load-aware affinity with spill) must be
/// bit-identical between serial and pooled execution for every worker
/// count, across seeds.
#[test]
fn bounded_staleness_batching_is_bit_identical_across_worker_counts() {
    for seed in SEEDS {
        let serial = canonical(
            preset::chameleon_cluster_bounded_staleness(4),
            seed,
            24.0,
            10.0,
        );
        for workers in WORKER_COUNTS {
            let parallel = canonical(
                preset::chameleon_cluster_bounded_staleness(4).with_parallel_cluster(workers),
                seed,
                24.0,
                10.0,
            );
            assert_eq!(
                serial, parallel,
                "seed {seed}, {workers} workers: bounded-staleness batching diverged"
            );
        }
    }
}

/// A fault spec exercising every injector at once: a crash, a straggler
/// window, a flaky host link, and SLO shedding.
fn kitchen_sink_faults() -> FaultSpec {
    FaultSpec::new()
        .with_crash(1, SimTime::from_secs_f64(6.0))
        .with_straggler(
            2,
            SimTime::from_secs_f64(2.0),
            SimTime::from_secs_f64(9.0),
            3.0,
        )
        .with_pcie_fail_prob(0.05)
        .with_shedding(8.0)
}

/// Fault-armed bounded-staleness batching: crashes retire engines
/// mid-batch-stream, recovery re-dispatches route from batched
/// snapshots, shedding prices against generation-frozen estimates — and
/// the pooled runs still reproduce the serial run byte-for-byte.
#[test]
fn fault_armed_bounded_staleness_is_bit_identical() {
    for seed in SEEDS {
        let cfg = preset::chameleon_cluster_bounded_staleness(4).with_fault(kitchen_sink_faults());
        let serial = canonical(cfg.clone(), seed, 24.0, 12.0);
        assert!(
            serial.contains("fault engines_failed=1"),
            "seed {seed}: the crash never landed"
        );
        for workers in WORKER_COUNTS {
            let parallel = canonical(cfg.clone().with_parallel_cluster(workers), seed, 24.0, 12.0);
            assert_eq!(
                serial, parallel,
                "seed {seed}, {workers} workers: fault-armed batched run diverged"
            );
        }
    }
}

fn engine(pool: &AdapterPool) -> Engine {
    Engine::new(
        EngineConfig::new(LlmSpec::llama_7b(), GpuSpec::a40()),
        pool.clone(),
        Box::new(FifoScheduler::new()),
        Box::new(OraclePredictor::new()),
        AdapterCache::new(EvictionPolicy::chameleon()),
        WrsConfig::paper(2048.0, 1024.0, (256 << 20) as f64),
    )
}

/// Satellite 3 (regression): a recovery re-dispatch due at the same
/// instant as a fresh arrival shares that arrival batch's snapshot
/// generation — the fault barrier must not re-snapshot between them.
/// The trace is built by hand so one arrival lands exactly at the
/// retry's computed due instant (crash + detect timeout + first
/// backoff).
#[test]
fn retries_share_the_arrival_batch_generation() {
    let llm = LlmSpec::llama_7b();
    let pool = AdapterPool::generate(&llm, &PoolConfig::paper_default(10));
    let adapters: Vec<_> = pool.iter().map(|s| (s.id(), s.rank())).collect();

    let detect = SimDuration::from_millis(100);
    let backoff = SimDuration::from_millis(50);
    let crash_at = SimTime::from_secs_f64(0.050);
    // First-attempt retries come due exactly here.
    let retry_due = crash_at + detect + backoff;

    let mut reqs = Vec::new();
    // A dense opening burst so the crash victim holds unfinished work.
    for i in 0..30u64 {
        let (adapter, rank) = adapters[i as usize % adapters.len()];
        reqs.push(Request::new(
            chameleon_repro::workload::RequestId(i),
            SimTime::from_nanos(i * 1_500_000),
            192,
            16,
            adapter,
            rank,
        ));
    }
    // The coinciding fresh arrival: routed in a batch at `retry_due`,
    // immediately before the fault barrier runs the due retries.
    let (adapter, rank) = adapters[0];
    reqs.push(Request::new(
        chameleon_repro::workload::RequestId(30),
        retry_due,
        192,
        16,
        adapter,
        rank,
    ));
    let trace = Trace::new(reqs);

    let mut cluster = Cluster::new(2, |_| engine(&pool));
    cluster.set_fault(
        FaultSpec::new()
            .with_crash(1, crash_at)
            .with_detect_timeout(detect)
            .with_retry_policy(backoff, SimDuration::from_secs(1), 3),
        None,
    );
    cluster.set_dispatch(DispatchSpec::new());
    cluster.enable_tracing();
    cluster.run(&trace);

    let stats = cluster.routing_stats().clone();
    assert!(stats.fault.retries > 0, "the crash recovered no requests");
    assert!(
        stats.dispatch.retry_generation_reuses > 0,
        "retries at an arrival instant re-snapshotted instead of sharing \
         the batch generation (retries={}, reuses={})",
        stats.fault.retries,
        stats.dispatch.retry_generation_reuses
    );

    // The traced events agree: the retry batch at `retry_due` is marked
    // reused and carries the same generation as the dispatch batch at
    // that instant.
    let (_, log, _) = cluster.into_report_with_trace();
    let jsonl = log.expect("tracing on").to_jsonl();
    let batch_gen = jsonl
        .lines()
        .rfind(|l| l.contains("\"ev\":\"dispatch_batch\""))
        .and_then(generation_of)
        .expect("no dispatch_batch event");
    let retry_line = jsonl
        .lines()
        .find(|l| l.contains("\"ev\":\"retry_batch\""))
        .expect("no retry_batch event");
    assert!(
        retry_line.contains("\"reused\":true"),
        "retry batch did not reuse: {retry_line}"
    );
    assert_eq!(
        generation_of(retry_line),
        Some(batch_gen),
        "retry batch routed from a different generation: {retry_line}"
    );
}

/// Extracts the `"generation":N` field from a trace JSONL line.
fn generation_of(line: &str) -> Option<u64> {
    let idx = line.find("\"generation\":")?;
    let rest = &line[idx + "\"generation\":".len()..];
    let end = rest.find([',', '}'])?;
    rest[..end].parse().ok()
}

/// A spec-tightened budget caps coalescing end to end: `max_batch = 4`
/// against JSQ's declared 32 keeps every batch at four or fewer, with
/// results still bit-identical across execution modes.
#[test]
fn spec_tightened_budget_holds_end_to_end() {
    let tight = DispatchSpec::with_budget(4, SimDuration::from_millis(50));
    let cfg = || {
        preset::chameleon_cluster(3)
            .with_dispatch(tight)
            .with_label("tight-budget")
    };
    let seed = SEEDS[0];
    let serial = canonical(cfg(), seed, 40.0, 8.0);
    for workers in [2, 7] {
        let parallel = canonical(cfg().with_parallel_cluster(workers), seed, 40.0, 8.0);
        assert_eq!(serial, parallel, "{workers} workers diverged");
    }
    let mut sim = Simulation::new(cfg(), seed);
    let trace = workloads::splitwise(40.0, 8.0, seed, sim.pool());
    let report = sim.run(&trace);
    let d = &report.routing.dispatch;
    assert!(
        d.max_batch <= 4,
        "budget exceeded: max batch {}",
        d.max_batch
    );
    assert!(
        d.batches >= trace.len() as u64 / 4,
        "impossible batch count"
    );
}
