//! Determinism oracle for the trace plane, plus the flight-recorder
//! end-to-end capture.
//!
//! The decision stream is part of the simulation contract: the merged
//! `TraceLog` (and hence its JSONL rendering) must be **byte-identical**
//! whether the cluster steps serially or on an epoch-synchronised worker
//! pool, for any worker count. These tests pin that across seeds and
//! worker counts on the fixed affinity fleet and — because autoscale,
//! drain and handoff events ride the coordinator lane — on the elastic
//! preset through a 20x burst.
//!
//! The last test closes the loop the flight recorder was built for: on
//! the Zipf-shift burst scenario the predictive control plane issues
//! speculative warms, some of which the cache evicts before any routed
//! request lands on them, and the armed recorder must come back with a
//! `prewarm-evicted-unused` dump whose ring actually contains the
//! causal sequence.

use chameleon_repro::core::{
    preset, sim::Simulation, workloads, ClusterExecution, FaultSpec, SystemConfig, TraceSpec,
};
use chameleon_repro::models::{AdapterId, AdapterPool};
use chameleon_repro::simcore::{SimDuration, SimTime};
use chameleon_repro::trace::TraceEvent;
use chameleon_repro::workload::{Request, RequestId, Trace};

const SEEDS: [u64; 2] = [3, 11];
const WORKER_COUNTS: [usize; 3] = [1, 2, 7];

/// Runs `cfg` traced under `exec` on the pinned splitwise trace and
/// returns `(canonical_text, trace_jsonl)`.
fn traced_run(
    cfg: SystemConfig,
    exec: ClusterExecution,
    seed: u64,
    rps: f64,
    secs: f64,
) -> (String, String) {
    let mut sim = Simulation::new(cfg.with_cluster_exec(exec), seed);
    let trace = workloads::splitwise(rps, secs, seed, sim.pool());
    let report = sim.run(&trace);
    report.assert_request_conservation(trace.len());
    let jsonl = report
        .trace
        .as_ref()
        .expect("traced run carries a log")
        .to_jsonl();
    (report.canonical_text(), jsonl)
}

/// Fixed 4-engine affinity fleet: the serial trace stream is the oracle,
/// and every pooled worker count must reproduce it byte-for-byte — same
/// events, same order, same sequence numbers — across seeds.
#[test]
fn trace_stream_is_byte_identical_across_worker_counts() {
    for seed in SEEDS {
        let cfg = preset::chameleon_cluster_partitioned(4).with_trace(TraceSpec::new());
        let (serial_text, serial_jsonl) =
            traced_run(cfg.clone(), ClusterExecution::Serial, seed, 24.0, 10.0);
        assert!(!serial_jsonl.is_empty(), "traced run emitted no events");
        assert!(serial_jsonl.contains("\"ev\":\"route\""));
        assert!(serial_jsonl.contains("\"ev\":\"first_token\""));
        for workers in WORKER_COUNTS {
            let (text, jsonl) = traced_run(
                cfg.clone(),
                ClusterExecution::Parallel { workers },
                seed,
                24.0,
                10.0,
            );
            assert_eq!(
                text, serial_text,
                "seed {seed}, {workers} workers: simulation diverged from serial"
            );
            assert_eq!(
                jsonl, serial_jsonl,
                "seed {seed}, {workers} workers: trace stream diverged from serial"
            );
        }
    }
}

/// The tightened elastic preset of the determinism suite, so the traced
/// run exercises real mid-trace scale-up and drain-back.
fn elastic_traced_cfg() -> SystemConfig {
    let mut cfg = preset::chameleon_cluster_elastic();
    let auto = cfg.autoscale.as_mut().expect("elastic preset");
    auto.controller.interval = SimDuration::from_secs(1);
    auto.controller.cooldown = SimDuration::from_secs(3);
    auto.controller.scale_up_mean_queue = 4.0;
    auto.controller.scale_down_mean_queue = 0.5;
    cfg.with_trace(TraceSpec::new())
}

fn elastic_traced_run(exec: ClusterExecution, seed: u64) -> String {
    let mut sim = Simulation::new(elastic_traced_cfg().with_cluster_exec(exec), seed);
    let trace = workloads::splitwise_bursty(4.0, 60.0, 10.0, 10.0, 20.0, seed, sim.pool());
    sim.run(&trace)
        .trace
        .as_ref()
        .expect("traced run carries a log")
        .to_jsonl()
}

/// Elastic burst: the coordinator-lane events (autoscale triggers, drain
/// starts, shard handoffs) interleave with engine-lane events in a pinned
/// order that the worker pool must reproduce exactly.
#[test]
fn coordinator_lane_events_are_mode_invariant() {
    let serial = elastic_traced_run(ClusterExecution::Serial, 3);
    assert!(
        serial.contains("\"ev\":\"autoscale\""),
        "elastic burst must trip the autoscaler for this oracle to mean anything"
    );
    assert!(serial.contains("\"ev\":\"drain\""));
    for workers in [2usize, 7] {
        let pooled = elastic_traced_run(ClusterExecution::Parallel { workers }, 3);
        assert_eq!(
            pooled, serial,
            "{workers} workers: coordinator-lane interleaving diverged from serial"
        );
    }
}

/// Correlated-fault trace events — `domain_failed` at the whole-rack
/// crash and `partition_healed` when the coordinator↔domain link comes
/// back — ride the coordinator lane and must interleave identically
/// across worker counts.
#[test]
fn correlated_fault_events_are_mode_invariant() {
    let cfg = preset::chameleon_cluster_domains(4)
        .with_fault(
            FaultSpec::new()
                .with_partition(0, SimTime::from_secs_f64(3.0), SimTime::from_secs_f64(6.0))
                .with_domain_crash(1, SimTime::from_secs_f64(8.0)),
        )
        .with_trace(TraceSpec::new());
    let run = |exec: ClusterExecution| {
        let mut sim = Simulation::new(cfg.clone().with_cluster_exec(exec), 5);
        let trace = workloads::splitwise(24.0, 12.0, 5, sim.pool());
        let n = trace.len();
        let report = sim.run(&trace);
        report.assert_request_conservation(n);
        report
            .trace
            .as_ref()
            .expect("traced run carries a log")
            .to_jsonl()
    };
    let serial = run(ClusterExecution::Serial);
    assert!(serial.contains("\"ev\":\"domain_failed\""));
    assert!(serial.contains("\"ev\":\"partition_healed\""));
    assert!(serial.contains("\"ev\":\"engine_failed\""));
    for workers in WORKER_COUNTS {
        assert_eq!(
            run(ClusterExecution::Parallel { workers }),
            serial,
            "{workers} workers: correlated-fault trace stream diverged from serial"
        );
    }
}

/// The Zipf-shift burst of the predictive suite: 20 s of steady traffic,
/// then the same workload with adapter ids rotated by half the pool and
/// an 8x burst on the shifted set.
fn zipf_shift_burst_trace(pool: &AdapterPool, seed: u64) -> Trace {
    let n = pool.len() as u32;
    let phase1_secs = 20.0;
    let phase1 = workloads::splitwise(10.0, phase1_secs, seed, pool);
    let phase2 = workloads::splitwise_bursty(10.0, 40.0, 20.0, 10.0, 8.0, seed ^ 0x5eed, pool);
    let offset = SimDuration::from_secs_f64(phase1_secs);
    let mut reqs = phase1.requests().to_vec();
    for r in phase2.iter() {
        let shifted = AdapterId((r.adapter().0 + n / 2) % n);
        let rank = pool.get(shifted).expect("rotated id stays in pool").rank();
        reqs.push(Request::new(
            RequestId(r.id().0 + 1_000_000),
            r.arrival() + offset,
            r.input_tokens(),
            r.output_tokens(),
            shifted,
            rank,
        ));
    }
    Trace::new(reqs)
}

/// End-to-end flight-recorder capture: on the predictive burst scenario
/// the armed recorder must catch an eviction-of-a-prewarmed-adapter and
/// hand back a dump whose ring contains the causal sequence.
#[test]
fn flight_recorder_captures_prewarm_eviction_on_burst() {
    let seed = 7;
    let cfg = preset::chameleon_cluster_predictive(4)
        .with_trace(TraceSpec::new().with_wasted_warm_trigger());
    let pool = Simulation::new(cfg.clone(), seed).pool().clone();
    let trace = zipf_shift_burst_trace(&pool, seed);
    let report = Simulation::new(cfg, seed).run(&trace);

    let p = &report.routing.predictive;
    assert!(p.prewarms_issued > 0, "scenario issued no warms");
    assert!(
        p.prewarm_wasted > 0,
        "scenario wasted no warms — nothing for the recorder to catch"
    );
    assert!(
        report.flight_firings > 0,
        "recorder armed on a wasted-warm run but never fired"
    );
    assert!(!report.flight_dumps.is_empty());
    let dump = &report.flight_dumps[0];
    assert_eq!(dump.predicate, "prewarm-evicted-unused");
    assert!(dump.reason.contains("evicted before first use"));
    // The trigger is the eviction itself; the ring holds the decisions
    // leading up to it.
    assert!(matches!(
        dump.events.last().expect("non-empty ring").event,
        TraceEvent::CacheEvict { .. }
    ));
    assert!(
        dump.events.len() > 1,
        "ring carries context, not just the trigger"
    );
    assert!(dump
        .to_jsonl()
        .starts_with("{\"flight_dump\":\"prewarm-evicted-unused\""));

    // A reactive (no predictive plane) run of the identical trace gives
    // the recorder nothing: no warms means no wasted-warm anomaly.
    let reactive = Simulation::new(
        preset::chameleon_cluster_partitioned(4)
            .with_trace(TraceSpec::new().with_wasted_warm_trigger()),
        seed,
    )
    .run(&trace);
    assert_eq!(reactive.flight_firings, 0);
    assert!(reactive.flight_dumps.is_empty());
}
