//! Chaos-sweep harness: seeded random fault schedules over the
//! domain-aware affinity fleet.
//!
//! Each schedule is derived deterministically from its seed through the
//! fault plane's own counter-hashed dice (`fault_roll`), so the sweep is
//! reproducible bit-for-bit anywhere. Every schedule — whatever mix of
//! whole-domain crashes, partitions, brownouts and lone-engine crashes
//! the dice picked — must hold three invariants:
//!
//! * **conservation** — every offered request is completed, shed or
//!   deliberately failed, exactly once;
//! * **availability floor** — correlated failures on a three-rack fleet
//!   never cost more than half the offered traffic;
//! * **determinism** — the serial run and the epoch-synchronised worker
//!   pool produce byte-identical canonical reports.
//!
//! The injection guards (never crash or partition the fleet to zero
//! reachable engines, skip memberless racks) are deliberately in play:
//! some schedules draw conflicting faults and the guards must refuse
//! them identically in every execution mode.
//!
//! `CHAMELEON_WORKERS` scales the pooled arm in CI; the schedule count
//! here is the full sweep the acceptance criteria name (>= 8).

use chameleon_repro::core::{
    preset, sim::Simulation, workloads, ClusterExecution, FaultSpec, FleetSpec, SystemConfig,
    TopologySpec,
};
use chameleon_repro::fault::fault_roll;
use chameleon_repro::simcore::SimTime;

const SCHEDULES: u64 = 8;
const AVAILABILITY_FLOOR: f64 = 0.5;

/// Three racks of two: one crashed rack plus one partitioned rack still
/// leaves a reachable rack, so most schedules pass the injection guards
/// and actually land.
fn chaos_fleet() -> SystemConfig {
    preset::chameleon_cluster_predictive(6)
        .with_fleet(
            FleetSpec::homogeneous(6, 1).with_topology(TopologySpec::racks(&[0, 0, 1, 1, 2, 2])),
        )
        .with_label("Chameleon-DP6-Chaos")
}

/// One seeded random schedule. Streams partition the dice so adding a
/// fault class never perturbs the draws of another.
fn chaos_schedule(seed: u64) -> FaultSpec {
    let roll = |stream: u64, counter: u64| fault_roll(seed, stream, counter);
    let mut spec = FaultSpec::new().with_shedding(8.0);

    // Usually a whole-domain crash somewhere mid-trace.
    let crash_rack = (roll(1, 0) * 3.0) as u32;
    if roll(1, 1) < 0.75 {
        let at = 3.0 + roll(1, 2) * 5.0;
        spec = spec.with_domain_crash(crash_rack, SimTime::from_secs_f64(at));
    }

    // Often a partition on one of the other racks.
    if roll(2, 0) < 0.6 {
        let rack = (crash_rack + 1 + (roll(2, 1) * 2.0) as u32) % 3;
        let from = 2.0 + roll(2, 2) * 4.0;
        let until = from + 1.0 + roll(2, 3) * 3.0;
        spec = spec.with_partition(
            rack,
            SimTime::from_secs_f64(from),
            SimTime::from_secs_f64(until),
        );
    }

    // Sometimes a domain-scoped brownout.
    if roll(3, 0) < 0.5 {
        let rack = (roll(3, 1) * 3.0) as u32;
        let from = 1.0 + roll(3, 2) * 3.0;
        let until = from + 2.0 + roll(3, 3) * 4.0;
        let factor = 1.5 + roll(3, 4) * 4.0;
        spec = spec.with_domain_brownout(
            rack,
            SimTime::from_secs_f64(from),
            SimTime::from_secs_f64(until),
            factor,
        );
    }

    // Sometimes a lone-engine crash on top of the correlated faults.
    if roll(4, 0) < 0.4 {
        let engine = (roll(4, 1) * 6.0) as u32;
        let at = 4.0 + roll(4, 2) * 4.0;
        spec = spec.with_crash(engine, SimTime::from_secs_f64(at));
    }

    spec
}

/// Returns `(canonical_text, availability, correlated_faults_landed)`
/// for one schedule under one execution mode.
fn run_schedule(seed: u64, exec: ClusterExecution) -> (String, f64, u64) {
    let cfg = chaos_fleet()
        .with_fault(chaos_schedule(seed))
        .with_cluster_exec(exec);
    let mut sim = Simulation::new(cfg, seed);
    let trace = workloads::splitwise(16.0, 10.0, seed, sim.pool());
    let offered = trace.len();
    let report = sim.run(&trace);
    report.assert_request_conservation(offered);
    let f = &report.routing.fault;
    (
        report.canonical_text(),
        report.availability(offered),
        f.domains_failed + f.partitions,
    )
}

/// The full sweep: every seeded schedule conserves requests, stays above
/// the availability floor, and is bit-identical between serial and
/// pooled execution. Across the sweep the dice must actually land
/// correlated faults — a silently-degenerate generator would pass the
/// invariants without testing anything.
#[test]
fn chaos_sweep_holds_invariants_on_every_schedule() {
    let mut correlated_total = 0;
    for seed in 0..SCHEDULES {
        let (serial, availability, correlated) = run_schedule(seed, ClusterExecution::Serial);
        assert!(
            availability >= AVAILABILITY_FLOOR,
            "schedule {seed}: availability {availability:.3} fell through the floor"
        );
        let (pooled, pooled_availability, _) =
            run_schedule(seed, ClusterExecution::Parallel { workers: 2 });
        assert_eq!(
            pooled, serial,
            "schedule {seed}: pooled run diverged from serial"
        );
        assert_eq!(pooled_availability.to_bits(), availability.to_bits());
        correlated_total += correlated;
    }
    assert!(
        correlated_total >= SCHEDULES / 2,
        "the sweep landed only {correlated_total} correlated faults — generator degenerated"
    );
}
