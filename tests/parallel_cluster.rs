//! Determinism suite for parallel cluster execution.
//!
//! The epoch/barrier cluster loop must be **bit-identical** between
//! [`ClusterExecution::Serial`] and [`ClusterExecution::Parallel`] — for
//! every worker count (including a single worker and oversubscribed
//! pools), across seeds, for fixed, heterogeneous, and elastic fleets
//! (engines joining and draining mid-trace), and for explicit
//! `add_engine`/`drain_engine` calls between runs. Equality is asserted
//! at the [`RunReport::canonical_text`] level: stable field order,
//! integer nanoseconds, exact IEEE-754 bit patterns.

use chameleon_repro::cache::{AdapterCache, EvictionPolicy};
use chameleon_repro::core::{
    preset, sim::Simulation, workloads, ClusterExecution, PredictiveSpec, RunReport, SystemConfig,
};
use chameleon_repro::engine::{Cluster, Engine, EngineConfig, EngineReport};
use chameleon_repro::models::{AdapterPool, GpuSpec, LlmSpec, PoolConfig};
use chameleon_repro::predictor::OraclePredictor;
use chameleon_repro::router::AdapterAffinity;
use chameleon_repro::sched::{FifoScheduler, WrsConfig};
use chameleon_repro::simcore::{SimDuration, SimTime};
use chameleon_repro::workload::Trace;
use std::collections::HashMap;

const SEEDS: [u64; 2] = [3, 11];
/// One worker (trivially serial), two, and an oversubscribed pool (more
/// workers than engines or host cores).
const WORKER_COUNTS: [usize; 3] = [1, 2, 7];

fn canonical(cfg: SystemConfig, seed: u64, rps: f64, secs: f64) -> String {
    let mut sim = Simulation::new(cfg, seed);
    let trace = workloads::splitwise(rps, secs, seed, sim.pool());
    let report = sim.run(&trace);
    report.assert_request_conservation(trace.len());
    report.canonical_text()
}

#[test]
fn fixed_affinity_fleet_is_bit_identical_across_worker_counts() {
    for seed in SEEDS {
        let serial = canonical(preset::chameleon_cluster_partitioned(4), seed, 24.0, 10.0);
        for workers in WORKER_COUNTS {
            let parallel = canonical(
                preset::chameleon_cluster_partitioned(4).with_parallel_cluster(workers),
                seed,
                24.0,
                10.0,
            );
            assert_eq!(
                serial, parallel,
                "seed {seed}, {workers} workers: parallel diverged from serial"
            );
        }
    }
}

#[test]
fn hetero_fleet_is_bit_identical_across_worker_counts() {
    for seed in SEEDS {
        let serial = canonical(preset::chameleon_cluster_hetero(), seed, 16.0, 10.0);
        for workers in WORKER_COUNTS {
            let parallel = canonical(
                preset::chameleon_cluster_hetero().with_parallel_cluster(workers),
                seed,
                16.0,
                10.0,
            );
            assert_eq!(
                serial, parallel,
                "seed {seed}, {workers} workers: hetero fleet diverged"
            );
        }
    }
}

/// The elastic preset with a controller tight enough that a short bursty
/// trace forces both a scale-up and a drain-back — so the barriers apply
/// real mid-trace `add_engine`/`drain_engine` fleet changes.
fn elastic_cfg() -> SystemConfig {
    let mut cfg = preset::chameleon_cluster_elastic();
    let auto = cfg.autoscale.as_mut().expect("elastic preset");
    auto.controller.interval = SimDuration::from_secs(1);
    auto.controller.cooldown = SimDuration::from_secs(3);
    auto.controller.scale_up_mean_queue = 4.0;
    auto.controller.scale_down_mean_queue = 0.5;
    cfg
}

fn elastic_report(exec: ClusterExecution, seed: u64) -> RunReport {
    let mut sim = Simulation::new(elastic_cfg().with_cluster_exec(exec), seed);
    let trace = workloads::splitwise_bursty(4.0, 60.0, 10.0, 10.0, 20.0, seed, sim.pool());
    let report = sim.run(&trace);
    report.assert_request_conservation(trace.len());
    report
}

#[test]
fn elastic_fleet_with_mid_trace_scaling_is_bit_identical() {
    for seed in SEEDS {
        let serial = elastic_report(ClusterExecution::Serial, seed);
        // The scenario must actually change the fleet mid-trace to mean
        // anything: barriers apply adds and graceful drains.
        assert!(
            serial.routing.engines_added > 0,
            "seed {seed}: burst never grew the fleet: {:?}",
            serial.routing
        );
        assert!(
            serial.routing.engines_drained > 0,
            "seed {seed}: fleet never drained back: {:?}",
            serial.routing
        );
        let serial_text = serial.canonical_text();
        for workers in WORKER_COUNTS {
            let parallel =
                elastic_report(ClusterExecution::Parallel { workers }, seed).canonical_text();
            assert_eq!(
                serial_text, parallel,
                "seed {seed}, {workers} workers: elastic run diverged"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Predictive control plane: every configuration must stay bit-identical
// serial↔parallel — predictor updates, pre-replication warms, forecast
// signals, and drain handoffs all happen at coordinator barriers.
// ---------------------------------------------------------------------

#[test]
fn predictive_fixed_fleet_is_bit_identical_across_worker_counts() {
    for seed in SEEDS {
        let serial = canonical(preset::chameleon_cluster_predictive(4), seed, 24.0, 10.0);
        assert!(
            serial.contains("\npredictive "),
            "seed {seed}: control plane never reported"
        );
        for workers in WORKER_COUNTS {
            let parallel = canonical(
                preset::chameleon_cluster_predictive(4).with_parallel_cluster(workers),
                seed,
                24.0,
                10.0,
            );
            assert_eq!(
                serial, parallel,
                "seed {seed}, {workers} workers: predictive fixed fleet diverged"
            );
        }
    }
}

#[test]
fn predictive_hetero_fleet_is_bit_identical_across_worker_counts() {
    let cfg = || preset::chameleon_cluster_hetero().with_predictive(PredictiveSpec::new());
    for seed in SEEDS {
        let serial = canonical(cfg(), seed, 16.0, 10.0);
        for workers in WORKER_COUNTS {
            let parallel = canonical(cfg().with_parallel_cluster(workers), seed, 16.0, 10.0);
            assert_eq!(
                serial, parallel,
                "seed {seed}, {workers} workers: predictive hetero fleet diverged"
            );
        }
    }
}

/// Pre-replication + drain handoff on the elastic scenario. The SLO and
/// forecast autoscaler signals are left off so the controller takes the
/// reactive decisions — which are known (asserted) to both grow *and*
/// drain mid-trace, forcing the handoff path through the barriers.
fn predictive_drain_cfg() -> SystemConfig {
    elastic_cfg().with_predictive(PredictiveSpec {
        slo_autoscale: false,
        forecast_autoscale: false,
        ..PredictiveSpec::new()
    })
}

#[test]
fn predictive_elastic_with_handoff_is_bit_identical() {
    for seed in SEEDS {
        let mut sim = Simulation::new(predictive_drain_cfg(), seed);
        let trace = workloads::splitwise_bursty(4.0, 60.0, 10.0, 10.0, 20.0, seed, sim.pool());
        let serial = sim.run(&trace);
        assert!(
            serial.routing.engines_added > 0 && serial.routing.engines_drained > 0,
            "seed {seed}: scenario must add and drain mid-trace: {:?}",
            serial.routing
        );
        let p = &serial.routing.predictive;
        assert!(
            p.prewarms_issued > 0 && p.handoff_adapters > 0,
            "seed {seed}: pre-replication and handoff must both fire: {p:?}"
        );
        let serial_text = serial.canonical_text();
        for workers in WORKER_COUNTS {
            let mut sim = Simulation::new(
                predictive_drain_cfg().with_cluster_exec(ClusterExecution::Parallel { workers }),
                seed,
            );
            let parallel = sim.run(&trace).canonical_text();
            assert_eq!(
                serial_text, parallel,
                "seed {seed}, {workers} workers: predictive elastic run diverged"
            );
        }
    }
}

/// The full control plane (SLO + forecast autoscaling included) on the
/// elastic scenario: predictive scale-up decisions are barrier decisions
/// too, so the whole run stays bit-identical.
#[test]
fn full_predictive_elastic_is_bit_identical() {
    let cfg = || elastic_cfg().with_predictive(PredictiveSpec::new());
    for seed in SEEDS {
        let mut sim = Simulation::new(cfg(), seed);
        let trace = workloads::splitwise_bursty(4.0, 60.0, 10.0, 10.0, 20.0, seed, sim.pool());
        let serial = sim.run(&trace);
        let p = &serial.routing.predictive;
        assert!(
            p.slo_scaleups + p.forecast_scaleups > 0,
            "seed {seed}: a predictive signal should fire in this scenario: {p:?}"
        );
        let serial_text = serial.canonical_text();
        for workers in WORKER_COUNTS {
            let mut sim = Simulation::new(
                cfg().with_cluster_exec(ClusterExecution::Parallel { workers }),
                seed,
            );
            let parallel = sim.run(&trace).canonical_text();
            assert_eq!(
                serial_text, parallel,
                "seed {seed}, {workers} workers: full predictive run diverged"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Direct Cluster API: explicit drain/add between runs on one cluster.
// ---------------------------------------------------------------------

fn pool() -> AdapterPool {
    AdapterPool::generate(&LlmSpec::llama_7b(), &PoolConfig::paper_default(60))
}

fn engine(pool: &AdapterPool) -> Engine {
    Engine::new(
        EngineConfig::new(LlmSpec::llama_7b(), GpuSpec::a40()),
        pool.clone(),
        Box::new(FifoScheduler::new()),
        Box::new(OraclePredictor::new()),
        AdapterCache::new(EvictionPolicy::chameleon()),
        WrsConfig::paper(2048.0, 1024.0, (256 << 20) as f64),
    )
}

/// Wraps a cluster's merged report as a `RunReport` with fixed metadata
/// so the byte-level comparison covers exactly what the runs computed.
fn run_report(rep: EngineReport, horizon: SimTime, events: u64) -> RunReport {
    RunReport {
        label: "parallel-cluster".into(),
        llm: LlmSpec::llama_7b(),
        routing: rep.routing,
        records: rep.records,
        cache_stats: rep.cache_stats,
        pcie_total_bytes: rep.pcie_total_bytes,
        pcie_busy: rep.pcie_busy,
        pcie_history: rep.pcie_history,
        mem_series: rep.mem_series,
        squashes: rep.squashes,
        kv: rep.kv,
        slo: SimDuration::from_secs(5),
        horizon,
        isolated_e2e: HashMap::new(),
        wrs: WrsConfig::paper(2048.0, 1024.0, (256 << 20) as f64),
        offered_rps: 0.0,
        scheduler: rep.scheduler,
        events_processed: events,
        trace: None,
        flight_dumps: Vec::new(),
        flight_firings: 0,
        barrier_profile: None,
    }
}

/// Runs the same three-phase script — first half-trace, then an explicit
/// `drain_engine` + `add_engine` fleet change, then the rest — under one
/// execution mode, and returns the canonical text.
fn scripted_run(pool: &AdapterPool, trace: &Trace, exec: ClusterExecution) -> String {
    let mut c = Cluster::with_router(3, |_| engine(pool), Box::new(AdapterAffinity::new()));
    let half = Trace::new(trace.requests()[..trace.len() / 2].to_vec());
    let rest = Trace::new(trace.requests()[trace.len() / 2..].to_vec());
    let h1 = c.run_with(&half, exec);
    // Fleet change between runs: engine 1 drains (its in-flight work is
    // done, so it retires during the next run), a fresh engine joins.
    assert!(c.drain_engine(chameleon_repro::router::EngineId(1)));
    c.add_engine(engine(pool));
    let h2 = c.run_with(&rest, exec);
    let events = c.events_processed();
    run_report(c.into_report(), h1.max(h2), events).canonical_text()
}

#[test]
fn explicit_drain_and_add_between_runs_is_bit_identical() {
    let pool = pool();
    for seed in SEEDS {
        let trace = workloads::splitwise(30.0, 8.0, seed, &pool);
        let serial = scripted_run(&pool, &trace, ClusterExecution::Serial);
        assert!(
            serial.contains("drained=1"),
            "script must exercise the drain path"
        );
        for workers in WORKER_COUNTS {
            let parallel = scripted_run(&pool, &trace, ClusterExecution::Parallel { workers });
            assert_eq!(
                serial, parallel,
                "seed {seed}, {workers} workers: scripted fleet change diverged"
            );
        }
    }
}
