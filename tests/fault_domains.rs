//! Behavioural oracle for correlated-failure resilience: fault domains,
//! domain-aware anti-affinity placement, whole-domain crashes, partitions,
//! brownouts, MTTR accounting, and the colocated-replica flight predicate.
//!
//! The headline claims, each pinned here:
//!
//! * a whole-domain crash takes every member engine and still loses
//!   nothing — victims are re-dispatched (or deliberately counted failed)
//!   with finite mean time to re-dispatch;
//! * anti-affinity placement **strictly beats** the topology-blind
//!   ablation on offered-P99 TTFT and requests lost to faults under the
//!   identical domain-crash schedule and trace — the replica that
//!   survives the rack is the one that pays off;
//! * a coordinator↔domain partition routes traffic around the dark rack
//!   and re-dispatches the stranded work, and the rack rejoins on heal;
//! * the `replica-colocated-with-primary` flight predicate catches blind
//!   placement putting both copies in one blast radius, and stays silent
//!   under anti-affinity.

use chameleon_repro::core::{
    preset, report::RunReport, sim::Simulation, workloads, FaultSpec, FleetSpec, SystemConfig,
    TopologySpec, TraceSpec,
};
use chameleon_repro::models::{AdapterId, AdapterPool};
use chameleon_repro::simcore::{SimDuration, SimTime};
use chameleon_repro::trace::TraceEvent;
use chameleon_repro::workload::{Request, RequestId, Trace};

const SEED: u64 = 7;

/// P99 TTFT over **all offered** requests: anything the system never
/// served counts as an infinite sample — the honest way to compare a run
/// that drops work against one that doesn't.
fn p99_ttft_all_offered(report: &RunReport, offered: usize) -> f64 {
    let mut xs: Vec<f64> = report
        .records
        .iter()
        .filter_map(|r| r.ttft())
        .map(|d| d.as_secs_f64())
        .collect();
    assert!(xs.len() <= offered);
    xs.resize(offered, f64::INFINITY);
    xs.sort_by(f64::total_cmp);
    let idx = ((offered as f64 * 0.99).ceil() as usize).max(1) - 1;
    xs[idx]
}

/// The topology-blind ablation: identical fleet and racks, anti-affinity
/// off. Placement ignores domains, but the correlated injections still
/// hit whole racks — so the comparison isolates the placement policy.
fn without_anti_affinity(mut cfg: SystemConfig) -> SystemConfig {
    let fleet = cfg.fleet.as_mut().expect("domains preset carries a fleet");
    let topo = fleet
        .topology
        .take()
        .expect("domains preset carries a topology");
    fleet.topology = Some(topo.without_anti_affinity());
    cfg.with_label("Chameleon-DP-DomainsBlind")
}

/// The Zipf-shift burst of the predictive suite: 20 s of steady traffic,
/// then the same workload with adapter ids rotated by half the pool and
/// an 8x burst on the shifted set — enough churn that the forecaster
/// issues pre-replicated warms and affinity routing actually spills.
fn zipf_shift_burst_trace(pool: &AdapterPool, seed: u64) -> Trace {
    let n = pool.len() as u32;
    let phase1_secs = 20.0;
    let phase1 = workloads::splitwise(10.0, phase1_secs, seed, pool);
    let phase2 = workloads::splitwise_bursty(10.0, 40.0, 20.0, 10.0, 8.0, seed ^ 0x5eed, pool);
    let offset = SimDuration::from_secs_f64(phase1_secs);
    let mut reqs = phase1.requests().to_vec();
    for r in phase2.iter() {
        let shifted = AdapterId((r.adapter().0 + n / 2) % n);
        let rank = pool.get(shifted).expect("rotated id stays in pool").rank();
        reqs.push(Request::new(
            RequestId(r.id().0 + 1_000_000),
            r.arrival() + offset,
            r.input_tokens(),
            r.output_tokens(),
            shifted,
            rank,
        ));
    }
    Trace::new(reqs)
}

fn run_faulted(cfg: SystemConfig, seed: u64, rps: f64, secs: f64) -> (RunReport, usize) {
    let mut sim = Simulation::new(cfg, seed);
    let trace = workloads::splitwise(rps, secs, seed, sim.pool());
    let n = trace.len();
    (sim.run(&trace), n)
}

/// A whole-domain crash takes both member engines down at one barrier,
/// emits a single `DomainFailed` event ahead of the per-engine failures,
/// and still loses nothing: every victim is re-dispatched and completes,
/// with a finite MTTR ledger.
#[test]
fn domain_crash_kills_every_member_and_loses_nothing() {
    let cfg = preset::chameleon_cluster_domains(4)
        .with_fault(
            FaultSpec::new()
                .with_domain_crash(1, SimTime::from_secs_f64(10.0))
                .with_shedding(8.0),
        )
        .with_trace(TraceSpec::new());
    let (report, offered) = run_faulted(cfg, SEED, 12.0, 25.0);
    let f = &report.routing.fault;
    assert_eq!(f.domains_failed, 1, "the scheduled domain crash must land");
    assert_eq!(f.engines_failed, 2, "both rack-1 members must die");
    assert!(
        f.requests_recovered > 0,
        "crash hit an idle rack — scenario too light"
    );
    assert_eq!(f.requests_failed, 0, "default budget recovers everything");
    report.assert_request_conservation(offered);
    assert_eq!(
        report.completed() as u64 + f.requests_shed,
        offered as u64,
        "recovered requests must finish, not linger incomplete"
    );

    // MTTR: the episode opened at the crash barrier closes when the last
    // victim re-dispatches, and completion trails re-dispatch.
    assert!(
        f.mttr_redispatch > 0.0 && f.mttr_redispatch.is_finite(),
        "re-dispatch MTTR must be finite and positive: {}",
        f.mttr_redispatch
    );
    assert!(
        f.mttr_complete >= f.mttr_redispatch,
        "victims cannot complete before they re-dispatch ({} < {})",
        f.mttr_complete,
        f.mttr_redispatch
    );

    // One DomainFailed event naming the rack and its member count, pushed
    // before any of the member EngineFailed events.
    let log = report.trace.as_ref().expect("traced run");
    let events = log.events();
    let domain_at = events
        .iter()
        .position(|e| {
            matches!(
                e.event,
                TraceEvent::DomainFailed {
                    rack: 1,
                    engines: 2
                }
            )
        })
        .expect("domain crash emits a DomainFailed event");
    let first_engine = events
        .iter()
        .position(|e| matches!(e.event, TraceEvent::EngineFailed { .. }))
        .expect("members emit EngineFailed events");
    assert!(
        domain_at < first_engine,
        "the correlated event must precede its member crashes"
    );
    assert_eq!(
        events
            .iter()
            .filter(|e| matches!(e.event, TraceEvent::EngineFailed { .. }))
            .count(),
        2
    );
}

/// The efficacy pin the tentpole exists for: on the identical trace and
/// domain-crash schedule, anti-affinity placement strictly beats the
/// topology-blind ablation on offered-P99 TTFT and on requests lost to
/// faults. Blind placement lets burst spill and warm replicas share the
/// primary's rack, so the mid-burst rack crash takes more queued work
/// (and its warm copies) with it — the survivors inherit a deeper,
/// colder backlog, shed more arrivals, and push the offered tail out;
/// anti-affinity keeps a live foothold outside the blast radius.
#[test]
fn anti_affinity_strictly_beats_blind_placement_under_a_domain_crash() {
    let fault = || {
        FaultSpec::new()
            .with_domain_crash(1, SimTime::from_secs_f64(14.0))
            .with_shedding(16.0)
    };
    let affine_cfg = preset::chameleon_cluster_domains(4).with_fault(fault());
    let blind_cfg = without_anti_affinity(preset::chameleon_cluster_domains(4)).with_fault(fault());

    // A 2x burst over 10-20 s; the rack dies mid-burst with deep queues,
    // so where the spilled work sat (and where the replicas lived) is
    // exactly what separates the two arms.
    let pool = Simulation::new(affine_cfg.clone(), SEED).pool().clone();
    let trace = workloads::splitwise_bursty(6.0, 40.0, 10.0, 10.0, 2.0, SEED, &pool);
    let offered = trace.len();

    let affine = Simulation::new(affine_cfg, SEED).run(&trace);
    let blind = Simulation::new(blind_cfg, SEED).run(&trace);
    affine.assert_request_conservation(offered);
    blind.assert_request_conservation(offered);
    for (name, r) in [("affine", &affine), ("blind", &blind)] {
        assert_eq!(r.routing.fault.domains_failed, 1, "{name}: crash missed");
        assert_eq!(r.routing.fault.engines_failed, 2, "{name}: partial crash");
        assert!(
            r.routing.predictive.prewarms_issued > 0,
            "{name}: no replicas were ever placed — comparison is vacuous"
        );
    }

    let p99_affine = p99_ttft_all_offered(&affine, offered);
    let p99_blind = p99_ttft_all_offered(&blind, offered);
    assert!(
        p99_affine < p99_blind,
        "anti-affinity ({p99_affine:.3}s) must strictly beat blind ({p99_blind:.3}s) on offered P99"
    );
    assert!(
        affine.requests_lost_to_faults() < blind.requests_lost_to_faults(),
        "anti-affinity ({}) must strictly beat blind ({}) on requests lost",
        affine.requests_lost_to_faults(),
        blind.requests_lost_to_faults()
    );

    // MTTR is finite with 100% of victims re-dispatched.
    let f = &affine.routing.fault;
    assert!(f.requests_recovered > 0);
    assert_eq!(f.requests_failed, 0, "every victim must re-dispatch");
    assert!(f.retries >= f.requests_recovered);
    assert!(f.mttr_redispatch > 0.0 && f.mttr_redispatch.is_finite());
}

/// A coordinator↔domain partition makes the rack unreachable without
/// retiring it: stranded work is evacuated and re-dispatched around the
/// dark rack, nothing is lost, and the rack rejoins at heal (pinned by
/// the `PartitionHealed` trace event).
#[test]
fn partition_routes_around_the_dark_rack_and_heals() {
    let cfg = preset::chameleon_cluster_domains(4)
        .with_fault(FaultSpec::new().with_partition(
            1,
            SimTime::from_secs_f64(5.0),
            SimTime::from_secs_f64(9.0),
        ))
        .with_trace(TraceSpec::new());
    let (report, offered) = run_faulted(cfg, 9, 16.0, 15.0);
    let f = &report.routing.fault;
    assert_eq!(f.partitions, 1, "the scheduled partition must open");
    assert_eq!(f.engines_failed, 0, "a partition retires nothing");
    assert!(
        f.requests_recovered > 0,
        "partition caught no in-flight work — scenario too light"
    );
    assert_eq!(f.requests_failed, 0);
    report.assert_request_conservation(offered);
    assert_eq!(
        report.completed(),
        offered,
        "work stranded in the dark rack must still finish"
    );
    assert!(
        f.mttr_redispatch > 0.0 && f.mttr_redispatch.is_finite(),
        "partition victims must re-dispatch in finite time"
    );
    let log = report.trace.as_ref().expect("traced run");
    assert!(
        log.events()
            .iter()
            .any(|e| matches!(e.event, TraceEvent::PartitionHealed { rack: 1 })),
        "the heal must be traced so operators can see the rack rejoin"
    );
}

/// A domain-scoped brownout slows every member (and therefore the tail)
/// without losing or duplicating anything.
#[test]
fn domain_brownout_degrades_the_tail_but_loses_nothing() {
    let seed = 5;
    let clean_cfg = preset::chameleon_cluster_domains(4);
    let slow_cfg = clean_cfg
        .clone()
        .with_fault(FaultSpec::new().with_domain_brownout(
            0,
            SimTime::from_secs_f64(2.0),
            SimTime::from_secs_f64(12.0),
            8.0,
        ));
    let pool = Simulation::new(clean_cfg.clone(), seed).pool().clone();
    let trace = workloads::splitwise(18.0, 15.0, seed, &pool);
    let offered = trace.len();
    let clean = Simulation::new(clean_cfg, seed).run(&trace);
    let slow = Simulation::new(slow_cfg, seed).run(&trace);
    slow.assert_request_conservation(offered);
    assert_eq!(
        slow.completed(),
        clean.completed(),
        "brownout lost requests"
    );
    assert!(
        slow.p99_ttft() > clean.p99_ttft(),
        "an 8x whole-rack brownout must show up in the tail ({} vs {})",
        slow.p99_ttft(),
        clean.p99_ttft()
    );
}

/// Single-domain degradation: when every engine shares one rack, a
/// domain crash may not take the fleet to zero — the guard spares the
/// last reachable engine and the run still drains.
#[test]
fn single_rack_domain_crash_spares_the_last_engine() {
    let cfg = preset::chameleon_cluster_predictive(2)
        .with_fleet(FleetSpec::homogeneous(2, 1).with_topology(TopologySpec::racks(&[0, 0])))
        .with_fault(FaultSpec::new().with_domain_crash(0, SimTime::from_secs_f64(5.0)))
        .with_label("Chameleon-DP2-OneRack");
    let (report, offered) = run_faulted(cfg, 3, 8.0, 12.0);
    let f = &report.routing.fault;
    assert_eq!(f.domains_failed, 1);
    assert_eq!(f.engines_failed, 1, "the guard must spare the last engine");
    report.assert_request_conservation(offered);
    assert_eq!(report.completed(), offered);
}

/// End-to-end flight-recorder capture for the colocated-replica
/// predicate: blind placement on the burst scenario eventually parks a
/// warm replica in its primary's rack and the armed recorder catches it
/// with the `PrewarmIssued` trigger in the ring; the anti-affinity run
/// of the identical trace never gives it anything.
#[test]
fn colocated_replica_predicate_fires_only_on_blind_placement() {
    let blind_cfg = without_anti_affinity(preset::chameleon_cluster_domains(4))
        .with_trace(TraceSpec::new().with_colocated_replica_trigger());
    let pool = Simulation::new(blind_cfg.clone(), SEED).pool().clone();
    let trace = zipf_shift_burst_trace(&pool, SEED);

    let blind = Simulation::new(blind_cfg, SEED).run(&trace);
    assert!(
        blind.routing.predictive.prewarms_issued > 0,
        "scenario issued no warms — nothing for the predicate to judge"
    );
    assert!(
        blind.flight_firings > 0,
        "blind placement never colocated a replica with its primary"
    );
    let dump = blind
        .flight_dumps
        .iter()
        .find(|d| d.predicate == "replica-colocated-with-primary")
        .expect("colocated-replica dump captured");
    assert!(dump.reason.contains("shares rack"));
    assert!(matches!(
        dump.events.last().expect("non-empty ring").event,
        TraceEvent::PrewarmIssued { .. }
    ));

    // Anti-affinity on the identical trace: every replica lands outside
    // its primary's rack, so the predicate stays silent.
    let affine_cfg = preset::chameleon_cluster_domains(4)
        .with_trace(TraceSpec::new().with_colocated_replica_trigger());
    let affine = Simulation::new(affine_cfg, SEED).run(&trace);
    assert!(affine.routing.predictive.prewarms_issued > 0);
    assert_eq!(
        affine.flight_firings, 0,
        "anti-affinity placed a replica inside its primary's rack"
    );
}
