//! Engine-level KV-accounting invariant: at every event boundary the
//! allocator's view of KV memory (block-resident sequences plus
//! hidden-state proxies) must equal the memory pool's `KvCache` region,
//! byte for byte — across admission, block-granular growth, squash,
//! hybrid demotion/restore, crash and evacuation interleavings. The
//! allocator-level property test (`chameleon-gpu`) checks the same
//! identity against synthetic op sequences; this suite checks it against
//! the *engine's* real interleavings, which is where PR 10's bug sweep
//! found the three accounting bugs (optimistic growth double-release,
//! stale release-schedule bytes, squash underestimating r1 footprints).

use chameleon_repro::cache::{AdapterCache, EvictionPolicy};
use chameleon_repro::engine::{Engine, EngineConfig, EngineEvent, KvSpec};
use chameleon_repro::models::{AdapterPool, GpuSpec, LlmSpec, PoolConfig};
use chameleon_repro::predictor::OutputLenPredictor;
use chameleon_repro::sched::{FifoScheduler, WrsConfig};
use chameleon_repro::simcore::{EventQueue, SimRng, SimTime};
use chameleon_repro::workload::generator::TokenLengthModel;
use chameleon_repro::workload::Request;
use chameleon_repro::workload::{ArrivalModel, LengthModel, Trace, TraceGenerator};

const SEEDS: [u64; 3] = [3, 11, 42];

/// A GPU small enough that this trace *must* exercise the OOM paths:
/// Llama-7B's weights leave roughly 1 GiB (~2 000 tokens at 512 KiB per
/// token) of KV headroom.
fn tight_gpu() -> GpuSpec {
    GpuSpec::a40().with_memory_bytes(15 * (1 << 30))
}

fn long_output_trace(n: usize, rps: f64, seed: u64, pool: &AdapterPool) -> Trace {
    let gen = TraceGenerator::new(
        LengthModel::Custom {
            input: TokenLengthModel {
                median: 48.0,
                sigma: 0.6,
                min: 8,
                max: 192,
            },
            // Decode-heavy: most KV bytes appear *after* admission, which
            // is what makes optimistic admission unwind.
            output: TokenLengthModel {
                median: 96.0,
                sigma: 0.6,
                min: 16,
                max: 256,
            },
        },
        ArrivalModel::poisson(rps),
    );
    let mut rng = SimRng::seed(seed);
    gen.generate_n(pool, n, &mut rng)
}

/// Deterministically predicts *half* the true output: every admission
/// reservation undershoots, so decode growth reliably hits the OOM →
/// demote/squash paths (an exact oracle would coast on its reservations
/// and never exercise them). Deterministic under-prediction — unlike
/// log-normally noisy *over*-prediction — also can't manufacture a
/// phantom footprint larger than the whole KV region, which would wedge
/// FIFO's head-of-line gate forever.
struct HalfPredictor;

impl OutputLenPredictor for HalfPredictor {
    fn predict(&mut self, request: &Request) -> u32 {
        (request.output_tokens() / 2).max(1)
    }
    fn name(&self) -> &'static str {
        "half"
    }
}

fn engine(pool: AdapterPool, kv: Option<KvSpec>) -> Engine {
    let llm = LlmSpec::llama_7b();
    let mut cfg = EngineConfig::new(llm, tight_gpu());
    cfg.kv = kv;
    Engine::new(
        cfg,
        pool,
        Box::new(FifoScheduler::new()),
        Box::new(HalfPredictor),
        AdapterCache::new(EvictionPolicy::chameleon()),
        WrsConfig::paper(2048.0, 1024.0, (256 << 20) as f64),
    )
}

fn assert_accounting(e: &Engine, at: SimTime, ctx: &str) {
    let (alloc, pool) = e.kv_accounting();
    assert_eq!(
        alloc,
        pool,
        "{ctx} @ {}ns: allocator thinks {alloc} B of KV, pool region holds {pool} B",
        at.as_nanos()
    );
}

/// Drives `engine` through `trace`, asserting the accounting identity
/// after **every** event. When `evacuate_at_event` is set, the engine is
/// evacuated mid-flight after that many events (the partition/drain
/// path: every reservation released, work presumed lost) and the lost
/// requests re-arrive — the recovery interleaving must keep the
/// identity too.
fn drive_checked(engine: &mut Engine, trace: &Trace, evacuate_at_event: Option<u64>) -> u64 {
    let mut q: EventQueue<EngineEvent> = EventQueue::with_capacity(trace.len() + 16);
    let mut arrivals_left = trace.len();
    for r in trace {
        q.push(r.arrival(), EngineEvent::Arrival(*r));
    }
    let mem_int = engine.config().mem_sample_interval;
    let refresh_int = engine.config().refresh_interval;
    q.push(SimTime::ZERO + mem_int, EngineEvent::MemSample);
    q.push(SimTime::ZERO + refresh_int, EngineEvent::Refresh);

    let mut out = Vec::new();
    let mut crashed = false;
    while let Some((t, ev)) = q.pop() {
        assert!(
            q.processed() < 2_000_000,
            "livelock: 2M events, t={:.1}s, completed={}, running={}, queued={}, \
             free={} B, outstanding={}, kv={:?}, sched={}",
            t.as_secs_f64(),
            engine.completed(),
            engine.running_len(),
            engine.queue_len(),
            engine.free_memory_bytes(),
            engine.outstanding_tokens(),
            engine.kv_accounting(),
            engine.scheduler_debug(),
        );
        let periodic = matches!(ev, EngineEvent::MemSample | EngineEvent::Refresh);
        if matches!(ev, EngineEvent::Arrival(_)) {
            arrivals_left -= 1;
        }
        let reschedule = match &ev {
            EngineEvent::MemSample => Some((t + mem_int, EngineEvent::MemSample)),
            EngineEvent::Refresh => Some((t + refresh_int, EngineEvent::Refresh)),
            _ => None,
        };
        engine.handle(t, ev, &mut out);
        assert_accounting(engine, t, "after event");
        for (at, e) in out.drain(..) {
            q.push(at, e);
        }
        if periodic && (arrivals_left > 0 || engine.has_work()) {
            let (at, e) = reschedule.expect("periodic events always reschedule");
            q.push(at, e);
        }
        if !crashed && evacuate_at_event.is_some_and(|n| q.processed() >= n) {
            crashed = true;
            let lost = engine.evacuate_unfinished(t);
            // Evacuation frees every in-flight byte — full KV sequences
            // and hidden-state proxies alike: both views must read 0.
            let (alloc, pool) = engine.kv_accounting();
            assert_eq!(
                (alloc, pool),
                (0, 0),
                "evacuation left {alloc}/{pool} KV bytes"
            );
            // Lost requests re-arrive a beat later (the cluster's
            // re-dispatch path, collapsed onto one engine).
            let again = t + mem_int;
            for r in lost {
                arrivals_left += 1;
                q.push(again, EngineEvent::Arrival(r.with_arrival(again)));
            }
            if arrivals_left > 0 {
                q.push(t + mem_int, EngineEvent::MemSample);
                q.push(t + refresh_int, EngineEvent::Refresh);
            }
        }
    }
    q.processed()
}

/// Optimistic baseline (no `KvSpec`): the identity holds through
/// admission, growth and squash under memory pressure.
#[test]
fn baseline_accounting_holds_under_pressure() {
    for seed in SEEDS {
        let llm = LlmSpec::llama_7b();
        let pool = AdapterPool::generate(&llm, &PoolConfig::paper_default(10));
        let trace = long_output_trace(120, 20.0, seed, &pool);
        let mut e = engine(pool, None);
        drive_checked(&mut e, &trace, None);
        assert_eq!(e.completed() as usize, trace.len(), "seed {seed}");
        let report = e.into_report();
        assert!(
            report.squashes > 0,
            "seed {seed}: the tight GPU never triggered a squash — the \
             pressure paths went unexercised"
        );
    }
}

/// Armed economy: admission refusals, demotions and restores all
/// preserve the identity, and the run still completes everything.
#[test]
fn armed_accounting_holds_under_pressure() {
    for seed in SEEDS {
        let llm = LlmSpec::llama_7b();
        let pool = AdapterPool::generate(&llm, &PoolConfig::paper_default(10));
        let trace = long_output_trace(120, 20.0, seed, &pool);
        let mut e = engine(pool, Some(KvSpec::new().with_pressure_threshold(0.5)));
        drive_checked(&mut e, &trace, None);
        assert_eq!(e.completed() as usize, trace.len(), "seed {seed}");
        let report = e.into_report();
        assert!(
            report.kv.refused > 0 || report.kv.demotions > 0,
            "seed {seed}: neither admission control nor the hybrid cache \
             ever intervened — the armed paths went unexercised ({:?})",
            report.kv
        );
        assert_eq!(report.kv.demotions, report.kv.restores, "seed {seed}");
    }
}

/// Partition-recovery interleaving: the engine is evacuated mid-pressure
/// (in-flight KV, proxies and loads all in play), both views drop to
/// zero, the presumed-lost work re-arrives, and the re-driven run keeps
/// the identity to completion. (A *crashed* engine keeps its state by
/// design — the cluster replaces the object — so evacuation is the path
/// where release-everything accounting can actually go wrong.)
#[test]
fn partition_recovery_keeps_accounting() {
    for seed in SEEDS {
        for kv in [None, Some(KvSpec::new().with_pressure_threshold(0.5))] {
            let llm = LlmSpec::llama_7b();
            let pool = AdapterPool::generate(&llm, &PoolConfig::paper_default(10));
            let trace = long_output_trace(80, 20.0, seed, &pool);
            let mut e = engine(pool, kv);
            drive_checked(&mut e, &trace, Some(150));
            assert_eq!(
                e.completed() as usize,
                trace.len(),
                "seed {seed} kv={kv:?}: re-dispatched survivors must finish"
            );
        }
    }
}

/// Evacuation (elastic drain) releases every KV byte — full sequences
/// and hidden-state proxies alike.
#[test]
fn evacuation_releases_all_kv() {
    let llm = LlmSpec::llama_7b();
    let pool = AdapterPool::generate(&llm, &PoolConfig::paper_default(10));
    let trace = long_output_trace(60, 25.0, 3, &pool);
    let mut e = engine(pool, Some(KvSpec::new().with_pressure_threshold(0.5)));
    // Feed arrivals only up to 2 s, then evacuate mid-flight.
    let mut out = Vec::new();
    let cutoff = SimTime::from_secs_f64(2.0);
    for r in &trace {
        if r.arrival() <= cutoff {
            e.handle(r.arrival(), EngineEvent::Arrival(*r), &mut out);
            assert_accounting(&e, r.arrival(), "mid-feed");
        }
    }
    let evacuated = e.evacuate_unfinished(cutoff);
    assert!(!evacuated.is_empty(), "nothing was in flight to evacuate");
    let (alloc, pool_bytes) = e.kv_accounting();
    assert_eq!(
        (alloc, pool_bytes),
        (0, 0),
        "evacuation left KV bytes behind"
    );
}
