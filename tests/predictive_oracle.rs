//! Oracle regression suite for the predictive control plane.
//!
//! The control plane (burst pre-replication, SLO/forecast autoscaling,
//! drain-time shard handoff) must be a **strict opt-in overlay**: with
//! `PredictiveSpec` disabled (the default), every cluster run is
//! byte-for-byte what it was before the control plane existed. The
//! digests below were captured from the pre-PR tree (commit `1aeabfa`,
//! the commit this PR branched from) on exactly these scenarios; the
//! tests re-run the scenarios through the current tree and compare the
//! `canonical_text` length + FNV-1a digest against the frozen values.
//!
//! If one of these tests fails, the reactive cluster path changed
//! behaviour — which this PR (and any future control-plane work) must
//! not do. Enabling prediction and expecting different bytes is fine;
//! changing the disabled path is not.

use chameleon_repro::core::{
    preset, sim::Simulation, workloads, ClusterExecution, SystemConfig, TraceSpec,
};
use chameleon_repro::simcore::SimDuration;

/// FNV-1a 64-bit over the canonical text — cheap, dependency-free, and
/// collision-safe enough at three pinned scenarios × two seeds.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn canonical(cfg: SystemConfig, seed: u64, rps: f64, secs: f64) -> String {
    let mut sim = Simulation::new(cfg, seed);
    let trace = workloads::splitwise(rps, secs, seed, sim.pool());
    let report = sim.run(&trace);
    report.assert_request_conservation(trace.len());
    report.canonical_text()
}

/// The elastic preset tightened exactly as the determinism suite does, so
/// the pinned run exercises real mid-trace scale-up and drain-back.
fn elastic_cfg() -> SystemConfig {
    let mut cfg = preset::chameleon_cluster_elastic();
    let auto = cfg.autoscale.as_mut().expect("elastic preset");
    auto.controller.interval = SimDuration::from_secs(1);
    auto.controller.cooldown = SimDuration::from_secs(3);
    auto.controller.scale_up_mean_queue = 4.0;
    auto.controller.scale_down_mean_queue = 0.5;
    cfg
}

fn elastic_canonical_of(cfg: SystemConfig, seed: u64) -> String {
    let mut sim = Simulation::new(cfg.with_cluster_exec(ClusterExecution::Serial), seed);
    let trace = workloads::splitwise_bursty(4.0, 60.0, 10.0, 10.0, 20.0, seed, sim.pool());
    let report = sim.run(&trace);
    report.assert_request_conservation(trace.len());
    report.canonical_text()
}

fn elastic_canonical(seed: u64) -> String {
    elastic_canonical_of(elastic_cfg(), seed)
}

fn assert_frozen(scenario: &str, seed: u64, text: &str, len: usize, fnv: u64) {
    assert_eq!(
        (text.len(), fnv1a(text.as_bytes())),
        (len, fnv),
        "{scenario} (seed {seed}): disabled-predictive run diverged from the pre-PR oracle \
         — the control plane must be a strict opt-in overlay"
    );
    assert!(
        !text.contains("\npredictive "),
        "{scenario} (seed {seed}): a disabled run must not emit the predictive stats line"
    );
}

/// Fixed 4-engine homogeneous `AdapterAffinity` fleet: byte-for-byte the
/// pre-PR output with prediction disabled.
#[test]
fn fixed_affinity_fleet_matches_pre_pr_bytes() {
    for (seed, len, fnv) in [
        (3u64, 38982usize, 0x0d21_8497_06b7_f08d_u64),
        (11, 37372, 0x192e_35eb_ff3b_108f),
    ] {
        let cfg = preset::chameleon_cluster_partitioned(4);
        assert!(cfg.predictive.is_none(), "preset must stay reactive");
        let text = canonical(cfg, seed, 24.0, 10.0);
        assert_frozen("fixed affinity-4", seed, &text, len, fnv);
    }
}

/// The heterogeneous TP1/1/2/4 preset: byte-for-byte the pre-PR output.
#[test]
fn hetero_fleet_matches_pre_pr_bytes() {
    for (seed, len, fnv) in [
        (3u64, 27415usize, 0xb620_549a_7e90_96ab_u64),
        (11, 24812, 0xeb5e_a0d6_8d62_757c),
    ] {
        let cfg = preset::chameleon_cluster_hetero();
        assert!(cfg.predictive.is_none(), "preset must stay reactive");
        let text = canonical(cfg, seed, 16.0, 10.0);
        assert_frozen("hetero", seed, &text, len, fnv);
    }
}

/// The elastic preset through a burst (mid-trace scale-up + drain-back):
/// byte-for-byte the pre-PR output — the reactive autoscaler's decisions,
/// the drain path, and the report format are all untouched.
#[test]
fn elastic_fleet_matches_pre_pr_bytes() {
    // Seed 11 re-pinned when the KV-accounting bug sweep (spurious-squash
    // fix in `ensure_kv_growth`, block-rounded release schedule, squash
    // rule counting predicted output) moved the reactive baseline.
    for (seed, len, fnv) in [
        (3u64, 155_160usize, 0x92a6_0071_7924_cefe_u64),
        (11, 162_883, 0xc9db_d416_071c_a930),
    ] {
        let text = elastic_canonical(seed);
        assert_frozen("elastic", seed, &text, len, fnv);
    }
}

/// Tracing is held to the same bar as the predictive overlay: arming a
/// `TraceSpec` (flight recorder included) must leave every canonical byte
/// exactly where the pre-PR oracle froze it. The recorder observes the
/// run; it never steers it.
#[test]
fn traced_runs_match_the_same_frozen_bytes() {
    let text = canonical(
        preset::chameleon_cluster_partitioned(4).with_trace(TraceSpec::new()),
        3,
        24.0,
        10.0,
    );
    assert_frozen(
        "fixed affinity-4 (traced)",
        3,
        &text,
        38982,
        0x0d21_8497_06b7_f08d,
    );

    let text = canonical(
        preset::chameleon_cluster_hetero().with_trace(TraceSpec::new()),
        3,
        16.0,
        10.0,
    );
    assert_frozen("hetero (traced)", 3, &text, 27415, 0xb620_549a_7e90_96ab);

    let text = elastic_canonical_of(elastic_cfg().with_trace(TraceSpec::new()), 3);
    assert_frozen("elastic (traced)", 3, &text, 155_160, 0x92a6_0071_7924_cefe);
}
