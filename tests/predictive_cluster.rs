//! End-to-end efficacy of the predictive control plane.
//!
//! The opt-in oracle suite (`predictive_oracle.rs`) proves the control
//! plane changes *nothing* when disabled; this suite proves it changes
//! the *right things* when enabled: on a bursty Zipf-shift scenario,
//! pre-replication makes affinity spill land on warm replicas, drain-time
//! handoff spares survivors the migrated shard's cold misses, and the
//! SLO/forecast autoscaler signals grow the fleet before queues (and
//! P99 TTFT) blow out. Assertions are directional (counts, not floats):
//! the scenarios are deterministic, but the claims should survive
//! retuning.

use chameleon_repro::core::{
    preset, sim::Simulation, workloads, PredictiveSpec, RunReport, SystemConfig,
};
use chameleon_repro::models::{AdapterId, AdapterPool};
use chameleon_repro::simcore::SimDuration;
use chameleon_repro::workload::{Request, RequestId, Trace};

const SEED: u64 = 7;

/// A bursty Zipf-shift: 20 s of steady traffic over the pool's natural
/// Zipf-popular adapter set, then the *same* workload with every adapter
/// id rotated by half the pool — a popularity shift the predictor must
/// re-learn — running steady for 20 s before an 8× burst lands on the
/// shifted set.
fn zipf_shift_burst_trace(pool: &AdapterPool, seed: u64) -> Trace {
    let n = pool.len() as u32;
    let phase1_secs = 20.0;
    let phase1 = workloads::splitwise(10.0, phase1_secs, seed, pool);
    let phase2 = workloads::splitwise_bursty(10.0, 40.0, 20.0, 10.0, 8.0, seed ^ 0x5eed, pool);
    let offset = SimDuration::from_secs_f64(phase1_secs);
    let mut reqs = phase1.requests().to_vec();
    for r in phase2.iter() {
        let shifted = AdapterId((r.adapter().0 + n / 2) % n);
        let rank = pool.get(shifted).expect("rotated id stays in pool").rank();
        reqs.push(Request::new(
            RequestId(r.id().0 + 1_000_000),
            r.arrival() + offset,
            r.input_tokens(),
            r.output_tokens(),
            shifted,
            rank,
        ));
    }
    Trace::new(reqs)
}

fn run(cfg: SystemConfig, trace: &Trace) -> RunReport {
    Simulation::new(cfg, SEED).run(trace)
}

/// Pre-replication on a fixed affinity fleet: the predictor warms the
/// shifted popular set's second rendezvous choices ahead of the burst, so
/// the same spills cold-miss reactively but hit predictively.
#[test]
fn pre_replication_cuts_cold_misses_on_zipf_shift_burst() {
    let reactive_cfg = preset::chameleon_cluster_partitioned(4);
    let predictive_cfg = preset::chameleon_cluster_predictive(4);
    let pool = Simulation::new(reactive_cfg.clone(), SEED).pool().clone();
    let trace = zipf_shift_burst_trace(&pool, SEED);

    let reactive = run(reactive_cfg, &trace);
    let predictive = run(predictive_cfg, &trace);

    assert_eq!(reactive.completed(), trace.len());
    assert_eq!(predictive.completed(), trace.len());
    assert!(
        reactive.routing.spills > 0,
        "scenario must push the fleet into spilling to mean anything"
    );
    let p = &predictive.routing.predictive;
    assert!(p.enabled);
    assert!(p.prewarms_issued > 0, "no warms were ever issued");
    assert!(
        p.prewarm_hits > 0,
        "no spill ever landed on a pre-replicated copy"
    );
    assert_eq!(
        p.prewarms_issued,
        p.prewarm_hits + p.prewarm_wasted,
        "warm accounting must balance"
    );
    assert!(
        predictive.cache_stats.misses < reactive.cache_stats.misses,
        "pre-replication must cut cold misses: predictive {} vs reactive {}",
        predictive.cache_stats.misses,
        reactive.cache_stats.misses
    );
    // The reactive run carries no predictive counters and no report line.
    assert_eq!(reactive.routing.predictive.prewarms_issued, 0);
    assert!(!reactive.canonical_text().contains("\npredictive "));
    assert!(predictive.canonical_text().contains("\npredictive "));
}

/// The tightened elastic scenario of the determinism suite: a 20× burst
/// grows the 2-engine fleet and drains it back while backlog clears.
fn elastic_cfg(predictive: Option<PredictiveSpec>) -> SystemConfig {
    let mut cfg = preset::chameleon_cluster_elastic();
    let auto = cfg.autoscale.as_mut().expect("elastic preset");
    auto.controller.interval = SimDuration::from_secs(1);
    auto.controller.cooldown = SimDuration::from_secs(3);
    auto.controller.scale_up_mean_queue = 4.0;
    auto.controller.scale_down_mean_queue = 0.5;
    cfg.predictive = predictive;
    cfg
}

/// Drain-time shard handoff, isolated from the other mechanisms: same
/// trace, same scaling decisions, but each drained engine pushes its
/// shard into the survivors — which must show up as fewer cold misses
/// after the drains, with everything else identical.
#[test]
fn drain_handoff_cuts_post_drain_cold_misses() {
    let mut sim = Simulation::new(elastic_cfg(None), SEED);
    let trace = workloads::splitwise_bursty(4.0, 60.0, 10.0, 10.0, 20.0, SEED, sim.pool());
    let reactive = sim.run(&trace);
    let handoff = run(elastic_cfg(Some(PredictiveSpec::handoff_only())), &trace);

    assert_eq!(reactive.completed(), trace.len());
    assert_eq!(handoff.completed(), trace.len());
    assert!(
        reactive.routing.engines_drained > 0,
        "scenario must drain mid-trace: {:?}",
        reactive.routing
    );
    let p = &handoff.routing.predictive;
    assert!(p.handoff_adapters > 0, "drains handed nothing off");
    assert!(p.handoff_bytes > 0);
    assert_eq!(p.prewarms_issued, 0, "handoff-only must not pre-replicate");
    // Handoff-only leaves dispatch decisions alone (scaling is reactive,
    // no speculative warms ahead of bursts), so the win is attributable:
    // the survivors stop cold-missing the migrated shard.
    assert_eq!(
        handoff.routing.engines_drained,
        reactive.routing.engines_drained
    );
    assert!(
        handoff.cache_stats.misses < reactive.cache_stats.misses,
        "handoff must cut post-drain cold misses: {} vs {}",
        handoff.cache_stats.misses,
        reactive.cache_stats.misses
    );
}

/// The full control plane on the elastic burst: fewer cold misses than
/// reactive, the SLO estimate firing scale-ups before queue depth trips,
/// and no P99 TTFT regression.
#[test]
fn full_control_plane_beats_reactive_on_elastic_burst() {
    let mut sim = Simulation::new(elastic_cfg(None), SEED);
    let trace = workloads::splitwise_bursty(4.0, 60.0, 10.0, 10.0, 20.0, SEED, sim.pool());
    let reactive = sim.run(&trace);
    let full = run(elastic_cfg(Some(PredictiveSpec::new())), &trace);

    assert_eq!(full.completed(), trace.len());
    let p = &full.routing.predictive;
    assert!(
        p.slo_scaleups + p.forecast_scaleups > 0,
        "no predictive signal ever fired a scale-up: {p:?}"
    );
    assert!(
        full.cache_stats.misses < reactive.cache_stats.misses,
        "full control plane must cut cold misses: {} vs {}",
        full.cache_stats.misses,
        reactive.cache_stats.misses
    );
    assert!(
        full.p99_ttft() <= reactive.p99_ttft(),
        "predictive scale-up must not worsen P99 TTFT: {:.3}s vs {:.3}s",
        full.p99_ttft(),
        reactive.p99_ttft()
    );
}

/// Predictive runs are as deterministic as reactive ones: identical
/// canonical text across repeat runs, including every control-plane
/// counter.
#[test]
fn predictive_runs_are_deterministic() {
    let text = |_: usize| {
        let cfg = elastic_cfg(Some(PredictiveSpec::new()));
        let mut sim = Simulation::new(cfg, SEED);
        let trace = workloads::splitwise_bursty(4.0, 60.0, 10.0, 10.0, 20.0, SEED, sim.pool());
        let report = sim.run(&trace);
        report.assert_request_conservation(trace.len());
        report.canonical_text()
    };
    assert_eq!(
        text(0),
        text(1),
        "predictive elastic run is not deterministic"
    );
}
