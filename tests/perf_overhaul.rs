//! Integration tests for the simulator hot-path overhaul: indexed
//! eviction at simulation level, event accounting through `RunReport`,
//! and the parallel sweep runners seen through the umbrella crate.

use chameleon_repro::core::sweep::LoadSweep;
use chameleon_repro::core::{par, preset, sim::Simulation, workloads};

/// Event accounting flows from the driver into `RunReport` and its
/// canonical serialisation.
#[test]
fn run_reports_count_events() {
    let mut sim = Simulation::new(preset::chameleon(), 11);
    let trace = workloads::splitwise(8.0, 30.0, 11, sim.pool());
    let n = trace.len();
    let report = sim.run(&trace);
    // Every request contributes at least its arrival event, and batched
    // execution keeps the total within a small multiple of the trace.
    assert!(report.events_processed >= n as u64);
    assert!(report.events_processed < 64 * n as u64);
    // The canonical serialisation embeds the count (it participates in
    // the bit-identity checks).
    assert!(report
        .canonical_text()
        .contains(&format!("events={}", report.events_processed)));
}

/// Canonical texts are stable across repeated runs (the foundation the
/// parallel-determinism guarantee is asserted on).
#[test]
fn canonical_text_is_reproducible() {
    let run = || {
        let mut sim = Simulation::new(preset::chameleon(), 29);
        let trace = workloads::splitwise(9.0, 20.0, 29, sim.pool());
        sim.run(&trace).canonical_text()
    };
    assert_eq!(run(), run());
}

/// The parallel sweep is byte-identical to the serial sweep through the
/// umbrella crate, for oversubscribed worker counts too (more workers
/// than points, more workers than cores).
#[test]
fn oversubscribed_parallel_sweep_stays_deterministic() {
    let sweep = LoadSweep::new(preset::slora(), 7).with_trace_secs(5.0);
    let loads = [3.0, 7.0];
    let serial = sweep.run(&loads);
    for workers in [2, 8, par::default_workers() * 4] {
        let parallel = sweep.run_parallel(&loads, workers);
        for (a, b) in serial.points.iter().zip(&parallel.points) {
            assert_eq!(
                a.report.canonical_text(),
                b.report.canonical_text(),
                "diverged at rps {} with {workers} workers",
                a.rps
            );
        }
    }
}
