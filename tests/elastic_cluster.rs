//! Integration tests for the identity-based, capacity-weighted, elastic
//! routing stack.
//!
//! The headline guarantee: the identity/weight refactor is
//! *behaviour-preserving* for the paper's fixed homogeneous fleet. A
//! verbatim re-implementation of the pre-refactor dispatch loop —
//! index-keyed unweighted rendezvous with least-loaded spill — is kept
//! here as an oracle, and a fixed 4-engine homogeneous `AdapterAffinity`
//! cluster (with the legacy spill target) must reproduce it byte for
//! byte at the `RunReport::canonical_text()` level.

use chameleon_repro::cache::{AdapterCache, EvictionPolicy};
use chameleon_repro::core::{preset, sim::Simulation, workloads, RunReport};
use chameleon_repro::engine::{Cluster, Engine, EngineConfig, EngineEvent, EngineReport};
use chameleon_repro::metrics::RoutingStats;
use chameleon_repro::models::{AdapterId, AdapterPool, GpuSpec, LlmSpec, PoolConfig};
use chameleon_repro::predictor::OraclePredictor;
use chameleon_repro::router::{AdapterAffinity, EngineId, SpillTarget};
use chameleon_repro::sched::{FifoScheduler, WrsConfig};
use chameleon_repro::simcore::{EventQueue, SimDuration, SimRng, SimTime};
use chameleon_repro::workload::{ArrivalModel, LengthModel, Trace, TraceGenerator};
use std::collections::HashMap;

const N_ENGINES: usize = 4;

fn pool() -> AdapterPool {
    AdapterPool::generate(&LlmSpec::llama_7b(), &PoolConfig::paper_default(120))
}

fn engine(pool: &AdapterPool) -> Engine {
    Engine::new(
        EngineConfig::new(LlmSpec::llama_7b(), GpuSpec::a40()),
        pool.clone(),
        Box::new(FifoScheduler::new()),
        Box::new(OraclePredictor::new()),
        AdapterCache::new(EvictionPolicy::chameleon()),
        WrsConfig::paper(2048.0, 1024.0, (256 << 20) as f64),
    )
}

/// An overload trace: enough concurrent pressure that affinity homes
/// saturate and the spill path actually fires.
fn overload_trace(pool: &AdapterPool, n: usize) -> Trace {
    let gen = TraceGenerator::new(
        LengthModel::Custom {
            input: chameleon_repro::workload::generator::TokenLengthModel {
                median: 96.0,
                sigma: 0.6,
                min: 16,
                max: 384,
            },
            output: chameleon_repro::workload::generator::TokenLengthModel {
                median: 24.0,
                sigma: 0.5,
                min: 4,
                max: 96,
            },
        },
        ArrivalModel::poisson(400.0),
    );
    let mut rng = SimRng::seed(1234);
    gen.generate_n(pool, n, &mut rng)
}

/// Wraps a cluster-level engine report as a `RunReport` with fixed
/// metadata, so the comparison covers exactly what the two runs computed.
fn run_report(rep: EngineReport, horizon: SimTime, events: u64) -> RunReport {
    RunReport {
        label: "affinity-preservation".into(),
        llm: LlmSpec::llama_7b(),
        routing: rep.routing,
        records: rep.records,
        cache_stats: rep.cache_stats,
        pcie_total_bytes: rep.pcie_total_bytes,
        pcie_busy: rep.pcie_busy,
        pcie_history: rep.pcie_history,
        mem_series: rep.mem_series,
        squashes: rep.squashes,
        kv: rep.kv,
        slo: SimDuration::from_secs(5),
        horizon,
        isolated_e2e: HashMap::new(),
        wrs: WrsConfig::paper(2048.0, 1024.0, (256 << 20) as f64),
        offered_rps: 0.0,
        scheduler: rep.scheduler,
        events_processed: events,
        trace: None,
        flight_dumps: Vec::new(),
        flight_firings: 0,
        barrier_profile: None,
    }
}

/// The pre-refactor HRW mix, keyed on the engine *index*.
fn legacy_score(adapter: AdapterId, engine: usize) -> u64 {
    let mut z = (u64::from(adapter.0) << 32) ^ (engine as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn legacy_home(adapter: AdapterId, n_engines: usize) -> usize {
    (0..n_engines)
        .max_by_key(|&e| legacy_score(adapter, e))
        .expect("non-empty range")
}

/// Verbatim re-implementation of the pre-refactor cluster: `Vec<Engine>`
/// indexed by position, unweighted index-keyed rendezvous, spill to the
/// globally least-loaded engine (factor 2.0, slack 4096), and the
/// original event loop.
struct ReferenceAffinityCluster {
    engines: Vec<Engine>,
    stats: RoutingStats,
    events_processed: u64,
}

impl ReferenceAffinityCluster {
    fn new(n: usize, pool: &AdapterPool) -> Self {
        let ids: Vec<EngineId> = (0..n).map(|i| EngineId(i as u32)).collect();
        ReferenceAffinityCluster {
            engines: (0..n).map(|_| engine(pool)).collect(),
            stats: RoutingStats::new("adapter-affinity", &ids),
            events_processed: 0,
        }
    }

    fn route(&self, adapter: AdapterId) -> (usize, bool) {
        let home = legacy_home(adapter, self.engines.len());
        let home_load = self.engines[home].outstanding_tokens();
        let (least, least_load) = self
            .engines
            .iter()
            .enumerate()
            .map(|(i, e)| (i, e.outstanding_tokens()))
            .min_by_key(|&(_, load)| load)
            .expect("non-empty cluster");
        let threshold = 4096 + (2.0 * least_load as f64).min(u64::MAX as f64 / 2.0) as u64;
        if home_load > threshold && least != home {
            (least, true)
        } else {
            (home, false)
        }
    }

    fn run(&mut self, trace: &Trace) -> SimTime {
        enum Ev {
            Arrival(chameleon_repro::workload::Request),
            Engine(usize, EngineEvent),
        }
        let mut q: EventQueue<Ev> = EventQueue::with_capacity(trace.len() * 4);
        let mut arrivals_left = trace.len();
        for r in trace {
            q.push(r.arrival(), Ev::Arrival(*r));
        }
        let mem_int = self.engines[0].config().mem_sample_interval;
        let refresh_int = self.engines[0].config().refresh_interval;
        for i in 0..self.engines.len() {
            q.push(
                SimTime::ZERO + mem_int,
                Ev::Engine(i, EngineEvent::MemSample),
            );
            q.push(
                SimTime::ZERO + refresh_int,
                Ev::Engine(i, EngineEvent::Refresh),
            );
        }
        let mut out = Vec::new();
        let mut last = SimTime::ZERO;
        while let Some((t, ev)) = q.pop() {
            last = t;
            match ev {
                Ev::Arrival(req) => {
                    arrivals_left -= 1;
                    let (target, spilled) = self.route(req.adapter());
                    let hit = self.engines[target].is_adapter_resident(req.adapter());
                    self.stats.record(EngineId(target as u32), hit, spilled);
                    self.engines[target].handle(t, EngineEvent::Arrival(req), &mut out);
                    for (at, e) in out.drain(..) {
                        q.push(at, Ev::Engine(target, e));
                    }
                }
                Ev::Engine(i, ev) => {
                    let reschedule = match &ev {
                        EngineEvent::MemSample => Some((t + mem_int, EngineEvent::MemSample)),
                        EngineEvent::Refresh => Some((t + refresh_int, EngineEvent::Refresh)),
                        _ => None,
                    };
                    let periodic = reschedule.is_some();
                    self.engines[i].handle(t, ev, &mut out);
                    for (at, e) in out.drain(..) {
                        q.push(at, Ev::Engine(i, e));
                    }
                    if periodic && (arrivals_left > 0 || self.engines[i].has_work()) {
                        let (at, e) = reschedule.expect("periodic");
                        q.push(at, Ev::Engine(i, e));
                    }
                }
            }
        }
        self.events_processed = q.processed();
        last
    }

    fn into_report(self) -> (EngineReport, u64) {
        let stats = self.stats;
        let events = self.events_processed;
        let mut reports = self.engines.into_iter().map(Engine::into_report);
        let mut merged = reports.next().expect("non-empty cluster");
        for r in reports {
            merged.merge(r);
        }
        merged.routing = stats;
        (merged, events)
    }
}

/// The acceptance criterion: a fixed 4-engine homogeneous
/// `AdapterAffinity` cluster produces byte-identical
/// `RunReport::canonical_text()` through the identity/weight refactor
/// (legacy spill target pins the one deliberately changed policy knob).
#[test]
fn identity_weight_refactor_preserves_fixed_affinity_cluster_byte_for_byte() {
    let pool = pool();
    let trace = overload_trace(&pool, 900);

    let mut cluster = Cluster::with_router(
        N_ENGINES,
        |_| engine(&pool),
        Box::new(
            AdapterAffinity::with_spill(2.0, 4096).with_spill_target(SpillTarget::LeastLoaded),
        ),
    );
    let horizon = cluster.run(&trace);
    let events = cluster.events_processed();
    let stats = cluster.routing_stats().clone();
    assert!(
        stats.spills > 0,
        "scenario must exercise the spill path to be a meaningful oracle"
    );
    assert_eq!(stats.dispatched as usize, trace.len());
    let new_text = run_report(cluster.into_report(), horizon, events).canonical_text();

    let mut reference = ReferenceAffinityCluster::new(N_ENGINES, &pool);
    let ref_horizon = reference.run(&trace);
    let (ref_report, ref_events) = reference.into_report();
    let old_text = run_report(ref_report, ref_horizon, ref_events).canonical_text();

    assert_eq!(
        new_text, old_text,
        "identity/weight refactor changed fixed-fleet behaviour"
    );
}

/// End-to-end elasticity: the autoscaled preset grows through a burst and
/// drains back afterwards, migrating adapters on every fleet change, and
/// the whole elastic run is deterministic.
#[test]
fn elastic_simulation_grows_through_burst_and_drains_back() {
    let run = || {
        let mut cfg = preset::chameleon_cluster_elastic();
        let auto = cfg.autoscale.as_mut().expect("elastic preset");
        auto.controller.interval = SimDuration::from_secs(1);
        auto.controller.cooldown = SimDuration::from_secs(3);
        auto.controller.scale_up_mean_queue = 4.0;
        auto.controller.scale_down_mean_queue = 0.5;
        let mut sim = Simulation::new(cfg, 21);
        let trace = workloads::splitwise_bursty(4.0, 60.0, 10.0, 10.0, 20.0, 21, sim.pool());
        let n = trace.len();
        let report = sim.run(&trace);
        assert_eq!(report.completed(), n, "elastic run lost requests");
        report
    };
    let report = run();
    let r = &report.routing;
    assert!(r.engines_added > 0, "burst never grew the fleet: {r:?}");
    assert!(r.engines_drained > 0, "fleet never drained back: {r:?}");
    assert!(r.adapters_rehomed > 0, "fleet changes migrated nothing");
    assert_eq!(
        r.engine_ids.len(),
        2 + r.engines_added as usize,
        "every added engine gets a fresh stable id"
    );
    // The newcomers actually served traffic.
    assert!(
        r.engine_ids
            .iter()
            .skip(2)
            .any(|&id| r.dispatched_to(id) > 0),
        "no added engine received dispatches: {r:?}"
    );
    // Elastic runs are as deterministic as fixed ones.
    assert_eq!(
        report.canonical_text(),
        run().canonical_text(),
        "elastic run is not deterministic"
    );
}

/// Heterogeneous fleets: capacity-weighted rendezvous gives the TP4
/// engine a larger adapter shard — and with it more dispatches — than a
/// TP1 engine, while every engine still participates.
#[test]
fn hetero_fleet_weights_shards_by_capacity() {
    let mut cfg = preset::chameleon_cluster_hetero().with_adapters(300);
    cfg.rank_popularity = chameleon_repro::models::PopularityDist::power_law();
    let mut sim = Simulation::new(cfg, 9);
    let trace = workloads::lmsys(24.0, 40.0, 9, sim.pool());
    let n = trace.len();
    let report = sim.run(&trace);
    assert_eq!(report.completed(), n);
    let r = &report.routing;
    assert_eq!(r.engine_ids.len(), 4);
    assert!(r.per_engine.iter().all(|&c| c > 0), "starved engine: {r:?}");
    let tp1 = r.per_engine[0].min(r.per_engine[1]);
    let tp4 = r.per_engine[3];
    assert!(
        tp4 > tp1,
        "TP4 engine should out-serve a TP1 engine: {:?}",
        r.per_engine
    );
}
