//! Behavioural oracle for failure recovery: failover efficacy, request
//! conservation, load shedding, stragglers, flaky links, and the
//! flight-recorder predicates that watch the recovery path.
//!
//! The headline claims of the fault plane, each pinned here:
//!
//! * a crash loses **nothing** — every request queued or running on the
//!   dead engine is re-dispatched through the router (or deliberately
//!   counted failed past the retry budget), with zero duplicates;
//! * recovery + shedding strictly beats a no-recovery ablation on P99
//!   TTFT over *all offered* requests (unserved = infinite TTFT) on the
//!   identical trace;
//! * a crash landing while engines are mid-step never strands the
//!   redirected queue — the run drains to completion (the PR 4
//!   phantom-busy bug class).

use chameleon_repro::core::{
    preset, report::RunReport, sim::Simulation, workloads, FaultSpec, SystemConfig, TraceSpec,
};
use chameleon_repro::simcore::{SimDuration, SimTime};
use chameleon_repro::trace::TraceEvent;
use chameleon_repro::workload::Trace;

/// P99 TTFT over **all offered** requests: anything the system never
/// served (shed, failed, or still waiting at the horizon) counts as an
/// infinite sample — the honest way to compare a run that drops work
/// against one that doesn't.
fn p99_ttft_all_offered(report: &RunReport, offered: usize) -> f64 {
    let mut xs: Vec<f64> = report
        .records
        .iter()
        .filter_map(|r| r.ttft())
        .map(|d| d.as_secs_f64())
        .collect();
    assert!(xs.len() <= offered);
    xs.resize(offered, f64::INFINITY);
    xs.sort_by(f64::total_cmp);
    let idx = ((offered as f64 * 0.99).ceil() as usize).max(1) - 1;
    xs[idx]
}

fn run_faulted(cfg: SystemConfig, seed: u64, rps: f64, secs: f64) -> (RunReport, usize) {
    let mut sim = Simulation::new(cfg, seed);
    let trace = workloads::splitwise(rps, secs, seed, sim.pool());
    let n = trace.len();
    (sim.run(&trace), n)
}

/// The failover efficacy oracle: on the faulted preset's mid-trace crash,
/// 100% of the dead engine's queued + in-flight requests are accounted
/// for (recovered or deliberately failed), nothing is lost or duplicated,
/// and with the default retry budget everything actually completes.
#[test]
fn crash_redispatches_the_entire_victim_queue() {
    let cfg = preset::chameleon_cluster_faulted(4).with_trace(TraceSpec::new());
    let (report, offered) = run_faulted(cfg, 7, 12.0, 25.0);
    let f = &report.routing.fault;
    assert_eq!(f.engines_failed, 1, "the scheduled crash must land");
    assert!(
        f.requests_recovered > 0,
        "crash hit an idle engine — scenario too light"
    );

    // The EngineFailed trace event records exactly what died with the
    // engine; recovery must account for every one of those requests.
    let log = report.trace.as_ref().expect("traced run");
    let (queued, running) = log
        .events()
        .iter()
        .find_map(|e| match e.event {
            TraceEvent::EngineFailed {
                queued, running, ..
            } => Some((queued, running)),
            _ => None,
        })
        .expect("crash emits an EngineFailed event");
    assert_eq!(
        u64::from(queued) + u64::from(running),
        f.requests_recovered + f.requests_failed,
        "victim requests leaked: not every one was re-dispatched or counted failed"
    );
    assert_eq!(
        f.requests_failed, 0,
        "default budget should recover everything"
    );
    assert!(
        f.retries >= f.requests_recovered,
        "each recovery is at least one retry"
    );

    report.assert_request_conservation(offered);
    assert_eq!(
        report.completed() as u64 + f.requests_shed,
        offered as u64,
        "recovered requests must finish, not linger incomplete"
    );
    // The crash re-homed the dead engine's adapter shard onto survivors.
    assert!(report.routing.adapters_rehomed > 0);
    assert!(report.availability(offered) > 0.9);
}

/// Recovery + shedding strictly beats the no-recovery ablation (retry
/// budget zero, shedding off) on P99 TTFT over all offered requests, on
/// the identical trace. The ablation abandons the victim queue, so its
/// P99 over offered requests is infinite; recovery keeps it finite.
#[test]
fn recovery_beats_no_recovery_ablation_on_p99() {
    let seed = 7;
    let recovery_cfg = preset::chameleon_cluster_faulted(4);
    let ablation_cfg = preset::chameleon_cluster_partitioned(4)
        .with_fault(
            FaultSpec::new()
                .with_crash(1, SimTime::from_secs_f64(10.0))
                .with_retry_policy(SimDuration::from_millis(50), SimDuration::from_secs(2), 0),
        )
        .with_label("Chameleon-DP4-NoRecovery");

    let pool = Simulation::new(recovery_cfg.clone(), seed).pool().clone();
    // Light enough that the post-crash fleet absorbs the re-dispatch
    // without shedding: recovery serves 100%, so its all-offered P99 is
    // finite while the ablation's (5% of requests abandoned) is not.
    let trace = workloads::splitwise(8.0, 25.0, seed, &pool);
    let offered = trace.len();

    let recovery = Simulation::new(recovery_cfg, seed).run(&trace);
    let ablation = Simulation::new(ablation_cfg, seed).run(&trace);
    recovery.assert_request_conservation(offered);
    ablation.assert_request_conservation(offered);

    assert!(
        ablation.routing.fault.requests_failed > 0,
        "ablation must actually drop the victim queue for the comparison to bite"
    );
    let p99_recovery = p99_ttft_all_offered(&recovery, offered);
    let p99_ablation = p99_ttft_all_offered(&ablation, offered);
    assert!(
        p99_recovery.is_finite(),
        "recovery left unserved requests in the P99 tail"
    );
    assert!(
        p99_recovery < p99_ablation,
        "recovery ({p99_recovery:.3}s) must strictly beat no-recovery ({p99_ablation:.3}s)"
    );
}

/// SLO-aware shedding: when the whole fleet's estimated TTFT blows past
/// the shed threshold, admission refuses requests instead of queueing
/// them into a hopeless backlog — and every shed is still conserved.
#[test]
fn overload_sheds_at_admission_and_conserves() {
    let seed = 13;
    let cfg = preset::chameleon_cluster_partitioned(2)
        .with_fault(FaultSpec::new().with_shedding(1.0))
        .with_trace(TraceSpec::new());
    let mut sim = Simulation::new(cfg, seed);
    // A sustained 12x burst two engines cannot absorb.
    let trace = workloads::splitwise_bursty(6.0, 30.0, 5.0, 15.0, 12.0, seed, sim.pool());
    let offered = trace.len();
    let report = sim.run(&trace);
    let f = &report.routing.fault;
    assert!(f.requests_shed > 0, "burst never tripped the shed gate");
    assert!(f.engines_failed == 0 && f.requests_failed == 0);
    report.assert_request_conservation(offered);
    let log = report.trace.as_ref().expect("traced run");
    let sheds = log
        .events()
        .iter()
        .filter(|e| matches!(e.event, TraceEvent::RequestShed { .. }))
        .count() as u64;
    assert_eq!(sheds, f.requests_shed, "every shed is traced");
    assert!(report.availability(offered) < 1.0);
}

/// A straggler window slows its engine (and therefore the tail) without
/// losing or duplicating anything; outside the window behaviour recovers.
#[test]
fn straggler_degrades_the_tail_but_loses_nothing() {
    let seed = 5;
    let clean_cfg = preset::chameleon_cluster_partitioned(3);
    let slow_cfg = clean_cfg
        .clone()
        .with_fault(FaultSpec::new().with_straggler(
            0,
            SimTime::from_secs_f64(2.0),
            SimTime::from_secs_f64(12.0),
            8.0,
        ));
    let pool = Simulation::new(clean_cfg.clone(), seed).pool().clone();
    let trace = workloads::splitwise(18.0, 15.0, seed, &pool);
    let offered = trace.len();
    let clean = Simulation::new(clean_cfg, seed).run(&trace);
    let slow = Simulation::new(slow_cfg, seed).run(&trace);
    slow.assert_request_conservation(offered);
    assert_eq!(
        slow.completed(),
        clean.completed(),
        "straggler lost requests"
    );
    assert!(
        slow.p99_ttft() > clean.p99_ttft(),
        "an 8x straggler window must show up in the tail ({} vs {})",
        slow.p99_ttft(),
        clean.p99_ttft()
    );
}

/// A flaky host link retries failed adapter transfers transparently:
/// latency pressure, never lost work.
#[test]
fn flaky_pcie_retries_transparently() {
    let seed = 9;
    let cfg = preset::chameleon_cluster_partitioned(2)
        .with_fault(FaultSpec::new().with_pcie_fail_prob(0.2));
    let (report, offered) = run_faulted(cfg, seed, 12.0, 15.0);
    assert!(
        report.routing.fault.pcie_retries > 0,
        "a 20% flaky link must actually fail some transfers"
    );
    report.assert_request_conservation(offered);
    assert_eq!(report.completed(), offered);
}

/// Regression pin for the PR 4 phantom-busy bug class: a crash landing
/// while every engine is deep in a busy step must re-dispatch the victim
/// queue onto engines whose in-flight work the coordinator hasn't
/// harvested yet — and the run must still drain to completion with every
/// survivor served exactly once. Saturating arrival pressure plus a
/// crash in the thick of it maximises the chance of a stranded queue.
#[test]
fn crash_during_busy_step_never_strands_the_redirected_queue() {
    for seed in [1u64, 4, 8] {
        let cfg = preset::chameleon_cluster_partitioned(3).with_fault(
            FaultSpec::new()
                .with_crash(2, SimTime::from_secs_f64(7.5))
                .with_detect_timeout(SimDuration::from_millis(10)),
        );
        let mut sim = Simulation::new(cfg, seed);
        let trace = workloads::splitwise_bursty(10.0, 20.0, 5.0, 8.0, 6.0, seed, sim.pool());
        let offered = trace.len();
        let report = sim.run(&trace);
        let f = &report.routing.fault;
        assert_eq!(f.engines_failed, 1, "seed {seed}: crash missed");
        assert!(
            f.requests_recovered > 0,
            "seed {seed}: crash hit an idle engine"
        );
        report.assert_request_conservation(offered);
        assert_eq!(
            report.completed(),
            offered,
            "seed {seed}: redirected queue stranded — {} of {} completed",
            report.completed(),
            offered
        );
    }
}

/// The retry-storm flight-recorder predicate fires on the crash's
/// re-dispatch burst and hands back a dump ending in a retry event.
#[test]
fn retry_storm_predicate_catches_the_failover_burst() {
    let cfg = preset::chameleon_cluster_faulted(4)
        .with_trace(TraceSpec::new().with_retry_storm_trigger(3, SimDuration::from_secs(5)));
    let (report, _) = run_faulted(cfg, 7, 24.0, 25.0);
    assert!(
        report.routing.fault.retries >= 3,
        "not enough retries to storm"
    );
    assert!(report.flight_firings > 0, "storm predicate never fired");
    let dump = report
        .flight_dumps
        .iter()
        .find(|d| d.predicate == "retry-storm")
        .expect("retry-storm dump captured");
    assert!(matches!(
        dump.events.last().expect("non-empty ring").event,
        TraceEvent::RequestRetried { .. }
    ));

    // The same scenario without faults gives the predicate nothing.
    let clean = preset::chameleon_cluster_partitioned(4)
        .with_trace(TraceSpec::new().with_retry_storm_trigger(3, SimDuration::from_secs(5)));
    let (report, _) = run_faulted(clean, 7, 24.0, 25.0);
    assert_eq!(report.flight_firings, 0);
}

/// Fault injection composes with tracing without perturbing behaviour:
/// the traced faulted run is byte-identical to the untraced one.
#[test]
fn tracing_does_not_change_faulted_results() {
    let run = |traced: bool| {
        let mut cfg = preset::chameleon_cluster_faulted(3);
        if traced {
            cfg = cfg.with_trace(TraceSpec::new());
        }
        let mut sim = Simulation::new(cfg, 6);
        let trace = workloads::splitwise(18.0, 18.0, 6, sim.pool());
        sim.run(&trace).canonical_text()
    };
    assert_eq!(run(false), run(true));
}

/// Sanity: an empty trace through a faulted cluster neither panics nor
/// fabricates work.
#[test]
fn faulted_cluster_survives_an_empty_trace() {
    let mut sim = Simulation::new(preset::chameleon_cluster_faulted(2), 1);
    let report = sim.run(&Trace::new(Vec::new()));
    report.assert_request_conservation(0);
    assert_eq!(
        report.routing.fault.engines_failed, 1,
        "scheduled crash still fires"
    );
}
