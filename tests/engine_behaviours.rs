//! Behavioural integration tests for engine-level mechanisms that the
//! paper's comparisons depend on: S-LoRA's synchronous load stalls,
//! worst-case KV reservations, chunked prefill, prefetching, and the
//! dynamic cache sizing of §4.2.

use chameleon_repro::core::{preset, sim::Simulation, workloads, SystemConfig};

fn run(cfg: SystemConfig, rps: f64, secs: f64, seed: u64) -> chameleon_repro::core::RunReport {
    let mut sim = Simulation::new(cfg, seed);
    let trace = workloads::splitwise(rps, secs, seed, sim.pool());
    sim.run(&trace)
}

/// §5.2.1: worst-case KV reservations (no output predictor) are what break
/// S-LoRA early — giving it an oracle predictor recovers most of the gap.
#[test]
fn worst_case_reservations_drive_slora_collapse() {
    let rps = 11.0;
    let stock = run(preset::slora(), rps, 120.0, 42);
    let mut oracle = preset::slora().with_predictor_accuracy(1.0);
    oracle.worst_case_predictor = false;
    let fixed = run(oracle, rps, 120.0, 42);
    assert!(
        fixed.p99_ttft() < stock.p99_ttft() * 0.5,
        "oracle-S-LoRA {:.2}s vs stock {:.2}s",
        fixed.p99_ttft(),
        stock.p99_ttft()
    );
}

/// §4.2 dynamic sizing: the adapter cache shrinks under load spikes — the
/// cache region never pushes total usage over capacity, and evictions
/// actually occur when the pool exceeds idle memory.
#[test]
fn cache_shrinks_under_pressure() {
    // 400 adapters ≈ 40 GB of weights vs ~31 GB of idle memory.
    let report = run(preset::chameleon().with_adapters(400), 9.0, 120.0, 42);
    assert!(
        report.cache_stats.evictions > 0,
        "no evictions under pressure"
    );
    for s in &report.mem_series {
        assert!(s.total_used() <= s.capacity);
    }
    // And the cache still earns a solid hit rate.
    assert!(report.hit_rate() > 0.5, "hit rate {:.2}", report.hit_rate());
}

/// Prefetching queued adapters shortens the load latency left on the
/// critical path for the S-LoRA baseline.
#[test]
fn queued_prefetch_hides_load_latency() {
    let mut no_prefetch = preset::slora();
    no_prefetch.prefetch_queued = false;
    let without = run(no_prefetch, 9.0, 120.0, 42);
    let with = run(preset::slora(), 9.0, 120.0, 42);
    let mean_load = |r: &chameleon_repro::core::RunReport| {
        let xs = r.load_on_path_seconds();
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    assert!(
        mean_load(&with) <= mean_load(&without),
        "prefetch should not increase critical-path load time"
    );
}

/// Predictive (histogram) prefetch does not regress the full system.
#[test]
fn predictive_prefetch_no_regression() {
    let base = run(preset::chameleon().with_adapters(400), 9.0, 120.0, 42);
    let pre = run(
        preset::chameleon_prefetch().with_adapters(400),
        9.0,
        120.0,
        42,
    );
    assert!(pre.p99_ttft() <= base.p99_ttft() * 1.10);
    assert!(pre.hit_rate() >= base.hit_rate() - 0.02);
}

/// Tensor parallelism: the same workload at the same rate gets faster
/// prefill but pays more for adapter loads; Chameleon's advantage grows
/// with the TP degree (Figure 25's mechanism).
#[test]
fn chameleon_advantage_grows_with_tp() {
    let gpu = chameleon_repro::models::GpuSpec::a100_80gb();
    let ratio_at = |tp: u32, rps: f64| {
        let s = run(
            preset::slora().with_gpu(gpu.clone()).with_tp(tp),
            rps,
            90.0,
            42,
        );
        let c = run(
            preset::chameleon().with_gpu(gpu.clone()).with_tp(tp),
            rps,
            90.0,
            42,
        );
        c.p99_ttft() / s.p99_ttft().max(1e-9)
    };
    let tp1 = ratio_at(1, 16.0);
    let tp4 = ratio_at(4, 40.0);
    assert!(
        tp4 < tp1,
        "TP4 normalised P99 {tp4:.2} should beat TP1 {tp1:.2}"
    );
}

/// The SJF aging knob works end to end: pure SJF (no aging) starves large
/// requests harder than the default aged variant.
#[test]
fn sjf_aging_softens_starvation() {
    let rps = 12.5;
    let mut pure = preset::slora_sjf();
    pure.sched = chameleon_repro::core::SchedPolicy::Sjf {
        aging_tokens_per_sec: 0.0,
    };
    let aged = run(preset::slora_sjf(), rps, 120.0, 42);
    let unaged = run(pure, rps, 120.0, 42);
    let large_delay = |r: &chameleon_repro::core::RunReport| r.queue_delay_by_class()[2].1;
    assert!(
        large_delay(&aged) <= large_delay(&unaged) * 1.2,
        "aging should not worsen large-class delay: {:.2}s vs {:.2}s",
        large_delay(&aged),
        large_delay(&unaged)
    );
}

/// Load sweep machinery: P99 grows with offered load for every system.
#[test]
fn sweeps_are_monotone_ish() {
    use chameleon_repro::core::sweep::LoadSweep;
    let result = LoadSweep::new(preset::slora(), 42)
        .with_trace_secs(60.0)
        .run(&[6.0, 10.0, 12.0]);
    let curve = result.p99_curve();
    assert!(curve[2].1 > curve[0].1, "P99 must grow toward overload");
    assert!(result.throughput(1e9).is_some());
}

/// Ablation plumbing: K_max override reaches the scheduler.
#[test]
fn k_max_override_changes_configuration() {
    use chameleon_repro::core::ablation;
    let pts = ablation::k_max_effect(9.0, 40.0, 42);
    assert_eq!(pts.len(), 4);
    // All complete and produce sane latencies.
    for p in &pts {
        assert!(p.p99_ttft > 0.0 && p.p99_ttft < 60.0, "{p:?}");
    }
}
