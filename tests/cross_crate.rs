//! Cross-crate integration tests: substrate pieces composed through the
//! umbrella crate's public API.

use chameleon_repro::cache::{AdapterCache, EvictionPolicy};
use chameleon_repro::core::{preset, sim::Simulation, workloads};
use chameleon_repro::gpu::memory::{MemoryPool, Region};
use chameleon_repro::gpu::CostModel;
use chameleon_repro::models::{
    AdapterPool, AdapterRank, AdapterSpec, GpuSpec, LlmSpec, PoolConfig,
};
use chameleon_repro::simcore::{SimDuration, SimRng, SimTime};
use chameleon_repro::workload::{ArrivalModel, LengthModel, TraceGenerator};

/// Memory never exceeds capacity at any sampled instant, across an entire
/// loaded run (the Figure 6 invariant).
#[test]
fn memory_series_respects_capacity() {
    let mut sim = Simulation::new(preset::chameleon(), 42);
    let trace = workloads::splitwise(11.0, 120.0, 42, sim.pool());
    let report = sim.run(&trace);
    assert!(!report.mem_series.is_empty());
    for s in &report.mem_series {
        assert!(
            s.total_used() <= s.capacity,
            "over-committed at {}: {} > {}",
            s.at,
            s.total_used(),
            s.capacity
        );
        assert_eq!(s.weights, LlmSpec::llama_7b().weight_bytes());
    }
    // Under load, the KV cache visibly fluctuates.
    let kv_max = report.mem_series.iter().map(|s| s.kv).max().unwrap();
    assert!(kv_max > 0);
}

/// The cache + memory-pool pair keeps exact byte accounting through a
/// generated workload of acquisitions and releases.
#[test]
fn cache_and_pool_agree_on_bytes() {
    let llm = LlmSpec::llama_7b();
    let pool_cfg = PoolConfig::paper_default(40);
    let adapters = AdapterPool::generate(&llm, &pool_cfg);
    let mut mem = MemoryPool::new(8 << 30);
    let mut cache = AdapterCache::new(EvictionPolicy::chameleon());
    let mut rng = SimRng::seed(1);
    let mut live: Vec<(chameleon_repro::models::AdapterId, u32)> = Vec::new();
    for step in 0..2000 {
        let now = SimTime::from_nanos(step * 1_000_000);
        if rng.chance(0.6) {
            let spec: &AdapterSpec = adapters.sample(&mut rng);
            let acquired = cache.acquire(&mut mem, spec.id(), now)
                || (cache.make_room(&mut mem, spec.bytes(), now, &Default::default())
                    && cache.insert_loaded(&mut mem, spec, now, 1).is_ok());
            if acquired {
                live.push((spec.id(), 1));
            }
        } else if let Some((id, _)) = live.pop() {
            cache.release(&mut mem, id, now);
        }
        assert_eq!(cache.in_use_bytes(), mem.used(Region::AdaptersInUse));
        assert_eq!(cache.idle_bytes(), mem.used(Region::AdapterCache));
    }
}

/// The cost model's isolated latencies are consistent with what the full
/// engine measures for a lone request.
#[test]
fn engine_matches_isolated_oracle_for_single_request() {
    let cfg = preset::chameleon();
    let mut sim = Simulation::new(cfg, 42);
    let pool = sim.pool().clone();
    // A one-request trace.
    let gen = TraceGenerator::new(
        LengthModel::Custom {
            input: chameleon_repro::workload::generator::TokenLengthModel {
                median: 128.0,
                sigma: 0.0,
                min: 128,
                max: 128,
            },
            output: chameleon_repro::workload::generator::TokenLengthModel {
                median: 16.0,
                sigma: 0.0,
                min: 16,
                max: 16,
            },
        },
        ArrivalModel::poisson(1.0),
    );
    let mut rng = SimRng::seed(3);
    let trace = gen.generate_n(&pool, 1, &mut rng);
    let req = trace.requests()[0];
    let report = sim.run(&trace);
    let rec = &report.records[0];
    let cost = CostModel::new(LlmSpec::llama_7b(), GpuSpec::a40(), 1);
    let (iso_ttft, iso_e2e) = cost.isolated_latency(
        req.input_tokens(),
        req.output_tokens(),
        Some(req.rank()),
        true,
    );
    let measured_ttft = rec.ttft().unwrap();
    let measured_e2e = rec.e2e().unwrap();
    // The engine adds queueing/prefetch wrinkles but a lone request should
    // land within a few percent of the oracle.
    let close = |a: SimDuration, b: SimDuration| {
        (a.as_secs_f64() - b.as_secs_f64()).abs() / b.as_secs_f64() < 0.25
    };
    assert!(
        close(measured_ttft, iso_ttft),
        "ttft {measured_ttft} vs oracle {iso_ttft}"
    );
    assert!(
        close(measured_e2e, iso_e2e),
        "e2e {measured_e2e} vs oracle {iso_e2e}"
    );
}

/// Data-parallel clusters preserve per-request accounting and balance.
#[test]
fn dp_cluster_conserves_requests() {
    let mut cfg = preset::chameleon();
    cfg.data_parallel = 3;
    let mut sim = Simulation::new(cfg, 9);
    let trace = workloads::splitwise(24.0, 60.0, 9, sim.pool());
    let n = trace.len();
    let report = sim.run(&trace);
    assert_eq!(report.completed(), n);
}

/// Tensor parallelism speeds up prefill but makes adapter loads slower in
/// absolute terms (§3.2's Llama-70B observation), end to end.
#[test]
fn tp_shifts_cost_from_compute_to_loading() {
    let tp1 = CostModel::new(LlmSpec::llama_70b(), GpuSpec::a100_80gb(), 1);
    let tp4 = CostModel::new(LlmSpec::llama_70b(), GpuSpec::a100_80gb(), 4);
    let bytes = chameleon_repro::models::adapter::adapter_bytes(
        &LlmSpec::llama_70b(),
        AdapterRank::new(32),
    );
    assert!(tp4.base_prefill_time(512) < tp1.base_prefill_time(512));
    assert!(tp4.adapter_load_time(bytes) > tp1.adapter_load_time(bytes));
}

/// Chunked prefill trades TTFT for TBT, as the Figure 8 discussion
/// describes.
#[test]
fn chunked_prefill_helps_tbt() {
    let run = |cfg| {
        let mut sim = Simulation::new(cfg, 21);
        let trace = workloads::splitwise(10.0, 120.0, 21, sim.pool());
        sim.run(&trace)
    };
    let plain = run(preset::slora());
    let chunked = run(preset::slora_chunked());
    let plain_tbt = plain.tbt_summary().unwrap().p99;
    let chunked_tbt = chunked.tbt_summary().unwrap().p99;
    assert!(
        chunked_tbt < plain_tbt,
        "chunked p99 TBT {chunked_tbt:.3}s vs plain {plain_tbt:.3}s"
    );
}
