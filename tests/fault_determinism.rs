//! Determinism oracle for the fault-injection plane.
//!
//! Faults are coordinator decisions observed only at cluster barriers, so
//! a fault-armed run — crashes, stragglers, flaky PCIe, delayed
//! provisioning, retries, shedding — must be **byte-identical** whether
//! the cluster steps serially or on an epoch-synchronised worker pool,
//! for any worker count, on fixed and elastic fleets alike. And with no
//! `FaultSpec` set, the canonical text must carry no fault line at all:
//! the plane is a strict opt-in overlay.

use chameleon_repro::core::{
    preset, sim::Simulation, workloads, ClusterExecution, FaultSpec, SystemConfig, TraceSpec,
};
use chameleon_repro::simcore::{SimDuration, SimTime};

const SEEDS: [u64; 2] = [3, 11];
const WORKER_COUNTS: [usize; 3] = [1, 2, 7];

fn run_text(cfg: SystemConfig, exec: ClusterExecution, seed: u64, rps: f64, secs: f64) -> String {
    let mut sim = Simulation::new(cfg.with_cluster_exec(exec), seed);
    let trace = workloads::splitwise(rps, secs, seed, sim.pool());
    let n = trace.len();
    let report = sim.run(&trace);
    report.assert_request_conservation(n);
    report.canonical_text()
}

/// A fault spec exercising every injector at once on a fixed fleet:
/// a crash, a straggler window and a flaky host link.
fn kitchen_sink_faults() -> FaultSpec {
    FaultSpec::new()
        .with_crash(1, SimTime::from_secs_f64(6.0))
        .with_straggler(
            2,
            SimTime::from_secs_f64(2.0),
            SimTime::from_secs_f64(9.0),
            3.0,
        )
        .with_pcie_fail_prob(0.05)
        .with_shedding(8.0)
}

/// Fixed 4-engine affinity fleet under the kitchen-sink fault spec: the
/// serial run is the oracle and every pooled worker count must reproduce
/// its canonical text byte-for-byte, across seeds.
#[test]
fn fault_armed_runs_are_bit_identical_across_worker_counts() {
    for seed in SEEDS {
        let cfg = preset::chameleon_cluster_partitioned(4).with_fault(kitchen_sink_faults());
        let serial = run_text(cfg.clone(), ClusterExecution::Serial, seed, 24.0, 12.0);
        assert!(
            serial.contains("fault engines_failed=1"),
            "seed {seed}: the crash never landed"
        );
        for workers in WORKER_COUNTS {
            let pooled = run_text(
                cfg.clone(),
                ClusterExecution::Parallel { workers },
                seed,
                24.0,
                12.0,
            );
            assert_eq!(
                pooled, serial,
                "seed {seed}, {workers} workers: fault-armed run diverged from serial"
            );
        }
    }
}

/// The tightened elastic preset with provisioning faults layered on top
/// of a crash: scale-ups are delayed and sometimes fail outright, and
/// the worker pool must still reproduce the serial run exactly.
#[test]
fn elastic_fault_runs_are_bit_identical() {
    let cfg = || {
        let mut cfg = preset::chameleon_cluster_elastic();
        let auto = cfg.autoscale.as_mut().expect("elastic preset");
        auto.controller.interval = SimDuration::from_secs(1);
        auto.controller.cooldown = SimDuration::from_secs(3);
        auto.controller.scale_up_mean_queue = 4.0;
        cfg.with_fault(
            FaultSpec::new()
                .with_crash(0, SimTime::from_secs_f64(15.0))
                .with_provisioning(SimDuration::from_secs(2), 0.3),
        )
    };
    let run = |exec: ClusterExecution, seed: u64| {
        let mut sim = Simulation::new(cfg().with_cluster_exec(exec), seed);
        let trace = workloads::splitwise_bursty(4.0, 40.0, 8.0, 10.0, 20.0, seed, sim.pool());
        let n = trace.len();
        let report = sim.run(&trace);
        report.assert_request_conservation(n);
        report.canonical_text()
    };
    for seed in SEEDS {
        let serial = run(ClusterExecution::Serial, seed);
        assert!(serial.contains("fault engines_failed=1"));
        for workers in [2usize, 7] {
            assert_eq!(
                run(ClusterExecution::Parallel { workers }, seed),
                serial,
                "seed {seed}, {workers} workers: elastic fault run diverged"
            );
        }
    }
}

/// Correlated injections on a domain fleet — a rack-scoped brownout, a
/// coordinator↔domain partition and a whole-domain crash — ride the same
/// barrier-observed timeline as engine-scoped faults, so these runs too
/// must be byte-identical across worker counts and seeds, MTTR aggregates
/// included (the canonical text prints them as exact bit patterns).
#[test]
fn correlated_fault_runs_are_bit_identical() {
    for seed in SEEDS {
        let cfg = preset::chameleon_cluster_domains(6).with_fault(
            FaultSpec::new()
                .with_domain_brownout(
                    1,
                    SimTime::from_secs_f64(1.0),
                    SimTime::from_secs_f64(6.0),
                    3.0,
                )
                .with_partition(0, SimTime::from_secs_f64(2.0), SimTime::from_secs_f64(5.0))
                .with_domain_crash(1, SimTime::from_secs_f64(7.0))
                .with_shedding(8.0),
        );
        let serial = run_text(cfg.clone(), ClusterExecution::Serial, seed, 24.0, 12.0);
        assert!(
            serial.contains("domains_failed=1"),
            "seed {seed}: the domain crash never landed"
        );
        assert!(
            serial.contains("partitions=1"),
            "seed {seed}: the partition never opened"
        );
        for workers in WORKER_COUNTS {
            let pooled = run_text(
                cfg.clone(),
                ClusterExecution::Parallel { workers },
                seed,
                24.0,
                12.0,
            );
            assert_eq!(
                pooled, serial,
                "seed {seed}, {workers} workers: correlated-fault run diverged from serial"
            );
        }
    }
}

/// A trace-armed crash run: the merged JSONL decision stream — including
/// the `engine_failed`, `retry` and `shard_recovered` events — is
/// byte-identical across execution modes.
#[test]
fn fault_trace_stream_is_byte_identical() {
    let cfg = preset::chameleon_cluster_faulted(4).with_trace(TraceSpec::new());
    let run = |exec: ClusterExecution| {
        let mut sim = Simulation::new(cfg.clone().with_cluster_exec(exec), 5);
        let trace = workloads::splitwise(24.0, 15.0, 5, sim.pool());
        let report = sim.run(&trace);
        report
            .trace
            .as_ref()
            .expect("traced run carries a log")
            .to_jsonl()
    };
    let serial = run(ClusterExecution::Serial);
    assert!(serial.contains("\"ev\":\"engine_failed\""));
    assert!(serial.contains("\"ev\":\"retry\""));
    for workers in WORKER_COUNTS {
        assert_eq!(
            run(ClusterExecution::Parallel { workers }),
            serial,
            "{workers} workers: fault trace stream diverged from serial"
        );
    }
}

/// With no `FaultSpec` set the canonical text carries no fault line —
/// fault-free runs stay byte-identical to the pre-fault-plane format
/// (the digest-pinned oracle suite holds the exact bytes; this pins the
/// structural reason they can't change).
#[test]
fn fault_line_appears_only_when_armed() {
    let seed = 2;
    let mut clean = Simulation::new(preset::chameleon_cluster_partitioned(2), seed);
    let trace = workloads::splitwise(8.0, 8.0, seed, clean.pool());
    let text = clean.run(&trace).canonical_text();
    assert!(
        !text.contains("\nfault "),
        "unarmed run leaked a fault line into the canonical text"
    );

    let mut armed = Simulation::new(
        preset::chameleon_cluster_partitioned(2)
            .with_fault(FaultSpec::new().with_crash(1, SimTime::from_secs_f64(3.0))),
        seed,
    );
    let trace = workloads::splitwise(8.0, 8.0, seed, armed.pool());
    let text = armed.run(&trace).canonical_text();
    assert!(text.contains("\nfault engines_failed=1"));
}
