//! The unified GPU-memory economy end to end: the KV axis is a strict
//! opt-in overlay (observe arm behaviourally inert, off arm pinned by the
//! digest oracles), armed runs are bit-identical across cluster execution
//! modes, admission control eliminates requeue-front storms under
//! KV-bound load, and the decision trace carries the three KV events.

use chameleon_repro::core::{
    preset, sim::Simulation, workloads, ClusterExecution, KvSpec, SystemConfig, TraceSpec,
};
use chameleon_repro::models::GpuSpec;

const SEEDS: [u64; 2] = [3, 11];
const WORKER_COUNTS: [usize; 3] = [1, 2, 7];

/// A memory-starved A40: Llama-7B's weights leave roughly 1 GiB of KV
/// headroom, so the paper-scaled workloads are KV-bound at single-digit
/// RPS — exactly the regime the economy exists for.
fn tight_gpu() -> GpuSpec {
    GpuSpec::a40().with_memory_bytes(15 * (1 << 30))
}

fn run_text(cfg: SystemConfig, exec: ClusterExecution, seed: u64, rps: f64, secs: f64) -> String {
    let mut sim = Simulation::new(cfg.with_cluster_exec(exec), seed);
    let trace = workloads::splitwise(rps, secs, seed, sim.pool());
    let n = trace.len();
    let report = sim.run(&trace);
    report.assert_request_conservation(n);
    report.canonical_text()
}

/// Everything after the label line, minus the armed-only `kv` line — the
/// behavioural payload two arms must share when the economy only watches.
fn behavioural_lines(text: &str) -> String {
    text.lines()
        .skip(1)
        .filter(|l| !l.starts_with("kv "))
        .collect::<Vec<_>>()
        .join("\n")
}

/// The observe arm meters without intervening: per-request timings, cache
/// and PCIe traffic are byte-identical to the unmetered baseline — only
/// the label and the `kv` canonical line differ.
#[test]
fn observe_arm_is_behaviourally_inert() {
    for seed in SEEDS {
        let base = run_text(
            preset::chameleon().with_gpu(tight_gpu()),
            ClusterExecution::Serial,
            seed,
            8.0,
            20.0,
        );
        let observed = run_text(
            preset::chameleon_kv_observed().with_gpu(tight_gpu()),
            ClusterExecution::Serial,
            seed,
            8.0,
            20.0,
        );
        assert!(!base.contains("\nkv "), "unmetered run leaked a kv line");
        assert!(
            observed.contains("kv admission=false hybrid=false"),
            "seed {seed}: observe arm carries its meter line"
        );
        assert_eq!(
            behavioural_lines(&base),
            behavioural_lines(&observed),
            "seed {seed}: metering alone changed behaviour"
        );
    }
}

/// Armed cluster runs — admission refusing, proxies demoting and
/// restoring on every engine — are byte-identical whether the cluster
/// steps serially or on an epoch-synchronised worker pool, for any
/// worker count (CI additionally pins the auto path via
/// `CHAMELEON_WORKERS=2`).
#[test]
fn armed_runs_are_bit_identical_across_worker_counts() {
    for seed in SEEDS {
        let cfg = preset::chameleon_cluster_partitioned(4)
            .with_gpu(tight_gpu())
            .with_kv(KvSpec::new().with_pressure_threshold(0.5));
        let serial = run_text(cfg.clone(), ClusterExecution::Serial, seed, 24.0, 15.0);
        assert!(
            serial.contains("kv admission=true hybrid=true"),
            "seed {seed}: the economy never armed"
        );
        for workers in WORKER_COUNTS {
            let pooled = run_text(
                cfg.clone(),
                ClusterExecution::Parallel { workers },
                seed,
                24.0,
                15.0,
            );
            assert_eq!(
                pooled, serial,
                "seed {seed}, {workers} workers: armed run diverged from serial"
            );
        }
    }
}

/// The headline mechanism under KV-bound load: the optimistic baseline
/// unwinds admissions through requeue-front storms; the guarded arm
/// refuses them up front and suffers **zero** storms — without losing
/// work or blowing up tail latency.
#[test]
fn admission_control_eliminates_requeue_storms() {
    for seed in SEEDS {
        let run = |cfg: SystemConfig| {
            let mut sim = Simulation::new(cfg.with_gpu(tight_gpu()), seed);
            let trace = workloads::splitwise(8.0, 30.0, seed, sim.pool());
            let n = trace.len();
            let report = sim.run(&trace);
            assert_eq!(report.completed(), n, "lost requests");
            report
        };
        let observed = run(preset::chameleon_kv_observed());
        let guarded = run(preset::chameleon_kv_guarded());
        assert!(
            observed.kv.storms > 0,
            "seed {seed}: the baseline never stormed — load is not KV-bound \
             and the comparison is vacuous"
        );
        assert_eq!(
            guarded.kv.storms, 0,
            "seed {seed}: admission control let an optimistic unwind through"
        );
        assert!(
            guarded.kv.refused > 0,
            "seed {seed}: zero storms but also zero refusals — admission \
             control never engaged"
        );
        // Refusing early must not hurt the tail it exists to protect.
        assert!(
            guarded.p99_ttft() <= observed.p99_ttft() * 1.10,
            "seed {seed}: guarded P99 {:.3}s regressed past observed {:.3}s",
            guarded.p99_ttft(),
            observed.p99_ttft()
        );
    }
}

/// The decision trace carries the three KV events, and tracing an armed
/// run does not change its behaviour.
#[test]
fn kv_events_reach_the_trace() {
    let seed = 3;
    let cfg = || {
        preset::chameleon_kv_guarded()
            .with_gpu(tight_gpu())
            .with_kv(KvSpec::new().with_pressure_threshold(0.5))
    };
    let mut sim = Simulation::new(cfg().with_trace(TraceSpec::new()), seed);
    let trace = workloads::splitwise(8.0, 30.0, seed, sim.pool());
    let report = sim.run(&trace);
    let jsonl = report
        .trace
        .as_ref()
        .expect("traced run carries a log")
        .to_jsonl();
    assert!(jsonl.contains("\"ev\":\"admission_refused\""));
    assert!(jsonl.contains("\"ev\":\"kv_demoted\""));
    assert!(jsonl.contains("\"ev\":\"kv_restored\""));
    // Traced and untraced armed runs are behaviourally identical.
    let mut plain = Simulation::new(cfg(), seed);
    let trace = workloads::splitwise(8.0, 30.0, seed, plain.pool());
    assert_eq!(
        plain.run(&trace).canonical_text(),
        report.canonical_text(),
        "tracing changed an armed run"
    );
}
