//! End-to-end integration tests asserting the paper's *shape* claims.
//!
//! These run full simulations through the public API and check the
//! directional results the paper reports — who wins, and roughly where.
//! Absolute numbers are calibration-dependent and asserted only loosely.

use chameleon_repro::core::{preset, sim::Simulation, workloads};

fn p99(cfg: chameleon_repro::core::SystemConfig, rps: f64, secs: f64, seed: u64) -> f64 {
    let mut sim = Simulation::new(cfg, seed);
    let trace = workloads::splitwise(rps, secs, seed, sim.pool());
    sim.run(&trace).p99_ttft()
}

/// §5.2: past the baseline's knee, Chameleon's P99 TTFT is far below
/// S-LoRA's.
#[test]
fn chameleon_beats_slora_tail_at_high_load() {
    let rps = 11.0;
    let slora = p99(preset::slora(), rps, 120.0, 42);
    let cham = p99(preset::chameleon(), rps, 120.0, 42);
    assert!(
        cham < slora * 0.5,
        "Chameleon p99 {cham:.2}s vs S-LoRA {slora:.2}s"
    );
}

/// §5.2: at low load both systems comfortably meet the SLO.
#[test]
fn both_meet_slo_at_low_load() {
    for cfg in [preset::slora(), preset::chameleon()] {
        let mut sim = Simulation::new(cfg, 42);
        let trace = workloads::splitwise(6.0, 90.0, 42, sim.pool());
        let report = sim.run(&trace);
        assert_eq!(
            report.slo_violation_fraction(),
            0.0,
            "{} violated at low load",
            report.label
        );
    }
}

/// §5.2.4: both ablations land between S-LoRA and the full system in SLO
/// violations at high load.
#[test]
fn ablation_ordering_on_violations() {
    let rps = 11.5;
    let viol = |cfg| {
        let mut sim = Simulation::new(cfg, 42);
        let trace = workloads::splitwise(rps, 120.0, 42, sim.pool());
        sim.run(&trace).slo_violation_fraction()
    };
    let slora = viol(preset::slora());
    let no_cache = viol(preset::chameleon_no_cache());
    let no_sched = viol(preset::chameleon_no_sched());
    let full = viol(preset::chameleon());
    assert!(slora > 0.0, "baseline should violate at {rps} RPS");
    assert!(no_cache <= slora, "scheduler alone should not hurt");
    assert!(no_sched <= slora, "cache alone should not hurt");
    assert!(full <= slora * 0.5, "full system should be far better");
}

/// Figure 14: Chameleon's cache removes most adapter loads from the
/// critical path.
#[test]
fn cache_removes_loads_from_critical_path() {
    let run = |cfg| {
        let mut sim = Simulation::new(cfg, 42);
        let trace = workloads::splitwise(9.0, 120.0, 42, sim.pool());
        sim.run(&trace)
    };
    let slora = run(preset::slora());
    let cham = run(preset::chameleon());
    assert!(cham.hit_rate() > slora.hit_rate() + 0.05);
    assert!(cham.hit_rate() > 0.85, "hit rate {:.2}", cham.hit_rate());
    // Less PCIe traffic moved overall.
    assert!(cham.pcie_total_bytes < slora.pcie_total_bytes);
}

/// §3.3 / Figure 16: SJF starves large requests — their mean queueing
/// delay dwarfs the small class's — while Chameleon keeps all classes low.
#[test]
fn sjf_starves_large_requests() {
    let rps = 12.5;
    let run = |cfg| {
        let mut sim = Simulation::new(cfg, 42);
        let trace = workloads::splitwise(rps, 120.0, 42, sim.pool());
        sim.run(&trace)
    };
    let sjf = run(preset::slora_sjf());
    let by_class = sjf.queue_delay_by_class();
    let small = by_class[0].1;
    let large = by_class[2].1;
    assert!(
        large > 2.0 * small.max(0.01),
        "SJF large delay {large:.2}s vs small {small:.2}s"
    );
    let cham = run(preset::chameleon());
    let cham_small = cham.queue_delay_by_class()[0].1;
    assert!(
        cham_small < small + 0.5,
        "Chameleon should serve small requests at least as fast as SJF"
    );
}

/// §4.3.3: squashes stay rare (paper: at most 5 % of requests).
#[test]
fn squash_fraction_is_bounded() {
    let mut sim = Simulation::new(preset::chameleon(), 42);
    let trace = workloads::splitwise(12.0, 120.0, 42, sim.pool());
    let report = sim.run(&trace);
    assert!(
        report.squash_fraction() <= 0.05,
        "squash fraction {:.3}",
        report.squash_fraction()
    );
}

/// §5.4.4: Chameleon generalises to the WildChat/LMSYS-like traces with no
/// re-tuning.
#[test]
fn other_traces_without_retuning() {
    for maker in [workloads::wildchat, workloads::lmsys] {
        let mut slora = Simulation::new(preset::slora(), 42);
        let trace = maker(11.0, 120.0, 42, slora.pool());
        let s = slora.run(&trace);
        let mut cham = Simulation::new(preset::chameleon(), 42);
        let c = cham.run(&trace);
        assert!(
            c.p99_ttft() <= s.p99_ttft() * 1.05,
            "Chameleon {:.2}s vs S-LoRA {:.2}s",
            c.p99_ttft(),
            s.p99_ttft()
        );
    }
}

/// Determinism: identical seeds produce identical reports across the full
/// stack (workload → engine → metrics).
#[test]
fn full_stack_determinism() {
    let run = || {
        let mut sim = Simulation::new(preset::chameleon(), 1234);
        let trace = workloads::splitwise(10.0, 60.0, 1234, sim.pool());
        let r = sim.run(&trace);
        (
            r.completed(),
            format!("{:?}", r.ttft_summary()),
            r.cache_stats,
            r.pcie_total_bytes,
            r.squashes,
        )
    };
    assert_eq!(run(), run());
}

/// Conservation: every request in the trace completes exactly once, even
/// under overload with squashes and bypasses.
#[test]
fn no_request_lost_under_overload() {
    let mut sim = Simulation::new(preset::chameleon(), 7);
    let trace = workloads::splitwise(13.0, 90.0, 7, sim.pool());
    let n = trace.len();
    let report = sim.run(&trace);
    assert_eq!(report.completed(), n);
    assert_eq!(report.records.len(), n);
    // TTFT/E2E are well-formed for every record.
    for r in &report.records {
        let ttft = r.ttft().expect("complete");
        let e2e = r.e2e().expect("complete");
        assert!(e2e >= ttft, "{}: e2e {} < ttft {}", r.id, e2e, ttft);
    }
}
