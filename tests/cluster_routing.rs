//! Cross-crate integration tests for the cluster routing subsystem:
//! placement policy → adapter-cache behaviour, end to end through the
//! core simulation API.
//!
//! The headline scenario: a many-adapter fleet whose total adapter
//! working set exceeds any single engine's idle memory. Queue-depth-only
//! dispatch (the paper's join-shortest-queue) spreads every adapter's
//! requests over all engines, forcing each replica to cache the whole
//! (Zipf-skewed) working set and thrash; adapter-affinity routing
//! partitions the working set so each engine serves a stable shard.

use chameleon_repro::core::{preset, sim::Simulation, workloads, RouterPolicy, RunReport};
use chameleon_repro::models::PopularityDist;

/// A cluster scenario under heavy adapter-count pressure: 600 adapters
/// across 4 engines, Zipf-skewed popularity both across rank groups and
/// within them (the §5.4 "P-P" sensitivity shape).
fn run_cluster(policy: RouterPolicy) -> RunReport {
    let mut cfg = preset::chameleon_cluster(4)
        .with_adapters(600)
        .with_router(policy)
        .with_label(format!("routing-{}", policy.name()));
    cfg.rank_popularity = PopularityDist::power_law();
    let mut sim = Simulation::new(cfg, 77);
    let trace = workloads::lmsys(24.0, 60.0, 77, sim.pool());
    sim.run(&trace)
}

#[test]
fn adapter_affinity_beats_jsq_on_cache_hit_rate_under_zipf_skew() {
    let jsq = run_cluster(RouterPolicy::JoinShortestQueue);
    let affinity = run_cluster(RouterPolicy::AdapterAffinity);

    // Both drained the identical trace.
    assert_eq!(jsq.records.len(), affinity.records.len());
    assert!(
        jsq.completed() > 1000,
        "scenario too small to be meaningful"
    );
    assert_eq!(jsq.completed(), affinity.completed());

    // The headline claim: partitioning the adapter working set lifts the
    // adapter-cache hit rate over replicate-everywhere JSQ dispatch.
    assert!(
        affinity.hit_rate() > jsq.hit_rate(),
        "affinity hit rate {:.3} should beat JSQ {:.3}",
        affinity.hit_rate(),
        jsq.hit_rate()
    );

    // Placement-level affinity (dispatch lands where the adapter already
    // is) shows the same ordering.
    assert!(
        affinity.affinity_hit_rate() > jsq.affinity_hit_rate(),
        "placement affinity {:.3} vs {:.3}",
        affinity.affinity_hit_rate(),
        jsq.affinity_hit_rate()
    );

    // Routing metrics flowed through: policies are labelled, every
    // request was dispatched, spills only happen under affinity.
    assert_eq!(jsq.routing.policy, "join-shortest-queue");
    assert_eq!(affinity.routing.policy, "adapter-affinity");
    assert_eq!(jsq.routing.dispatched as usize, jsq.records.len());
    assert_eq!(jsq.spill_rate(), 0.0, "JSQ never spills");
    assert_eq!(jsq.routing.per_engine.len(), 4);

    // Affinity trades bounded imbalance for locality: rendezvous
    // placement concentrates adapters but load-aware spill keeps the
    // imbalance coefficient bounded and no engine starves.
    assert!(
        affinity.load_imbalance() < 1.0,
        "imbalance {:.3} out of control: {:?}",
        affinity.load_imbalance(),
        affinity.routing.per_engine
    );
    assert!(
        affinity.routing.per_engine.iter().all(|&c| c > 0),
        "an engine received nothing: {:?}",
        affinity.routing.per_engine
    );
    // Partitioned mode also moves strictly fewer adapter bytes over PCIe
    // than replicated JSQ (fewer cold loads and reloads).
    assert!(
        affinity.cache_stats.bytes_loaded < jsq.cache_stats.bytes_loaded,
        "affinity loaded {} bytes vs jsq {}",
        affinity.cache_stats.bytes_loaded,
        jsq.cache_stats.bytes_loaded
    );
}

#[test]
fn single_engine_runs_have_empty_routing_stats() {
    let mut sim = Simulation::new(preset::chameleon(), 3);
    let trace = workloads::splitwise(4.0, 15.0, 3, sim.pool());
    let report = sim.run(&trace);
    assert_eq!(report.routing.dispatched, 0);
    assert_eq!(report.affinity_hit_rate(), 0.0);
    assert_eq!(report.load_imbalance(), 0.0);
}
