//! Cluster-level request routing and placement (the §4.4 global scheduler,
//! generalised to heterogeneous, elastic fleets).
//!
//! Chameleon's data-parallel mode uses a fixed two-level scheduler: a
//! global dispatcher sends each arriving request to one engine
//! (join-shortest-queue in the paper's production-standard setup) and each
//! engine schedules locally, with the adapter cache *replicated* on every
//! engine. At fleet scale the global dispatch decision is the dominant
//! lever for adapter locality: routing on queue depth alone forces every
//! engine to cache every popular adapter, while adapter-aware placement
//! lets the fleet *partition* the adapter working set.
//!
//! This crate turns that decision into a first-class subsystem — and,
//! unlike the paper's fixed fleet, one that survives the fleet changing
//! underneath it:
//!
//! * [`EngineId`] — stable engine identity. Routing keys off identity,
//!   not position, so adding or draining an engine never renumbers the
//!   survivors and rendezvous assignments for them are untouched.
//! * [`EngineSnapshot`] — the per-engine state a router sees at each
//!   arrival: identity, capacity weight, queue depth, outstanding
//!   resource tokens, free memory, and the resident-adapter set.
//! * [`Router`] — the placement policy trait: request + live snapshots →
//!   [`RouteDecision`].
//! * [`policies`] — the built-in policies:
//!   [`RoundRobin`](policies::RoundRobin),
//!   [`JoinShortestQueue`](policies::JoinShortestQueue) (the paper's
//!   global scheduler, extracted from the cluster unchanged),
//!   [`PowerOfTwoChoices`](policies::PowerOfTwoChoices), and
//!   [`AdapterAffinity`](policies::AdapterAffinity) — capacity-weighted
//!   rendezvous hashing on the adapter id (wider/TP-larger engines win
//!   proportional shards) with load-aware spill to the adapter's stable
//!   *second* rendezvous choice (2-replica partitioning).
//! * [`policies::rendezvous_home`] / [`policies::rendezvous_top2`] — the
//!   pure weighted-rendezvous functions, exposed so tests and capacity
//!   planners can reason about placement and the minimal-re-homing
//!   guarantee directly.
//! * [`RouterPolicy`] — a plain-data policy selector so routing is a
//!   configurable experiment axis next to scheduler and eviction policy.
//!
//! The engine crate's `Cluster` delegates every dispatch here; routing
//! outcome statistics (per-engine dispatch counts keyed by [`EngineId`],
//! affinity hit rate, spill rate, load imbalance, engines added/drained,
//! adapters re-homed) are tracked by the cluster in
//! `chameleon_metrics::RoutingStats` and flow into run reports.

pub mod policies;
pub mod snapshot;

pub use policies::{
    AdapterAffinity, JoinShortestQueue, PowerOfTwoChoices, RoundRobin, SpillTarget,
};
pub use snapshot::{EngineId, EngineSnapshot};

use chameleon_simcore::SimDuration;
use chameleon_workload::Request;

/// How sensitive a policy's placement decisions are to snapshot age — the
/// contract that lets the cluster coalesce consecutive arrivals into one
/// dispatch barrier instead of refreshing `snap_buf` per request.
///
/// The coordinator consults this once per run (policies never change
/// class mid-run) and sizes arrival batches accordingly:
///
/// * [`StateIndependent`](StalenessClass::StateIndependent) — placement
///   reads no load fields (queue depth, outstanding tokens, free memory,
///   TTFT estimates), only stable facts that change exclusively at true
///   barriers: fleet membership, identities, and capacity weights. Whole
///   arrival batches route from one snapshot generation with zero
///   refreshes and the result is byte-identical to per-arrival dispatch.
/// * [`BoundedStaleness`](StalenessClass::BoundedStaleness) — placement
///   reads load fields, so routing from a cached generation admits
///   bounded error: at most `max_batch` arrivals (and no more than
///   `max_age` of trace time) are placed between refreshes. Because the
///   coordinator echoes its own placements into the cached snapshots
///   (queue depth +1, outstanding tokens += request estimate per
///   placement), the only state a batch member cannot see is work that
///   *completed* since the refresh — so the cached queue depth
///   over-counts the live engine by at most the batch size, and never
///   under-counts it. Per-engine queue-depth error is therefore bounded
///   by the declared batch budget (property-tested in
///   `policies::properties`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StalenessClass {
    /// Placement depends only on fleet membership and capacity weights;
    /// batches are unbounded (the next non-coalescible barrier ends them).
    StateIndependent,
    /// Placement reads load fields; refresh the snapshots after
    /// `max_batch` placements or `max_age` of trace time, whichever
    /// comes first.
    BoundedStaleness {
        /// Maximum placements per snapshot generation.
        max_batch: u32,
        /// Maximum trace-time age of a snapshot generation.
        max_age: SimDuration,
    },
}

impl StalenessClass {
    /// Default staleness budget for load-aware policies: small enough
    /// that queue-depth error stays well inside one scheduling quantum,
    /// large enough to amortise the barrier.
    pub const DEFAULT_BOUNDED: StalenessClass = StalenessClass::BoundedStaleness {
        max_batch: 32,
        max_age: SimDuration::from_millis(50),
    };
}

/// Where a request was placed, and whether the placement was a spill
/// (an affinity router diverted the request away from its home engine
/// because the home was saturated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteDecision {
    /// Position of the chosen engine in the snapshot slice handed to
    /// [`Router::route`] (the live engine listing, *not* an [`EngineId`] —
    /// the caller owns the position → identity mapping).
    pub engine: usize,
    /// True when an affinity policy diverted the request off its home
    /// engine for load reasons. Always false for affinity-free policies.
    pub spilled: bool,
}

impl RouteDecision {
    /// A non-spill placement on the engine at `engine` in the live
    /// listing.
    pub fn to(engine: usize) -> Self {
        RouteDecision {
            engine,
            spilled: false,
        }
    }
}

/// A cluster-level placement policy.
///
/// Implementations may keep internal state (round-robin cursors, RNG
/// streams, load estimates); the cluster calls [`route`](Router::route)
/// exactly once per arriving request, in arrival order, passing snapshots
/// of the engines that may accept work (draining engines are excluded).
pub trait Router {
    /// Chooses the engine for `req` given one snapshot per live engine.
    ///
    /// `engines` is never empty; the returned
    /// [`RouteDecision::engine`] indexes into it.
    fn route(&mut self, req: &Request, engines: &[EngineSnapshot]) -> RouteDecision;

    /// Whether [`route`](Router::route) reads
    /// [`EngineSnapshot::resident_adapters`]. Snapshot construction skips
    /// the per-engine residency-set copy when this is `false` (the
    /// default) — none of the built-in policies need it (rendezvous
    /// hashing derives the home engine from the adapter id alone), and
    /// copying every engine's resident set on every arrival would make
    /// dispatch cost grow with the adapter pool.
    fn needs_residency(&self) -> bool {
        false
    }

    /// Whether this policy assigns adapters stable rendezvous homes.
    /// The cluster uses this to account adapter re-homing when the fleet
    /// grows or shrinks; queue-depth-only policies have no homes, so the
    /// migration counters stay zero for them.
    fn uses_affinity(&self) -> bool {
        false
    }

    /// How stale a snapshot this policy tolerates (see [`StalenessClass`]).
    /// The conservative default declares a small bounded budget; policies
    /// whose placement ignores load fields override this to
    /// [`StalenessClass::StateIndependent`] and batch without limit.
    fn staleness(&self) -> StalenessClass {
        StalenessClass::DEFAULT_BOUNDED
    }

    /// Policy label for reports.
    fn name(&self) -> &'static str;
}

/// Plain-data selector for the built-in policies — the configuration-level
/// counterpart of [`Router`], usable as an experiment sweep axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouterPolicy {
    /// Cycle through engines in order.
    RoundRobin,
    /// Least outstanding resource tokens (the paper's global scheduler).
    JoinShortestQueue,
    /// Sample two engines, keep the less loaded one.
    PowerOfTwoChoices,
    /// Weighted-rendezvous-hash the adapter to a home engine; spill to its
    /// second rendezvous choice when the home is saturated.
    AdapterAffinity,
    /// Pure weighted-rendezvous placement — [`AdapterAffinity`] with the
    /// spill branch disabled. Placement never reads load state, so it is
    /// [`StalenessClass::StateIndependent`] and batches without limit.
    AdapterAffinityNoSpill,
}

impl RouterPolicy {
    /// Every built-in policy, in presentation order.
    pub const ALL: [RouterPolicy; 5] = [
        RouterPolicy::RoundRobin,
        RouterPolicy::JoinShortestQueue,
        RouterPolicy::PowerOfTwoChoices,
        RouterPolicy::AdapterAffinity,
        RouterPolicy::AdapterAffinityNoSpill,
    ];

    /// Instantiates the policy. `seed` feeds the randomised policies'
    /// private RNG streams; deterministic policies ignore it.
    pub fn build(self, seed: u64) -> Box<dyn Router> {
        match self {
            RouterPolicy::RoundRobin => Box::new(RoundRobin::new()),
            RouterPolicy::JoinShortestQueue => Box::new(JoinShortestQueue::new()),
            RouterPolicy::PowerOfTwoChoices => Box::new(PowerOfTwoChoices::new(seed)),
            RouterPolicy::AdapterAffinity => Box::new(AdapterAffinity::new()),
            RouterPolicy::AdapterAffinityNoSpill => Box::new(AdapterAffinity::without_spill()),
        }
    }

    /// Policy label (matches the built Router's `name()`).
    pub fn name(self) -> &'static str {
        match self {
            RouterPolicy::RoundRobin => "round-robin",
            RouterPolicy::JoinShortestQueue => "join-shortest-queue",
            RouterPolicy::PowerOfTwoChoices => "power-of-two",
            RouterPolicy::AdapterAffinity => "adapter-affinity",
            RouterPolicy::AdapterAffinityNoSpill => "adapter-affinity-nospill",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_models::{AdapterId, AdapterRank};
    use chameleon_simcore::SimTime;
    use chameleon_workload::RequestId;

    fn req(id: u64, adapter: u32) -> Request {
        Request::new(
            RequestId(id),
            SimTime::ZERO,
            64,
            8,
            AdapterId(adapter),
            AdapterRank::new(8),
        )
    }

    fn idle_snapshots(n: usize) -> Vec<EngineSnapshot> {
        (0..n)
            .map(|i| EngineSnapshot::idle(EngineId(i as u32)))
            .collect()
    }

    #[test]
    fn policy_names_match_router_names() {
        for p in RouterPolicy::ALL {
            assert_eq!(p.name(), p.build(1).name());
        }
    }

    #[test]
    fn every_policy_routes_in_bounds() {
        let snaps = idle_snapshots(5);
        for p in RouterPolicy::ALL {
            let mut r = p.build(7);
            for i in 0..200 {
                let d = r.route(&req(i, (i % 17) as u32), &snaps);
                assert!(d.engine < 5, "{} routed out of bounds", r.name());
            }
        }
    }

    #[test]
    fn single_engine_cluster_is_trivial() {
        let snaps = idle_snapshots(1);
        for p in RouterPolicy::ALL {
            let mut r = p.build(3);
            let d = r.route(&req(0, 4), &snaps);
            assert_eq!(d.engine, 0);
            assert!(!d.spilled);
        }
    }

    #[test]
    fn only_affinity_declares_homes() {
        for p in RouterPolicy::ALL {
            let expects =
                p == RouterPolicy::AdapterAffinity || p == RouterPolicy::AdapterAffinityNoSpill;
            assert_eq!(p.build(1).uses_affinity(), expects, "{}", p.name());
        }
    }

    #[test]
    fn staleness_classes_match_what_each_policy_reads() {
        for p in RouterPolicy::ALL {
            let state_independent = matches!(
                p,
                RouterPolicy::RoundRobin | RouterPolicy::AdapterAffinityNoSpill
            );
            let expects = if state_independent {
                StalenessClass::StateIndependent
            } else {
                StalenessClass::DEFAULT_BOUNDED
            };
            assert_eq!(p.build(1).staleness(), expects, "{}", p.name());
        }
    }

    #[test]
    fn bounded_budget_is_positive() {
        let StalenessClass::BoundedStaleness { max_batch, max_age } =
            StalenessClass::DEFAULT_BOUNDED
        else {
            panic!("default budget must be bounded");
        };
        assert!(max_batch > 0);
        assert!(!max_age.is_zero());
    }
}
