//! The per-engine state snapshot routers decide on.

use chameleon_models::AdapterId;
use std::collections::HashSet;

/// Stable identity of one engine across the lifetime of a cluster.
///
/// Unlike a position in a `Vec<Engine>`, an `EngineId` survives fleet
/// changes: engines added later get fresh ids, and draining an engine
/// retires its id without renumbering the survivors. Everything
/// identity-sensitive — rendezvous placement, routing statistics,
/// re-homing accounting — keys off this id, which is what makes the
/// rendezvous minimal-re-homing guarantee hold across an elastic fleet:
/// the hash of `(adapter, id)` is unchanged for every surviving engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EngineId(pub u32);

impl std::fmt::Display for EngineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Immutable view of one engine at a dispatch instant.
///
/// Built by the engine's introspection API (`Engine::snapshot`) and handed
/// to [`Router::route`](crate::Router::route) once per arrival. Routers see
/// only the *live* (non-draining) engines, in registration order; the
/// fields are the signals the built-in policies need, and richer policies
/// can combine them freely.
///
/// Snapshots are collected at the cluster's dispatch *barrier*: every
/// engine has processed exactly its events before the arrival instant,
/// whether the engines were stepped serially or on worker threads — so
/// the snapshot set (contents *and* order) is identical under both
/// cluster execution modes, which is what keeps routing decisions, and
/// with them whole runs, bit-identical.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    /// Stable engine identity (not a position — see [`EngineId`]).
    pub id: EngineId,
    /// Relative serving capacity of this engine (any consistent scale;
    /// rendezvous scores are scale-invariant). Heterogeneous fleets derive
    /// it from total GPU memory, so a TP4 engine weighs 4× a TP1 engine
    /// and wins a proportionally larger adapter shard.
    pub weight: f64,
    /// Requests waiting in the engine's local scheduler queue.
    pub queue_depth: usize,
    /// Requests in the running batch.
    pub running: usize,
    /// Outstanding resource tokens (running + queued) — the paper's
    /// join-shortest-queue signal.
    pub outstanding_tokens: u64,
    /// Free GPU memory in bytes, counting evictable idle cache bytes.
    pub free_memory_bytes: u64,
    /// Estimated TTFT, in seconds, of a request dispatched to this engine
    /// right now: the engine's outstanding backlog priced through its
    /// isolated-latency oracle (per-token decode cost × outstanding
    /// tokens). The SLO-aware autoscaler compares this against the TTFT
    /// SLO to treat a saturated engine as a violation *in the making*,
    /// before the queue-depth thresholds trip.
    pub est_ttft_secs: f64,
    /// Adapters currently resident on the engine (cached, in use, or in
    /// flight from host memory). Only populated for routers whose
    /// [`needs_residency`](crate::Router::needs_residency) returns `true`;
    /// empty otherwise, so queue-depth-only policies pay nothing for it.
    pub resident_adapters: HashSet<AdapterId>,
    /// Rack (correlated fault domain) this engine lives in. `None` — the
    /// default — means the engine is its own singleton domain, which
    /// makes domain-aware placement coincide exactly with the
    /// topology-blind policy. Only stamped by the cluster when a fleet
    /// topology with anti-affinity is attached.
    pub rack: Option<u32>,
}

impl EngineSnapshot {
    /// Snapshot of a completely idle unit-weight engine (useful in tests).
    pub fn idle(id: EngineId) -> Self {
        EngineSnapshot {
            id,
            weight: 1.0,
            queue_depth: 0,
            running: 0,
            outstanding_tokens: 0,
            free_memory_bytes: u64::MAX,
            est_ttft_secs: 0.0,
            resident_adapters: HashSet::new(),
            rack: None,
        }
    }

    /// Idle snapshot with an explicit capacity weight.
    pub fn idle_weighted(id: EngineId, weight: f64) -> Self {
        EngineSnapshot {
            weight,
            ..EngineSnapshot::idle(id)
        }
    }

    /// True when the adapter's weights are already on this engine.
    pub fn has_adapter(&self, id: AdapterId) -> bool {
        self.resident_adapters.contains(&id)
    }

    /// Total in-flight request count (queued + running).
    pub fn in_flight(&self) -> usize {
        self.queue_depth + self.running
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_snapshot_is_empty() {
        let s = EngineSnapshot::idle(EngineId(3));
        assert_eq!(s.id, EngineId(3));
        assert_eq!(s.weight, 1.0);
        assert_eq!(s.in_flight(), 0);
        assert!(!s.has_adapter(AdapterId(0)));
    }

    #[test]
    fn residency_query() {
        let mut s = EngineSnapshot::idle(EngineId(0));
        s.resident_adapters.insert(AdapterId(9));
        assert!(s.has_adapter(AdapterId(9)));
        assert!(!s.has_adapter(AdapterId(8)));
    }

    #[test]
    fn engine_id_displays_compactly() {
        assert_eq!(EngineId(7).to_string(), "e7");
    }
}
