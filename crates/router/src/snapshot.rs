//! The per-engine state snapshot routers decide on.

use chameleon_models::AdapterId;
use std::collections::HashSet;

/// Immutable view of one engine at a dispatch instant.
///
/// Built by the engine's introspection API (`Engine::snapshot`) and handed
/// to [`Router::route`](crate::Router::route) once per arrival. The fields
/// are the signals the built-in policies need; richer policies can combine
/// them freely.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    /// Engine index within the cluster.
    pub engine: usize,
    /// Requests waiting in the engine's local scheduler queue.
    pub queue_depth: usize,
    /// Requests in the running batch.
    pub running: usize,
    /// Outstanding resource tokens (running + queued) — the paper's
    /// join-shortest-queue signal.
    pub outstanding_tokens: u64,
    /// Free GPU memory in bytes, counting evictable idle cache bytes.
    pub free_memory_bytes: u64,
    /// Adapters currently resident on the engine (cached, in use, or in
    /// flight from host memory). Only populated for routers whose
    /// [`needs_residency`](crate::Router::needs_residency) returns `true`;
    /// empty otherwise, so queue-depth-only policies pay nothing for it.
    pub resident_adapters: HashSet<AdapterId>,
}

impl EngineSnapshot {
    /// Snapshot of a completely idle engine (useful in tests).
    pub fn idle(engine: usize) -> Self {
        EngineSnapshot {
            engine,
            queue_depth: 0,
            running: 0,
            outstanding_tokens: 0,
            free_memory_bytes: u64::MAX,
            resident_adapters: HashSet::new(),
        }
    }

    /// True when the adapter's weights are already on this engine.
    pub fn has_adapter(&self, id: AdapterId) -> bool {
        self.resident_adapters.contains(&id)
    }

    /// Total in-flight request count (queued + running).
    pub fn in_flight(&self) -> usize {
        self.queue_depth + self.running
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_snapshot_is_empty() {
        let s = EngineSnapshot::idle(3);
        assert_eq!(s.engine, 3);
        assert_eq!(s.in_flight(), 0);
        assert!(!s.has_adapter(AdapterId(0)));
    }

    #[test]
    fn residency_query() {
        let mut s = EngineSnapshot::idle(0);
        s.resident_adapters.insert(AdapterId(9));
        assert!(s.has_adapter(AdapterId(9)));
        assert!(!s.has_adapter(AdapterId(8)));
    }
}
