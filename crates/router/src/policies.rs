//! The built-in placement policies.

use crate::snapshot::{EngineId, EngineSnapshot};
use crate::{RouteDecision, Router, StalenessClass};
use chameleon_models::AdapterId;
use chameleon_simcore::SimRng;
use chameleon_workload::Request;

/// Cycles through engines in listing order, ignoring all state. The
/// baseline every load-aware policy must beat.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Creates a round-robin router starting at the first listed engine.
    pub fn new() -> Self {
        RoundRobin { next: 0 }
    }
}

impl Router for RoundRobin {
    fn route(&mut self, _req: &Request, engines: &[EngineSnapshot]) -> RouteDecision {
        let engine = self.next % engines.len();
        self.next = (engine + 1) % engines.len();
        RouteDecision::to(engine)
    }

    /// The cursor reads only the fleet *size*, which changes exclusively
    /// at true (non-coalescible) barriers — no load field is consulted.
    fn staleness(&self) -> StalenessClass {
        StalenessClass::StateIndependent
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// The paper's global scheduler (§4.4): dispatch to the engine with the
/// least outstanding resource tokens at arrival. Ties break toward the
/// first listed engine, exactly as the original inlined dispatcher did.
#[derive(Debug, Default)]
pub struct JoinShortestQueue;

impl JoinShortestQueue {
    /// Creates the JSQ router.
    pub fn new() -> Self {
        JoinShortestQueue
    }
}

impl Router for JoinShortestQueue {
    fn route(&mut self, _req: &Request, engines: &[EngineSnapshot]) -> RouteDecision {
        let engine = engines
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.outstanding_tokens)
            .map(|(i, _)| i)
            .expect("non-empty cluster");
        RouteDecision::to(engine)
    }

    /// Reads `outstanding_tokens`, so it tolerates only the default
    /// bounded staleness budget: between refreshes the cached snapshots
    /// drift from the live engines by at most the batch size per engine
    /// (the coordinator echoes its own placements into the cache).
    fn staleness(&self) -> StalenessClass {
        StalenessClass::DEFAULT_BOUNDED
    }

    fn name(&self) -> &'static str {
        "join-shortest-queue"
    }
}

/// Power-of-two-choices: sample two distinct engines uniformly, keep the
/// one with fewer outstanding tokens. O(1) state reads per dispatch with
/// near-JSQ balance — the classic scalable alternative when probing every
/// engine is too expensive.
#[derive(Debug)]
pub struct PowerOfTwoChoices {
    rng: SimRng,
}

impl PowerOfTwoChoices {
    /// Creates the router with its own deterministic RNG stream.
    pub fn new(seed: u64) -> Self {
        let mut root = SimRng::seed(seed);
        PowerOfTwoChoices {
            rng: root.fork("power-of-two-router"),
        }
    }
}

impl Router for PowerOfTwoChoices {
    fn route(&mut self, _req: &Request, engines: &[EngineSnapshot]) -> RouteDecision {
        let n = engines.len();
        if n == 1 {
            return RouteDecision::to(0);
        }
        let a = self.rng.below(n as u64) as usize;
        let mut b = self.rng.below((n - 1) as u64) as usize;
        if b >= a {
            b += 1;
        }
        let engine = if engines[b].outstanding_tokens < engines[a].outstanding_tokens
            || (engines[b].outstanding_tokens == engines[a].outstanding_tokens && b < a)
        {
            b
        } else {
            a
        };
        RouteDecision::to(engine)
    }

    /// Samples `outstanding_tokens` of its pair, so it declares the same
    /// bounded budget as JSQ.
    fn staleness(&self) -> StalenessClass {
        StalenessClass::DEFAULT_BOUNDED
    }

    fn name(&self) -> &'static str {
        "power-of-two"
    }
}

/// Where an overloaded adapter-affinity home diverts its requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillTarget {
    /// The adapter's *second* rendezvous choice: every adapter gets a
    /// stable fallback engine, so spilled load forms a 2-replica partition
    /// instead of scattering across whichever engine happens to be idle.
    SecondChoice,
    /// The globally least-loaded engine — the pre-weighted-rendezvous
    /// behaviour, kept for behaviour-preservation oracles and comparison.
    LeastLoaded,
}

/// Adapter-affinity placement: weighted rendezvous (highest-random-weight)
/// hashing maps each adapter to a *home* engine, concentrating an
/// adapter's requests so its weights stay hot on one replica — the fleet
/// partitions the adapter working set instead of replicating it. When the
/// home engine is saturated relative to the spill target, the request
/// *spills* there instead, trading a likely cache miss for load balance;
/// with the default [`SpillTarget::SecondChoice`] even the spills land on
/// one stable fallback engine per adapter.
///
/// Rendezvous hashing over stable [`EngineId`]s gives the elasticity
/// property the cluster needs: when an engine joins, only the adapters
/// whose top-scoring engine is the new one move, and when an engine
/// drains, only the adapters it was home to move; every other assignment
/// is untouched (no global reshuffle). Capacity weights make unequal
/// engines (TP4 next to TP1, A100 next to A40) win proportional shards.
#[derive(Debug)]
pub struct AdapterAffinity {
    /// Spill when `home_load > spill_slack + spill_factor × target_load`.
    spill_factor: f64,
    /// Absolute token slack before the factor test can trigger.
    spill_slack: u64,
    /// Where spilled requests go.
    spill_target: SpillTarget,
    /// When false, the spill branch is disabled entirely: placement is
    /// pure weighted rendezvous on `(id, weight)` and never reads a load
    /// field, making the policy state-independent.
    spill: bool,
}

impl Default for AdapterAffinity {
    fn default() -> Self {
        Self::new()
    }
}

impl AdapterAffinity {
    /// Default spill thresholds: tolerate up to 2× the spill target's load
    /// plus 4096 tokens of slack before abandoning affinity; spill to the
    /// adapter's second rendezvous choice.
    pub fn new() -> Self {
        AdapterAffinity {
            spill_factor: 2.0,
            spill_slack: 4096,
            spill_target: SpillTarget::SecondChoice,
            spill: true,
        }
    }

    /// Pure weighted-rendezvous placement: every request goes to its
    /// adapter's home engine unconditionally. Placement depends only on
    /// fleet identity and capacity weights, so the policy declares
    /// [`StalenessClass::StateIndependent`] and whole arrival batches
    /// route from a single snapshot generation byte-identically to
    /// per-arrival dispatch.
    pub fn without_spill() -> Self {
        AdapterAffinity {
            spill: false,
            ..AdapterAffinity::new()
        }
    }

    /// Overrides the spill thresholds.
    pub fn with_spill(spill_factor: f64, spill_slack: u64) -> Self {
        assert!(
            spill_factor >= 1.0,
            "factor {spill_factor} < 1 always spills"
        );
        AdapterAffinity {
            spill_factor,
            spill_slack,
            ..AdapterAffinity::new()
        }
    }

    /// Overrides where spilled requests are diverted.
    pub fn with_spill_target(mut self, target: SpillTarget) -> Self {
        self.spill_target = target;
        self
    }
}

impl Router for AdapterAffinity {
    fn route(&mut self, req: &Request, engines: &[EngineSnapshot]) -> RouteDecision {
        // Racks are `None` unless the cluster stamped a fault-domain
        // topology, in which case the spill fallback is anti-affine: the
        // best-ranked engine outside the home's rack.
        let (home, second) = rendezvous_top2_domains(
            req.adapter(),
            engines.iter().map(|s| (s.id, s.weight, s.rack)),
        );
        if !self.spill {
            return RouteDecision::to(home);
        }
        let target = match self.spill_target {
            SpillTarget::SecondChoice => second,
            SpillTarget::LeastLoaded => engines
                .iter()
                .enumerate()
                .map(|(i, s)| (i, s.outstanding_tokens))
                .min_by_key(|&(_, load)| load)
                .map(|(i, _)| i),
        };
        let Some(target) = target.filter(|&t| t != home) else {
            return RouteDecision::to(home);
        };
        let home_load = engines[home].outstanding_tokens;
        let target_load = engines[target].outstanding_tokens;
        let threshold = self.spill_slack
            + (self.spill_factor * target_load as f64).min(u64::MAX as f64 / 2.0) as u64;
        if home_load > threshold {
            RouteDecision {
                engine: target,
                spilled: true,
            }
        } else {
            RouteDecision::to(home)
        }
    }

    fn uses_affinity(&self) -> bool {
        true
    }

    /// With spill enabled the policy reads `outstanding_tokens` and keeps
    /// the conservative bounded budget; with spill disabled it is pure
    /// rendezvous and state-independent.
    fn staleness(&self) -> StalenessClass {
        if self.spill {
            StalenessClass::DEFAULT_BOUNDED
        } else {
            StalenessClass::StateIndependent
        }
    }

    fn name(&self) -> &'static str {
        if self.spill {
            "adapter-affinity"
        } else {
            "adapter-affinity-nospill"
        }
    }
}

/// The weighted-rendezvous home of `adapter` over `(id, weight)` pairs:
/// the position (in iteration order) of the highest-scoring engine.
///
/// Pure in the pair set: `home` is independent of listing order up to the
/// returned position, of any engine *not* listed, and of uniform weight
/// rescaling. Growing or shrinking the set only remaps adapters whose
/// top choice is the added/removed engine — the minimal-re-homing
/// guarantee the elastic cluster asserts end to end.
///
/// # Panics
///
/// Panics if `engines` is empty or any weight is not positive.
pub fn rendezvous_home<I>(adapter: AdapterId, engines: I) -> usize
where
    I: IntoIterator<Item = (EngineId, f64)>,
{
    rendezvous_top2(adapter, engines).0
}

/// The top two weighted-rendezvous choices of `adapter`: the home
/// position and, when more than one engine is listed, the stable
/// second-choice position (the spill fallback of 2-replica partitioning).
///
/// # Panics
///
/// Panics if `engines` is empty or any weight is not positive.
pub fn rendezvous_top2<I>(adapter: AdapterId, engines: I) -> (usize, Option<usize>)
where
    I: IntoIterator<Item = (EngineId, f64)>,
{
    rendezvous_top2_domains(adapter, engines.into_iter().map(|(id, w)| (id, w, None)))
}

/// Domain-aware top two: the home is the plain weighted-rendezvous argmax
/// (identical to [`rendezvous_top2`] — homes never move when a topology is
/// attached, preserving minimal re-homing), but the second choice prefers
/// the best-ranked engine *outside the home's fault domain* whenever one
/// exists. Engines racked `None` are singleton domains, so an all-`None`
/// set reproduces [`rendezvous_top2`] exactly; a single-domain fleet
/// degrades gracefully to the plain (same-domain) second choice.
///
/// # Panics
///
/// Panics if `engines` is empty or any weight is not positive.
pub fn rendezvous_top2_domains<I>(adapter: AdapterId, engines: I) -> (usize, Option<usize>)
where
    I: IntoIterator<Item = (EngineId, f64, Option<u32>)>,
{
    // Score = weight / -ln(h), h ∈ (0,1) from the 64-bit mix — the
    // standard weighted-HRW construction: an engine's win probability is
    // proportional to its weight, and scores for surviving engines are
    // unchanged when the set changes. Ties (possible only through f64
    // mantissa collapse of nearby hashes) break on the raw hash, which
    // makes the equal-weight case order engines *exactly* like the
    // pre-weight refactor's raw-u64 argmax.
    let beats = |a: &(usize, f64, u64), b: &(usize, f64, u64)| {
        // Later entries win exact ties, matching `Iterator::max_by_key`
        // over the raw hashes.
        (a.1, a.2) >= (b.1, b.2)
    };
    // `None` racks are singleton domains: only two engines in the *same*
    // `Some` rack count as co-located.
    let same_domain = |a: Option<u32>, b: Option<u32>| a.is_some() && a == b;
    let mut best: Option<((usize, f64, u64), Option<u32>)> = None;
    // Plain runner-up (the topology-blind second) — the fallback when no
    // other domain exists.
    let mut second: Option<(usize, f64, u64)> = None;
    // Best candidate outside `best`'s domain. When the overall best moves
    // to a *different* domain the dethroned best dominates every other
    // seen candidate and is itself eligible, so it takes this slot; when
    // the best is merely replaced within its own domain the eligible set
    // is unchanged.
    let mut other: Option<(usize, f64, u64)> = None;
    let mut n = 0usize;
    for (pos, (id, weight, rack)) in engines.into_iter().enumerate() {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "engine {id} has non-positive weight {weight}"
        );
        n += 1;
        let raw = rendezvous_score(adapter, id);
        // (raw >> 11) + 0.5 maps the hash into (0, 2^53): h never hits 0
        // or 1, so -ln(h) is finite and positive.
        let h = ((raw >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64);
        let score = weight / -h.ln();
        let cand = (pos, score, raw);
        match best {
            Some((b, dom)) if !beats(&cand, &b) => {
                if second.is_none_or(|s| beats(&cand, &s)) {
                    second = Some(cand);
                }
                if !same_domain(rack, dom) && other.is_none_or(|o| beats(&cand, &o)) {
                    other = Some(cand);
                }
            }
            Some((b, dom)) => {
                second = Some(b);
                if !same_domain(rack, dom) {
                    other = Some(b);
                }
                best = Some((cand, rack));
            }
            None => {
                best = Some((cand, rack));
            }
        }
    }
    assert!(n > 0, "empty cluster");
    (best.expect("non-empty").0 .0, other.or(second).map(|s| s.0))
}

/// Where predictive pre-replication may warm an adapter: its **second**
/// weighted-rendezvous choice — the exact engine
/// [`AdapterAffinity`] spills to when the home saturates, so a warmed
/// replica is guaranteed to be where the spill lands. Returns `None` for
/// a single-engine set (there is nowhere to replicate to).
///
/// By construction this never returns the adapter's home: the control
/// plane can only ever add a warm *second* replica, never re-home a
/// primary — the property the cluster's pre-replication tests pin.
///
/// # Panics
///
/// Panics if `engines` is empty or any weight is not positive.
pub fn prereplication_target<I>(adapter: AdapterId, engines: I) -> Option<usize>
where
    I: IntoIterator<Item = (EngineId, f64)>,
{
    rendezvous_top2(adapter, engines).1
}

/// Domain-aware pre-replication target: like [`prereplication_target`],
/// but over `(id, weight, rack)` triples — the warm replica prefers the
/// best-ranked engine *outside the home's fault domain*, so a whole-rack
/// failure never takes the primary and its warm copy together. Falls back
/// to the plain second choice when the fleet is single-domain, and is
/// byte-identical to [`prereplication_target`] when every rack is `None`.
///
/// # Panics
///
/// Panics if `engines` is empty or any weight is not positive.
pub fn prereplication_target_domains<I>(adapter: AdapterId, engines: I) -> Option<usize>
where
    I: IntoIterator<Item = (EngineId, f64, Option<u32>)>,
{
    rendezvous_top2_domains(adapter, engines).1
}

/// The HRW score of `(adapter, engine)` — a stateless 64-bit mix keyed on
/// the engine's stable identity.
fn rendezvous_score(adapter: AdapterId, engine: EngineId) -> u64 {
    let mut z =
        (u64::from(adapter.0) << 32) ^ u64::from(engine.0).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_models::AdapterRank;
    use chameleon_simcore::SimTime;
    use chameleon_workload::RequestId;
    use std::collections::HashSet;

    fn req(id: u64, adapter: u32) -> Request {
        Request::new(
            RequestId(id),
            SimTime::ZERO,
            64,
            8,
            AdapterId(adapter),
            AdapterRank::new(8),
        )
    }

    fn uniform(n: usize) -> Vec<(EngineId, f64)> {
        (0..n).map(|i| (EngineId(i as u32), 1.0)).collect()
    }

    fn snaps_with_loads(loads: &[u64]) -> Vec<EngineSnapshot> {
        loads
            .iter()
            .enumerate()
            .map(|(i, &load)| EngineSnapshot {
                outstanding_tokens: load,
                ..EngineSnapshot::idle(EngineId(i as u32))
            })
            .collect()
    }

    /// The pre-refactor unweighted rendezvous: raw-u64 argmax over engine
    /// positions 0..n. The weighted function with uniform weights must
    /// reproduce it exactly (the identity/weight refactor is
    /// behaviour-preserving for fixed homogeneous fleets).
    fn legacy_home(adapter: AdapterId, n_engines: usize) -> usize {
        (0..n_engines)
            .max_by_key(|&e| rendezvous_score(adapter, EngineId(e as u32)))
            .expect("non-empty range")
    }

    #[test]
    fn uniform_weights_reproduce_legacy_rendezvous_exactly() {
        for n in 1..9usize {
            for a in 0..600 {
                assert_eq!(
                    rendezvous_home(AdapterId(a), uniform(n)),
                    legacy_home(AdapterId(a), n),
                    "adapter {a} over {n} engines"
                );
            }
        }
    }

    #[test]
    fn round_robin_cycles() {
        let snaps = snaps_with_loads(&[0, 0, 0]);
        let mut r = RoundRobin::new();
        let picks: Vec<usize> = (0..6).map(|i| r.route(&req(i, 0), &snaps).engine).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn jsq_picks_least_loaded_lowest_index_on_tie() {
        let mut r = JoinShortestQueue::new();
        assert_eq!(r.route(&req(0, 0), &snaps_with_loads(&[5, 2, 9])).engine, 1);
        assert_eq!(r.route(&req(1, 0), &snaps_with_loads(&[4, 4, 9])).engine, 0);
    }

    #[test]
    fn power_of_two_prefers_lighter_of_its_pair() {
        // With one empty engine and the rest heavily loaded, p2c must land
        // on the empty engine whenever it is sampled; over many trials the
        // empty engine receives well over its uniform share.
        let snaps = snaps_with_loads(&[10_000, 10_000, 0, 10_000]);
        let mut r = PowerOfTwoChoices::new(42);
        let mut hits = 0;
        for i in 0..1000 {
            if r.route(&req(i, 0), &snaps).engine == 2 {
                hits += 1;
            }
        }
        assert!(hits > 400, "engine 2 only got {hits}/1000");
    }

    #[test]
    fn power_of_two_is_deterministic_per_seed() {
        let snaps = snaps_with_loads(&[3, 1, 4, 1, 5]);
        let run = |seed| {
            let mut r = PowerOfTwoChoices::new(seed);
            (0..64)
                .map(|i| r.route(&req(i, 0), &snaps).engine)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn affinity_sticks_to_home_when_balanced() {
        let snaps = snaps_with_loads(&[100, 100, 100, 100]);
        let mut r = AdapterAffinity::new();
        for a in 0..50 {
            let d = r.route(&req(u64::from(a), a), &snaps);
            assert_eq!(d.engine, rendezvous_home(AdapterId(a), uniform(4)));
            assert!(!d.spilled);
        }
    }

    #[test]
    fn affinity_spills_to_second_choice_off_saturated_home() {
        let mut r = AdapterAffinity::with_spill(2.0, 100);
        // Find an adapter homed on engine 0 whose second choice is NOT the
        // least-loaded engine, then overload engine 0.
        let (a, second) = (0..1000)
            .map(AdapterId)
            .filter_map(|a| {
                let (home, second) = rendezvous_top2(a, uniform(4));
                (home == 0).then(|| (a, second.expect("4 engines")))
            })
            .find(|&(_, second)| second != 1)
            .expect("some adapter homes on 0 with second choice off engine 1");
        let mut loads = [10u64; 4];
        loads[0] = 50_000;
        loads[1] = 0; // global least-loaded, deliberately not the fallback
        let d = r.route(&req(0, a.0), &snaps_with_loads(&loads));
        assert!(d.spilled);
        assert_eq!(
            d.engine, second,
            "spill goes to the adapter's second rendezvous choice"
        );
        // Balanced again: back home, no spill.
        let d = r.route(&req(1, a.0), &snaps_with_loads(&[30, 10, 20, 25]));
        assert_eq!(d.engine, 0);
        assert!(!d.spilled);
    }

    #[test]
    fn no_spill_variant_is_pure_rendezvous_even_when_saturated() {
        let mut r = AdapterAffinity::without_spill();
        assert_eq!(r.name(), "adapter-affinity-nospill");
        assert_eq!(r.staleness(), StalenessClass::StateIndependent);
        assert!(r.uses_affinity());
        // A grotesquely overloaded home still receives its shard: the load
        // columns are never consulted.
        for a in 0..50 {
            let mut loads = [10u64; 4];
            let home = rendezvous_home(AdapterId(a), uniform(4));
            loads[home] = u64::MAX / 4;
            let d = r.route(&req(u64::from(a), a), &snaps_with_loads(&loads));
            assert_eq!(d.engine, home);
            assert!(!d.spilled);
        }
    }

    #[test]
    fn spilling_affinity_keeps_the_bounded_budget() {
        assert_eq!(
            AdapterAffinity::new().staleness(),
            StalenessClass::DEFAULT_BOUNDED
        );
        assert_eq!(AdapterAffinity::new().name(), "adapter-affinity");
    }

    #[test]
    fn legacy_spill_target_goes_to_least_loaded() {
        let mut r =
            AdapterAffinity::with_spill(2.0, 100).with_spill_target(SpillTarget::LeastLoaded);
        let a = (0..1000)
            .map(AdapterId)
            .find(|&a| rendezvous_home(a, uniform(3)) == 0)
            .expect("some adapter homes on engine 0");
        let snaps = snaps_with_loads(&[50_000, 10, 20]);
        let d = r.route(&req(0, a.0), &snaps);
        assert!(d.spilled);
        assert_eq!(d.engine, 1, "legacy spill goes to the least-loaded");
    }

    #[test]
    fn second_choice_is_stable_and_distinct() {
        for a in 0..300 {
            let (home, second) = rendezvous_top2(AdapterId(a), uniform(5));
            let second = second.expect("5 engines");
            assert_ne!(home, second);
            assert_eq!(
                (home, Some(second)),
                rendezvous_top2(AdapterId(a), uniform(5))
            );
            // Removing the home promotes the second choice to home.
            let without_home: Vec<(EngineId, f64)> = uniform(5)
                .into_iter()
                .enumerate()
                .filter(|&(pos, _)| pos != home)
                .map(|(_, e)| e)
                .collect();
            let new_home_pos = rendezvous_home(AdapterId(a), without_home.clone());
            assert_eq!(
                without_home[new_home_pos].0,
                EngineId(second as u32),
                "adapter {a}: second choice must take over when home drains"
            );
        }
    }

    #[test]
    fn rendezvous_covers_all_engines() {
        // 500 adapters over 8 engines: every engine is some adapter's home,
        // and no engine hoards more than a few times its fair share.
        let n = 8;
        let mut counts = vec![0u32; n];
        for a in 0..500 {
            counts[rendezvous_home(AdapterId(a), uniform(n))] += 1;
        }
        assert!(
            counts.iter().all(|&c| c > 0),
            "uncovered engine: {counts:?}"
        );
        let max = *counts.iter().max().unwrap();
        assert!(max < 3 * (500 / n as u32), "hot spot: {counts:?}");
    }

    #[test]
    fn capacity_weights_win_proportional_shards() {
        // Weights 1,1,2,4: the TP4 engine should take roughly half the
        // adapters, the TP2 engine roughly a quarter.
        let engines = vec![
            (EngineId(0), 1.0),
            (EngineId(1), 1.0),
            (EngineId(2), 2.0),
            (EngineId(3), 4.0),
        ];
        let total = 4000u32;
        let mut counts = [0u32; 4];
        for a in 0..total {
            counts[rendezvous_home(AdapterId(a), engines.clone())] += 1;
        }
        let share = |i: usize| f64::from(counts[i]) / f64::from(total);
        assert!((share(3) - 0.5).abs() < 0.05, "TP4 shard: {counts:?}");
        assert!((share(2) - 0.25).abs() < 0.05, "TP2 shard: {counts:?}");
        assert!((share(0) - 0.125).abs() < 0.04, "TP1 shard: {counts:?}");
        // Rescaling all weights uniformly changes nothing.
        let scaled: Vec<(EngineId, f64)> = engines.iter().map(|&(id, w)| (id, w * 7.5)).collect();
        for a in 0..500 {
            assert_eq!(
                rendezvous_home(AdapterId(a), engines.clone()),
                rendezvous_home(AdapterId(a), scaled.clone())
            );
        }
    }

    #[test]
    fn rendezvous_is_stable_when_an_engine_is_added() {
        // Growing the set moves only adapters whose new home is the new
        // engine; every other assignment is untouched. Ids are deliberately
        // non-contiguous: identity, not position, is what matters.
        for n in 1..8usize {
            let before: Vec<(EngineId, f64)> =
                (0..n).map(|i| (EngineId(i as u32 * 3 + 1), 1.0)).collect();
            let mut after = before.clone();
            after.push((EngineId(99), 2.0));
            let mut moved_elsewhere = 0;
            let mut moved_to_new = HashSet::new();
            for a in 0..400 {
                let home_before = before[rendezvous_home(AdapterId(a), before.clone())].0;
                let home_after = after[rendezvous_home(AdapterId(a), after.clone())].0;
                if home_after != home_before {
                    if home_after == EngineId(99) {
                        moved_to_new.insert(a);
                    } else {
                        moved_elsewhere += 1;
                    }
                }
            }
            assert_eq!(
                moved_elsewhere, 0,
                "n={n}: adapters moved between surviving engines"
            );
            assert!(
                !moved_to_new.is_empty(),
                "n={n}: the new engine attracted nothing"
            );
            // The weight-2 newcomer expects ~2/(n+2) of 400; allow slack.
            assert!(
                moved_to_new.len() < 400 * 6 / (n + 2),
                "n={n}: {} adapters moved",
                moved_to_new.len(),
            );
        }
    }

    fn uniform_racked(racks: &[u32]) -> Vec<(EngineId, f64, Option<u32>)> {
        racks
            .iter()
            .enumerate()
            .map(|(i, &r)| (EngineId(i as u32), 1.0, Some(r)))
            .collect()
    }

    #[test]
    fn all_none_racks_reproduce_plain_top2_exactly() {
        for n in 1..9usize {
            for a in 0..400 {
                let plain = rendezvous_top2(AdapterId(a), uniform(n));
                let domained = rendezvous_top2_domains(
                    AdapterId(a),
                    uniform(n).into_iter().map(|(id, w)| (id, w, None)),
                );
                assert_eq!(plain, domained, "adapter {a} over {n} unracked engines");
            }
        }
    }

    #[test]
    fn anti_affine_second_leaves_the_home_rack() {
        let racks = [0u32, 0, 1, 1];
        let set = uniform_racked(&racks);
        for a in 0..400 {
            let (home, second) = rendezvous_top2_domains(AdapterId(a), set.iter().copied());
            let second = second.expect("4 engines");
            // Homes are topology-blind: identical to plain rendezvous.
            assert_eq!(home, rendezvous_home(AdapterId(a), uniform(4)));
            assert_ne!(
                racks[home], racks[second],
                "adapter {a}: warm/spill target colocated with its primary"
            );
        }
    }

    #[test]
    fn single_rack_fleet_degrades_to_plain_second() {
        let set = uniform_racked(&[7, 7, 7, 7, 7]);
        for a in 0..300 {
            assert_eq!(
                rendezvous_top2_domains(AdapterId(a), set.iter().copied()),
                rendezvous_top2(AdapterId(a), uniform(5)),
                "adapter {a}: one rack means nothing to avoid"
            );
        }
    }

    #[test]
    fn affinity_spill_prefers_the_other_rack() {
        let mut r = AdapterAffinity::with_spill(2.0, 100);
        let racks = [0u32, 0, 1, 1];
        // An adapter homed in rack 0 whose *plain* second choice is also in
        // rack 0 — anti-affinity must divert the spill to rack 1.
        let adapter = (0..2000)
            .map(AdapterId)
            .find(|&a| {
                let (home, second) = rendezvous_top2(a, uniform(4));
                home < 2 && second.expect("4 engines") < 2
            })
            .expect("some adapter has both top choices in rack 0");
        let mut snaps = snaps_with_loads(&[10, 10, 10, 10]);
        for (s, &rack) in snaps.iter_mut().zip(racks.iter()) {
            s.rack = Some(rack);
        }
        let home = rendezvous_home(adapter, uniform(4));
        snaps[home].outstanding_tokens = 50_000;
        let d = r.route(&req(0, adapter.0), &snaps);
        assert!(d.spilled);
        assert!(
            racks[d.engine] != racks[home],
            "spill landed in the home's rack"
        );
    }

    #[test]
    fn rendezvous_is_deterministic() {
        for a in 0..100 {
            assert_eq!(
                rendezvous_top2(AdapterId(a), uniform(5)),
                rendezvous_top2(AdapterId(a), uniform(5))
            );
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Builds a fleet with distinct ids from raw draws; weights come
        /// from the TP-like set {1, 2, 4}.
        fn fleet(raw_ids: &[u32], raw_weights: &[u8]) -> Vec<(EngineId, f64)> {
            let mut seen = std::collections::HashSet::new();
            raw_ids
                .iter()
                .filter(|&&id| seen.insert(id))
                .zip(raw_weights.iter().cycle())
                .map(|(&id, &w)| (EngineId(id), f64::from(1u32 << (w % 3))))
                .collect()
        }

        fn home_id(adapter: AdapterId, set: &[(EngineId, f64)]) -> EngineId {
            set[rendezvous_home(adapter, set.iter().copied())].0
        }

        /// Attaches racks (drawn from a small pool) to a fleet.
        fn rack_fleet(
            set: &[(EngineId, f64)],
            raw_racks: &[u8],
            rack_pool: u8,
        ) -> Vec<(EngineId, f64, Option<u32>)> {
            set.iter()
                .zip(raw_racks.iter().cycle())
                .map(|(&(id, w), &r)| (id, w, Some(u32::from(r % rack_pool.max(1)))))
                .collect()
        }

        proptest! {
            /// Adding an engine re-homes only the adapters whose new home
            /// is the newcomer — the minimal shard.
            #[test]
            fn prop_add_rehomes_only_the_new_shard(
                raw_ids in proptest::collection::vec(0u32..500, 1..8),
                raw_weights in proptest::collection::vec(0u8..3, 8..9),
                new_weight in 0u8..3,
            ) {
                let before = fleet(&raw_ids, &raw_weights);
                let newcomer = EngineId(999);
                let mut after = before.clone();
                after.push((newcomer, f64::from(1u32 << (new_weight % 3))));
                for a in 0..160 {
                    let (hb, ha) = (home_id(AdapterId(a), &before), home_id(AdapterId(a), &after));
                    if ha != hb {
                        prop_assert_eq!(
                            ha, newcomer,
                            "adapter {} moved between surviving engines", a
                        );
                    }
                }
            }

            /// Draining an engine re-homes exactly its shard: every adapter
            /// it was home to moves, nothing else does.
            #[test]
            fn prop_drain_rehomes_exactly_the_departing_shard(
                raw_ids in proptest::collection::vec(0u32..500, 2..8),
                raw_weights in proptest::collection::vec(0u8..3, 8..9),
                pick in 0usize..8,
            ) {
                let before = fleet(&raw_ids, &raw_weights);
                if before.len() < 2 {
                    continue;
                }
                let victim = before[pick % before.len()].0;
                let after: Vec<(EngineId, f64)> = before
                    .iter()
                    .copied()
                    .filter(|&(id, _)| id != victim)
                    .collect();
                for a in 0..160 {
                    let (hb, ha) = (home_id(AdapterId(a), &before), home_id(AdapterId(a), &after));
                    if hb == victim {
                        prop_assert!(ha != victim, "adapter {} stayed on drained engine", a);
                    } else {
                        prop_assert_eq!(ha, hb, "adapter {} moved off a survivor", a);
                    }
                }
            }

            /// Reweighting one engine upward only attracts adapters to it;
            /// no adapter moves between the other engines.
            #[test]
            fn prop_upweight_only_attracts_to_the_reweighted_engine(
                raw_ids in proptest::collection::vec(0u32..500, 2..8),
                raw_weights in proptest::collection::vec(0u8..3, 8..9),
                pick in 0usize..8,
            ) {
                let before = fleet(&raw_ids, &raw_weights);
                if before.len() < 2 {
                    continue;
                }
                let target = before[pick % before.len()].0;
                let after: Vec<(EngineId, f64)> = before
                    .iter()
                    .map(|&(id, w)| (id, if id == target { w * 8.0 } else { w }))
                    .collect();
                for a in 0..160 {
                    let (hb, ha) = (home_id(AdapterId(a), &before), home_id(AdapterId(a), &after));
                    if ha != hb {
                        prop_assert_eq!(ha, target, "adapter {} moved away on upweight", a);
                    }
                }
            }

            /// Pre-replication only ever targets the adapter's *second*
            /// rendezvous choice: it never equals the home (no primary is
            /// ever re-homed by a warm), it exists exactly when the fleet
            /// has more than one engine, and it is the engine the spill
            /// path would pick — warming it is what makes spills land hot.
            #[test]
            fn prop_prereplication_targets_only_the_second_choice(
                raw_ids in proptest::collection::vec(0u32..500, 1..8),
                raw_weights in proptest::collection::vec(0u8..3, 8..9),
                adapter in 0u32..100_000,
            ) {
                let set = fleet(&raw_ids, &raw_weights);
                let a = AdapterId(adapter);
                let target = prereplication_target(a, set.iter().copied());
                let (home, second) = rendezvous_top2(a, set.iter().copied());
                prop_assert_eq!(target, second, "target must be the spill fallback");
                match target {
                    None => prop_assert_eq!(set.len(), 1),
                    Some(t) => {
                        prop_assert!(t < set.len());
                        prop_assert!(
                            t != home,
                            "pre-replication re-homed a primary (adapter {})",
                            adapter
                        );
                    }
                }
            }

            /// The pre-replication target is deterministic and, when the
            /// home drains, is exactly the engine the adapter re-homes to
            /// — the warmed replica becomes the new primary.
            #[test]
            fn prop_prereplication_target_is_stable_and_takes_over(
                raw_ids in proptest::collection::vec(0u32..500, 2..8),
                raw_weights in proptest::collection::vec(0u8..3, 8..9),
                adapter in 0u32..100_000,
            ) {
                let set = fleet(&raw_ids, &raw_weights);
                if set.len() < 2 {
                    continue;
                }
                let a = AdapterId(adapter);
                let first = prereplication_target(a, set.iter().copied());
                prop_assert_eq!(first, prereplication_target(a, set.iter().copied()));
                let target = first.expect("≥2 engines always have a second choice");
                let home = rendezvous_home(a, set.iter().copied());
                let survivors: Vec<(EngineId, f64)> = set
                    .iter()
                    .copied()
                    .enumerate()
                    .filter(|&(pos, _)| pos != home)
                    .map(|(_, e)| e)
                    .collect();
                let new_home = survivors[rendezvous_home(a, survivors.iter().copied())].0;
                prop_assert_eq!(
                    new_home, set[target].0,
                    "draining the home must promote exactly the pre-replication target"
                );
            }

            /// The bounded-staleness contract ([`StalenessClass`]): route a
            /// batch of `k ≤ max_batch` requests through JSQ from one
            /// frozen snapshot generation, echoing each placement into the
            /// cache (queue depth +1, outstanding tokens += charge) the way
            /// the cluster coordinator does. Per engine, the cached view
            /// drifts from the frozen generation by exactly its share of
            /// the batch — never more than the declared budget — and the
            /// true queue depth (initial + placements, completions being
            /// the only unobservable) never exceeds the cached view.
            #[test]
            fn prop_bounded_staleness_drift_never_exceeds_the_batch_budget(
                initial in proptest::collection::vec(0u64..5_000, 2..8),
                charges in proptest::collection::vec(1u64..2_048, 1..33),
            ) {
                let StalenessClass::BoundedStaleness { max_batch, .. } =
                    StalenessClass::DEFAULT_BOUNDED
                else {
                    unreachable!("default budget is bounded");
                };
                prop_assert!(charges.len() as u32 <= max_batch);
                let mut snaps = snaps_with_loads(&initial);
                let depth0: Vec<usize> = snaps.iter().map(|s| s.queue_depth).collect();
                let mut placed = vec![0usize; snaps.len()];
                let mut r = JoinShortestQueue::new();
                for (i, &charge) in charges.iter().enumerate() {
                    let d = r.route(&req(i as u64, i as u32), &snaps);
                    prop_assert!(d.engine < snaps.len());
                    placed[d.engine] += 1;
                    snaps[d.engine].queue_depth += 1;
                    snaps[d.engine].outstanding_tokens += charge;
                }
                for (e, snap) in snaps.iter().enumerate() {
                    let drift = snap.queue_depth - depth0[e];
                    prop_assert_eq!(drift, placed[e], "echo must track placements exactly");
                    prop_assert!(
                        drift <= charges.len(),
                        "engine {} drifted {} > batch size {}", e, drift, charges.len()
                    );
                    prop_assert!(
                        drift as u32 <= max_batch,
                        "engine {} drifted past the declared budget", e
                    );
                }
            }

            /// With equal initial loads and equal charges, echoed JSQ
            /// spreads a batch evenly: no engine receives more than one
            /// request over its fair share, so batching cannot manufacture
            /// imbalance beyond the documented bound.
            #[test]
            fn prop_echoed_jsq_spreads_a_uniform_batch_evenly(
                n in 2usize..8,
                k in 1usize..33,
                base in 0u64..1_000,
            ) {
                let mut snaps = snaps_with_loads(&vec![base; n]);
                let mut placed = vec![0usize; n];
                let mut r = JoinShortestQueue::new();
                for i in 0..k {
                    let d = r.route(&req(i as u64, 0), &snaps);
                    placed[d.engine] += 1;
                    snaps[d.engine].queue_depth += 1;
                    snaps[d.engine].outstanding_tokens += 512;
                }
                let max = *placed.iter().max().unwrap();
                let min = *placed.iter().min().unwrap();
                prop_assert!(
                    max - min <= 1,
                    "uniform batch spread {:?} is lumpier than round-robin", placed
                );
            }

            /// Anti-affinity never selects a same-domain spill or
            /// pre-replication target while another domain has capacity:
            /// whenever the fleet spans ≥2 racks, the second choice lives
            /// outside the home's rack — and the home itself is exactly
            /// the topology-blind rendezvous home (homes never move when a
            /// topology is attached).
            #[test]
            fn prop_anti_affinity_never_colocates_while_another_domain_has_capacity(
                raw_ids in proptest::collection::vec(0u32..500, 2..8),
                raw_weights in proptest::collection::vec(0u8..3, 8..9),
                raw_racks in proptest::collection::vec(0u8..4, 8..9),
                rack_pool in 2u8..4,
                adapter in 0u32..100_000,
            ) {
                let set = fleet(&raw_ids, &raw_weights);
                if set.len() < 2 {
                    continue;
                }
                let racked = rack_fleet(&set, &raw_racks, rack_pool);
                let a = AdapterId(adapter);
                let (home, second) =
                    rendezvous_top2_domains(a, racked.iter().copied());
                prop_assert_eq!(
                    home,
                    rendezvous_home(a, set.iter().copied()),
                    "topology moved a home"
                );
                let second = second.expect("≥2 engines have a second choice");
                prop_assert_eq!(
                    prereplication_target_domains(a, racked.iter().copied()),
                    Some(second)
                );
                let racks: std::collections::HashSet<_> =
                    racked.iter().map(|e| e.2).collect();
                if racks.len() >= 2 {
                    prop_assert!(
                        racked[second].2 != racked[home].2,
                        "adapter {} colocated with its primary while rack capacity existed",
                        adapter
                    );
                }
            }

            /// A single-domain fleet degrades gracefully: the domain-aware
            /// top-2 equals the plain top-2 exactly, both when every
            /// engine shares one rack and when no engine is racked at all.
            #[test]
            fn prop_single_domain_degrades_to_plain_top2(
                raw_ids in proptest::collection::vec(0u32..500, 1..8),
                raw_weights in proptest::collection::vec(0u8..3, 8..9),
                rack in 0u32..8,
                adapter in 0u32..100_000,
            ) {
                let set = fleet(&raw_ids, &raw_weights);
                let a = AdapterId(adapter);
                let plain = rendezvous_top2(a, set.iter().copied());
                let one_rack: Vec<_> =
                    set.iter().map(|&(id, w)| (id, w, Some(rack))).collect();
                prop_assert_eq!(
                    rendezvous_top2_domains(a, one_rack.iter().copied()),
                    plain,
                    "single-rack fleet diverged from plain rendezvous"
                );
                let unracked: Vec<_> =
                    set.iter().map(|&(id, w)| (id, w, None)).collect();
                prop_assert_eq!(
                    rendezvous_top2_domains(a, unracked.iter().copied()),
                    plain,
                    "unracked fleet diverged from plain rendezvous"
                );
            }

            /// Add/drain re-homing stays minimal with a topology attached:
            /// because domain-aware homes equal plain homes, growing the
            /// racked fleet moves only the newcomer's shard and draining
            /// an engine moves exactly its shard.
            #[test]
            fn prop_rehoming_stays_minimal_with_topology_attached(
                raw_ids in proptest::collection::vec(0u32..500, 2..8),
                raw_weights in proptest::collection::vec(0u8..3, 8..9),
                raw_racks in proptest::collection::vec(0u8..4, 9..10),
                rack_pool in 1u8..4,
                pick in 0usize..8,
            ) {
                let set = fleet(&raw_ids, &raw_weights);
                if set.len() < 2 {
                    continue;
                }
                let racked = rack_fleet(&set, &raw_racks, rack_pool);
                let home_of = |a: AdapterId, s: &[(EngineId, f64, Option<u32>)]| {
                    s[rendezvous_top2_domains(a, s.iter().copied()).0].0
                };
                // Grow: only the newcomer attracts adapters.
                let mut grown = racked.clone();
                grown.push((EngineId(999), 2.0, Some(u32::from(rack_pool))));
                for a in 0..120 {
                    let (hb, ha) = (home_of(AdapterId(a), &racked), home_of(AdapterId(a), &grown));
                    if ha != hb {
                        prop_assert_eq!(ha, EngineId(999), "adapter {} moved off a survivor", a);
                    }
                }
                // Drain: exactly the victim's shard moves.
                let victim = racked[pick % racked.len()].0;
                let drained: Vec<_> = racked
                    .iter()
                    .copied()
                    .filter(|&(id, _, _)| id != victim)
                    .collect();
                for a in 0..120 {
                    let (hb, ha) =
                        (home_of(AdapterId(a), &racked), home_of(AdapterId(a), &drained));
                    if hb == victim {
                        prop_assert!(ha != victim, "adapter {} stayed on drained engine", a);
                    } else {
                        prop_assert_eq!(ha, hb, "adapter {} moved off a survivor", a);
                    }
                }
            }

            /// Placement (home and spill fallback) is a deterministic pure
            /// function of the fleet.
            #[test]
            fn prop_top2_is_deterministic(
                raw_ids in proptest::collection::vec(0u32..500, 1..8),
                raw_weights in proptest::collection::vec(0u8..3, 8..9),
                adapter in 0u32..100_000,
            ) {
                let set = fleet(&raw_ids, &raw_weights);
                let first = rendezvous_top2(AdapterId(adapter), set.iter().copied());
                let again = rendezvous_top2(AdapterId(adapter), set.iter().copied());
                prop_assert_eq!(first, again);
                let (home, second) = first;
                prop_assert!(home < set.len());
                if let Some(second) = second {
                    prop_assert!(second < set.len());
                    prop_assert!(second != home);
                } else {
                    prop_assert_eq!(set.len(), 1);
                }
            }
        }
    }
}
