//! The built-in placement policies.

use crate::snapshot::EngineSnapshot;
use crate::{RouteDecision, Router};
use chameleon_models::AdapterId;
use chameleon_simcore::SimRng;
use chameleon_workload::Request;

/// Cycles through engines in index order, ignoring all state. The
/// baseline every load-aware policy must beat.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Creates a round-robin router starting at engine 0.
    pub fn new() -> Self {
        RoundRobin { next: 0 }
    }
}

impl Router for RoundRobin {
    fn route(&mut self, _req: &Request, engines: &[EngineSnapshot]) -> RouteDecision {
        let engine = self.next % engines.len();
        self.next = (engine + 1) % engines.len();
        RouteDecision::to(engine)
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// The paper's global scheduler (§4.4): dispatch to the engine with the
/// least outstanding resource tokens at arrival. Ties break toward the
/// lowest engine index, exactly as the original inlined dispatcher did.
#[derive(Debug, Default)]
pub struct JoinShortestQueue;

impl JoinShortestQueue {
    /// Creates the JSQ router.
    pub fn new() -> Self {
        JoinShortestQueue
    }
}

impl Router for JoinShortestQueue {
    fn route(&mut self, _req: &Request, engines: &[EngineSnapshot]) -> RouteDecision {
        let engine = engines
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.outstanding_tokens)
            .map(|(i, _)| i)
            .expect("non-empty cluster");
        RouteDecision::to(engine)
    }

    fn name(&self) -> &'static str {
        "join-shortest-queue"
    }
}

/// Power-of-two-choices: sample two distinct engines uniformly, keep the
/// one with fewer outstanding tokens. O(1) state reads per dispatch with
/// near-JSQ balance — the classic scalable alternative when probing every
/// engine is too expensive.
#[derive(Debug)]
pub struct PowerOfTwoChoices {
    rng: SimRng,
}

impl PowerOfTwoChoices {
    /// Creates the router with its own deterministic RNG stream.
    pub fn new(seed: u64) -> Self {
        let mut root = SimRng::seed(seed);
        PowerOfTwoChoices {
            rng: root.fork("power-of-two-router"),
        }
    }
}

impl Router for PowerOfTwoChoices {
    fn route(&mut self, _req: &Request, engines: &[EngineSnapshot]) -> RouteDecision {
        let n = engines.len();
        if n == 1 {
            return RouteDecision::to(0);
        }
        let a = self.rng.below(n as u64) as usize;
        let mut b = self.rng.below((n - 1) as u64) as usize;
        if b >= a {
            b += 1;
        }
        let engine = if engines[b].outstanding_tokens < engines[a].outstanding_tokens
            || (engines[b].outstanding_tokens == engines[a].outstanding_tokens && b < a)
        {
            b
        } else {
            a
        };
        RouteDecision::to(engine)
    }

    fn name(&self) -> &'static str {
        "power-of-two"
    }
}

/// Adapter-affinity placement: rendezvous (highest-random-weight) hashing
/// maps each adapter to a *home* engine, concentrating an adapter's
/// requests so its weights stay hot on one replica — the fleet partitions
/// the adapter working set instead of replicating it. When the home
/// engine is saturated relative to the least-loaded engine, the request
/// *spills* there instead, trading a likely cache miss for load balance.
///
/// Rendezvous hashing gives the stability property the cluster needs:
/// when an engine is added, only the adapters whose top-scoring engine is
/// the new one move; all other homes are unchanged (no global reshuffle).
#[derive(Debug)]
pub struct AdapterAffinity {
    /// Spill when `home_load > spill_slack + spill_factor × min_load`.
    spill_factor: f64,
    /// Absolute token slack before the factor test can trigger.
    spill_slack: u64,
}

impl Default for AdapterAffinity {
    fn default() -> Self {
        Self::new()
    }
}

impl AdapterAffinity {
    /// Default spill thresholds: tolerate up to 2× the least-loaded
    /// engine plus 4096 tokens of slack before abandoning affinity.
    pub fn new() -> Self {
        AdapterAffinity {
            spill_factor: 2.0,
            spill_slack: 4096,
        }
    }

    /// Overrides the spill thresholds.
    pub fn with_spill(spill_factor: f64, spill_slack: u64) -> Self {
        assert!(
            spill_factor >= 1.0,
            "factor {spill_factor} < 1 always spills"
        );
        AdapterAffinity {
            spill_factor,
            spill_slack,
        }
    }
}

impl Router for AdapterAffinity {
    fn route(&mut self, req: &Request, engines: &[EngineSnapshot]) -> RouteDecision {
        let home = rendezvous_home(req.adapter(), engines.len());
        let home_load = engines[home].outstanding_tokens;
        let (least, least_load) = engines
            .iter()
            .enumerate()
            .map(|(i, s)| (i, s.outstanding_tokens))
            .min_by_key(|&(_, load)| load)
            .expect("non-empty cluster");
        let threshold = self.spill_slack
            + (self.spill_factor * least_load as f64).min(u64::MAX as f64 / 2.0) as u64;
        if home_load > threshold && least != home {
            RouteDecision {
                engine: least,
                spilled: true,
            }
        } else {
            RouteDecision::to(home)
        }
    }

    fn name(&self) -> &'static str {
        "adapter-affinity"
    }
}

/// The rendezvous (highest-random-weight) home engine of `adapter` in a
/// cluster of `n_engines`.
///
/// Exposed so tests and capacity planners can reason about placement:
/// `home(a, n)` is a pure function of the pair, and growing the cluster
/// from `n` to `n+1` engines only remaps adapters whose new home is the
/// added engine.
///
/// # Panics
///
/// Panics if `n_engines == 0`.
pub fn rendezvous_home(adapter: AdapterId, n_engines: usize) -> usize {
    assert!(n_engines > 0, "empty cluster");
    (0..n_engines)
        .max_by_key(|&e| rendezvous_score(adapter, e))
        .expect("non-empty range")
}

/// The HRW score of `(adapter, engine)` — a stateless 64-bit mix.
fn rendezvous_score(adapter: AdapterId, engine: usize) -> u64 {
    let mut z = (u64::from(adapter.0) << 32) ^ (engine as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_models::AdapterRank;
    use chameleon_simcore::SimTime;
    use chameleon_workload::RequestId;
    use std::collections::HashSet;

    fn req(id: u64, adapter: u32) -> Request {
        Request::new(
            RequestId(id),
            SimTime::ZERO,
            64,
            8,
            AdapterId(adapter),
            AdapterRank::new(8),
        )
    }

    fn snaps_with_loads(loads: &[u64]) -> Vec<EngineSnapshot> {
        loads
            .iter()
            .enumerate()
            .map(|(i, &load)| EngineSnapshot {
                outstanding_tokens: load,
                ..EngineSnapshot::idle(i)
            })
            .collect()
    }

    #[test]
    fn round_robin_cycles() {
        let snaps = snaps_with_loads(&[0, 0, 0]);
        let mut r = RoundRobin::new();
        let picks: Vec<usize> = (0..6).map(|i| r.route(&req(i, 0), &snaps).engine).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn jsq_picks_least_loaded_lowest_index_on_tie() {
        let mut r = JoinShortestQueue::new();
        assert_eq!(r.route(&req(0, 0), &snaps_with_loads(&[5, 2, 9])).engine, 1);
        assert_eq!(r.route(&req(1, 0), &snaps_with_loads(&[4, 4, 9])).engine, 0);
    }

    #[test]
    fn power_of_two_prefers_lighter_of_its_pair() {
        // With one empty engine and the rest heavily loaded, p2c must land
        // on the empty engine whenever it is sampled; over many trials the
        // empty engine receives well over its uniform share.
        let snaps = snaps_with_loads(&[10_000, 10_000, 0, 10_000]);
        let mut r = PowerOfTwoChoices::new(42);
        let mut hits = 0;
        for i in 0..1000 {
            if r.route(&req(i, 0), &snaps).engine == 2 {
                hits += 1;
            }
        }
        assert!(hits > 400, "engine 2 only got {hits}/1000");
    }

    #[test]
    fn power_of_two_is_deterministic_per_seed() {
        let snaps = snaps_with_loads(&[3, 1, 4, 1, 5]);
        let run = |seed| {
            let mut r = PowerOfTwoChoices::new(seed);
            (0..64)
                .map(|i| r.route(&req(i, 0), &snaps).engine)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn affinity_sticks_to_home_when_balanced() {
        let snaps = snaps_with_loads(&[100, 100, 100, 100]);
        let mut r = AdapterAffinity::new();
        for a in 0..50 {
            let d = r.route(&req(u64::from(a), a), &snaps);
            assert_eq!(d.engine, rendezvous_home(AdapterId(a), 4));
            assert!(!d.spilled);
        }
    }

    #[test]
    fn affinity_spills_off_saturated_home() {
        let mut r = AdapterAffinity::with_spill(2.0, 100);
        // Find an adapter homed on engine 0, then overload engine 0.
        let a = (0..1000)
            .map(AdapterId)
            .find(|&a| rendezvous_home(a, 3) == 0)
            .expect("some adapter homes on engine 0");
        let snaps = snaps_with_loads(&[50_000, 10, 20]);
        let d = r.route(&req(0, a.0), &snaps);
        assert!(d.spilled);
        assert_eq!(d.engine, 1, "spill goes to the least-loaded engine");
        // Balanced again: back home, no spill.
        let snaps = snaps_with_loads(&[30, 10, 20]);
        let d = r.route(&req(1, a.0), &snaps);
        assert_eq!(d.engine, 0);
        assert!(!d.spilled);
    }

    #[test]
    fn rendezvous_covers_all_engines() {
        // 500 adapters over 8 engines: every engine is some adapter's home,
        // and no engine hoards more than a few times its fair share.
        let n = 8;
        let mut counts = vec![0u32; n];
        for a in 0..500 {
            counts[rendezvous_home(AdapterId(a), n)] += 1;
        }
        assert!(
            counts.iter().all(|&c| c > 0),
            "uncovered engine: {counts:?}"
        );
        let max = *counts.iter().max().unwrap();
        assert!(max < 3 * (500 / n as u32), "hot spot: {counts:?}");
    }

    #[test]
    fn rendezvous_is_stable_when_an_engine_is_added() {
        // Growing n -> n+1 moves only adapters whose new home is the new
        // engine; every other assignment is untouched.
        for n in 1..8usize {
            let mut moved_elsewhere = 0;
            let mut moved_to_new = HashSet::new();
            for a in 0..400 {
                let before = rendezvous_home(AdapterId(a), n);
                let after = rendezvous_home(AdapterId(a), n + 1);
                if after != before {
                    if after == n {
                        moved_to_new.insert(a);
                    } else {
                        moved_elsewhere += 1;
                    }
                }
            }
            assert_eq!(
                moved_elsewhere, 0,
                "n={n}: adapters moved between surviving engines"
            );
            assert!(
                !moved_to_new.is_empty(),
                "n={n}: the new engine attracted nothing"
            );
            // Expected migration fraction is 1/(n+1); allow generous slack.
            assert!(
                moved_to_new.len() < 400 * 3 / (n + 1),
                "n={n}: {} adapters moved (expected ~{})",
                moved_to_new.len(),
                400 / (n + 1)
            );
        }
    }

    #[test]
    fn rendezvous_is_deterministic() {
        for a in 0..100 {
            assert_eq!(
                rendezvous_home(AdapterId(a), 5),
                rendezvous_home(AdapterId(a), 5)
            );
        }
    }
}
