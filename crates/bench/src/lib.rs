//! Benchmark and figure-regeneration harness.
//!
//! Every figure in the paper's evaluation (§3 characterisation and §5
//! evaluation) has a function in [`figures`] that reruns the experiment and
//! prints the same rows/series the paper plots. The `figures` binary wraps
//! them in a CLI:
//!
//! ```text
//! cargo run -p chameleon-bench --release --bin figures -- fig11
//! cargo run -p chameleon-bench --release --bin figures -- all
//! ```
//!
//! Criterion micro-benchmarks for the load-bearing components live in
//! `benches/`.
//!
//! # Load levels
//!
//! Our simulated A40 testbed saturates at different absolute RPS than the
//! authors' hardware, so experiments are parameterised by *load level*
//! relative to the measured knees: on the A40/Llama-7B platform, low ≈ 6,
//! medium ≈ 9, high ≈ 10.5 (S-LoRA past its knee, Chameleon comfortable)
//! and overload ≈ 12.5 RPS. EXPERIMENTS.md records the mapping per figure.

pub mod compare;
pub mod figures;
pub mod perf;

use chameleon_core::{sim::Simulation, RunReport, SystemConfig};
use chameleon_models::AdapterPool;
use chameleon_workload::Trace;

/// Default experiment seed (all figures are deterministic given this).
pub const SEED: u64 = 42;

/// Low / medium / high / overload loads for the A40 Llama-7B platform.
pub const LOAD_LOW: f64 = 6.0;
/// See [`LOAD_LOW`].
pub const LOAD_MEDIUM: f64 = 9.0;
/// See [`LOAD_LOW`].
pub const LOAD_HIGH: f64 = 10.5;
/// See [`LOAD_LOW`].
pub const LOAD_OVERLOAD: f64 = 12.5;

/// Default per-run trace duration in seconds.
pub const TRACE_SECS: f64 = 180.0;

/// Runs one system over the scaled Splitwise workload at `rps`.
pub fn run_at(cfg: SystemConfig, rps: f64, secs: f64, seed: u64) -> RunReport {
    let mut sim = Simulation::new(cfg, seed);
    let trace = chameleon_core::workloads::splitwise(rps, secs, seed, sim.pool());
    sim.run(&trace)
}

/// Runs one system over an explicit trace.
pub fn run_trace(cfg: SystemConfig, trace: &Trace, seed: u64) -> RunReport {
    let mut sim = Simulation::new(cfg, seed);
    sim.run(trace)
}

/// Generates the pool a config will use (for building matching traces).
pub fn pool_of(cfg: &SystemConfig) -> AdapterPool {
    AdapterPool::generate(&cfg.llm, &cfg.pool_config())
}

/// Formats a table row of `f64` cells.
pub fn row(label: &str, cells: &[f64]) -> String {
    let mut s = format!("{label:<22}");
    for c in cells {
        s.push_str(&format!(" {c:>9.3}"));
    }
    s
}

/// Formats a table header.
pub fn header(label: &str, cols: &[String]) -> String {
    let mut s = format!("{label:<22}");
    for c in cols {
        s.push_str(&format!(" {c:>9}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_core::preset;

    #[test]
    fn run_at_produces_complete_reports() {
        let r = run_at(preset::slora(), 4.0, 10.0, 1);
        assert!(r.completed() > 10);
    }

    #[test]
    fn table_formatting() {
        let h = header("system", &["5".into(), "6".into()]);
        let r = row("S-LoRA", &[1.25, 2.5]);
        assert!(h.contains("system"));
        assert!(r.contains("1.250"));
        assert!(r.contains("2.500"));
    }
}
