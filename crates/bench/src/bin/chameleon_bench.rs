//! `chameleon-bench` — the persistent perf harness behind `BENCH_*.json`.
//!
//! Runs a pinned 600-adapter Zipf macro-scenario (single-engine and a
//! 4-engine cluster routed JSQ vs AdapterAffinity) plus hot-path
//! micro-benches (event-queue churn, eviction storm, refresh storm,
//! parallel-vs-serial sweep), a profiled barrier/epoch breakdown, and a
//! traced telemetry-series export (CSV/JSONL written next to the bench
//! JSON), and writes the numbers as JSON, extending the PR-over-PR
//! performance trajectory:
//!
//! ```text
//! cargo run -p chameleon-bench --release --bin chameleon-bench
//! cargo run -p chameleon-bench --release --bin chameleon-bench -- --smoke --out bench-smoke.json
//! ```
//!
//! `--smoke` shrinks every scenario to a few seconds of work for CI; the
//! checked-in `BENCH_PR<n>.json` files are produced by full release-mode
//! runs and gated by the `bench-compare` binary. The eviction-storm bench
//! runs the same storm twice — once through the incrementally maintained
//! candidate index and once through the pre-PR2 full-scan path
//! (`AdapterCache::set_full_scan_eviction`) — so the speedup column is
//! measured, not estimated.

use chameleon_bench::perf::{timed, BenchReport, BenchResult};
use chameleon_bench::SEED;
use chameleon_cache::{AdapterCache, EvictionPolicy};
use chameleon_core::par;
use chameleon_core::sweep::LoadSweep;
use chameleon_core::{
    preset, DispatchSpec, FaultSpec, FleetSpec, RouterPolicy, RunReport, Simulation, TopologySpec,
};
use chameleon_fault::fault_roll;
use chameleon_gpu::memory::MemoryPool;
use chameleon_models::{AdapterId, AdapterRank, AdapterSpec, LlmSpec};
use chameleon_sched::{
    ChameleonConfig, ChameleonScheduler, QueuedRequest, Scheduler, StaticProbe, WrsConfig,
};
use chameleon_simcore::{EventQueue, SimDuration, SimRng, SimTime};
use chameleon_workload::{Request, RequestId};
use std::collections::HashSet;

fn main() {
    let mut smoke = false;
    let mut out_path = "BENCH_PR10.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = args.next().expect("--out requires a path"),
            "--help" | "-h" => {
                eprintln!("usage: chameleon-bench [--smoke] [--out PATH]");
                return;
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    let mut report = BenchReport::new("PR10", smoke);
    let cores = par::default_workers();
    if cores == 1 {
        report.degraded = true;
        eprintln!(
            "WARNING: single-core host — every parallel/serial speedup column in this \
             report is noise, not signal. The serial events/sec columns are still valid; \
             the report is marked \"degraded\": true so trajectory tooling can discount \
             the ratios."
        );
    }
    println!("chameleon-bench ({})", if smoke { "smoke" } else { "full" });

    macro_scenario(&mut report, smoke);
    cluster_macro(&mut report, smoke);
    batched_dispatch_macro(&mut report, smoke);
    cluster16_macro(&mut report, smoke);
    predictive_burst_macro(&mut report, smoke);
    failover_macro(&mut report, smoke);
    domain_failover_macro(&mut report, smoke);
    chaos_sweep_macro(&mut report, smoke);
    kv_pressure_macro(&mut report, smoke);
    barrier_profile_table(&mut report, smoke);
    event_queue_churn(&mut report, smoke);
    eviction_storm(&mut report, smoke);
    refresh_storm(&mut report, smoke);
    sweep_scaling(&mut report, smoke);
    telemetry_series(&out_path, smoke);

    std::fs::write(&out_path, report.to_json()).expect("write bench json");
    println!("wrote {out_path}");
}

/// The pinned macro-scenario: one Chameleon engine serving a 600-adapter
/// Zipf-popularity pool under the scaled Splitwise workload. Headline
/// number: simulation events processed per wall-clock second.
fn macro_scenario(report: &mut BenchReport, smoke: bool) {
    let mut cfg = preset::chameleon();
    cfg.num_adapters = 600;
    cfg = cfg.with_label("Chameleon-600");
    // Past the saturation knee, so queues stay deep and the scheduler,
    // cache, and event queue are all continuously exercised.
    let rps = 12.0;
    let secs = if smoke { 4.0 } else { 600.0 };
    let mut sim = Simulation::new(cfg, SEED);
    let trace = chameleon_core::workloads::splitwise(rps, secs, SEED, sim.pool());
    let (wall, run) = timed(|| sim.run(&trace));
    let events = run.events_processed as f64;
    println!(
        "  macro_zipf600       {:>10.0} events/s  ({} events, {} reqs, {wall:.3}s wall)",
        events / wall,
        run.events_processed,
        run.completed(),
    );
    report.push(
        "macro_zipf600",
        BenchResult::new()
            .metric("adapters", 600.0)
            .metric("offered_rps", rps)
            .metric("trace_secs", secs)
            .metric("completed", run.completed() as f64)
            .metric("events", events)
            .metric("wall_secs", wall)
            .metric("events_per_sec", events / wall)
            .metric("p99_ttft_s", run.p99_ttft())
            .metric("cache_hit_rate", run.hit_rate()),
    );
}

/// The cluster macro-scenario (the routing layer's slot in the perf
/// trajectory): a 4-engine fleet serving a 600-adapter Zipf workload,
/// dispatched once with the paper's join-shortest-queue and once with
/// adapter-affinity routing, on the identical trace. The events/sec
/// columns track the dispatch layer's overhead; the cache-hit and
/// affinity columns track what the partitioned mode buys.
fn cluster_macro(report: &mut BenchReport, smoke: bool) {
    let engines = 4;
    let rps = 80.0;
    let secs = if smoke { 3.0 } else { 120.0 };
    let mut cfg = preset::chameleon_cluster(engines)
        .with_adapters(600)
        .with_label("Chameleon-DP4-600");
    cfg.rank_popularity = chameleon_models::PopularityDist::power_law();
    let pool = chameleon_models::AdapterPool::generate(&cfg.llm, &cfg.pool_config());
    let trace = chameleon_core::workloads::lmsys(rps, secs, SEED, &pool);
    for policy in [
        RouterPolicy::JoinShortestQueue,
        RouterPolicy::AdapterAffinity,
    ] {
        let cfg = cfg.clone().with_router(policy);
        let mut sim = Simulation::new(cfg, SEED);
        let (wall, run) = timed(|| sim.run(&trace));
        let events = run.events_processed as f64;
        let name = match policy {
            RouterPolicy::JoinShortestQueue => "macro_cluster4_jsq",
            _ => "macro_cluster4_affinity",
        };
        println!(
            "  {name:<19} {:>10.0} events/s  (hit {:.1}%, aff {:.1}%, spill {:.1}%, {wall:.3}s wall)",
            events / wall,
            run.hit_rate() * 100.0,
            run.affinity_hit_rate() * 100.0,
            run.spill_rate() * 100.0,
        );
        report.push(
            name,
            BenchResult::new()
                .metric("engines", engines as f64)
                .metric("adapters", 600.0)
                .metric("offered_rps", rps)
                .metric("trace_secs", secs)
                .metric("completed", run.completed() as f64)
                .metric("events", events)
                .metric("wall_secs", wall)
                .metric("events_per_sec", events / wall)
                .metric("p99_ttft_s", run.p99_ttft())
                .metric("cache_hit_rate", run.hit_rate())
                .metric("affinity_hit_rate", run.affinity_hit_rate())
                .metric("spill_rate", run.spill_rate())
                .metric("load_imbalance", run.load_imbalance()),
        );
    }
}

/// The amortised-dispatch scenario (PR 8's slot in the trajectory): the
/// 4-engine fleet serving the 600-adapter Zipf workload three ways on
/// the *identical* trace — per-arrival dispatch (one epoch barrier per
/// request), batched dispatch under the state-independent rendezvous
/// router (arrivals coalesce into one barrier each, byte-identity with
/// per-arrival asserted on the spot), and bounded-staleness batching
/// under the load-aware partitioned router (snapshots refreshed once per
/// batch within the declared `(max_batch, max_age)` budget). The
/// events/sec ratio is the price of per-arrival barriers; `mean_batch`
/// is the epoch-amortisation factor (epoch count drops by ~that factor).
fn batched_dispatch_macro(report: &mut BenchReport, smoke: bool) {
    let engines = 4;
    let rps = 80.0;
    let secs = if smoke { 3.0 } else { 120.0 };
    let mut base = preset::chameleon_cluster_rendezvous(engines)
        .with_adapters(600)
        .with_label("Chameleon-DP4-600-Dispatch");
    base.rank_popularity = chameleon_models::PopularityDist::power_law();
    let pool = chameleon_models::AdapterPool::generate(&base.llm, &base.pool_config());
    let trace = chameleon_core::workloads::lmsys(rps, secs, SEED, &pool);

    let (t_per, per_arrival) = timed(|| Simulation::new(base.clone(), SEED).run(&trace));
    let batched_cfg = base.clone().with_dispatch(DispatchSpec::new());
    let (t_batched, batched) = timed(|| Simulation::new(batched_cfg.clone(), SEED).run(&trace));
    assert_eq!(
        per_arrival.canonical_text(),
        batched.canonical_text(),
        "batched dispatch diverged from per-arrival under a state-independent router"
    );
    // The barrier cost batching amortises is mostly the worker pool's
    // per-epoch synchronisation, so the headline comparison is the
    // *parallel* pair: per-arrival pays one pool barrier per request,
    // batched pays one per coalesced batch, on the identical trace.
    let cores = par::default_workers();
    let workers = par::workers_from_env().unwrap_or_else(|| cores.clamp(2, 8));
    let (t_per_par, per_par) =
        timed(|| Simulation::new(base.clone().with_parallel_cluster(workers), SEED).run(&trace));
    let (t_batched_par, batched_par) =
        timed(|| Simulation::new(batched_cfg.with_parallel_cluster(workers), SEED).run(&trace));
    assert_eq!(
        per_arrival.canonical_text(),
        per_par.canonical_text(),
        "parallel per-arrival run diverged from serial"
    );
    assert_eq!(
        per_arrival.canonical_text(),
        batched_par.canonical_text(),
        "parallel batched run diverged from serial"
    );
    let mut stale_cfg = preset::chameleon_cluster_bounded_staleness(engines)
        .with_adapters(600)
        .with_label("Chameleon-DP4-600-Staleness");
    stale_cfg.rank_popularity = chameleon_models::PopularityDist::power_law();
    let (t_stale, stale) = timed(|| Simulation::new(stale_cfg, SEED).run(&trace));

    let per_eps = per_arrival.events_processed as f64 / t_per;
    let batched_eps = batched.events_processed as f64 / t_batched;
    let per_par_eps = per_par.events_processed as f64 / t_per_par;
    let batched_par_eps = batched_par.events_processed as f64 / t_batched_par;
    let stale_eps = stale.events_processed as f64 / t_stale;
    let d = &batched.routing.dispatch;
    let ds = &stale.routing.dispatch;
    println!(
        "  macro_batched_disp  {:>10.0} events/s per-arrival, {:>10.0} events/s batched \
         ({:.2}x serial; parallel {:>10.0} -> {:>10.0} events/s, {:.2}x, {workers} workers / \
         {cores} cores; mean batch {:.1}, bit-identical), {:>10.0} events/s bounded-staleness \
         (mean batch {:.1}, {} refreshes)",
        per_eps,
        batched_eps,
        t_per / t_batched,
        per_par_eps,
        batched_par_eps,
        t_per_par / t_batched_par,
        d.mean_batch(),
        stale_eps,
        ds.mean_batch(),
        ds.snapshot_refreshes,
    );
    report.push(
        "macro_batched_dispatch",
        BenchResult::new()
            .metric("engines", engines as f64)
            .metric("adapters", 600.0)
            .metric("offered_rps", rps)
            .metric("trace_secs", secs)
            .metric("completed", batched.completed() as f64)
            .metric("events", batched.events_processed as f64)
            .metric("cores", cores as f64)
            .metric("workers", workers as f64)
            .metric("per_arrival_wall_secs", t_per)
            .metric("wall_secs", t_batched)
            .metric("staleness_wall_secs", t_stale)
            .metric("per_arrival_events_per_sec", per_eps)
            .metric("events_per_sec", batched_eps)
            .metric("per_arrival_parallel_events_per_sec", per_par_eps)
            .metric("parallel_events_per_sec", batched_par_eps)
            .metric("staleness_events_per_sec", stale_eps)
            .metric("batched_speedup", t_per / t_batched)
            .metric("parallel_batched_speedup", t_per_par / t_batched_par)
            .metric("batches", d.batches as f64)
            .metric("batched_arrivals", d.batched_arrivals as f64)
            .metric("mean_batch", d.mean_batch())
            .metric("max_batch", d.max_batch as f64)
            .metric("snapshot_refreshes", d.snapshot_refreshes as f64)
            .metric("staleness_mean_batch", ds.mean_batch())
            .metric("staleness_max_batch", ds.max_batch as f64)
            .metric("staleness_refreshes", ds.snapshot_refreshes as f64),
    );
}

/// The large-fleet scenario behind the parallel-cluster perf claim:
/// sixteen mixed-TP engines (the `chameleon_cluster16` preset: 600
/// adapters, adapter-affinity routing, elastic growth enabled) serving an
/// overload trace, run twice on the identical trace — once stepping
/// engines serially and once on the epoch-synchronised worker pool —
/// with the bit-identity of the two runs asserted on the spot. The
/// headline column is `parallel_speedup` (serial wall / parallel wall);
/// `cores` records what the host actually had, since the ratio is only
/// meaningful on multi-core machines (the PR 2/3 trajectory points came
/// from a 1-core container).
fn cluster16_macro(report: &mut BenchReport, smoke: bool) {
    // A bursty overload: the steady load keeps sixteen engines busy and
    // the mid-trace burst exceeds fleet capacity, so the (tightened)
    // controller actually grows the fleet and the scale barriers are part
    // of what the serial-vs-parallel comparison measures.
    let rps = 300.0;
    let secs = if smoke { 2.0 } else { 90.0 };
    let burst_factor = 6.0; // 6x burst for a sixth of the trace
    let mut cfg = preset::chameleon_cluster16().with_label("Chameleon-Fleet16-600");
    cfg.rank_popularity = chameleon_models::PopularityDist::power_law();
    let pool = chameleon_models::AdapterPool::generate(&cfg.llm, &cfg.pool_config());
    let trace = chameleon_core::workloads::splitwise_bursty(
        rps,
        secs,
        secs / 3.0,
        secs / 6.0,
        burst_factor,
        SEED,
        &pool,
    );
    let cores = par::default_workers();
    let workers = par::workers_from_env().unwrap_or_else(|| cores.clamp(2, 8));

    let mut serial_sim = Simulation::new(cfg.clone(), SEED);
    let (t_serial, serial) = timed(|| serial_sim.run(&trace));
    let mut parallel_sim = Simulation::new(cfg.with_parallel_cluster(workers), SEED);
    let (t_parallel, parallel) = timed(|| parallel_sim.run(&trace));
    assert_eq!(
        serial.canonical_text(),
        parallel.canonical_text(),
        "parallel cluster run diverged from serial"
    );

    let events = serial.events_processed as f64;
    let serial_eps = events / t_serial;
    let parallel_eps = events / t_parallel;
    println!(
        "  macro_cluster16_aff {:>10.0} events/s serial, {:>10.0} events/s parallel \
         ({:.2}x, {workers} workers / {cores} cores, bit-identical, +{} engines grown)",
        serial_eps,
        parallel_eps,
        t_serial / t_parallel,
        serial.routing.engines_added,
    );
    report.push(
        "macro_cluster16_affinity",
        BenchResult::new()
            .metric("engines", 16.0)
            .metric("adapters", 600.0)
            .metric("offered_rps", rps)
            .metric("trace_secs", secs)
            .metric("completed", serial.completed() as f64)
            .metric("events", events)
            .metric("engines_added", serial.routing.engines_added as f64)
            .metric("engines_drained", serial.routing.engines_drained as f64)
            .metric("workers", workers as f64)
            .metric("cores", cores as f64)
            .metric("serial_wall_secs", t_serial)
            .metric("parallel_wall_secs", t_parallel)
            .metric("serial_events_per_sec", serial_eps)
            .metric("parallel_events_per_sec", parallel_eps)
            .metric("events_per_sec", serial_eps)
            .metric("parallel_speedup", t_serial / t_parallel)
            .metric("cache_hit_rate", serial.hit_rate())
            .metric("affinity_hit_rate", serial.affinity_hit_rate())
            .metric("load_imbalance", serial.load_imbalance()),
    );
}

/// The predictive control plane's slot in the trajectory: a 4-engine
/// affinity fleet through a bursty **Zipf shift** — steady traffic over
/// one popular adapter set, then the popular set rotates by half the
/// pool and, after the predictor has seen the new regime, bursts to 8× —
/// run once reactive and once with the control plane (pre-replication
/// onto spill targets) on the *identical* trace. The `events_per_sec`
/// column tracks the control plane's overhead on the dispatch path; the
/// miss/prewarm columns track what prediction buys — spills landing on
/// warm replicas instead of cold engines.
fn predictive_burst_macro(report: &mut BenchReport, smoke: bool) {
    use chameleon_models::AdapterId;
    use chameleon_workload::Trace;

    let engines = 4;
    let rps = 20.0;
    let secs = if smoke { 4.0 } else { 120.0 };
    let cfg = preset::chameleon_cluster_partitioned(engines)
        .with_adapters(100)
        .with_label("Chameleon-DP4-Shift");
    let pool = chameleon_models::AdapterPool::generate(&cfg.llm, &cfg.pool_config());
    // Phase 1: the pool's natural Zipf-popular set. Phase 2: the same
    // workload with adapter ids rotated by half the pool (a popularity
    // shift), steady long enough to learn, then an 8x burst on it.
    let phase1_secs = secs / 3.0;
    let phase2_secs = secs - phase1_secs;
    let phase1 = chameleon_core::workloads::splitwise(rps, phase1_secs, SEED, &pool);
    let phase2 = chameleon_core::workloads::splitwise_bursty(
        rps,
        phase2_secs,
        phase2_secs / 2.0,
        phase2_secs / 4.0,
        8.0,
        SEED ^ 0x5eed,
        &pool,
    );
    let n = pool.len() as u32;
    let offset = SimDuration::from_secs_f64(phase1_secs);
    let mut reqs = phase1.requests().to_vec();
    for r in phase2.iter() {
        let shifted = AdapterId((r.adapter().0 + n / 2) % n);
        let rank = pool.get(shifted).expect("rotated id stays in pool").rank();
        reqs.push(Request::new(
            RequestId(r.id().0 + 1_000_000),
            r.arrival() + offset,
            r.input_tokens(),
            r.output_tokens(),
            shifted,
            rank,
        ));
    }
    let trace = Trace::new(reqs);

    let mut reactive_sim = Simulation::new(cfg.clone(), SEED);
    let (t_reactive, reactive) = timed(|| reactive_sim.run(&trace));
    let mut predictive_sim = Simulation::new(
        cfg.with_predictive(chameleon_core::PredictiveSpec::new())
            .with_label("Chameleon-DP4-600-Burst-Predictive"),
        SEED,
    );
    let (t_predictive, predictive) = timed(|| predictive_sim.run(&trace));

    let p = &predictive.routing.predictive;
    let reactive_eps = reactive.events_processed as f64 / t_reactive;
    let predictive_eps = predictive.events_processed as f64 / t_predictive;
    println!(
        "  macro_pred_burst    {:>10.0} events/s reactive, {:>10.0} events/s predictive \
         (misses {} -> {}, {} warms / {} hits, {t_reactive:.3}s vs {t_predictive:.3}s wall)",
        reactive_eps,
        predictive_eps,
        reactive.cache_stats.misses,
        predictive.cache_stats.misses,
        p.prewarms_issued,
        p.prewarm_hits,
    );
    report.push(
        "macro_predictive_burst",
        BenchResult::new()
            .metric("engines", engines as f64)
            .metric("adapters", pool.len() as f64)
            .metric("offered_rps", rps)
            .metric("trace_secs", secs)
            .metric("completed", reactive.completed() as f64)
            .metric("events", reactive.events_processed as f64)
            .metric("cores", par::default_workers() as f64)
            .metric("reactive_wall_secs", t_reactive)
            .metric("predictive_wall_secs", t_predictive)
            .metric("events_per_sec", reactive_eps)
            .metric("predictive_events_per_sec", predictive_eps)
            .metric("reactive_cold_misses", reactive.cache_stats.misses as f64)
            .metric(
                "predictive_cold_misses",
                predictive.cache_stats.misses as f64,
            )
            .metric("prewarms_issued", p.prewarms_issued as f64)
            .metric("prewarm_hits", p.prewarm_hits as f64)
            .metric("prewarm_hit_rate", p.prewarm_hit_rate())
            .metric("reactive_p99_ttft_s", reactive.p99_ttft())
            .metric("predictive_p99_ttft_s", predictive.p99_ttft())
            .metric("reactive_hit_rate", reactive.hit_rate())
            .metric("predictive_hit_rate", predictive.hit_rate()),
    );
}

/// P99 TTFT over **all offered** requests: anything unserved (failed or
/// shed) counts as an infinite sample, so abandonment shows up in the
/// tail instead of silently improving it.
/// The GPU-memory economy's slot in the trajectory: a memory-starved A40
/// (Llama-7B's weights leave roughly 1 GiB of KV headroom) under the
/// KV-bound Splitwise workload, run twice on the *identical* trace —
/// once with the economy only metering (the optimistic baseline:
/// allocate, fail halfway, unwind via requeue-front) and once guarded
/// (KV-aware admission refusing incompletable footprints up front, plus
/// the hybrid cache demoting running requests to hidden-state proxies
/// under pressure). The headline columns pin what the economy buys:
/// zero requeue-front storms where the baseline suffers hundreds, at an
/// offered-P99 TTFT no worse than the baseline's.
fn kv_pressure_macro(report: &mut BenchReport, smoke: bool) {
    let rps = 8.0;
    let secs = if smoke { 8.0 } else { 120.0 };
    let tight = || chameleon_models::GpuSpec::a40().with_memory_bytes(15 * (1 << 30));
    let observed_cfg = preset::chameleon_kv_observed().with_gpu(tight());
    // Threshold 0.5 so the hybrid cache engages well before the region is
    // exhausted; the admission criterion is unchanged.
    let guarded_cfg = preset::chameleon_kv_guarded()
        .with_gpu(tight())
        .with_kv(chameleon_core::KvSpec::new().with_pressure_threshold(0.5));
    let pool =
        chameleon_models::AdapterPool::generate(&observed_cfg.llm, &observed_cfg.pool_config());
    let trace = chameleon_core::workloads::splitwise(rps, secs, SEED, &pool);
    let offered = trace.len();

    let (t_observed, observed) = timed(|| Simulation::new(observed_cfg, SEED).run(&trace));
    let (t_guarded, guarded) = timed(|| Simulation::new(guarded_cfg, SEED).run(&trace));
    observed.assert_request_conservation(offered);
    guarded.assert_request_conservation(offered);
    assert_eq!(
        guarded.kv.storms, 0,
        "admission control let an optimistic unwind through"
    );
    if !smoke {
        assert!(observed.kv.storms > 0, "load is not KV-bound");
        assert!(guarded.kv.refused > 0, "admission control never engaged");
        assert!(guarded.kv.demotions > 0, "the hybrid cache never engaged");
    }

    let observed_eps = observed.events_processed as f64 / t_observed;
    let guarded_eps = guarded.events_processed as f64 / t_guarded;
    let p99_observed = p99_all_offered(&observed, offered);
    let p99_guarded = p99_all_offered(&guarded, offered);
    println!(
        "  macro_kv_pressure   {observed_eps:>10.0} events/s optimistic, {guarded_eps:>10.0} \
         events/s guarded ({} storms -> 0, {} refused, {} demoted/{} restored, \
         offered-P99 {p99_observed:.3}s -> {p99_guarded:.3}s, {t_guarded:.3}s wall)",
        observed.kv.storms, guarded.kv.refused, guarded.kv.demotions, guarded.kv.restores,
    );
    report.push(
        "macro_kv_pressure",
        BenchResult::new()
            .metric("offered", offered as f64)
            .metric("offered_rps", rps)
            .metric("trace_secs", secs)
            .metric("completed", guarded.completed() as f64)
            .metric("events", guarded.events_processed as f64)
            .metric("observed_wall_secs", t_observed)
            .metric("wall_secs", t_guarded)
            .metric("observed_events_per_sec", observed_eps)
            .metric("events_per_sec", guarded_eps)
            .metric("observed_storms", observed.kv.storms as f64)
            .metric("storms", guarded.kv.storms as f64)
            .metric("refused", guarded.kv.refused as f64)
            .metric("demotions", guarded.kv.demotions as f64)
            .metric("restores", guarded.kv.restores as f64)
            .metric("restore_bytes", guarded.kv.restore_bytes as f64)
            .metric("proxy_bytes_peak", guarded.kv.proxy_bytes_peak as f64)
            .metric("observed_pressure_peak", observed.kv.pressure_peak)
            .metric("pressure_peak", guarded.kv.pressure_peak)
            .metric("observed_squashes", observed.squashes as f64)
            .metric("squashes", guarded.squashes as f64)
            .metric("observed_p99_offered_s", p99_observed)
            .metric("p99_offered_s", p99_guarded),
    );
}

fn p99_all_offered(report: &RunReport, offered: usize) -> f64 {
    let mut xs: Vec<f64> = report
        .records
        .iter()
        .filter_map(|r| r.ttft())
        .map(|d| d.as_secs_f64())
        .collect();
    xs.resize(offered, f64::INFINITY);
    xs.sort_by(f64::total_cmp);
    xs[((offered as f64 * 0.99).ceil() as usize).max(1) - 1]
}

/// The fault plane's slot in the trajectory: the 4-engine affinity fleet
/// through a mid-burst crash of one engine, run three ways on the
/// *identical* trace — clean (no `FaultSpec`), crash + recovery (barrier
/// timeout detection, shard re-homing, retry/backoff re-dispatch, a 20×
/// shed gate), and a no-recovery ablation (zero retry budget, every
/// victim abandoned). The events/sec columns track the fault plane's
/// overhead on the dispatch path; the recovery columns pin what failover
/// buys — victim requests re-dispatched instead of failed, and an
/// offered-P99 that stays finite where the ablation's is infinite
/// (rendered `null` in the JSON).
fn failover_macro(report: &mut BenchReport, smoke: bool) {
    let engines = 4;
    let rps = 5.0;
    let secs = if smoke { 6.0 } else { 60.0 };
    // A 3x burst over the middle third; the crash lands inside it.
    let burst_start = secs * 0.32;
    let burst_secs = secs * 0.32;
    let crash_at = secs * 0.4;
    let clean_cfg = preset::chameleon_cluster_partitioned(engines);
    let recovery_cfg = clean_cfg.clone().with_fault(
        FaultSpec::new()
            .with_crash(1, SimTime::from_secs_f64(crash_at))
            .with_shedding(20.0),
    );
    let ablation_cfg = clean_cfg.clone().with_fault(
        FaultSpec::new()
            .with_crash(1, SimTime::from_secs_f64(crash_at))
            .with_retry_policy(SimDuration::from_millis(50), SimDuration::from_secs(2), 0),
    );
    let pool = chameleon_models::AdapterPool::generate(&clean_cfg.llm, &clean_cfg.pool_config());
    let trace = chameleon_core::workloads::splitwise_bursty(
        rps,
        secs,
        burst_start,
        burst_secs,
        3.0,
        SEED,
        &pool,
    );
    let offered = trace.len();

    let (t_clean, clean) = timed(|| Simulation::new(clean_cfg, SEED).run(&trace));
    let (t_recovery, recovery) = timed(|| Simulation::new(recovery_cfg, SEED).run(&trace));
    let (t_ablation, ablation) = timed(|| Simulation::new(ablation_cfg, SEED).run(&trace));
    clean.assert_request_conservation(offered);
    recovery.assert_request_conservation(offered);
    ablation.assert_request_conservation(offered);

    let f = &recovery.routing.fault;
    assert_eq!(f.engines_failed, 1, "the scheduled crash must land");
    let clean_eps = clean.events_processed as f64 / t_clean;
    let recovery_eps = recovery.events_processed as f64 / t_recovery;
    let p99_clean = p99_all_offered(&clean, offered);
    let p99_recovery = p99_all_offered(&recovery, offered);
    let p99_ablation = p99_all_offered(&ablation, offered);
    println!(
        "  macro_failover      {:>10.0} events/s clean, {:>10.0} events/s faulted \
         ({} recovered / {} failed / {} shed, MTTR {:.3}s redispatch / {:.3}s complete, \
         availability {:.1}%, {t_recovery:.3}s wall)",
        clean_eps,
        recovery_eps,
        f.requests_recovered,
        f.requests_failed,
        f.requests_shed,
        f.mttr_redispatch,
        f.mttr_complete,
        recovery.availability(offered) * 100.0,
    );
    report.push(
        "macro_failover",
        BenchResult::new()
            .metric("engines", engines as f64)
            .metric("offered", offered as f64)
            .metric("offered_rps", rps)
            .metric("trace_secs", secs)
            .metric("completed", recovery.completed() as f64)
            .metric("events", recovery.events_processed as f64)
            .metric("clean_wall_secs", t_clean)
            .metric("wall_secs", t_recovery)
            .metric("ablation_wall_secs", t_ablation)
            .metric("clean_events_per_sec", clean_eps)
            .metric("events_per_sec", recovery_eps)
            .metric("requests_recovered", f.requests_recovered as f64)
            .metric("requests_failed", f.requests_failed as f64)
            .metric("requests_shed", f.requests_shed as f64)
            .metric("retries", f.retries as f64)
            .metric("adapters_rehomed", recovery.routing.adapters_rehomed as f64)
            .metric("mttr_redispatch_secs", f.mttr_redispatch)
            .metric("mttr_complete_secs", f.mttr_complete)
            .metric("availability", recovery.availability(offered))
            .metric("ablation_availability", ablation.availability(offered))
            .metric(
                "ablation_failed",
                ablation.routing.fault.requests_failed as f64,
            )
            .metric("clean_p99_offered_s", p99_clean)
            .metric("recovery_p99_offered_s", p99_recovery)
            .metric("ablation_p99_offered_s", p99_ablation),
    );
}

/// The correlated-failure slot: the 4-engine two-rack domain fleet
/// through a whole-rack crash landing mid-burst, run twice on the
/// *identical* trace — domain-aware anti-affinity placement vs the
/// topology-blind ablation (same racks, but spill/replica second choices
/// ignore them, so ~a third of the warm copies share the primary's rack
/// and die with it). The MTTR columns come from the recovery ledger:
/// mean time from each crash to the last victim re-dispatch and to the
/// last victim completion. The efficacy ordering (anti-affinity strictly
/// beats blind on offered P99 and requests lost) is pinned at this exact
/// full-length scenario by `tests/fault_domains.rs`; the bench records
/// the trajectory numbers.
fn domain_failover_macro(report: &mut BenchReport, smoke: bool) {
    // The pinned efficacy scenario: seed 7, a 2x burst over the second
    // quarter of the trace, the rack-1 crash landing mid-burst.
    let seed = 7;
    let engines = 4;
    let rps = 6.0;
    let secs = if smoke { 10.0 } else { 40.0 };
    let burst_start = secs * 0.25;
    let burst_secs = secs * 0.25;
    let crash_at = secs * 0.35;
    let fault = || {
        FaultSpec::new()
            .with_domain_crash(1, SimTime::from_secs_f64(crash_at))
            .with_shedding(16.0)
    };
    let affine_cfg = preset::chameleon_cluster_domains(engines).with_fault(fault());
    let blind_cfg = {
        let mut cfg = preset::chameleon_cluster_domains(engines).with_fault(fault());
        let fleet = cfg.fleet.as_mut().expect("domains preset carries a fleet");
        let topo = fleet
            .topology
            .take()
            .expect("domains preset carries a topology");
        fleet.topology = Some(topo.without_anti_affinity());
        cfg.with_label("Chameleon-DP4-DomainsBlind")
    };
    let pool = chameleon_models::AdapterPool::generate(&affine_cfg.llm, &affine_cfg.pool_config());
    let trace = chameleon_core::workloads::splitwise_bursty(
        rps,
        secs,
        burst_start,
        burst_secs,
        2.0,
        seed,
        &pool,
    );
    let offered = trace.len();

    let (t_affine, affine) = timed(|| Simulation::new(affine_cfg, seed).run(&trace));
    let (t_blind, blind) = timed(|| Simulation::new(blind_cfg, seed).run(&trace));
    affine.assert_request_conservation(offered);
    blind.assert_request_conservation(offered);
    for (arm, run) in [("affine", &affine), ("blind", &blind)] {
        let f = &run.routing.fault;
        assert_eq!(f.domains_failed, 1, "{arm}: the rack crash must land");
        assert_eq!(
            f.engines_failed, 2,
            "{arm}: the crash takes both rack members"
        );
    }

    let f = &affine.routing.fault;
    let affine_eps = affine.events_processed as f64 / t_affine;
    println!(
        "  macro_domain_failover {:>8.0} events/s ({} lost affine vs {} lost blind, \
         MTTR {:.3}s redispatch / {:.3}s complete, availability {:.1}% vs {:.1}%, \
         {t_affine:.3}s wall)",
        affine_eps,
        affine.requests_lost_to_faults(),
        blind.requests_lost_to_faults(),
        f.mttr_redispatch,
        f.mttr_complete,
        affine.availability(offered) * 100.0,
        blind.availability(offered) * 100.0,
    );
    report.push(
        "macro_domain_failover",
        BenchResult::new()
            .metric("engines", engines as f64)
            .metric("offered", offered as f64)
            .metric("offered_rps", rps)
            .metric("trace_secs", secs)
            .metric("events", affine.events_processed as f64)
            .metric("wall_secs", t_affine)
            .metric("blind_wall_secs", t_blind)
            .metric("events_per_sec", affine_eps)
            .metric("requests_recovered", f.requests_recovered as f64)
            .metric("requests_lost", affine.requests_lost_to_faults() as f64)
            .metric(
                "blind_requests_lost",
                blind.requests_lost_to_faults() as f64,
            )
            .metric(
                "prewarm_hits",
                affine.routing.predictive.prewarm_hits as f64,
            )
            .metric(
                "blind_prewarm_hits",
                blind.routing.predictive.prewarm_hits as f64,
            )
            .metric("mttr_redispatch_secs", f.mttr_redispatch)
            .metric("mttr_complete_secs", f.mttr_complete)
            .metric("availability", affine.availability(offered))
            .metric("blind_availability", blind.availability(offered))
            .metric("p99_offered_s", p99_all_offered(&affine, offered))
            .metric("blind_p99_offered_s", p99_all_offered(&blind, offered)),
    );
}

/// Chaos mode: seeded random fault schedules over the three-rack,
/// six-engine domain fleet, each derived deterministically from its seed
/// through the fault plane's counter-hashed dice — the same generator the
/// `chaos_sweep` integration suite pins for bit-identity. The bench runs
/// the sweep serially and records the fault plane's aggregate cost
/// (events/sec across all schedules) plus the availability envelope, so
/// a chaos-handling regression shows up in the trajectory even when every
/// invariant still holds.
fn chaos_sweep_macro(report: &mut BenchReport, smoke: bool) {
    let schedules: u64 = if smoke { 2 } else { 8 };
    let rps = 16.0;
    let secs = if smoke { 4.0 } else { 30.0 };
    let fleet_cfg = || {
        preset::chameleon_cluster_predictive(6)
            .with_fleet(
                FleetSpec::homogeneous(6, 1)
                    .with_topology(TopologySpec::racks(&[0, 0, 1, 1, 2, 2])),
            )
            .with_label("Chameleon-DP6-Chaos")
    };

    let mut total_events = 0u64;
    let mut total_wall = 0.0f64;
    let mut min_availability = f64::INFINITY;
    let mut availability_sum = 0.0f64;
    let mut correlated = 0u64;
    for seed in 0..schedules {
        let cfg = fleet_cfg().with_fault(chaos_schedule(seed));
        let mut sim = Simulation::new(cfg, seed);
        let trace = chameleon_core::workloads::splitwise(rps, secs, seed, sim.pool());
        let offered = trace.len();
        let (wall, run) = timed(|| sim.run(&trace));
        run.assert_request_conservation(offered);
        let availability = run.availability(offered);
        total_events += run.events_processed;
        total_wall += wall;
        min_availability = min_availability.min(availability);
        availability_sum += availability;
        correlated += run.routing.fault.domains_failed + run.routing.fault.partitions;
    }
    let eps = total_events as f64 / total_wall;
    let mean_availability = availability_sum / schedules as f64;
    println!(
        "  macro_chaos_sweep   {:>10.0} events/s over {schedules} schedules \
         ({correlated} correlated faults landed, availability min {:.1}% / mean {:.1}%, \
         {total_wall:.3}s wall)",
        eps,
        min_availability * 100.0,
        mean_availability * 100.0,
    );
    report.push(
        "macro_chaos_sweep",
        BenchResult::new()
            .metric("schedules", schedules as f64)
            .metric("offered_rps", rps)
            .metric("trace_secs", secs)
            .metric("events", total_events as f64)
            .metric("wall_secs", total_wall)
            .metric("events_per_sec", eps)
            .metric("correlated_faults", correlated as f64)
            .metric("min_availability", min_availability)
            .metric("mean_availability", mean_availability),
    );
}

/// One seeded random chaos schedule — the generator the `chaos_sweep`
/// suite pins, reproduced here so the bench exercises the identical
/// distribution. Streams partition the dice so adding a fault class
/// never perturbs another's draws.
fn chaos_schedule(seed: u64) -> FaultSpec {
    let roll = |stream: u64, counter: u64| fault_roll(seed, stream, counter);
    let mut spec = FaultSpec::new().with_shedding(8.0);
    let crash_rack = (roll(1, 0) * 3.0) as u32;
    if roll(1, 1) < 0.75 {
        let at = 3.0 + roll(1, 2) * 5.0;
        spec = spec.with_domain_crash(crash_rack, SimTime::from_secs_f64(at));
    }
    if roll(2, 0) < 0.6 {
        let rack = (crash_rack + 1 + (roll(2, 1) * 2.0) as u32) % 3;
        let from = 2.0 + roll(2, 2) * 4.0;
        let until = from + 1.0 + roll(2, 3) * 3.0;
        spec = spec.with_partition(
            rack,
            SimTime::from_secs_f64(from),
            SimTime::from_secs_f64(until),
        );
    }
    if roll(3, 0) < 0.5 {
        let rack = (roll(3, 1) * 3.0) as u32;
        let from = 1.0 + roll(3, 2) * 3.0;
        let until = from + 2.0 + roll(3, 3) * 4.0;
        let factor = 1.5 + roll(3, 4) * 4.0;
        spec = spec.with_domain_brownout(
            rack,
            SimTime::from_secs_f64(from),
            SimTime::from_secs_f64(until),
            factor,
        );
    }
    if roll(4, 0) < 0.4 {
        let engine = (roll(4, 1) * 6.0) as u32;
        let at = 4.0 + roll(4, 2) * 4.0;
        spec = spec.with_crash(engine, SimTime::from_secs_f64(at));
    }
    spec
}

/// The barrier/epoch profiler's table: one profiled parallel run of the
/// 4-engine affinity cluster, broken into the coordinator's dispatch
/// wall, the epoch-stepping wall, and the worker-time parked at the
/// epoch barrier. Wall-clock only — profiling is asserted (in the engine
/// suite) never to change simulation results — so the shares are the
/// host-dependent baseline the barrier-amortisation roadmap item needs.
fn barrier_profile_table(report: &mut BenchReport, smoke: bool) {
    let engines = 4;
    let rps = 80.0;
    let secs = if smoke { 3.0 } else { 60.0 };
    let cores = par::default_workers();
    let workers = engines.min(cores.max(2));
    let mut cfg = preset::chameleon_cluster(engines)
        .with_adapters(600)
        .with_label("Chameleon-DP4-Profiled")
        .with_router(RouterPolicy::AdapterAffinity)
        .with_parallel_cluster(workers)
        .with_barrier_profiling();
    cfg.rank_popularity = chameleon_models::PopularityDist::power_law();
    let mut sim = Simulation::new(cfg, SEED);
    let trace = chameleon_core::workloads::lmsys(rps, secs, SEED, sim.pool());
    let (wall, run) = timed(|| sim.run(&trace));
    let p = run.barrier_profile.expect("profiling was enabled");
    println!(
        "  barrier_profile     workers={} epochs={} ({} pooled)\n\
         \x20                     dispatch {:>5.1}%  step {:>5.1}%  barrier-wait {:>5.1}% of pool worker-time\n\
         \x20                     mean epoch {:.1}us  run wall {wall:.3}s",
        p.workers,
        p.epochs,
        p.pool_epochs,
        p.dispatch_share() * 100.0,
        p.step_share() * 100.0,
        p.barrier_wait_share() * 100.0,
        p.mean_epoch_ns() / 1_000.0,
    );
    report.push(
        "barrier_profile",
        BenchResult::new()
            .metric("engines", engines as f64)
            .metric("workers", p.workers as f64)
            .metric("cores", cores as f64)
            .metric("epochs", p.epochs as f64)
            .metric("pool_epochs", p.pool_epochs as f64)
            .metric("run_wall_secs", p.run_wall_ns as f64 / 1e9)
            .metric("dispatch_share", p.dispatch_share())
            .metric("step_share", p.step_share())
            .metric("barrier_wait_share", p.barrier_wait_share())
            .metric("mean_epoch_us", p.mean_epoch_ns() / 1_000.0),
    );
}

/// Runs the single-engine macro-scenario with tracing on and exports the
/// windowed time-series (sliding P99 TTFT, occupancy, per-engine queue
/// depth and utilisation) as CSV and JSONL next to the bench JSON.
fn telemetry_series(out_path: &str, smoke: bool) {
    let mut cfg = preset::chameleon().with_trace(chameleon_core::TraceSpec::new());
    cfg.num_adapters = 600;
    cfg = cfg.with_label("Chameleon-600-Traced");
    let secs = if smoke { 4.0 } else { 60.0 };
    let mut sim = Simulation::new(cfg, SEED);
    let trace = chameleon_core::workloads::splitwise(12.0, secs, SEED, sim.pool());
    let run = sim.run(&trace);
    let export = chameleon_core::telemetry::collect(&run);
    let stem = out_path.strip_suffix(".json").unwrap_or(out_path);
    let csv_path = format!("{stem}_series.csv");
    let jsonl_path = format!("{stem}_series.jsonl");
    std::fs::write(&csv_path, export.to_csv()).expect("write series csv");
    std::fs::write(&jsonl_path, export.to_jsonl()).expect("write series jsonl");
    println!(
        "  telemetry_series    {} samples -> {csv_path}, {jsonl_path}",
        export.len()
    );
}

/// Heap churn: interleaved pushes and pops at a sustained queue depth,
/// the access pattern of the simulation driver.
fn event_queue_churn(report: &mut BenchReport, smoke: bool) {
    let ops: u64 = if smoke { 200_000 } else { 4_000_000 };
    let depth = 4096;
    let mut rng = SimRng::seed(7);
    let mut q: EventQueue<u64> = EventQueue::with_capacity(depth);
    let (wall, processed) = timed(|| {
        let mut clock = 0u64;
        for i in 0..depth as u64 {
            clock += rng.below(50);
            q.push(SimTime::from_nanos(clock), i);
        }
        for i in 0..ops {
            let (t, _) = q.pop().expect("queue non-empty");
            q.push(t + SimDuration::from_nanos(1 + rng.below(1000)), i);
        }
        q.clear();
        q.processed()
    });
    println!(
        "  event_queue_churn   {:>10.0} ops/s     ({processed} pops, {wall:.3}s wall)",
        processed as f64 / wall
    );
    report.push(
        "event_queue_churn",
        BenchResult::new()
            .metric("depth", depth as f64)
            .metric("ops", processed as f64)
            .metric("wall_secs", wall)
            .metric("ops_per_sec", processed as f64 / wall),
    );
}

/// One storm round: demand half the pool, evicting ~half the idle
/// adapters by policy, then reload the evicted ones.
fn run_storm(
    policy: EvictionPolicy,
    full_scan: bool,
    specs: &[AdapterSpec],
    total_bytes: u64,
    rounds: usize,
) -> (f64, u64) {
    let mut pool = MemoryPool::new(total_bytes);
    let mut cache = AdapterCache::new(policy);
    cache.set_full_scan_eviction(full_scan);
    let mut clock = 0.0;
    for spec in specs {
        clock += 0.01;
        cache
            .insert_loaded(&mut pool, spec, SimTime::from_secs_f64(clock), 0)
            .expect("pool sized to fit all");
    }
    // Touch a deterministic subset so frequency/recency terms vary.
    for (i, spec) in specs.iter().enumerate() {
        for _ in 0..(i % 5) {
            clock += 0.01;
            cache.acquire(&mut pool, spec.id(), SimTime::from_secs_f64(clock));
            cache.release(&mut pool, spec.id(), SimTime::from_secs_f64(clock));
        }
    }
    let none = HashSet::new();
    let (wall, evictions) = timed(|| {
        for _ in 0..rounds {
            clock += 1.0;
            cache.make_room(
                &mut pool,
                total_bytes / 2,
                SimTime::from_secs_f64(clock),
                &none,
            );
            for spec in specs {
                if !cache.is_resident(spec.id()) {
                    clock += 0.001;
                    cache
                        .insert_loaded(&mut pool, spec, SimTime::from_secs_f64(clock), 0)
                        .expect("room was just made");
                }
            }
        }
        cache.stats().evictions
    });
    (wall, evictions)
}

/// Eviction storm: repeated memory-pressure episodes over a 600-adapter
/// idle set, indexed path vs the pre-PR full scan, for a keyed policy
/// (LRU) and the paper's compound score.
fn eviction_storm(report: &mut BenchReport, smoke: bool) {
    let adapters = 600;
    let rounds = if smoke { 4 } else { 40 };
    let llm = LlmSpec::llama_7b();
    let specs: Vec<AdapterSpec> = (0..adapters)
        .map(|i| {
            let rank = AdapterRank::new(8 << (i % 4)); // 8..64
            AdapterSpec::new(AdapterId(i as u32), rank, &llm)
        })
        .collect();
    let total_bytes: u64 = specs.iter().map(|s| s.bytes()).sum();
    for policy in [EvictionPolicy::Lru, EvictionPolicy::chameleon()] {
        let (t_indexed, ev_indexed) = run_storm(policy, false, &specs, total_bytes, rounds);
        let (t_scan, ev_scan) = run_storm(policy, true, &specs, total_bytes, rounds);
        assert_eq!(
            ev_indexed, ev_scan,
            "indexed and full-scan storms must evict identically"
        );
        let name = format!("eviction_storm_{}", policy.name());
        println!(
            "  {name:<19} {:>9.2}x speedup  (indexed {t_indexed:.3}s vs full-scan {t_scan:.3}s, {ev_indexed} evictions)",
            t_scan / t_indexed
        );
        report.push(
            name,
            BenchResult::new()
                .metric("adapters", adapters as f64)
                .metric("rounds", rounds as f64)
                .metric("evictions", ev_indexed as f64)
                .metric("indexed_wall_secs", t_indexed)
                .metric("full_scan_wall_secs", t_scan)
                .metric("speedup", t_scan / t_indexed),
        );
    }
}

/// Refresh storm: K-means reconfiguration + re-bucketing of a deep
/// backlog, hammered back to back.
fn refresh_storm(report: &mut BenchReport, smoke: bool) {
    let rounds = if smoke { 50 } else { 1000 };
    let backlog = 4000;
    let wrs_cfg = WrsConfig::paper(2048.0, 1024.0, (256 << 20) as f64);
    let mut sched =
        ChameleonScheduler::new(ChameleonConfig::paper(SimDuration::from_secs(5)), wrs_cfg);
    // Three well-separated WRS populations so K-means settles on K=3.
    for i in 0..backlog {
        let (w, tokens) = match i % 3 {
            0 => (0.05 + (i % 7) as f64 * 0.002, 60),
            1 => (0.40 + (i % 7) as f64 * 0.002, 300),
            _ => (0.92 + (i % 7) as f64 * 0.002, 900),
        };
        let input = (tokens / 2).max(1) as u32;
        let predicted = (tokens - u64::from(input)).max(1) as u32;
        let req = Request::new(
            RequestId(i as u64),
            SimTime::from_secs_f64(i as f64 * 0.01),
            input,
            predicted,
            AdapterId((i % 97) as u32),
            AdapterRank::new(8),
        );
        sched.enqueue(QueuedRequest::new(
            req,
            predicted,
            16 << 20,
            32,
            w,
            SimTime::from_secs_f64(i as f64 * 0.01),
        ));
    }
    let probe = StaticProbe {
        total_capacity: 100_000,
        ..StaticProbe::default()
    };
    let (wall, refreshes) = timed(|| {
        for _ in 0..rounds {
            sched.on_refresh(&probe);
        }
        sched.refreshes()
    });
    assert_eq!(sched.len(), backlog, "re-bucketing lost requests");
    println!(
        "  refresh_storm       {:>10.0} refresh/s ({refreshes} refreshes over {backlog} queued, {wall:.3}s wall)",
        refreshes as f64 / wall
    );
    report.push(
        "refresh_storm",
        BenchResult::new()
            .metric("backlog", backlog as f64)
            .metric("refreshes", refreshes as f64)
            .metric("wall_secs", wall)
            .metric("refreshes_per_sec", refreshes as f64 / wall),
    );
}

/// A 6-point load sweep, serial vs the scoped-thread pool, with the
/// bit-identical guarantee re-checked on the spot.
fn sweep_scaling(report: &mut BenchReport, smoke: bool) {
    let trace_secs = if smoke { 2.0 } else { 180.0 };
    let loads = [4.0, 6.0, 8.0, 9.0, 10.5, 12.0];
    // At least 4 workers even on narrow containers: the pool and the
    // bit-identity check are exercised everywhere, and the wall-clock
    // speedup column becomes meaningful on ≥4-core hosts (`cores` below
    // records what this run actually had).
    let cores = par::default_workers();
    let workers = loads.len().min(cores.max(4));
    let sweep = LoadSweep::new(preset::chameleon(), SEED).with_trace_secs(trace_secs);
    let (t_serial, serial) = timed(|| sweep.run(&loads));
    let (t_parallel, parallel) = timed(|| sweep.run_parallel(&loads, workers));
    for (a, b) in serial.points.iter().zip(&parallel.points) {
        assert_eq!(
            a.report.canonical_text(),
            b.report.canonical_text(),
            "parallel sweep diverged from serial at rps {}",
            a.rps
        );
    }
    println!(
        "  sweep_6pt           {:>9.2}x speedup  (serial {t_serial:.3}s vs parallel {t_parallel:.3}s, {workers} workers / {cores} cores, bit-identical)",
        t_serial / t_parallel
    );
    report.push(
        "sweep_6pt",
        BenchResult::new()
            .metric("points", loads.len() as f64)
            .metric("trace_secs", trace_secs)
            .metric("workers", workers as f64)
            .metric("cores", cores as f64)
            .metric("serial_wall_secs", t_serial)
            .metric("serial_secs_per_point", t_serial / loads.len() as f64)
            .metric("parallel_wall_secs", t_parallel)
            .metric("speedup", t_serial / t_parallel),
    );
}
