//! CLI for regenerating the paper's figures.
//!
//! ```text
//! figures <fig2|fig3|fig4|fig5|fig6|fig7|fig8|fig11|fig12|fig13|fig14|
//!          fig15|fig16|fig17|fig18|fig19|fig20|fig21|fig22|fig23|fig24|
//!          fig25|all>
//! ```

use chameleon_bench::figures;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: figures <figN|all> [figM ...]");
        eprintln!("figures: fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig11 fig12 fig13");
        eprintln!("         fig14 fig15 fig16 fig17 fig18 fig19 fig20 fig21 fig22");
        eprintln!("         fig23 fig24 fig25 all");
        std::process::exit(2);
    }
    for arg in &args {
        match arg.as_str() {
            "fig2" => figures::fig2(),
            "fig3" => figures::fig3(),
            "fig4" => figures::fig4(),
            "fig5" => figures::fig5(),
            "fig6" => figures::fig6(),
            "fig7" => figures::fig7(),
            "fig8" => figures::fig8(),
            "fig11" => figures::fig11(),
            "fig12" => figures::fig12(),
            "fig13" => figures::fig13(),
            "fig14" => figures::fig14(),
            "fig15" => figures::fig15(),
            "fig16" => figures::fig16(),
            "fig17" => figures::fig17(),
            "fig18" => figures::fig18(),
            "fig19" => figures::fig19(),
            "fig20" => figures::fig20(),
            "fig21" => figures::fig21(),
            "fig22" => figures::fig22(),
            "fig23" => figures::fig23(),
            "fig24" => figures::fig24(),
            "fig25" => figures::fig25(),
            "all" => figures::all(),
            other => {
                eprintln!("unknown figure: {other}");
                std::process::exit(2);
            }
        }
    }
}
