//! `trace-overhead` — the tracing-cost gate.
//!
//! Runs the pinned 600-adapter Zipf macro-scenario twice — tracing
//! disabled and tracing enabled (flight recorder armed) — interleaved,
//! best-of-N wall each, and fails (exit 1) when the traced run's
//! events/sec falls more than `--max-overhead` (default 5%) below the
//! untraced run's. The two runs are also asserted behaviourally
//! identical (`canonical_text`), so the gate measures pure observation
//! cost, never a behaviour change:
//!
//! ```text
//! cargo run -p chameleon-bench --release --bin trace-overhead -- --smoke
//! cargo run -p chameleon-bench --release --bin trace-overhead -- \
//!     --smoke --trace-out trace-smoke.jsonl
//! ```
//!
//! `--trace-out PATH` additionally writes the traced run's merged JSONL
//! decision stream (the CI artifact). `--batched` swaps the scenario for
//! the 4-engine amortised-dispatch path (rendezvous routing with arrival
//! batching enabled), so the gate also bounds observation cost on the
//! batched dispatch plane introduced in PR 8.

use chameleon_bench::perf::timed;
use chameleon_bench::SEED;
use chameleon_core::{preset, DispatchSpec, Simulation, TraceSpec};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut smoke = false;
    let mut batched = false;
    let mut runs = 3usize;
    let mut max_overhead = 0.05f64;
    let mut trace_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--batched" => batched = true,
            "--runs" => {
                runs = args
                    .next()
                    .expect("--runs requires a count")
                    .parse()
                    .expect("runs must be a number")
            }
            "--max-overhead" => {
                max_overhead = args
                    .next()
                    .expect("--max-overhead requires a fraction")
                    .parse()
                    .expect("max-overhead must be a number")
            }
            "--trace-out" => trace_out = Some(args.next().expect("--trace-out requires a path")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: trace-overhead [--smoke] [--batched] [--runs N] \
                     [--max-overhead F] [--trace-out PATH]"
                );
                return ExitCode::SUCCESS;
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    assert!(runs > 0, "need at least one run");

    // Full mode stretches the macro-scenario to ~1s of wall per run so
    // the best-of-N comparison sits well above scheduler/timer noise;
    // smoke stays for quick local runs (too short to be a meaningful
    // wall-clock gate).
    let (base, trace) = if batched {
        // The amortised-dispatch path: a 4-engine rendezvous fleet with
        // arrival batching on, so the gate prices tracing on batched
        // barriers (dispatch_batch/retry_batch events included).
        let secs = if smoke { 4.0 } else { 400.0 };
        let cfg = preset::chameleon_cluster_rendezvous(4)
            .with_adapters(600)
            .with_dispatch(DispatchSpec::new())
            .with_label("Chameleon-DP4-600-Batched");
        let pool = Simulation::new(cfg.clone(), SEED).pool().clone();
        let trace = chameleon_core::workloads::lmsys(80.0, secs, SEED, &pool);
        (cfg, trace)
    } else {
        let secs = if smoke { 4.0 } else { 3000.0 };
        let mut cfg = preset::chameleon();
        cfg.num_adapters = 600;
        let cfg = cfg.with_label("Chameleon-600");
        let pool = Simulation::new(cfg.clone(), SEED).pool().clone();
        let trace = chameleon_core::workloads::splitwise(12.0, secs, SEED, &pool);
        (cfg, trace)
    };
    let traced_cfg = base
        .clone()
        .with_trace(TraceSpec::new().with_wasted_warm_trigger());

    let mut best_plain = f64::INFINITY;
    let mut best_traced = f64::INFINITY;
    let mut best_ratio = f64::INFINITY;
    let mut plain_text = String::new();
    let mut traced_text = String::new();
    let mut trace_jsonl = String::new();
    for round in 0..runs {
        let mut plain_sim = Simulation::new(base.clone(), SEED);
        let (t_plain, plain) = timed(|| plain_sim.run(&trace));
        let mut traced_sim = Simulation::new(traced_cfg.clone(), SEED);
        let (t_traced, traced) = timed(|| traced_sim.run(&trace));
        best_plain = best_plain.min(t_plain);
        best_traced = best_traced.min(t_traced);
        // Paired per-round ratio: both runs of a round see the same
        // ambient load, so the cleanest round's ratio is the tightest
        // upper bound on the true observation cost (a shared/1-core CI
        // host can stall either side of an *unpaired* comparison).
        best_ratio = best_ratio.min(t_traced / t_plain);
        if round == 0 {
            plain_text = plain.canonical_text();
            traced_text = traced.canonical_text();
            trace_jsonl = traced
                .trace
                .as_ref()
                .expect("traced run carries a log")
                .to_jsonl();
            assert!(!trace_jsonl.is_empty(), "traced run emitted no events");
        }
    }
    assert_eq!(
        plain_text, traced_text,
        "tracing changed simulation behaviour"
    );

    // The event count is identical by construction (asserted above), so
    // the wall ratio is exactly the events/sec ratio.
    let overhead = best_ratio - 1.0;
    println!(
        "trace-overhead[{}]: untraced {best_plain:.3}s vs traced {best_traced:.3}s \
         (best of {runs}) -> {:+.2}% wall overhead, best paired round (gate {:.0}%)",
        if batched { "batched" } else { "single" },
        overhead * 100.0,
        max_overhead * 100.0,
    );
    if let Some(path) = trace_out {
        std::fs::write(&path, &trace_jsonl).expect("write trace jsonl");
        println!(
            "trace-overhead: wrote {} ({} events)",
            path,
            trace_jsonl.lines().count()
        );
    }
    if overhead > max_overhead {
        eprintln!(
            "trace-overhead: FAIL — tracing costs {:.2}%, over the {:.0}% gate",
            overhead * 100.0,
            max_overhead * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!("trace-overhead: OK");
    ExitCode::SUCCESS
}
