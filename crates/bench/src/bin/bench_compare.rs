//! `bench-compare` — the CI regression gate over the checked-in
//! `BENCH_PR<n>.json` trajectory.
//!
//! With no file arguments it discovers the two highest-numbered
//! `BENCH_PR*.json` files in `--dir` (default `.`) and fails (exit 1)
//! when the gated metric regressed by more than the tolerance:
//!
//! ```text
//! cargo run -p chameleon-bench --release --bin bench-compare
//! cargo run -p chameleon-bench --release --bin bench-compare -- \
//!     --bench macro_zipf600 --metric events_per_sec --tolerance 0.20 \
//!     BENCH_PR2.json BENCH_PR3.json
//! ```
//!
//! Fewer than two trajectory files is a clean skip (exit 0): the first PR
//! of a trajectory has no baseline.

use chameleon_bench::compare::{compare, trajectory_files};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut dir = PathBuf::from(".");
    let mut bench = "macro_zipf600".to_string();
    let mut metric = "events_per_sec".to_string();
    let mut tolerance = 0.20f64;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dir" => dir = PathBuf::from(args.next().expect("--dir requires a path")),
            "--bench" => bench = args.next().expect("--bench requires a name"),
            "--metric" => metric = args.next().expect("--metric requires a name"),
            "--tolerance" => {
                tolerance = args
                    .next()
                    .expect("--tolerance requires a fraction")
                    .parse()
                    .expect("tolerance must be a number")
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench-compare [--dir PATH] [--bench NAME] [--metric NAME] \
                     [--tolerance F] [OLD.json NEW.json]"
                );
                return ExitCode::SUCCESS;
            }
            other => files.push(PathBuf::from(other)),
        }
    }

    let (old_path, new_path) = match files.len() {
        0 => {
            let found = trajectory_files(&dir).expect("read trajectory directory");
            if found.len() < 2 {
                println!(
                    "bench-compare: {} trajectory file(s) in {} — nothing to compare, skipping",
                    found.len(),
                    dir.display()
                );
                return ExitCode::SUCCESS;
            }
            let mut latest = found.into_iter().rev().take(2);
            let new = latest.next().expect("two files").1;
            let old = latest.next().expect("two files").1;
            (old, new)
        }
        2 => (files[0].clone(), files[1].clone()),
        n => panic!("expected 0 or 2 file arguments, got {n}"),
    };

    let old_json = std::fs::read_to_string(&old_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", old_path.display()));
    let new_json = std::fs::read_to_string(&new_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", new_path.display()));
    let cmp = compare(&old_json, &new_json, &bench, &metric).expect("comparable reports");
    println!(
        "bench-compare: {bench}.{metric}  {} -> {}  ({:+.1}%)  [{} vs {}]",
        cmp.old_value,
        cmp.new_value,
        (cmp.ratio() - 1.0) * 100.0,
        old_path.display(),
        new_path.display(),
    );
    if cmp.regressed_beyond(tolerance) {
        eprintln!(
            "bench-compare: FAIL — {bench}.{metric} regressed beyond {:.0}% \
             (kept only {:.1}% of the baseline)",
            tolerance * 100.0,
            cmp.ratio() * 100.0,
        );
        return ExitCode::FAILURE;
    }
    println!("bench-compare: OK (tolerance {:.0}%)", tolerance * 100.0);
    ExitCode::SUCCESS
}
