//! `bench-compare` — the CI regression gate over the checked-in
//! `BENCH_PR<n>.json` trajectory.
//!
//! With no file arguments it discovers the two highest-numbered
//! `BENCH_PR*.json` files in `--dir` (default `.`) and fails (exit 1)
//! when the gated metric regressed by more than the tolerance:
//!
//! ```text
//! cargo run -p chameleon-bench --release --bin bench-compare
//! cargo run -p chameleon-bench --release --bin bench-compare -- \
//!     --bench macro_zipf600 --metric events_per_sec --tolerance 0.20 \
//!     BENCH_PR2.json BENCH_PR3.json
//! ```
//!
//! Fewer than two trajectory files is a clean skip (exit 0): the first PR
//! of a trajectory has no baseline, and a *scenario* missing from the
//! baseline (introduced by a later PR) skips that comparison rather than
//! failing the gate. The summary also prints the serial/parallel cluster
//! ratio from the fresh report when the `macro_cluster16_affinity`
//! scenario carries one, the barrier/epoch breakdown when
//! `barrier_profile` was measured, and the fault-plane recovery summary
//! when `macro_failover` was.

use chameleon_bench::compare::{compare_tolerant, parse_metric, trajectory_files, GateOutcome};
use std::path::PathBuf;
use std::process::ExitCode;

/// Prints the fresh report's serial/parallel cluster execution ratio, if
/// the parallel-cluster scenario was measured.
fn print_cluster_ratio(new_json: &str) {
    let bench = "macro_cluster16_affinity";
    let (Some(serial), Some(parallel), Some(speedup)) = (
        parse_metric(new_json, bench, "serial_events_per_sec"),
        parse_metric(new_json, bench, "parallel_events_per_sec"),
        parse_metric(new_json, bench, "parallel_speedup"),
    ) else {
        return;
    };
    let cores = parse_metric(new_json, bench, "cores").unwrap_or(0.0);
    let workers = parse_metric(new_json, bench, "workers").unwrap_or(0.0);
    println!(
        "bench-compare: {bench} serial/parallel cluster ratio: \
         {serial:.0} -> {parallel:.0} events/s ({speedup:.2}x with {workers:.0} workers on {cores:.0} cores)"
    );
}

/// Prints the fresh report's barrier/epoch wall-clock breakdown, when
/// the profiled scenario was measured, and its epoch-cost movement
/// against the baseline. Baselines recorded before the profiler existed
/// lack the scenario entirely — that is the tolerated
/// [`GateOutcome::MissingBaseline`] case, never a failure.
fn print_barrier_profile(old_json: &str, new_json: &str) {
    let bench = "barrier_profile";
    let (Some(dispatch), Some(step), Some(wait)) = (
        parse_metric(new_json, bench, "dispatch_share"),
        parse_metric(new_json, bench, "step_share"),
        parse_metric(new_json, bench, "barrier_wait_share"),
    ) else {
        return;
    };
    let epochs = parse_metric(new_json, bench, "epochs").unwrap_or(0.0);
    let pooled = parse_metric(new_json, bench, "pool_epochs").unwrap_or(0.0);
    println!(
        "bench-compare: {bench}: dispatch {:.1}% / step {:.1}% of run wall, \
         barrier-wait {:.1}% of pool worker-time ({epochs:.0} epochs, {pooled:.0} pooled)",
        dispatch * 100.0,
        step * 100.0,
        wait * 100.0,
    );
    match compare_tolerant(old_json, new_json, bench, "mean_epoch_us") {
        Ok(GateOutcome::Compared(cmp)) => println!(
            "bench-compare: {bench}.mean_epoch_us  {:.1} -> {:.1}  ({:+.1}%, informational)",
            cmp.old_value,
            cmp.new_value,
            (cmp.ratio() - 1.0) * 100.0,
        ),
        Ok(GateOutcome::MissingBaseline) => println!(
            "bench-compare: {bench} absent from baseline — profiler introduced after \
             that trajectory point, skipping the epoch-cost comparison"
        ),
        Err(_) => {}
    }
}

/// Prints the fresh report's failover summary, when the fault-plane
/// scenario was measured, and its faulted-throughput movement against
/// the baseline. Baselines recorded before the fault plane existed lack
/// the scenario entirely — the tolerated [`GateOutcome::MissingBaseline`]
/// case, never a failure.
fn print_failover(old_json: &str, new_json: &str) {
    let bench = "macro_failover";
    let (Some(recovered), Some(failed), Some(availability)) = (
        parse_metric(new_json, bench, "requests_recovered"),
        parse_metric(new_json, bench, "requests_failed"),
        parse_metric(new_json, bench, "availability"),
    ) else {
        return;
    };
    let shed = parse_metric(new_json, bench, "requests_shed").unwrap_or(0.0);
    let clean_p99 = parse_metric(new_json, bench, "clean_p99_offered_s");
    let recovery_p99 = parse_metric(new_json, bench, "recovery_p99_offered_s");
    // An infinite P99 (unserved requests in the tail) renders as `null`
    // in the JSON and parses as absent.
    let p99 = |v: Option<f64>| match v {
        Some(x) => format!("{x:.3}s"),
        None => "inf".to_string(),
    };
    // MTTR columns arrived with the fault-domain work; baselines recorded
    // before then lack them and render "n/a" rather than failing the gate.
    let mttr = |v: Option<f64>| match v {
        Some(x) => format!("{x:.3}s"),
        None => "n/a".to_string(),
    };
    let mttr_redispatch = parse_metric(new_json, bench, "mttr_redispatch_secs");
    let mttr_complete = parse_metric(new_json, bench, "mttr_complete_secs");
    println!(
        "bench-compare: {bench}: {recovered:.0} recovered / {failed:.0} failed / {shed:.0} shed \
         (availability {:.1}%), offered-P99 {} clean -> {} with recovery, \
         MTTR {} redispatch / {} complete",
        availability * 100.0,
        p99(clean_p99),
        p99(recovery_p99),
        mttr(mttr_redispatch),
        mttr(mttr_complete),
    );
    match compare_tolerant(old_json, new_json, bench, "events_per_sec") {
        Ok(GateOutcome::Compared(cmp)) => println!(
            "bench-compare: {bench}.events_per_sec  {:.0} -> {:.0}  ({:+.1}%, informational)",
            cmp.old_value,
            cmp.new_value,
            (cmp.ratio() - 1.0) * 100.0,
        ),
        Ok(GateOutcome::MissingBaseline) => println!(
            "bench-compare: {bench} absent from baseline — fault plane introduced after \
             that trajectory point, skipping the throughput comparison"
        ),
        Err(_) => {}
    }
}

/// Prints the fresh report's correlated-failure summary, when the
/// domain-failover scenario was measured, and its faulted-throughput
/// movement against the baseline. Baselines recorded before fault
/// domains existed lack the scenario entirely — the tolerated
/// [`GateOutcome::MissingBaseline`] case, never a failure.
fn print_domain_failover(old_json: &str, new_json: &str) {
    let bench = "macro_domain_failover";
    let (Some(lost), Some(blind_lost), Some(availability)) = (
        parse_metric(new_json, bench, "requests_lost"),
        parse_metric(new_json, bench, "blind_requests_lost"),
        parse_metric(new_json, bench, "availability"),
    ) else {
        return;
    };
    let mttr = |name: &str| match parse_metric(new_json, bench, name) {
        Some(x) => format!("{x:.3}s"),
        None => "n/a".to_string(),
    };
    println!(
        "bench-compare: {bench}: {lost:.0} lost with anti-affinity vs {blind_lost:.0} \
         topology-blind (availability {:.1}%), MTTR {} redispatch / {} complete",
        availability * 100.0,
        mttr("mttr_redispatch_secs"),
        mttr("mttr_complete_secs"),
    );
    match compare_tolerant(old_json, new_json, bench, "events_per_sec") {
        Ok(GateOutcome::Compared(cmp)) => println!(
            "bench-compare: {bench}.events_per_sec  {:.0} -> {:.0}  ({:+.1}%, informational)",
            cmp.old_value,
            cmp.new_value,
            (cmp.ratio() - 1.0) * 100.0,
        ),
        Ok(GateOutcome::MissingBaseline) => println!(
            "bench-compare: {bench} absent from baseline — fault domains introduced after \
             that trajectory point, skipping the throughput comparison"
        ),
        Err(_) => {}
    }
}

/// Prints the fresh report's amortised-dispatch summary, when the
/// batched-dispatch scenario was measured, and its batched-throughput
/// movement against the baseline. Baselines recorded before dispatch
/// batching existed lack the scenario entirely — the tolerated
/// [`GateOutcome::MissingBaseline`] case, never a failure.
fn print_batched_dispatch(old_json: &str, new_json: &str) {
    let bench = "macro_batched_dispatch";
    let (Some(per_arrival), Some(batched), Some(mean_batch)) = (
        parse_metric(new_json, bench, "per_arrival_events_per_sec"),
        parse_metric(new_json, bench, "events_per_sec"),
        parse_metric(new_json, bench, "mean_batch"),
    ) else {
        return;
    };
    let stale = parse_metric(new_json, bench, "staleness_events_per_sec").unwrap_or(0.0);
    let stale_batch = parse_metric(new_json, bench, "staleness_mean_batch").unwrap_or(0.0);
    let speedup = parse_metric(new_json, bench, "batched_speedup").unwrap_or(0.0);
    let par_speedup = parse_metric(new_json, bench, "parallel_batched_speedup").unwrap_or(0.0);
    println!(
        "bench-compare: {bench}: {per_arrival:.0} -> {batched:.0} events/s batched \
         ({speedup:.2}x serial, {par_speedup:.2}x parallel, mean batch {mean_batch:.1}), \
         {stale:.0} events/s bounded-staleness (mean batch {stale_batch:.1})"
    );
    match compare_tolerant(old_json, new_json, bench, "events_per_sec") {
        Ok(GateOutcome::Compared(cmp)) => println!(
            "bench-compare: {bench}.events_per_sec  {:.0} -> {:.0}  ({:+.1}%, informational)",
            cmp.old_value,
            cmp.new_value,
            (cmp.ratio() - 1.0) * 100.0,
        ),
        Ok(GateOutcome::MissingBaseline) => println!(
            "bench-compare: {bench} absent from baseline — dispatch batching introduced \
             after that trajectory point, skipping the throughput comparison"
        ),
        Err(_) => {}
    }
}

/// Prints the fresh report's GPU-memory-economy summary, when the
/// KV-pressure scenario was measured, and its guarded-throughput movement
/// against the baseline. Baselines recorded before the memory economy
/// existed lack the scenario entirely — the tolerated
/// [`GateOutcome::MissingBaseline`] case, never a failure.
fn print_kv_pressure(old_json: &str, new_json: &str) {
    let bench = "macro_kv_pressure";
    let (Some(observed_storms), Some(storms), Some(refused)) = (
        parse_metric(new_json, bench, "observed_storms"),
        parse_metric(new_json, bench, "storms"),
        parse_metric(new_json, bench, "refused"),
    ) else {
        return;
    };
    let demotions = parse_metric(new_json, bench, "demotions").unwrap_or(0.0);
    let restores = parse_metric(new_json, bench, "restores").unwrap_or(0.0);
    // An infinite P99 (unserved requests in the tail) renders as `null`
    // in the JSON and parses as absent.
    let p99 = |name: &str| match parse_metric(new_json, bench, name) {
        Some(x) => format!("{x:.3}s"),
        None => "inf".to_string(),
    };
    println!(
        "bench-compare: {bench}: {observed_storms:.0} requeue-front storms -> {storms:.0} \
         guarded ({refused:.0} refused, {demotions:.0} demoted / {restores:.0} restored), \
         offered-P99 {} optimistic -> {} guarded",
        p99("observed_p99_offered_s"),
        p99("p99_offered_s"),
    );
    match compare_tolerant(old_json, new_json, bench, "events_per_sec") {
        Ok(GateOutcome::Compared(cmp)) => println!(
            "bench-compare: {bench}.events_per_sec  {:.0} -> {:.0}  ({:+.1}%, informational)",
            cmp.old_value,
            cmp.new_value,
            (cmp.ratio() - 1.0) * 100.0,
        ),
        Ok(GateOutcome::MissingBaseline) => println!(
            "bench-compare: {bench} absent from baseline — the memory economy was \
             introduced after that trajectory point, skipping the throughput comparison"
        ),
        Err(_) => {}
    }
}

fn main() -> ExitCode {
    let mut dir = PathBuf::from(".");
    let mut bench = "macro_zipf600".to_string();
    let mut metric = "events_per_sec".to_string();
    let mut tolerance = 0.20f64;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dir" => dir = PathBuf::from(args.next().expect("--dir requires a path")),
            "--bench" => bench = args.next().expect("--bench requires a name"),
            "--metric" => metric = args.next().expect("--metric requires a name"),
            "--tolerance" => {
                tolerance = args
                    .next()
                    .expect("--tolerance requires a fraction")
                    .parse()
                    .expect("tolerance must be a number")
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench-compare [--dir PATH] [--bench NAME] [--metric NAME] \
                     [--tolerance F] [OLD.json NEW.json]"
                );
                return ExitCode::SUCCESS;
            }
            other => files.push(PathBuf::from(other)),
        }
    }

    let (old_path, new_path) = match files.len() {
        0 => {
            let found = trajectory_files(&dir).expect("read trajectory directory");
            if found.len() < 2 {
                println!(
                    "bench-compare: {} trajectory file(s) in {} — nothing to compare, skipping",
                    found.len(),
                    dir.display()
                );
                return ExitCode::SUCCESS;
            }
            let mut latest = found.into_iter().rev().take(2);
            let new = latest.next().expect("two files").1;
            let old = latest.next().expect("two files").1;
            (old, new)
        }
        2 => (files[0].clone(), files[1].clone()),
        n => panic!("expected 0 or 2 file arguments, got {n}"),
    };

    let old_json = std::fs::read_to_string(&old_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", old_path.display()));
    let new_json = std::fs::read_to_string(&new_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", new_path.display()));
    let cmp = match compare_tolerant(&old_json, &new_json, &bench, &metric)
        .expect("comparable reports")
    {
        GateOutcome::Compared(cmp) => cmp,
        GateOutcome::MissingBaseline => {
            println!(
                "bench-compare: {bench}.{metric} absent from baseline {} — \
                 new scenario, skipping the gate",
                old_path.display()
            );
            print_cluster_ratio(&new_json);
            print_barrier_profile(&old_json, &new_json);
            print_failover(&old_json, &new_json);
            print_domain_failover(&old_json, &new_json);
            print_batched_dispatch(&old_json, &new_json);
            print_kv_pressure(&old_json, &new_json);
            return ExitCode::SUCCESS;
        }
    };
    println!(
        "bench-compare: {bench}.{metric}  {} -> {}  ({:+.1}%)  [{} vs {}]",
        cmp.old_value,
        cmp.new_value,
        (cmp.ratio() - 1.0) * 100.0,
        old_path.display(),
        new_path.display(),
    );
    print_cluster_ratio(&new_json);
    print_barrier_profile(&old_json, &new_json);
    print_failover(&old_json, &new_json);
    print_domain_failover(&old_json, &new_json);
    print_batched_dispatch(&old_json, &new_json);
    print_kv_pressure(&old_json, &new_json);
    if cmp.regressed_beyond(tolerance) {
        eprintln!(
            "bench-compare: FAIL — {bench}.{metric} regressed beyond {:.0}% \
             (kept only {:.1}% of the baseline)",
            tolerance * 100.0,
            cmp.ratio() * 100.0,
        );
        return ExitCode::FAILURE;
    }
    println!("bench-compare: OK (tolerance {:.0}%)", tolerance * 100.0);
    ExitCode::SUCCESS
}
