//! CLI for the design-choice ablations (DESIGN.md §5).
//!
//! ```text
//! cargo run -p chameleon-bench --release --bin ablations
//! ```

use chameleon_core::ablation;

fn main() {
    // High load exposes scheduling differences; medium load suffices for
    // cache-weight sensitivity.
    let seed = 42;
    ablation::print_table(
        "WRS polynomial degree (paper: degree-2 up to 10 % better)",
        &ablation::wrs_degree(10.5, 180.0, seed),
    );
    ablation::print_table(
        "Cache eviction weighting under pressure (400 adapters)",
        &ablation::frs_weights(9.0, 180.0, seed),
    );
    ablation::print_table(
        "Opportunistic bypass (§4.3.3)",
        &ablation::bypass_effect(12.0, 180.0, seed),
    );
    ablation::print_table(
        "Queue-count cap K_max (paper: 4)",
        &ablation::k_max_effect(10.5, 180.0, seed),
    );
}
