//! The PR-over-PR bench regression gate.
//!
//! `BENCH_PR<n>.json` files (written by the `chameleon-bench` binary) form
//! the checked-in performance trajectory. This module reads two of them —
//! normally the two highest-numbered in the repository root — and fails
//! when a headline metric regressed beyond a tolerance. The `bench-compare`
//! binary wraps it for CI.
//!
//! The JSON is the harness's own flat two-level format (see
//! [`crate::perf::BenchReport::to_json`]); the reader here is a minimal
//! scanner for exactly that shape, not a general JSON parser (the
//! workspace's `serde` is an offline no-op stub).

use std::path::{Path, PathBuf};

/// Reads `bench.metric` out of a `BENCH_*.json` string.
pub fn parse_metric(json: &str, bench: &str, metric: &str) -> Option<f64> {
    let bench_key = format!("\"{bench}\":");
    let start = json.find(&bench_key)? + bench_key.len();
    let body = &json[start..];
    let open = body.find('{')?;
    let close = body.find('}')?;
    let section = &body[open + 1..close];
    let metric_key = format!("\"{metric}\":");
    let at = section.find(&metric_key)? + metric_key.len();
    let raw = section[at..]
        .trim_start()
        .split([',', '\n', '}'])
        .next()?
        .trim();
    raw.parse().ok()
}

/// One old-vs-new reading of a metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparison {
    /// The baseline (older trajectory point).
    pub old_value: f64,
    /// The fresh value under test.
    pub new_value: f64,
}

impl Comparison {
    /// `new / old` (∞ when the baseline is 0).
    pub fn ratio(&self) -> f64 {
        if self.old_value == 0.0 {
            f64::INFINITY
        } else {
            self.new_value / self.old_value
        }
    }

    /// True when the new value regressed by more than `tolerance`
    /// (e.g. `0.20` fails only below 80% of the baseline). Only applies
    /// to higher-is-better metrics, which every gated metric is.
    pub fn regressed_beyond(&self, tolerance: f64) -> bool {
        self.new_value < self.old_value * (1.0 - tolerance)
    }
}

/// Compares `bench.metric` across two bench JSON strings.
pub fn compare(
    old_json: &str,
    new_json: &str,
    bench: &str,
    metric: &str,
) -> Result<Comparison, String> {
    match compare_tolerant(old_json, new_json, bench, metric)? {
        GateOutcome::Compared(c) => Ok(c),
        GateOutcome::MissingBaseline => Err(format!("baseline is missing {bench}.{metric}")),
    }
}

/// Outcome of a baseline-tolerant comparison (see [`compare_tolerant`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GateOutcome {
    /// Both trajectory points carry the metric.
    Compared(Comparison),
    /// The *baseline* lacks the scenario — it was introduced after that
    /// trajectory point was recorded. New scenarios must not fail the
    /// gate, so this is a clean skip, not an error.
    MissingBaseline,
}

/// Like [`compare`], but a scenario absent from the **old** report is a
/// [`GateOutcome::MissingBaseline`] skip instead of an error; a metric
/// absent from the **fresh** report is still an error (the scenario
/// should have been measured).
///
/// The skip is deliberately narrow so the gate fails *closed* on damaged
/// input: the baseline must still look like a bench report (carry the
/// `"results"` object) and must not mention the scenario at all. A
/// baseline that is truncated/corrupt, or that carries the bench section
/// but not the metric, is an error — otherwise a mangled
/// `BENCH_PR*.json` would silently wave a real regression through.
pub fn compare_tolerant(
    old_json: &str,
    new_json: &str,
    bench: &str,
    metric: &str,
) -> Result<GateOutcome, String> {
    let Some(old_value) = parse_metric(old_json, bench, metric) else {
        let looks_like_report = old_json.contains("\"results\"");
        let has_bench_section = old_json.contains(&format!("\"{bench}\":"));
        return if looks_like_report && !has_bench_section {
            Ok(GateOutcome::MissingBaseline)
        } else {
            Err(format!(
                "baseline is missing {bench}.{metric} (corrupt or truncated baseline?)"
            ))
        };
    };
    let new_value = parse_metric(new_json, bench, metric)
        .ok_or_else(|| format!("fresh report is missing {bench}.{metric}"))?;
    Ok(GateOutcome::Compared(Comparison {
        old_value,
        new_value,
    }))
}

/// The `BENCH_PR<n>.json` files under `dir`, sorted by `n` ascending.
pub fn trajectory_files(dir: &Path) -> std::io::Result<Vec<(u32, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(n) = name
            .strip_prefix("BENCH_PR")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|n| n.parse::<u32>().ok())
        {
            out.push((n, path));
        }
    }
    out.sort_by_key(|&(n, _)| n);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::{BenchReport, BenchResult};

    fn json(events_per_sec: f64) -> String {
        let mut rep = BenchReport::new("PRX", false);
        rep.push(
            "macro_zipf600",
            BenchResult::new()
                .metric("adapters", 600.0)
                .metric("events_per_sec", events_per_sec)
                .metric("cache_hit_rate", 0.65),
        );
        rep.push("other", BenchResult::new().metric("events_per_sec", 1.0));
        rep.to_json()
    }

    #[test]
    fn parses_the_harness_format_round_trip() {
        let j = json(80_889.407383);
        assert_eq!(
            parse_metric(&j, "macro_zipf600", "events_per_sec"),
            Some(80_889.407383)
        );
        assert_eq!(parse_metric(&j, "macro_zipf600", "adapters"), Some(600.0));
        // The right section is scanned, not the first match anywhere.
        assert_eq!(parse_metric(&j, "other", "events_per_sec"), Some(1.0));
        assert_eq!(parse_metric(&j, "macro_zipf600", "missing"), None);
        assert_eq!(parse_metric(&j, "nope", "events_per_sec"), None);
    }

    #[test]
    fn gate_fails_only_past_tolerance() {
        let c = compare(
            &json(100_000.0),
            &json(81_000.0),
            "macro_zipf600",
            "events_per_sec",
        )
        .unwrap();
        assert!(!c.regressed_beyond(0.20), "-19% is inside a 20% gate");
        let c = compare(
            &json(100_000.0),
            &json(79_000.0),
            "macro_zipf600",
            "events_per_sec",
        )
        .unwrap();
        assert!(c.regressed_beyond(0.20), "-21% must fail a 20% gate");
        assert!((c.ratio() - 0.79).abs() < 1e-12);
        // Improvements always pass.
        let c = compare(
            &json(100_000.0),
            &json(300_000.0),
            "macro_zipf600",
            "events_per_sec",
        )
        .unwrap();
        assert!(!c.regressed_beyond(0.20));
    }

    #[test]
    fn missing_metrics_are_reported() {
        let err = compare("{}", &json(1.0), "macro_zipf600", "events_per_sec").unwrap_err();
        assert!(err.contains("baseline"));
    }

    #[test]
    fn new_scenarios_skip_cleanly_against_old_baselines() {
        // Scenario absent from the baseline: tolerated (introduced later).
        let out = compare_tolerant(&json(1.0), &json(2.0), "brand_new_bench", "events_per_sec")
            .expect("missing baseline is not an error");
        assert_eq!(out, GateOutcome::MissingBaseline);
        // Absent from the fresh report: still a hard error.
        let err = compare_tolerant(&json(1.0), "{}", "macro_zipf600", "events_per_sec")
            .expect_err("fresh report must carry the gated metric");
        assert!(err.contains("fresh report"));
        // Present in both: behaves exactly like `compare`.
        let out =
            compare_tolerant(&json(100.0), &json(90.0), "macro_zipf600", "events_per_sec").unwrap();
        match out {
            GateOutcome::Compared(c) => assert_eq!(c.new_value, 90.0),
            other => panic!("expected comparison, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_baselines_fail_closed_not_open() {
        // Not a bench report at all: error, never a skip.
        let err = compare_tolerant("{}", &json(1.0), "macro_zipf600", "events_per_sec")
            .expect_err("an empty baseline must not skip the gate");
        assert!(err.contains("baseline"));
        // Truncated mid-section: the bench key survives but the metric is
        // gone — also an error, not a skip.
        let full = json(100.0);
        let cut = &full[..full.find("events_per_sec").expect("metric present")];
        let err = compare_tolerant(cut, &json(1.0), "macro_zipf600", "events_per_sec")
            .expect_err("a truncated baseline must not skip the gate");
        assert!(err.contains("corrupt or truncated"));
    }

    #[test]
    fn trajectory_discovery_sorts_numerically() {
        let dir = std::env::temp_dir().join(format!("bench-compare-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for n in [10, 2, 3] {
            std::fs::write(dir.join(format!("BENCH_PR{n}.json")), json(n as f64)).unwrap();
        }
        std::fs::write(dir.join("BENCH_PRx.json"), "junk").unwrap();
        std::fs::write(dir.join("other.json"), "junk").unwrap();
        let files = trajectory_files(&dir).unwrap();
        let ns: Vec<u32> = files.iter().map(|&(n, _)| n).collect();
        assert_eq!(ns, vec![2, 3, 10], "numeric, not lexicographic");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
