//! One function per figure of the paper.
//!
//! Each function reruns the experiment behind the figure and prints the
//! rows/series the paper plots, plus the headline comparison the text
//! quotes. All experiments are deterministic given [`crate::SEED`].

use crate::{header, pool_of, row, run_at, run_trace, SEED, TRACE_SECS};
use chameleon_core::{preset, workloads, RunReport, SystemConfig};
use chameleon_gpu::CostModel;
use chameleon_metrics::summary::throughput_at_slo;
use chameleon_models::{AdapterRank, GpuSpec, LlmSpec, PoolConfig, PopularityDist};
use chameleon_simcore::stats::{percentile, Ecdf};
use chameleon_simcore::{SimDuration, SimRng, SimTime};
use chameleon_workload::{ArrivalModel, LengthModel, TraceGenerator};

/// Medium prompt length used by the single-request studies (Figures 2/5).
const MEDIUM_PROMPT: u64 = 256;

/// Figure 2: TTFT of a single medium request vs adapter rank, decomposed
/// into base execution, adapter execution and adapter loading.
pub fn fig2() {
    println!("== Figure 2: single-request TTFT breakdown by adapter rank ==");
    println!(
        "paper: 74 ms (r8) -> 144 ms (r128); loading ~17.5 % and adapter exec ~40 % at r128\n"
    );
    let cost = CostModel::new(LlmSpec::llama_7b(), GpuSpec::a40(), 1);
    println!(
        "{}",
        header(
            "rank",
            ["base_ms", "exec_ms", "load_ms", "ttft_ms", "load_%", "exec_%"]
                .map(String::from)
                .as_ref()
        )
    );
    for rank in AdapterRank::PAPER_SET {
        let b = cost.prefill_breakdown(MEDIUM_PROMPT, rank);
        let total = b.total().as_millis_f64();
        println!(
            "{}",
            row(
                &rank.to_string(),
                &[
                    b.base_exec.as_millis_f64(),
                    b.adapter_exec.as_millis_f64(),
                    b.adapter_load.as_millis_f64(),
                    total,
                    b.adapter_load.as_millis_f64() / total * 100.0,
                    b.adapter_exec.as_millis_f64() / total * 100.0,
                ]
            )
        );
    }
    println!();
}

/// Figure 3: TTFT vs input size for each adapter rank (adapter preloaded).
pub fn fig3() {
    println!("== Figure 3: TTFT (s) vs input size per adapter rank (warm adapter) ==");
    println!("paper: linear in input; the rank gap widens with input size\n");
    let cost = CostModel::new(LlmSpec::llama_7b(), GpuSpec::a40(), 1);
    let inputs = [250u64, 500, 750, 1000, 1250, 1500, 1750, 2000];
    println!(
        "{}",
        header("rank \\ input", inputs.map(|i| i.to_string()).as_ref())
    );
    for rank in AdapterRank::PAPER_SET.iter().rev() {
        let cells: Vec<f64> = inputs
            .iter()
            .map(|&tokens| {
                cost.prefill_time(&[chameleon_gpu::cost::PrefillItem {
                    tokens: tokens as u32,
                    rank: Some(*rank),
                }])
                .as_secs_f64()
            })
            .collect();
        println!("{}", row(&rank.to_string(), &cells));
    }
    println!();
}

/// Figure 4: normalised PCIe bandwidth under different loads for 1 / 50 /
/// 500 uniformly popular rank-32 adapters.
pub fn fig4() {
    println!("== Figure 4: normalised PCIe bandwidth vs load (S-LoRA) ==");
    println!("paper: LoRA-500 consumes orders of magnitude more PCIe bandwidth than LoRA-1\n");
    let loads = [5.0, 6.0, 7.0, 8.0];
    let mut table: Vec<(String, Vec<f64>, Vec<f64>)> = Vec::new();
    let mut baseline = f64::NAN;
    for &n in &[1usize, 50, 500] {
        let mut cells = Vec::new();
        let mut abs = Vec::new();
        for &rps in &loads {
            let mut cfg = preset::slora().with_adapters(n);
            // Rank-32 only (§3.2's setup), uniform popularity.
            cfg.within_rank_popularity = PopularityDist::Uniform;
            cfg.label = format!("LoRA-{n}");
            let mut sim = chameleon_core::sim::Simulation::new(cfg.clone(), SEED);
            // Single-rank pool: restrict ranks to 32.
            let pool = chameleon_models::AdapterPool::generate(
                &cfg.llm,
                &PoolConfig {
                    num_adapters: n,
                    ranks: vec![AdapterRank::new(32)],
                    rank_popularity: PopularityDist::Uniform,
                    within_rank_popularity: PopularityDist::Uniform,
                },
            );
            let gen = TraceGenerator::new(
                LengthModel::Custom {
                    input: chameleon_workload::generator::TokenLengthModel {
                        median: 128.0,
                        sigma: 0.9,
                        min: 4,
                        max: 1024,
                    },
                    output: chameleon_workload::generator::TokenLengthModel {
                        median: 32.0,
                        sigma: 0.9,
                        min: 2,
                        max: 512,
                    },
                },
                ArrivalModel::poisson(rps),
            );
            let mut rng = SimRng::seed(SEED);
            let trace = gen.generate(&pool, SimTime::from_secs_f64(TRACE_SECS), &mut rng);
            // Note: Simulation owns its own pool; rebuild with matching count.
            let report = sim.run(&trace);
            let bw = report.pcie_mean_bandwidth();
            if n == 1 && rps == 5.0 {
                baseline = bw.max(1.0);
            }
            cells.push(bw / baseline);
            abs.push(bw / 1e6);
        }
        table.push((format!("LoRA-{n}"), cells, abs));
    }
    println!(
        "{}",
        header("pool \\ RPS", loads.map(|l| format!("{l}")).as_ref())
    );
    for (label, cells, _) in &table {
        println!("{}", row(label, cells));
    }
    println!("\nabsolute consumed bandwidth (MB/s):");
    for (label, _, abs) in &table {
        println!("{}", row(label, abs));
    }
    println!();
}

/// Figure 5: fraction of TTFT spent loading the adapter for Llama-70B
/// under tensor parallelism 2/4/8.
pub fn fig5() {
    println!("== Figure 5: adapter-loading fraction of TTFT, Llama-70B, TP 2/4/8 ==");
    println!("paper: fraction grows with both TP degree and rank (68 % at rank 32 / TP4)\n");
    println!(
        "{}",
        header(
            "rank \\ TP",
            ["TP2", "TP4", "TP8"].map(String::from).as_ref()
        )
    );
    for rank in AdapterRank::PAPER_SET {
        let cells: Vec<f64> = [2u32, 4, 8]
            .iter()
            .map(|&tp| {
                let cost = CostModel::new(LlmSpec::llama_70b(), GpuSpec::a100_80gb(), tp);
                let b = cost.prefill_breakdown(MEDIUM_PROMPT, rank);
                b.adapter_load.as_secs_f64() / b.total().as_secs_f64()
            })
            .collect();
        println!("{}", row(&rank.to_string(), &cells));
    }
    println!();
}

/// Figure 6: GPU memory occupancy over time under the Splitwise trace.
pub fn fig6() {
    println!("== Figure 6: GPU memory over time (GB) ==");
    println!("paper: abundant but fluctuating idle memory above BaseLLM+KV\n");
    let report = run_at(preset::chameleon(), crate::LOAD_MEDIUM, 300.0, SEED);
    println!(
        "{}",
        header(
            "t(s)",
            ["base", "base+kv", "+adapters", "+cache", "capacity"]
                .map(String::from)
                .as_ref()
        )
    );
    let gb = |b: u64| b as f64 / (1u64 << 30) as f64;
    for sample in report.mem_series.iter().step_by(15) {
        println!(
            "{}",
            row(
                &format!("{:.0}", sample.at.as_secs_f64()),
                &[
                    gb(sample.weights),
                    gb(sample.weights + sample.kv),
                    gb(sample.weights + sample.kv + sample.adapters_in_use),
                    gb(sample.total_used()),
                    gb(sample.capacity),
                ]
            )
        );
    }
    println!();
}

/// Figure 7: CDFs of isolated TTFT and E2E latency, base-only vs +LoRA.
pub fn fig7() {
    println!("== Figure 7: CDF of isolated TTFT / E2E latency (base vs +LoRA) ==");
    println!("paper: heavy-tailed; LoRA visibly inflates the tail\n");
    let cfg = preset::slora();
    let pool = pool_of(&cfg);
    let trace = workloads::splitwise(5.0, 400.0, SEED, &pool);
    let cost = CostModel::new(cfg.llm.clone(), cfg.gpu.clone(), 1);
    let collect = |with_lora: bool| -> (Vec<f64>, Vec<f64>) {
        let mut ttft = Vec::new();
        let mut e2e = Vec::new();
        for req in trace.iter() {
            let iso = chameleon_core::isolated::isolated(&cost, req, with_lora);
            ttft.push(iso.ttft.as_secs_f64());
            e2e.push(iso.e2e.as_secs_f64());
        }
        (ttft, e2e)
    };
    let (bt, be) = collect(false);
    let (lt, le) = collect(true);
    println!(
        "{}",
        header(
            "quantile",
            ["ttft_base", "ttft_lora", "e2e_base", "e2e_lora"]
                .map(String::from)
                .as_ref()
        )
    );
    for q in [10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
        println!(
            "{}",
            row(
                &format!("p{q}"),
                &[
                    percentile(&bt, q).unwrap(),
                    percentile(&lt, q).unwrap(),
                    percentile(&be, q).unwrap(),
                    percentile(&le, q).unwrap(),
                ]
            )
        );
    }
    println!();
}

/// Figure 8: per-request slowdown CDFs under four scheduling policies at
/// medium and high load.
pub fn fig8() {
    println!("== Figure 8: slowdown CDF per scheduling policy ==");
    println!("paper: FIFO/Chunk-Prefill/SJF tails explode at high load; optimized scheduling stays flat\n");
    for (name, rps) in [("medium", crate::LOAD_MEDIUM), ("high", crate::LOAD_HIGH)] {
        println!("-- {name} load ({rps} RPS) --");
        println!(
            "{}",
            header(
                "quantile",
                ["FIFO", "ChunkPrefill", "SJF", "Chameleon"]
                    .map(String::from)
                    .as_ref()
            )
        );
        let reports: Vec<RunReport> = [
            preset::slora(),
            preset::slora_chunked(),
            preset::slora_sjf(),
            preset::chameleon(),
        ]
        .into_iter()
        .map(|cfg| run_at(cfg, rps, TRACE_SECS, SEED))
        .collect();
        let slowdowns: Vec<Vec<f64>> = reports.iter().map(|r| r.slowdowns()).collect();
        for q in [50.0, 75.0, 90.0, 99.0, 100.0] {
            let cells: Vec<f64> = slowdowns
                .iter()
                .map(|s| percentile(s, q).unwrap_or(f64::NAN))
                .collect();
            println!("{}", row(&format!("p{q}"), &cells));
        }
        println!();
    }
}

fn sweep_loads() -> Vec<f64> {
    vec![5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0]
}

fn sweep(cfg: SystemConfig) -> Vec<(f64, RunReport)> {
    sweep_loads()
        .into_iter()
        .map(|rps| (rps, run_at(cfg.clone(), rps, TRACE_SECS, SEED)))
        .collect()
}

/// Figure 11: P99 TTFT vs load for S-LoRA, ChameleonNoCache,
/// ChameleonNoSched and Chameleon, plus SLO-bounded throughput.
pub fn fig11() {
    println!("== Figure 11: P99 TTFT (s) vs load ==");
    println!("paper: S-LoRA violates SLO first; ablations in between; Chameleon sustains ~1.5x the load\n");
    let systems = [
        preset::slora(),
        preset::chameleon_no_cache(),
        preset::chameleon_no_sched(),
        preset::chameleon(),
    ];
    let loads = sweep_loads();
    println!(
        "{}",
        header(
            "system \\ RPS",
            &loads.iter().map(|l| format!("{l}")).collect::<Vec<_>>()
        )
    );
    let mut slo = 0.0;
    let mut curves = Vec::new();
    for cfg in systems {
        let label = cfg.label.clone();
        let points = sweep(cfg);
        slo = points[0].1.slo.as_secs_f64();
        let cells: Vec<f64> = points.iter().map(|(_, r)| r.p99_ttft()).collect();
        println!("{}", row(&label, &cells));
        curves.push((
            label,
            points
                .iter()
                .map(|(l, r)| (*l, r.p99_ttft()))
                .collect::<Vec<_>>(),
        ));
    }
    println!("\nSLO (5x mean isolated E2E) = {slo:.2}s");
    let mut tputs = Vec::new();
    for (label, curve) in &curves {
        let t = throughput_at_slo(curve, slo).unwrap_or(0.0);
        println!("throughput@SLO {label:<20} = {t:.2} RPS");
        tputs.push((label.clone(), t));
    }
    let slora_t = tputs[0].1;
    let cham_t = tputs[3].1;
    println!(
        "Chameleon / S-LoRA throughput = {:.2}x (paper: 1.5x)\n",
        cham_t / slora_t.max(1e-9)
    );
}

/// Figure 12: P99 TBT vs load for S-LoRA and Chameleon.
pub fn fig12() {
    println!("== Figure 12: P99 TBT (ms) vs load ==");
    println!("paper: both stay under the 150 ms TBT SLO; Chameleon lower throughout\n");
    let loads = sweep_loads();
    println!(
        "{}",
        header(
            "system \\ RPS",
            &loads.iter().map(|l| format!("{l}")).collect::<Vec<_>>()
        )
    );
    for cfg in [preset::slora(), preset::chameleon()] {
        let label = cfg.label.clone();
        let cells: Vec<f64> = sweep(cfg)
            .iter()
            .map(|(_, r)| r.tbt_summary().map(|s| s.p99 * 1e3).unwrap_or(0.0))
            .collect();
        println!("{}", row(&label, &cells));
    }
    println!("TBT SLO = 150 ms\n");
}

/// Figure 13: P50 TTFT vs load for S-LoRA and Chameleon.
pub fn fig13() {
    println!("== Figure 13: P50 TTFT (s) vs load ==");
    println!("paper: 48.1 % median reduction at high load\n");
    let loads = sweep_loads();
    println!(
        "{}",
        header(
            "system \\ RPS",
            &loads.iter().map(|l| format!("{l}")).collect::<Vec<_>>()
        )
    );
    let mut p50s = Vec::new();
    for cfg in [preset::slora(), preset::chameleon()] {
        let label = cfg.label.clone();
        let cells: Vec<f64> = sweep(cfg).iter().map(|(_, r)| r.p50_ttft()).collect();
        println!("{}", row(&label, &cells));
        p50s.push(cells);
    }
    let hi = sweep_loads().iter().position(|&l| l == 11.0).unwrap();
    println!(
        "P50 reduction at 11 RPS = {:.1} % (paper: 48.1 % at its high load)\n",
        (1.0 - p50s[1][hi] / p50s[0][hi].max(1e-9)) * 100.0
    );
}

/// Figure 14: CDF of adapter-loading latency on the critical path.
pub fn fig14() {
    println!("== Figure 14: CDF of adapter-load latency on the critical path (ms) ==");
    println!("paper: S-LoRA pays up to ~30 ms; Chameleon: 75 % hit (zero), misses <= ~6 ms\n");
    let slora = run_at(preset::slora(), crate::LOAD_MEDIUM, TRACE_SECS, SEED);
    let cham = run_at(preset::chameleon(), crate::LOAD_MEDIUM, TRACE_SECS, SEED);
    let s = Ecdf::from_samples(&slora.load_on_path_seconds());
    let c = Ecdf::from_samples(&cham.load_on_path_seconds());
    println!(
        "{}",
        header(
            "load_ms",
            ["S-LoRA_cdf", "Chameleon_cdf"].map(String::from).as_ref()
        )
    );
    for ms in [0.0, 2.0, 4.0, 6.0, 10.0, 15.0, 20.0, 30.0, 50.0] {
        println!(
            "{}",
            row(&format!("{ms}"), &[s.eval(ms / 1e3), c.eval(ms / 1e3)])
        );
    }
    println!(
        "\nzero-load (hit) fraction: S-LoRA {:.1} %, Chameleon {:.1} % (paper: 75 % hits)",
        s.eval(1e-9) * 100.0,
        c.eval(1e-9) * 100.0
    );
    println!(
        "cache hit rate:           S-LoRA {:.1} %, Chameleon {:.1} %\n",
        slora.hit_rate() * 100.0,
        cham.hit_rate() * 100.0
    );
}

/// Figure 15: P99 TTFT over time at high load for four schedulers.
pub fn fig15() {
    println!("== Figure 15: P99 TTFT (s) over time at high load ==");
    println!("paper: S-LoRA and S-LoRA+SJF grow over time; Chameleon stays flat\n");
    let secs = 600.0;
    let bin = SimDuration::from_secs(60);
    let systems = [
        preset::slora(),
        preset::slora_sjf(),
        preset::chameleon_no_cache(),
        preset::chameleon(),
    ];
    let series: Vec<(String, Vec<(SimTime, f64)>)> = systems
        .into_iter()
        .map(|cfg| {
            let label = cfg.label.clone();
            let r = run_at(cfg, crate::LOAD_HIGH, secs, SEED);
            (label, r.ttft_over_time(bin))
        })
        .collect();
    let cols: Vec<String> = series.iter().map(|(l, _)| l.clone()).collect();
    println!("{}", header("t(s)", &cols));
    let bins = series[0].1.len();
    for i in 0..bins {
        let t = series[0].1[i].0.as_secs_f64();
        let cells: Vec<f64> = series
            .iter()
            .map(|(_, s)| s.get(i).map(|&(_, v)| v).unwrap_or(f64::NAN))
            .collect();
        println!("{}", row(&format!("{t:.0}"), &cells));
    }
    println!();
}

/// Figure 16: mean queueing delay per size class for FIFO, SJF and the
/// Chameleon scheduler.
pub fn fig16() {
    println!("== Figure 16: mean queueing delay (s) per request class ==");
    println!("paper: FIFO uniform-ish; SJF starves large; Chameleon low for all classes\n");
    println!(
        "{}",
        header(
            "system",
            ["small", "medium", "large"].map(String::from).as_ref()
        )
    );
    // The paper's 9 RPS sits past S-LoRA's knee with SJF queueing heavily;
    // the equivalent regime on our testbed is the overload level.
    for cfg in [preset::slora(), preset::slora_sjf(), preset::chameleon()] {
        let label = cfg.label.clone();
        let r = run_at(cfg, crate::LOAD_OVERLOAD, TRACE_SECS, SEED);
        let cells: Vec<f64> = r
            .queue_delay_by_class()
            .iter()
            .map(|&(_, d, _)| d)
            .collect();
        println!("{}", row(&label, &cells));
    }
    println!();
}

/// Figure 17: per-rank P99 TTFT for the cache-policy comparison,
/// normalised to S-LoRA.
pub fn fig17() {
    println!("== Figure 17: normalised P99 TTFT by adapter rank (cache policies) ==");
    println!("paper: all caches beat S-LoRA; tuned policy best, especially for large ranks\n");
    // The authors' testbed leaves only a few GB of idle memory, so the
    // eviction policy matters at N_a = 100. Our simulated node is roomier;
    // an equivalent level of cache pressure needs a larger pool (~40 GB of
    // adapters against ~30 GB of idle memory).
    let systems = [
        preset::slora(),
        preset::chameleon_lru(),
        preset::chameleon_fairshare(),
        preset::chameleon(),
    ];
    let reports: Vec<(String, RunReport)> = systems
        .into_iter()
        .map(|cfg| {
            let label = cfg.label.clone();
            (
                label,
                run_at(cfg.with_adapters(400), crate::LOAD_MEDIUM, TRACE_SECS, SEED),
            )
        })
        .collect();
    let ranks = [8u32, 16, 32, 64, 128];
    let mut cols: Vec<String> = ranks.iter().map(|r| format!("r{r}")).collect();
    cols.push("total".into());
    println!("{}", header("system", &cols));
    let base: Vec<f64> = {
        let (_, r) = &reports[0];
        let mut v: Vec<f64> = ranks
            .iter()
            .map(|&rank| r.p99_ttft_for_rank(rank).unwrap_or(f64::NAN))
            .collect();
        v.push(r.p99_ttft());
        v
    };
    for (label, r) in &reports {
        let mut cells: Vec<f64> = ranks
            .iter()
            .map(|&rank| r.p99_ttft_for_rank(rank).unwrap_or(f64::NAN))
            .collect();
        cells.push(r.p99_ttft());
        let normed: Vec<f64> = cells.iter().zip(&base).map(|(c, b)| c / b).collect();
        println!("{}", row(label, &normed));
    }
    println!();
}

/// Figure 18: adding histogram-based predictive prefetching.
pub fn fig18() {
    println!("== Figure 18: normalised P99 TTFT with predictive prefetching ==");
    println!("paper: prefetch gives a further ~8.8 % P99 reduction over Chameleon\n");
    // Same cache-pressure adaptation as Figure 17 (see comment there).
    let systems = [
        preset::slora(),
        preset::chameleon(),
        preset::chameleon_prefetch(),
    ];
    let reports: Vec<(String, RunReport)> = systems
        .into_iter()
        .map(|cfg| {
            let label = cfg.label.clone();
            (
                label,
                run_at(cfg.with_adapters(400), crate::LOAD_MEDIUM, TRACE_SECS, SEED),
            )
        })
        .collect();
    let ranks = [8u32, 16, 32, 64, 128];
    let mut cols: Vec<String> = ranks.iter().map(|r| format!("r{r}")).collect();
    cols.push("total".into());
    println!("{}", header("system", &cols));
    let base: Vec<f64> = {
        let (_, r) = &reports[0];
        let mut v: Vec<f64> = ranks
            .iter()
            .map(|&rank| r.p99_ttft_for_rank(rank).unwrap_or(f64::NAN))
            .collect();
        v.push(r.p99_ttft());
        v
    };
    for (label, r) in &reports {
        let mut cells: Vec<f64> = ranks
            .iter()
            .map(|&rank| r.p99_ttft_for_rank(rank).unwrap_or(f64::NAN))
            .collect();
        cells.push(r.p99_ttft());
        let normed: Vec<f64> = cells.iter().zip(&base).map(|(c, b)| c / b).collect();
        println!("{}", row(label, &normed));
    }
    println!();
}

/// Figure 19: sensitivity to output-length predictor accuracy, WRS vs
/// OutputOnly, on a bursty trace.
pub fn fig19() {
    println!("== Figure 19: P99 TTFT (s) over time vs predictor accuracy ==");
    println!("paper: robust at >=80 % accuracy; 60 % hurts during the load burst (~300 s); OutputOnly more sensitive\n");
    let secs = 600.0;
    let bin = SimDuration::from_secs(60);
    let mut variants = Vec::new();
    for acc in [1.0, 0.8, 0.6] {
        let c = preset::chameleon()
            .with_predictor_accuracy(acc)
            .with_label(format!("Chamel-{:.0}%", acc * 100.0));
        let o = preset::chameleon_output_only()
            .with_predictor_accuracy(acc)
            .with_label(format!("OutOnly-{:.0}%", acc * 100.0));
        variants.push(o);
        variants.push(c);
    }
    type BurstSeries = (String, Vec<(SimTime, f64)>, f64);
    let series: Vec<BurstSeries> = variants
        .into_iter()
        .map(|cfg| {
            let label = cfg.label.clone();
            let mut sim = chameleon_core::sim::Simulation::new(cfg, SEED);
            let trace = workloads::splitwise_bursty(
                crate::LOAD_MEDIUM,
                secs,
                300.0,
                60.0,
                1.35,
                SEED,
                sim.pool(),
            );
            let r = sim.run(&trace);
            (label, r.ttft_over_time(bin), r.p99_ttft())
        })
        .collect();
    let cols: Vec<String> = series.iter().map(|(l, ..)| l.clone()).collect();
    println!("{}", header("t(s)", &cols));
    let bins = series.iter().map(|(_, s, _)| s.len()).max().unwrap_or(0);
    for i in 0..bins {
        let t = series[0]
            .1
            .get(i)
            .map(|&(t, _)| t.as_secs_f64())
            .unwrap_or(0.0);
        let cells: Vec<f64> = series
            .iter()
            .map(|(_, s, _)| s.get(i).map(|&(_, v)| v).unwrap_or(f64::NAN))
            .collect();
        println!("{}", row(&format!("{t:.0}"), &cells));
    }
    println!("{}", header("\noverall p99", &cols));
    let cells: Vec<f64> = series.iter().map(|(.., p)| *p).collect();
    println!("{}", row("", &cells));
    println!();
}

/// Figure 20: sensitivity to the number of adapters and to the
/// rank/adapter popularity distributions.
pub fn fig20() {
    println!("== Figure 20 (left): P99 TTFT (s) vs number of adapters at high load ==");
    println!("paper: S-LoRA only meets SLO at 10 adapters; Chameleon up to 100 (uniform) / 150 (power-law)\n");
    let counts = [10usize, 50, 100, 150, 200];
    // The paper's 9.5 RPS sits just past S-LoRA's knee; the equivalent
    // point on our testbed is the high-load level.
    let rps = crate::LOAD_HIGH;
    println!(
        "{}",
        header("system \\ Na", counts.map(|c| c.to_string()).as_ref())
    );
    let mut slo = 0.0;
    for (label, rank_pop, base) in [
        ("S-Uni", PopularityDist::Uniform, preset::slora()),
        ("C-Uni", PopularityDist::Uniform, preset::chameleon()),
        ("S-Pow", PopularityDist::power_law(), preset::slora()),
        ("C-Pow", PopularityDist::power_law(), preset::chameleon()),
    ] {
        let cells: Vec<f64> = counts
            .iter()
            .map(|&n| {
                let mut cfg = base.clone().with_adapters(n);
                cfg.rank_popularity = rank_pop;
                let r = run_at(cfg, rps, TRACE_SECS, SEED);
                slo = r.slo.as_secs_f64();
                r.p99_ttft()
            })
            .collect();
        println!("{}", row(label, &cells));
    }
    println!("SLO = {slo:.2}s\n");

    println!("== Figure 20 (right): normalised P99 TTFT vs popularity distributions ==");
    println!("paper: P-P easiest for both systems; Chameleon low across all\n");
    let dists = [
        ("U-U", PopularityDist::Uniform, PopularityDist::Uniform),
        ("U-P", PopularityDist::Uniform, PopularityDist::power_law()),
        (
            "P-P",
            PopularityDist::power_law(),
            PopularityDist::power_law(),
        ),
    ];
    println!(
        "{}",
        header(
            "system",
            &dists
                .iter()
                .map(|(l, ..)| l.to_string())
                .collect::<Vec<_>>()
        )
    );
    let mut base_vals = Vec::new();
    for cfgf in [preset::slora as fn() -> SystemConfig, preset::chameleon] {
        let mut cells = Vec::new();
        for (_, rank_pop, within) in &dists {
            let mut cfg = cfgf();
            cfg.rank_popularity = *rank_pop;
            cfg.within_rank_popularity = *within;
            let r = run_at(cfg, rps, TRACE_SECS, SEED);
            cells.push(r.p99_ttft());
        }
        if base_vals.is_empty() {
            base_vals = cells.clone();
        }
        let max_base = base_vals
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
            .max(1e-9);
        let label = if cells == base_vals {
            "S-LoRA"
        } else {
            "Chameleon"
        };
        let normed: Vec<f64> = cells.iter().map(|c| c / max_base).collect();
        println!("{}", row(label, &normed));
    }
    println!();
}

/// Figure 21: additional traces (WildChat-1M, LMSYS-Chat-1M) without
/// re-tuning.
pub fn fig21() {
    println!("== Figure 21: P99 TTFT (s) per trace past the baseline knee ==");
    println!(
        "paper: S-LoRA violates all three SLOs; Chameleon meets all, ~4x lower on the new traces\n"
    );
    // Each trace family has its own capacity knee (shorter requests ->
    // higher sustainable RPS); every run sits just past S-LoRA's knee for
    // that family, mirroring the paper's single 9.5 RPS point.
    let trace_loads = [11.0, 27.0, 31.0];
    println!(
        "{}",
        header(
            "system",
            ["Splitwise", "WildChat", "LMSYS"]
                .map(String::from)
                .as_ref()
        )
    );
    let mut slos = Vec::new();
    for cfgf in [preset::slora as fn() -> SystemConfig, preset::chameleon] {
        let mut cells = Vec::new();
        slos.clear();
        for (maker, rps) in [
            workloads::splitwise
                as fn(f64, f64, u64, &chameleon_models::AdapterPool) -> chameleon_workload::Trace,
            workloads::wildchat,
            workloads::lmsys,
        ]
        .into_iter()
        .zip(trace_loads)
        {
            let cfg = cfgf();
            let pool = pool_of(&cfg);
            let trace = maker(rps, TRACE_SECS, SEED, &pool);
            let r = run_trace(cfg, &trace, SEED);
            slos.push(r.slo.as_secs_f64());
            cells.push(r.p99_ttft());
        }
        let label = if cells.len() == 3 && slos.len() == 3 {
            cfgf().label
        } else {
            "?".into()
        };
        println!("{}", row(&label, &cells));
    }
    println!(
        "SLOs: Splitwise {:.2}s, WildChat {:.2}s, LMSYS {:.2}s\n",
        slos[0], slos[1], slos[2]
    );
}

/// Figure 22: dynamic (K-means) vs static queue configuration.
pub fn fig22() {
    println!("== Figure 22: P99 TTFT of Chameleon normalised to the static queue config ==");
    println!("paper: similar at low/medium load; ~10 % better at high load\n");
    println!(
        "{}",
        header(
            "load",
            ["Static", "Chameleon", "Cham/Static", "St_viol%", "Ch_viol%"]
                .map(String::from)
                .as_ref()
        )
    );
    // The configurations only diverge once queues actually form; the
    // congested end of the load range is where the paper's 10 % shows up.
    for (name, rps) in [
        ("low", crate::LOAD_HIGH),
        ("medium", crate::LOAD_OVERLOAD),
        ("high", 13.5),
    ] {
        let st = run_at(preset::static_mlq(), rps, TRACE_SECS, SEED);
        let ch = run_at(preset::chameleon(), rps, TRACE_SECS, SEED);
        println!(
            "{}",
            row(
                name,
                &[
                    st.p99_ttft(),
                    ch.p99_ttft(),
                    ch.p99_ttft() / st.p99_ttft().max(1e-9),
                    st.slo_violation_fraction() * 100.0,
                    ch.slo_violation_fraction() * 100.0,
                ]
            )
        );
    }
    println!();
}

/// Per-model load levels for the A100-80GB platform (capacity differs by
/// model size; see module docs).
fn a100_loads(model: &str) -> [f64; 3] {
    match model {
        "Llama-7B" => [10.0, 16.0, 20.0],
        "Llama-13B" => [6.0, 9.0, 11.0],
        _ => [1.5, 2.5, 3.5], // Llama-30B
    }
}

/// Extended load grid for throughput-at-SLO searches: must extend past
/// both systems' knees or the ratio degenerates to the grid maximum.
fn a100_sweep(model: &str) -> Vec<f64> {
    match model {
        "Llama-7B" => vec![10.0, 14.0, 18.0, 22.0, 26.0, 30.0, 34.0, 38.0],
        "Llama-13B" => vec![6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0],
        _ => vec![1.5, 2.5, 3.5, 4.5, 5.5, 6.5], // Llama-30B
    }
}

/// Figure 23: scalability with LLM size (A100-80GB).
pub fn fig23() {
    println!("== Figure 23: normalised P99 TTFT and throughput, Llama-7B/13B/30B on A100-80GB ==");
    println!("paper: ~60 % P99 reduction across models; 1.4-1.9x throughput\n");
    let models = [
        (LlmSpec::llama_7b(), 500usize),
        (LlmSpec::llama_13b(), 100),
        (LlmSpec::llama_30b(), 10),
    ];
    println!(
        "{}",
        header(
            "model",
            ["p99_low", "p99_med", "p99_high", "tput_ratio"]
                .map(String::from)
                .as_ref()
        )
    );
    for (llm, adapters) in models {
        let loads = a100_loads(llm.name());
        let mut normed = Vec::new();
        for &rps in &loads {
            let s = run_at(
                preset::slora()
                    .with_llm(llm.clone())
                    .with_gpu(GpuSpec::a100_80gb())
                    .with_adapters(adapters),
                rps,
                TRACE_SECS,
                SEED,
            );
            let c = run_at(
                preset::chameleon()
                    .with_llm(llm.clone())
                    .with_gpu(GpuSpec::a100_80gb())
                    .with_adapters(adapters),
                rps,
                TRACE_SECS,
                SEED,
            );
            normed.push(c.p99_ttft() / s.p99_ttft().max(1e-9));
        }
        // Throughput from a wider sweep reaching past both knees.
        let mut s_curve = Vec::new();
        let mut c_curve = Vec::new();
        let mut slo = 0.0;
        for rps in a100_sweep(llm.name()) {
            let s = run_at(
                preset::slora()
                    .with_llm(llm.clone())
                    .with_gpu(GpuSpec::a100_80gb())
                    .with_adapters(adapters),
                rps,
                120.0,
                SEED,
            );
            let c = run_at(
                preset::chameleon()
                    .with_llm(llm.clone())
                    .with_gpu(GpuSpec::a100_80gb())
                    .with_adapters(adapters),
                rps,
                120.0,
                SEED,
            );
            slo = s.slo.as_secs_f64();
            s_curve.push((rps, s.p99_ttft()));
            c_curve.push((rps, c.p99_ttft()));
        }
        let ts = throughput_at_slo(&s_curve, slo).unwrap_or(1.0);
        let tc = throughput_at_slo(&c_curve, slo).unwrap_or(1.0);
        normed.push(tc / ts.max(1e-9));
        println!("{}", row(llm.name(), &normed));
    }
    println!();
}

/// Figure 24: scalability with GPU memory capacity.
pub fn fig24() {
    println!("== Figure 24: Chameleon/S-LoRA throughput ratio vs GPU memory ==");
    println!("paper: larger memory -> more cache space -> bigger gains (1.4/1.6/1.9x for 7B)\n");
    let mems = [24u64, 48, 80];
    println!(
        "{}",
        header("model \\ mem(GB)", mems.map(|m| format!("{m}GB")).as_ref())
    );
    let models = [
        (LlmSpec::llama_7b(), 500usize),
        (LlmSpec::llama_13b(), 100),
        (LlmSpec::llama_30b(), 10),
    ];
    for (llm, adapters) in models {
        let cells: Vec<f64> = mems
            .iter()
            .map(|&gb| {
                let gpu = GpuSpec::a100_80gb().with_memory_bytes(gb << 30);
                if llm.weight_bytes() + (2 << 30) > gpu.memory_bytes() {
                    return f64::NAN; // model does not fit
                }
                let loads = a100_sweep(llm.name());
                let mut s_curve = Vec::new();
                let mut c_curve = Vec::new();
                let mut slo = 0.0;
                for &rps in &loads {
                    let s = run_at(
                        preset::slora()
                            .with_llm(llm.clone())
                            .with_gpu(gpu.clone())
                            .with_adapters(adapters),
                        rps,
                        120.0,
                        SEED,
                    );
                    let c = run_at(
                        preset::chameleon()
                            .with_llm(llm.clone())
                            .with_gpu(gpu.clone())
                            .with_adapters(adapters),
                        rps,
                        120.0,
                        SEED,
                    );
                    slo = s.slo.as_secs_f64();
                    s_curve.push((rps, s.p99_ttft()));
                    c_curve.push((rps, c.p99_ttft()));
                }
                let ts = throughput_at_slo(&s_curve, slo).unwrap_or(loads[0] * 0.5);
                let tc = throughput_at_slo(&c_curve, slo).unwrap_or(loads[0] * 0.5);
                tc / ts.max(1e-9)
            })
            .collect();
        println!("{}", row(llm.name(), &cells));
    }
    println!();
}

/// Figure 25: multi-GPU tensor parallelism (Llama-7B on A100s).
pub fn fig25() {
    println!("== Figure 25: normalised P99 TTFT, Chameleon vs S-LoRA, TP1/2/4 ==");
    println!("paper: reduction widens with TP (up to 95.8 % at TP4 high load)\n");
    println!(
        "{}",
        header(
            "TP \\ load",
            ["low", "medium", "high"].map(String::from).as_ref()
        )
    );
    for tp in [1u32, 2, 4] {
        // Higher TP -> more compute -> higher sustainable loads.
        let base_loads = a100_loads("Llama-7B");
        let scale = match tp {
            1 => 1.0,
            2 => 1.6,
            _ => 2.4,
        };
        let cells: Vec<f64> = base_loads
            .iter()
            .map(|&rps| {
                let s = run_at(
                    preset::slora()
                        .with_gpu(GpuSpec::a100_80gb())
                        .with_adapters(100)
                        .with_tp(tp),
                    rps * scale,
                    120.0,
                    SEED,
                );
                let c = run_at(
                    preset::chameleon()
                        .with_gpu(GpuSpec::a100_80gb())
                        .with_adapters(100)
                        .with_tp(tp),
                    rps * scale,
                    120.0,
                    SEED,
                );
                c.p99_ttft() / s.p99_ttft().max(1e-9)
            })
            .collect();
        println!("{}", row(&format!("TP{tp}"), &cells));
    }
    println!();
}

/// Runs every figure in order.
pub fn all() {
    fig2();
    fig3();
    fig4();
    fig5();
    fig6();
    fig7();
    fig8();
    fig11();
    fig12();
    fig13();
    fig14();
    fig15();
    fig16();
    fig17();
    fig18();
    fig19();
    fig20();
    fig21();
    fig22();
    fig23();
    fig24();
    fig25();
}
