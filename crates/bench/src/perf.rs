//! Building blocks of the `chameleon-bench` binary: wall-clock timing and
//! the hand-rolled JSON the perf trajectory is recorded in.
//!
//! The workspace's `serde` is an offline no-op stub, so `BENCH_*.json` is
//! emitted by a ~60-line writer: a flat two-level object
//! `{meta..., "results": {bench: {metric: number}}}` — trivially diffable
//! across PRs.

use std::fmt::Write as _;
use std::time::Instant;

/// One benchmark's named scalar metrics, in insertion order.
#[derive(Debug, Clone, Default)]
pub struct BenchResult {
    metrics: Vec<(String, f64)>,
}

impl BenchResult {
    /// Creates an empty result.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `value` under `name` (chainable).
    pub fn metric(mut self, name: &str, value: f64) -> Self {
        self.metrics.push((name.to_string(), value));
        self
    }

    /// The recorded metrics.
    pub fn metrics(&self) -> &[(String, f64)] {
        &self.metrics
    }

    /// Looks up one metric.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }
}

/// The whole harness run: tag, mode, and per-benchmark results.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Trajectory tag, e.g. `"PR2"`.
    pub tag: String,
    /// True for the tiny CI smoke configuration.
    pub smoke: bool,
    /// True when the host cannot produce meaningful parallel-speedup
    /// numbers (a single-core container): the serial columns are still
    /// valid, but every `*_speedup` ratio should be read as noise.
    pub degraded: bool,
    results: Vec<(String, BenchResult)>,
}

impl BenchReport {
    /// Creates an empty report.
    pub fn new(tag: impl Into<String>, smoke: bool) -> Self {
        BenchReport {
            tag: tag.into(),
            smoke,
            degraded: false,
            results: Vec::new(),
        }
    }

    /// Appends one benchmark's result.
    pub fn push(&mut self, name: impl Into<String>, result: BenchResult) {
        self.results.push((name.into(), result));
    }

    /// Looks up `bench.metric`.
    pub fn get(&self, bench: &str, metric: &str) -> Option<f64> {
        self.results
            .iter()
            .find(|(n, _)| n == bench)
            .and_then(|(_, r)| r.get(metric))
    }

    /// Serialises to the `BENCH_*.json` format.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"chameleon-bench-v1\",");
        let _ = writeln!(s, "  \"tag\": \"{}\",", self.tag);
        let _ = writeln!(s, "  \"smoke\": {},", self.smoke);
        let _ = writeln!(s, "  \"degraded\": {},", self.degraded);
        s.push_str("  \"results\": {\n");
        for (bi, (bench, result)) in self.results.iter().enumerate() {
            let _ = writeln!(s, "    \"{bench}\": {{");
            for (mi, (name, value)) in result.metrics().iter().enumerate() {
                let comma = if mi + 1 == result.metrics().len() {
                    ""
                } else {
                    ","
                };
                let _ = writeln!(s, "      \"{name}\": {}{comma}", json_number(*value));
            }
            let comma = if bi + 1 == self.results.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(s, "    }}{comma}");
        }
        s.push_str("  }\n}\n");
        s
    }
}

/// JSON-safe number rendering: finite floats with enough precision to
/// round-trip meaningfully, integral values without a fraction.
fn json_number(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

/// Times `f`, returning `(wall_seconds, output)`.
pub fn timed<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let mut rep = BenchReport::new("PRX", true);
        rep.push(
            "demo",
            BenchResult::new()
                .metric("events", 1000.0)
                .metric("wall_secs", 0.25),
        );
        rep.push("other", BenchResult::new().metric("speedup", 6.5));
        let json = rep.to_json();
        assert!(json.contains("\"schema\": \"chameleon-bench-v1\""));
        assert!(json.contains("\"tag\": \"PRX\""));
        assert!(json.contains("\"smoke\": true"));
        assert!(json.contains("\"degraded\": false"));
        assert!(json.contains("\"events\": 1000"));
        assert!(json.contains("\"wall_secs\": 0.250000"));
        assert!(json.contains("\"speedup\": 6.500000"));
        // Balanced braces, no trailing commas before closers.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains(",\n    }"));
        assert!(!json.contains(",\n  }"));
        assert_eq!(rep.get("demo", "events"), Some(1000.0));
    }

    #[test]
    fn degraded_flag_round_trips() {
        let mut rep = BenchReport::new("PRX", false);
        rep.degraded = true;
        assert!(rep.to_json().contains("\"degraded\": true"));
    }

    #[test]
    fn timed_returns_output() {
        let (secs, v) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn non_finite_becomes_null() {
        assert_eq!(json_number(f64::INFINITY), "null");
        assert_eq!(json_number(2.0), "2");
    }
}
