//! Criterion micro-benchmarks for the load-bearing components.
//!
//! These measure the *simulator's* own hot paths (event queue, cache
//! eviction, batch formation, K-means reconfiguration, cost model), i.e.
//! the per-iteration work a real Chameleon scheduler would execute on the
//! host — §4.3.4's "negligible overheads" claim made measurable.

use chameleon_cache::{AdapterCache, EvictionPolicy};
use chameleon_gpu::cost::{CostModel, DecodeItem, PrefillItem};
use chameleon_gpu::memory::MemoryPool;
use chameleon_models::{
    AdapterId, AdapterPool, AdapterRank, AdapterSpec, GpuSpec, LlmSpec, PoolConfig,
};
use chameleon_sched::scheduler::StaticProbe;
use chameleon_sched::{
    kmeans, ChameleonConfig, ChameleonScheduler, FifoScheduler, QueuedRequest, Scheduler, WrsConfig,
};
use chameleon_simcore::{EventQueue, SimDuration, SimRng, SimTime};
use chameleon_workload::{Request, RequestId};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1024);
            for i in 0..1024u64 {
                q.push(SimTime::from_nanos((i * 7919) % 4096), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
}

fn wrs_cfg() -> WrsConfig {
    WrsConfig::paper(2048.0, 1024.0, (256u64 << 20) as f64)
}

fn queued(i: u64) -> QueuedRequest {
    let r = Request::new(
        RequestId(i),
        SimTime::ZERO,
        64 + (i % 512) as u32,
        1 + (i % 128) as u32,
        AdapterId((i % 100) as u32),
        AdapterRank::new(8),
    );
    QueuedRequest::new(
        r,
        1 + (i % 128) as u32,
        16 << 20,
        32,
        (i % 97) as f64 / 97.0,
        SimTime::ZERO,
    )
}

fn bench_schedulers(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler_form_batch");
    let probe = StaticProbe {
        available_tokens: 20_000,
        batch_slots: 64,
        ..StaticProbe::default()
    };
    g.bench_function("fifo_256_queued", |b| {
        b.iter(|| {
            let mut s = FifoScheduler::new();
            for i in 0..256 {
                s.enqueue(queued(i));
            }
            black_box(s.form_batch(&probe).len())
        })
    });
    g.bench_function("chameleon_mlq_256_queued", |b| {
        b.iter(|| {
            let mut s = ChameleonScheduler::new(
                ChameleonConfig::paper(SimDuration::from_secs(5)),
                wrs_cfg(),
            );
            for i in 0..256 {
                s.enqueue(queued(i));
            }
            black_box(s.form_batch(&probe).len())
        })
    });
    g.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let mut rng = SimRng::seed(1);
    let values: Vec<f64> = (0..2048).map(|_| rng.f64()).collect();
    c.bench_function("kmeans_choose_queues_2048", |b| {
        b.iter(|| black_box(kmeans::choose_queues(&values, 4, 0.15)))
    });
}

fn bench_cache(c: &mut Criterion) {
    let llm = LlmSpec::llama_7b();
    let specs: Vec<AdapterSpec> = (0..100)
        .map(|i| AdapterSpec::new(AdapterId(i), AdapterRank::new(8), &llm))
        .collect();
    c.bench_function("cache_churn_100_adapters", |b| {
        b.iter(|| {
            // 2 GB pool: ~128 rank-8 slots; constant acquire/evict churn.
            let mut pool = MemoryPool::new(2 << 30);
            let mut cache = AdapterCache::new(EvictionPolicy::chameleon());
            let mut t = 0.0;
            for round in 0..200u32 {
                let spec = &specs[(round % 100) as usize];
                t += 0.01;
                let now = SimTime::from_secs_f64(t);
                if !cache.acquire(&mut pool, spec.id(), now) {
                    cache.make_room(&mut pool, spec.bytes(), now, &Default::default());
                    cache.insert_loaded(&mut pool, spec, now, 1).unwrap();
                }
                cache.release(&mut pool, spec.id(), now);
            }
            black_box(cache.stats().hits)
        })
    });
}

fn bench_cost_model(c: &mut Criterion) {
    let cost = CostModel::new(LlmSpec::llama_7b(), GpuSpec::a40(), 1);
    let decode_batch: Vec<DecodeItem> = (0..64)
        .map(|i| DecodeItem {
            kv_tokens: 128 + i * 7,
            rank: Some(AdapterRank::new(8 << (i % 5))),
        })
        .collect();
    let prefill_batch: Vec<PrefillItem> = (0..8)
        .map(|i| PrefillItem {
            tokens: 128 + i * 64,
            rank: Some(AdapterRank::new(32)),
        })
        .collect();
    let mut g = c.benchmark_group("cost_model");
    g.bench_function("decode_step_batch64", |b| {
        b.iter(|| black_box(cost.decode_step_time(&decode_batch)))
    });
    g.bench_function("prefill_batch8", |b| {
        b.iter(|| black_box(cost.prefill_time(&prefill_batch)))
    });
    g.finish();
}

fn bench_pool_sampling(c: &mut Criterion) {
    let pool = AdapterPool::generate(&LlmSpec::llama_7b(), &PoolConfig::paper_default(100));
    c.bench_function("adapter_pool_sample", |b| {
        let mut rng = SimRng::seed(3);
        b.iter(|| black_box(pool.sample(&mut rng).id()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_event_queue, bench_schedulers, bench_kmeans, bench_cache,
              bench_cost_model, bench_pool_sampling
}
criterion_main!(benches);
