//! Per-queue resource-quota assignment (§4.3.5).
//!
//! Each queue is modelled as an M/M/1 system. With `S` the maximum request
//! size of the queue in tokens, `Tok` its quota, and `D` the expected
//! processing duration of one request, the queue serves at rate
//! `μ = Tok / (S·D)`; the sojourn time `1/(μ−λ)` must stay within the SLO,
//! giving the minimum quota
//!
//! ```text
//! Tok_min ≥ S · D · (1/SLO + λ)
//! ```
//!
//! Each queue gets its minimum and the remaining tokens are split
//! proportionally to those minima ("proportionally to their initial
//! weights").

use chameleon_simcore::SimDuration;

/// Observed/estimated load of one queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueLoad {
    /// Maximum request size admitted to this queue, in resource tokens.
    pub max_tokens: f64,
    /// Expected processing duration of one request from this queue.
    pub mean_service: SimDuration,
    /// Arrival rate into this queue, requests/second.
    pub arrival_rate: f64,
}

/// Minimum quota for one queue (tokens).
pub fn min_tokens(q: &QueueLoad, slo: SimDuration) -> f64 {
    let slo_s = slo.as_secs_f64().max(1e-9);
    q.max_tokens * q.mean_service.as_secs_f64() * (1.0 / slo_s + q.arrival_rate)
}

/// Assigns quotas to all queues from `total_tokens` (§4.3.5).
///
/// Every queue receives its minimum; the surplus is distributed
/// proportionally to the minima. When the minima already exceed the total
/// (overload), everything is scaled down proportionally — the system cannot
/// meet the SLO, but quotas remain meaningful for admission.
///
/// Returns one quota per queue, in tokens. Empty input yields an empty
/// vector.
pub fn assign_quotas(queues: &[QueueLoad], slo: SimDuration, total_tokens: u64) -> Vec<u64> {
    if queues.is_empty() {
        return Vec::new();
    }
    let mins: Vec<f64> = queues.iter().map(|q| min_tokens(q, slo)).collect();
    let sum_min: f64 = mins.iter().sum();
    let total = total_tokens as f64;
    if sum_min <= 0.0 {
        // No load anywhere: split evenly.
        let each = total / queues.len() as f64;
        return vec![each.floor() as u64; queues.len()];
    }
    if sum_min >= total {
        // Overload: proportional scale-down.
        return mins
            .iter()
            .map(|m| (m / sum_min * total).floor() as u64)
            .collect();
    }
    let surplus = total - sum_min;
    mins.iter()
        .map(|m| (m + surplus * (m / sum_min)).floor() as u64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn q(max_tokens: f64, service_ms: u64, rate: f64) -> QueueLoad {
        QueueLoad {
            max_tokens,
            mean_service: SimDuration::from_millis(service_ms),
            arrival_rate: rate,
        }
    }

    #[test]
    fn min_tokens_formula() {
        // S=100 tokens, D=0.5 s, λ=2/s, SLO=5 s:
        // 100 · 0.5 · (0.2 + 2) = 110.
        let m = min_tokens(&q(100.0, 500, 2.0), SimDuration::from_secs(5));
        assert!((m - 110.0).abs() < 1e-9, "min {m}");
    }

    #[test]
    fn min_grows_with_load_and_size() {
        let slo = SimDuration::from_secs(5);
        assert!(min_tokens(&q(100.0, 500, 4.0), slo) > min_tokens(&q(100.0, 500, 2.0), slo));
        assert!(min_tokens(&q(200.0, 500, 2.0), slo) > min_tokens(&q(100.0, 500, 2.0), slo));
        assert!(min_tokens(&q(100.0, 900, 2.0), slo) > min_tokens(&q(100.0, 500, 2.0), slo));
    }

    #[test]
    fn tighter_slo_needs_more_tokens() {
        assert!(
            min_tokens(&q(100.0, 500, 2.0), SimDuration::from_secs(1))
                > min_tokens(&q(100.0, 500, 2.0), SimDuration::from_secs(10))
        );
    }

    #[test]
    fn quotas_cover_minima_and_spend_surplus() {
        let queues = [q(50.0, 100, 5.0), q(500.0, 800, 1.0)];
        let slo = SimDuration::from_secs(5);
        let quotas = assign_quotas(&queues, slo, 10_000);
        assert_eq!(quotas.len(), 2);
        for (quota, queue) in quotas.iter().zip(&queues) {
            assert!(*quota as f64 >= min_tokens(queue, slo).floor());
        }
        let spent: u64 = quotas.iter().sum();
        assert!(spent <= 10_000);
        assert!(spent >= 9_990, "surplus mostly distributed: {spent}");
    }

    #[test]
    fn overload_scales_down_proportionally() {
        let queues = [q(1000.0, 1000, 10.0), q(2000.0, 1000, 10.0)];
        let quotas = assign_quotas(&queues, SimDuration::from_secs(1), 1_000);
        let spent: u64 = quotas.iter().sum();
        assert!(spent <= 1_000);
        // Second queue has 2× the minimum → ~2× the quota.
        let ratio = quotas[1] as f64 / quotas[0] as f64;
        assert!((ratio - 2.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn idle_queues_split_evenly() {
        let queues = [q(100.0, 0, 0.0), q(100.0, 0, 0.0)];
        // mean_service 0 ⇒ minima 0 ⇒ even split.
        let quotas = assign_quotas(&queues, SimDuration::from_secs(5), 1_000);
        assert_eq!(quotas, vec![500, 500]);
    }

    #[test]
    fn empty_input() {
        assert!(assign_quotas(&[], SimDuration::from_secs(5), 100).is_empty());
    }

    proptest! {
        /// Total assignment never exceeds the budget, and with budget above
        /// the sum of minima every queue is satisfied.
        #[test]
        fn prop_budget_respected(
            sizes in proptest::collection::vec((10.0f64..500.0, 10u64..1000, 0.1f64..10.0), 1..6),
            total in 1_000u64..1_000_000
        ) {
            let queues: Vec<QueueLoad> = sizes.iter()
                .map(|&(s, ms, r)| q(s, ms, r))
                .collect();
            let slo = SimDuration::from_secs(5);
            let quotas = assign_quotas(&queues, slo, total);
            let spent: u64 = quotas.iter().sum();
            prop_assert!(spent <= total);
            let sum_min: f64 = queues.iter().map(|qq| min_tokens(qq, slo)).sum();
            if sum_min < total as f64 {
                for (quota, queue) in quotas.iter().zip(&queues) {
                    prop_assert!(*quota as f64 + 1.0 >= min_tokens(queue, slo));
                }
            }
        }
    }
}
