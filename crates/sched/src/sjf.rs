//! Speculative shortest-job-first with aging — the μServe policy (§3.3).
//!
//! Requests are ordered by *predicted output length* ("existing systems
//! predict the request output lengths and prioritize the requests with the
//! shortest predicted outputs"). An aging credit proportional to waiting
//! time keeps long requests from starving outright — but, as the paper
//! shows (Figure 15/16), prioritising short requests still inflates long
//! requests' tail latency badly.

use crate::queued::QueuedRequest;
use crate::scheduler::{effective_need, AdmissionOutcome, ResourceProbe, Scheduler};
use chameleon_models::AdapterId;

/// Default aging credit: tokens of priority gained per second of waiting.
pub const DEFAULT_AGING_TOKENS_PER_SEC: f64 = 8.0;

/// Predicted-shortest-first admission with aging.
#[derive(Debug)]
pub struct SjfScheduler {
    queue: Vec<QueuedRequest>,
    aging_tokens_per_sec: f64,
    /// Dedup scratch for [`Scheduler::queued_adapters_into`].
    seen: std::collections::HashSet<AdapterId>,
}

impl SjfScheduler {
    /// Creates the scheduler with the default aging rate.
    pub fn new() -> Self {
        SjfScheduler::with_aging(DEFAULT_AGING_TOKENS_PER_SEC)
    }

    /// Creates the scheduler with a custom aging rate (0 disables aging and
    /// produces pure SJF, maximal starvation).
    ///
    /// # Panics
    ///
    /// Panics if `aging_tokens_per_sec` is negative or not finite.
    pub fn with_aging(aging_tokens_per_sec: f64) -> Self {
        assert!(aging_tokens_per_sec.is_finite() && aging_tokens_per_sec >= 0.0);
        SjfScheduler {
            queue: Vec::new(),
            aging_tokens_per_sec,
            seen: std::collections::HashSet::new(),
        }
    }

    /// Effective priority: predicted output minus the aging credit. Lower
    /// runs first.
    pub fn priority(&self, req: &QueuedRequest, now: chameleon_simcore::SimTime) -> f64 {
        f64::from(req.predicted_output()) - self.aging_tokens_per_sec * req.wait(now).as_secs_f64()
    }

    fn sort_by_priority(&mut self, now: chameleon_simcore::SimTime) {
        let rate = self.aging_tokens_per_sec;
        self.queue.sort_by(|a, b| {
            let pa = f64::from(a.predicted_output()) - rate * a.wait(now).as_secs_f64();
            let pb = f64::from(b.predicted_output()) - rate * b.wait(now).as_secs_f64();
            pa.partial_cmp(&pb)
                .expect("finite priority")
                .then(a.id().cmp(&b.id()))
        });
    }
}

impl Default for SjfScheduler {
    fn default() -> Self {
        SjfScheduler::new()
    }
}

impl Scheduler for SjfScheduler {
    fn enqueue(&mut self, req: QueuedRequest) {
        self.queue.push(req);
    }

    fn requeue_front(&mut self, req: QueuedRequest) {
        // SJF has no "front"; the request re-enters the priority order.
        self.queue.push(req);
    }

    fn form_batch_into(&mut self, probe: &dyn ResourceProbe, out: &mut Vec<AdmissionOutcome>) {
        let now = probe.now();
        self.sort_by_priority(now);
        let mut tokens = probe.available_tokens();
        let mut slots = probe.batch_slots();
        let idx = 0;
        while idx < self.queue.len() && slots > 0 {
            let need = effective_need(&self.queue[idx], probe);
            if need > tokens {
                break; // highest-priority request blocked: SJF stops here
            }
            tokens -= need;
            slots -= 1;
            let request = self.queue.remove(idx);
            out.push(AdmissionOutcome {
                request,
                queue_index: 0,
                num_queues: 1,
                charged_tokens: need,
                bypassed: false,
            });
            // idx stays 0: remove shifted the vector.
        }
    }

    fn on_finish(&mut self, _queue_index: usize, _charged_tokens: u64) {}

    fn queued_adapters_into(&mut self, out: &mut Vec<AdapterId>) {
        self.seen.clear();
        for q in &self.queue {
            if self.seen.insert(q.adapter()) {
                out.push(q.adapter());
            }
        }
    }

    fn drain_queued_into(&mut self, out: &mut Vec<QueuedRequest>) {
        out.append(&mut self.queue);
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn name(&self) -> &'static str {
        "sjf"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::StaticProbe;
    use chameleon_models::AdapterRank;
    use chameleon_simcore::{SimDuration, SimTime};
    use chameleon_workload::{Request, RequestId};

    fn queued_at(id: u64, predicted: u32, at: f64) -> QueuedRequest {
        let t = SimTime::from_secs_f64(at);
        let r = Request::new(
            RequestId(id),
            t,
            10,
            predicted.max(1),
            AdapterId(id as u32),
            AdapterRank::new(8),
        );
        QueuedRequest::new(r, predicted, 16 << 20, 0, 0.1, t)
    }

    #[test]
    fn shortest_predicted_first() {
        let mut s = SjfScheduler::with_aging(0.0);
        s.enqueue(queued_at(0, 500, 0.0));
        s.enqueue(queued_at(1, 5, 0.0));
        s.enqueue(queued_at(2, 50, 0.0));
        let out = s.form_batch(&StaticProbe::default());
        let ids: Vec<u64> = out.iter().map(|o| o.request.id().0).collect();
        assert_eq!(ids, vec![1, 2, 0]);
    }

    #[test]
    fn pure_sjf_starves_long_requests() {
        let mut s = SjfScheduler::with_aging(0.0);
        s.enqueue(queued_at(0, 1000, 0.0)); // long, arrived first
        s.enqueue(queued_at(1, 10, 5.0)); // short, arrived later
        let probe = StaticProbe {
            batch_slots: 1,
            now: SimTime::from_secs_f64(10.0),
            ..StaticProbe::default()
        };
        let out = s.form_batch(&probe);
        assert_eq!(
            out[0].request.id().0,
            1,
            "short wins despite arriving later"
        );
    }

    #[test]
    fn aging_eventually_promotes_long_requests() {
        let mut s = SjfScheduler::with_aging(100.0);
        s.enqueue(queued_at(0, 1000, 0.0)); // long, waiting since t=0
        s.enqueue(queued_at(1, 10, 99.0)); // short, just arrived
                                           // At t=100 the long request has 100 s · 100 tok/s = 10 000 credit.
        let probe = StaticProbe {
            batch_slots: 1,
            now: SimTime::from_secs_f64(100.0),
            ..StaticProbe::default()
        };
        let out = s.form_batch(&probe);
        assert_eq!(out[0].request.id().0, 0, "aged request runs first");
    }

    #[test]
    fn blocked_head_stops_admission() {
        let mut s = SjfScheduler::with_aging(0.0);
        s.enqueue(queued_at(0, 50, 0.0)); // shortest, 60 tokens
        s.enqueue(queued_at(1, 100, 0.0)); // 110 tokens
        let probe = StaticProbe {
            available_tokens: 40,
            ..StaticProbe::default()
        };
        assert!(s.form_batch(&probe).is_empty());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn priority_is_aging_linear() {
        let s = SjfScheduler::with_aging(10.0);
        let r = queued_at(0, 100, 0.0);
        let p0 = s.priority(&r, SimTime::ZERO);
        let p5 = s.priority(&r, SimTime::ZERO + SimDuration::from_secs(5));
        assert_eq!(p0, 100.0);
        assert_eq!(p5, 50.0);
    }

    #[test]
    fn requeue_reenters_priority_order() {
        let mut s = SjfScheduler::with_aging(0.0);
        s.enqueue(queued_at(0, 10, 0.0));
        s.requeue_front(queued_at(1, 5, 0.0));
        let out = s.form_batch(&StaticProbe::default());
        assert_eq!(out[0].request.id().0, 1, "shorter request still first");
    }

    #[test]
    #[should_panic]
    fn rejects_negative_aging() {
        let _ = SjfScheduler::with_aging(-1.0);
    }
}
