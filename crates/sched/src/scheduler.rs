//! The scheduler abstraction the engine drives.
//!
//! On every iteration boundary the engine asks the active [`Scheduler`] to
//! [`form_batch`](Scheduler::form_batch) — pick which queued requests join
//! the running batch — against a [`ResourceProbe`] describing what the GPU
//! can currently hold. The probe abstracts the engine so schedulers are
//! unit-testable in isolation.

use crate::queued::QueuedRequest;
use chameleon_models::AdapterId;
use chameleon_simcore::{SimDuration, SimTime};

/// Engine-provided view of resource availability during batch formation.
pub trait ResourceProbe {
    /// Current simulated time.
    fn now(&self) -> SimTime;

    /// Resource tokens (KV tokens + adapter token-equivalents) that can
    /// still be committed, counting memory reclaimable by evicting idle
    /// cached adapters.
    fn available_tokens(&self) -> u64;

    /// Free request slots in the running batch.
    fn batch_slots(&self) -> usize;

    /// Whether the adapter's weights are already on the GPU.
    fn adapter_resident(&self, id: AdapterId) -> bool;

    /// Estimated execution time of a request needing `tokens` resource
    /// tokens (used by the bypass heuristic, §4.3.3).
    fn estimate_exec(&self, tokens: u64) -> SimDuration;

    /// Estimated wall-clock service time of a request with `input_tokens`
    /// of prompt and `output_tokens` of decode: prefill is cheap per token,
    /// decode pays a full iteration per token (§4.3.5's `D`).
    fn estimate_service(&self, input_tokens: u64, output_tokens: u64) -> SimDuration {
        self.estimate_exec(input_tokens + output_tokens)
    }

    /// Estimated wait until `bytes` of adapter memory frees up (§4.3.3:
    /// "predicts how soon will the memory needed by R1 become available").
    fn estimate_mem_wait(&self, bytes: u64) -> SimDuration;

    /// Total token capacity of the engine when idle (for quota assignment,
    /// §4.3.5's `Tok_total`).
    fn total_token_capacity(&self) -> u64;

    /// Bytes the KV allocator could claim right now: genuinely free pool
    /// memory plus memory reclaimable by evicting idle cached adapters.
    /// The KV-aware admission contract — an admission whose
    /// [`kv_bytes_for`](Self::kv_bytes_for) footprint exceeds this cannot
    /// complete and will be refused rather than unwound. Default
    /// `u64::MAX` (KV never constrains) keeps probes that predate the KV
    /// plane working unchanged.
    fn free_kv_bytes(&self) -> u64 {
        u64::MAX
    }

    /// Block-rounded bytes `tokens` of KV state occupy — what the
    /// allocator actually reserves, not the naive per-token product.
    /// Default: token count taken as bytes, for probes without a block
    /// model.
    fn kv_bytes_for(&self, tokens: u64) -> u64 {
        tokens
    }
}

/// The effective token charge of a request given current residency: a
/// request whose adapter is already on the GPU does not pay the adapter
/// token-equivalent again.
pub fn effective_need(req: &QueuedRequest, probe: &dyn ResourceProbe) -> u64 {
    if probe.adapter_resident(req.adapter()) {
        req.kv_token_need()
    } else {
        req.token_need()
    }
}

/// One admission decision out of [`Scheduler::form_batch`].
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionOutcome {
    /// The admitted request.
    pub request: QueuedRequest,
    /// Index of the queue it came from (0 for single-queue policies).
    pub queue_index: usize,
    /// Number of queues at decision time (for size-class reporting).
    pub num_queues: usize,
    /// Resource tokens charged (returned via [`Scheduler::on_finish`]).
    pub charged_tokens: u64,
    /// True when the request bypassed a blocked older request (§4.3.3).
    pub bypassed: bool,
}

/// An iteration-level admission policy.
///
/// `Send` is a supertrait because a cluster's engines (each owning its
/// scheduler) are stepped on worker threads under parallel cluster
/// execution; every scheduler here is plain owned data, so the bound
/// costs nothing.
pub trait Scheduler: Send {
    /// Adds a newly arrived (and annotated) request.
    fn enqueue(&mut self, req: QueuedRequest);

    /// Returns a squashed request to the front of its queue for
    /// re-execution (§4.3.3).
    fn requeue_front(&mut self, req: QueuedRequest);

    /// Selects requests to admit into the batch right now, appending them
    /// to `out` (which the engine clears and reuses across iterations so
    /// the dispatch hot path allocates nothing).
    fn form_batch_into(&mut self, probe: &dyn ResourceProbe, out: &mut Vec<AdmissionOutcome>);

    /// Allocating convenience wrapper around
    /// [`form_batch_into`](Self::form_batch_into) (tests, examples).
    fn form_batch(&mut self, probe: &dyn ResourceProbe) -> Vec<AdmissionOutcome> {
        let mut out = Vec::new();
        self.form_batch_into(probe, &mut out);
        out
    }

    /// Returns quota charged at admission when the request leaves the
    /// system (completion or squash). Single-queue policies ignore this.
    fn on_finish(&mut self, queue_index: usize, charged_tokens: u64);

    /// Appends the adapters needed by queued requests, next-to-run first
    /// and deduplicated, to `out` (drives prefetch and eviction
    /// protection, §4.2). Takes `&mut self` so implementations can reuse
    /// internal dedup scratch instead of allocating per call.
    fn queued_adapters_into(&mut self, out: &mut Vec<AdapterId>);

    /// Allocating convenience wrapper around
    /// [`queued_adapters_into`](Self::queued_adapters_into).
    fn queued_adapters(&mut self) -> Vec<AdapterId> {
        let mut out = Vec::new();
        self.queued_adapters_into(&mut out);
        out
    }

    /// Removes *every* waiting request, appending them to `out` in queue
    /// order (small queue first for multi-queue policies, FIFO within a
    /// queue). Used by crash recovery to extract a dead engine's backlog
    /// for re-dispatch; the scheduler is discarded afterwards, so
    /// implementations need not unwind quota bookkeeping.
    fn drain_queued_into(&mut self, out: &mut Vec<QueuedRequest>);

    /// Number of waiting requests.
    fn len(&self) -> usize;

    /// True when no requests wait.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Periodic reconfiguration hook (`T_refresh`, §4.3.4–5). Default: none.
    fn on_refresh(&mut self, _probe: &dyn ResourceProbe) {}

    /// Queue index a request with this WRS would join right now (for
    /// size-class reporting); single-queue policies return 0.
    fn queue_index_for(&self, _wrs: f64) -> usize {
        0
    }

    /// Number of queues currently configured.
    fn num_queues(&self) -> usize {
        1
    }

    /// Policy label for reports.
    fn name(&self) -> &'static str;

    /// Human-readable internal state dump for diagnostics.
    fn debug_state(&self) -> String {
        String::new()
    }
}

/// A fixed probe for scheduler unit tests (also reused by downstream
/// crates' tests).
#[derive(Debug, Clone)]
pub struct StaticProbe {
    /// Value returned by [`ResourceProbe::now`].
    pub now: SimTime,
    /// Value returned by [`ResourceProbe::available_tokens`].
    pub available_tokens: u64,
    /// Value returned by [`ResourceProbe::batch_slots`].
    pub batch_slots: usize,
    /// Adapters reported resident.
    pub resident: Vec<AdapterId>,
    /// Seconds of execution per 1000 tokens for [`ResourceProbe::estimate_exec`].
    pub exec_secs_per_kilotoken: f64,
    /// Wall seconds per decode token for [`ResourceProbe::estimate_service`].
    pub decode_secs_per_token: f64,
    /// Seconds per prefill token for [`ResourceProbe::estimate_service`].
    pub prefill_secs_per_token: f64,
    /// Fixed value for [`ResourceProbe::estimate_mem_wait`].
    pub mem_wait: SimDuration,
    /// Value returned by [`ResourceProbe::total_token_capacity`].
    pub total_capacity: u64,
}

impl Default for StaticProbe {
    fn default() -> Self {
        StaticProbe {
            now: SimTime::ZERO,
            available_tokens: u64::MAX,
            batch_slots: usize::MAX,
            resident: Vec::new(),
            exec_secs_per_kilotoken: 1.0,
            decode_secs_per_token: 0.03,
            prefill_secs_per_token: 0.0002,
            mem_wait: SimDuration::from_secs(10),
            total_capacity: 1_000_000,
        }
    }
}

impl ResourceProbe for StaticProbe {
    fn now(&self) -> SimTime {
        self.now
    }
    fn available_tokens(&self) -> u64 {
        self.available_tokens
    }
    fn batch_slots(&self) -> usize {
        self.batch_slots
    }
    fn adapter_resident(&self, id: AdapterId) -> bool {
        self.resident.contains(&id)
    }
    fn estimate_exec(&self, tokens: u64) -> SimDuration {
        SimDuration::from_secs_f64(tokens as f64 / 1000.0 * self.exec_secs_per_kilotoken)
    }
    fn estimate_service(&self, input_tokens: u64, output_tokens: u64) -> SimDuration {
        SimDuration::from_secs_f64(
            input_tokens as f64 * self.prefill_secs_per_token
                + output_tokens as f64 * self.decode_secs_per_token,
        )
    }
    fn estimate_mem_wait(&self, _bytes: u64) -> SimDuration {
        self.mem_wait
    }
    fn total_token_capacity(&self) -> u64 {
        self.total_capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_models::AdapterRank;
    use chameleon_workload::{Request, RequestId};

    fn queued(adapter: u32, input: u32, predicted: u32) -> QueuedRequest {
        let r = Request::new(
            RequestId(u64::from(adapter)),
            SimTime::ZERO,
            input,
            predicted.max(1),
            AdapterId(adapter),
            AdapterRank::new(8),
        );
        QueuedRequest::new(r, predicted, 16 << 20, 32, 0.1, SimTime::ZERO)
    }

    #[test]
    fn effective_need_discounts_resident_adapters() {
        let probe = StaticProbe {
            resident: vec![AdapterId(1)],
            ..StaticProbe::default()
        };
        let hit = queued(1, 100, 50);
        let miss = queued(2, 100, 50);
        assert_eq!(effective_need(&hit, &probe), 150);
        assert_eq!(effective_need(&miss, &probe), 182);
    }

    #[test]
    fn static_probe_estimates() {
        let probe = StaticProbe::default();
        assert_eq!(probe.estimate_exec(2000), SimDuration::from_secs(2));
        assert_eq!(probe.estimate_mem_wait(1 << 20), SimDuration::from_secs(10));
        assert!(!probe.adapter_resident(AdapterId(0)));
    }

    #[test]
    fn kv_metering_defaults_never_constrain() {
        let probe = StaticProbe::default();
        assert_eq!(probe.free_kv_bytes(), u64::MAX);
        assert_eq!(probe.kv_bytes_for(42), 42);
    }
}
