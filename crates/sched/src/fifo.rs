//! FIFO admission — S-LoRA's default policy (§3.3).
//!
//! Requests are admitted in strict arrival order; batch formation stops at
//! the first request that does not fit the remaining resources. This is
//! what produces head-of-line blocking: one large request at the head
//! stalls every smaller request behind it, even when they would fit.

use crate::queued::QueuedRequest;
use crate::scheduler::{effective_need, AdmissionOutcome, ResourceProbe, Scheduler};
use chameleon_models::AdapterId;
use std::collections::VecDeque;

/// Strict arrival-order admission.
#[derive(Debug, Default)]
pub struct FifoScheduler {
    queue: VecDeque<QueuedRequest>,
    /// Dedup scratch for [`Scheduler::queued_adapters_into`].
    seen: std::collections::HashSet<AdapterId>,
}

impl FifoScheduler {
    /// Creates an empty FIFO scheduler.
    pub fn new() -> Self {
        FifoScheduler::default()
    }
}

impl Scheduler for FifoScheduler {
    fn enqueue(&mut self, req: QueuedRequest) {
        self.queue.push_back(req);
    }

    fn requeue_front(&mut self, req: QueuedRequest) {
        self.queue.push_front(req);
    }

    fn form_batch_into(&mut self, probe: &dyn ResourceProbe, out: &mut Vec<AdmissionOutcome>) {
        let mut tokens = probe.available_tokens();
        let mut slots = probe.batch_slots();
        while slots > 0 {
            let Some(head) = self.queue.front() else {
                break;
            };
            let need = effective_need(head, probe);
            if need > tokens {
                break; // head-of-line blocking: nothing behind may pass
            }
            tokens -= need;
            slots -= 1;
            let request = self.queue.pop_front().expect("front checked");
            out.push(AdmissionOutcome {
                request,
                queue_index: 0,
                num_queues: 1,
                charged_tokens: need,
                bypassed: false,
            });
        }
    }

    fn on_finish(&mut self, _queue_index: usize, _charged_tokens: u64) {}

    fn queued_adapters_into(&mut self, out: &mut Vec<AdapterId>) {
        self.seen.clear();
        for q in &self.queue {
            if self.seen.insert(q.adapter()) {
                out.push(q.adapter());
            }
        }
    }

    fn drain_queued_into(&mut self, out: &mut Vec<QueuedRequest>) {
        out.extend(self.queue.drain(..));
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::StaticProbe;
    use chameleon_models::AdapterRank;
    use chameleon_simcore::SimTime;
    use chameleon_workload::{Request, RequestId};

    fn queued(id: u64, input: u32, predicted: u32, adapter: u32) -> QueuedRequest {
        let r = Request::new(
            RequestId(id),
            SimTime::ZERO,
            input,
            predicted.max(1),
            AdapterId(adapter),
            AdapterRank::new(8),
        );
        QueuedRequest::new(r, predicted, 16 << 20, 0, 0.1, SimTime::ZERO)
    }

    #[test]
    fn admits_in_arrival_order() {
        let mut s = FifoScheduler::new();
        for i in 0..5 {
            s.enqueue(queued(i, 10, 10, i as u32));
        }
        let out = s.form_batch(&StaticProbe::default());
        let ids: Vec<u64> = out.iter().map(|o| o.request.id().0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert!(s.is_empty());
    }

    #[test]
    fn blocks_behind_oversized_head() {
        let mut s = FifoScheduler::new();
        s.enqueue(queued(0, 500, 500, 0)); // needs 1000 tokens
        s.enqueue(queued(1, 5, 5, 1)); // tiny, would fit
        let probe = StaticProbe {
            available_tokens: 100,
            ..StaticProbe::default()
        };
        let out = s.form_batch(&probe);
        assert!(out.is_empty(), "HoL blocking: nothing admitted");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn respects_slots() {
        let mut s = FifoScheduler::new();
        for i in 0..5 {
            s.enqueue(queued(i, 10, 10, 0));
        }
        let probe = StaticProbe {
            batch_slots: 2,
            ..StaticProbe::default()
        };
        assert_eq!(s.form_batch(&probe).len(), 2);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn respects_token_budget_cumulatively() {
        let mut s = FifoScheduler::new();
        for i in 0..4 {
            s.enqueue(queued(i, 50, 50, 0)); // 100 tokens each
        }
        let probe = StaticProbe {
            available_tokens: 250,
            ..StaticProbe::default()
        };
        let out = s.form_batch(&probe);
        assert_eq!(out.len(), 2, "two fit fully, third would exceed");
        let charged: u64 = out.iter().map(|o| o.charged_tokens).sum();
        assert!(charged <= 250);
    }

    #[test]
    fn resident_adapter_is_cheaper() {
        let mut s = FifoScheduler::new();
        // 100 KV + 32 adapter-equiv tokens.
        let r = {
            let req = Request::new(
                RequestId(0),
                SimTime::ZERO,
                50,
                50,
                AdapterId(7),
                AdapterRank::new(8),
            );
            QueuedRequest::new(req, 50, 16 << 20, 32, 0.1, SimTime::ZERO)
        };
        s.enqueue(r.clone());
        let blocked = StaticProbe {
            available_tokens: 110,
            ..StaticProbe::default()
        };
        assert!(
            s.form_batch(&blocked).is_empty(),
            "132 > 110 without residency"
        );
        let resident = StaticProbe {
            available_tokens: 110,
            resident: vec![AdapterId(7)],
            ..StaticProbe::default()
        };
        let out = s.form_batch(&resident);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].charged_tokens, 100);
    }

    #[test]
    fn requeue_front_takes_priority() {
        let mut s = FifoScheduler::new();
        s.enqueue(queued(1, 10, 10, 1));
        s.requeue_front(queued(0, 10, 10, 0));
        let out = s.form_batch(&StaticProbe::default());
        assert_eq!(out[0].request.id().0, 0);
    }

    #[test]
    fn queued_adapters_dedup_in_order() {
        let mut s = FifoScheduler::new();
        s.enqueue(queued(0, 10, 10, 5));
        s.enqueue(queued(1, 10, 10, 3));
        s.enqueue(queued(2, 10, 10, 5));
        assert_eq!(s.queued_adapters(), vec![AdapterId(5), AdapterId(3)]);
    }
}
