//! The Chameleon multi-level-queue scheduler (§4.3).
//!
//! Requests are classified by WRS into `K` queues (small → large). Each
//! queue holds a resource-token quota assigned by the M/M/1 model of
//! §4.3.5. Batch formation follows Algorithm 1 exactly:
//!
//! * **Phase 1 (initial admission)** — each queue admits from its head up
//!   to its available quota; queues that drain contribute their unused
//!   budget to a spare pool.
//! * **Phase 2 (spare redistribution)** — the spare pool is offered to the
//!   queues again, smallest-request queue first.
//!
//! Within a queue admission is strictly FIFO — except the *opportunistic
//! bypass* of §4.3.3: when the head request cannot be placed because GPU
//! memory for its adapter is unavailable (even after evicting every idle
//! cached adapter), a younger request from the same queue whose adapter is
//! already resident (or small enough to fit) may jump ahead, provided its
//! predicted execution finishes before the head's memory is predicted to
//! free up. The engine squashes the bypasser if the prediction turns out
//! wrong.
//!
//! Every `T_refresh` the scheduler re-derives the number of queues
//! (1-D K-means + elbow over the recent WRS distribution, §4.3.4), the
//! per-queue cut-offs (centroid midpoints) and the quotas.

use crate::kmeans;
use crate::queued::QueuedRequest;
use crate::quota::{assign_quotas, QueueLoad};
use crate::scheduler::{effective_need, AdmissionOutcome, ResourceProbe, Scheduler};
use crate::wrs::WrsConfig;
use chameleon_models::AdapterId;
use chameleon_simcore::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Configuration of the Chameleon scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct ChameleonConfig {
    /// Maximum number of queues (paper: 4, "to keep queue management
    /// overheads tolerable").
    pub k_max: usize,
    /// Elbow threshold for choosing K (relative WCSS improvement).
    pub elbow_threshold: f64,
    /// The TTFT SLO used in quota assignment (§4.3.5).
    pub slo: SimDuration,
    /// Reconfiguration period `T_refresh` (paper: 5 minutes).
    pub refresh_interval: SimDuration,
    /// Number of recent arrivals whose WRS is kept for clustering.
    pub window: usize,
    /// Enables opportunistic bypass (§4.3.3).
    pub enable_bypass: bool,
    /// When false the initial configuration is never re-derived (the
    /// "Static" baseline of §5.4.5 sets this).
    pub dynamic: bool,
    /// Initial cut-offs used before the first reconfiguration.
    pub initial_cutoffs: Vec<f64>,
}

impl ChameleonConfig {
    /// The paper's defaults for a given SLO.
    pub fn paper(slo: SimDuration) -> Self {
        ChameleonConfig {
            k_max: 4,
            elbow_threshold: 0.15,
            slo,
            refresh_interval: SimDuration::from_secs(300),
            window: 2048,
            enable_bypass: true,
            dynamic: true,
            // Seed classification for the warm-up phase; replaced by the
            // first K-means refresh.
            initial_cutoffs: vec![0.08, 0.25],
        }
    }
}

/// The Chameleon multi-level-queue scheduler.
#[derive(Debug)]
pub struct ChameleonScheduler {
    cfg: ChameleonConfig,
    wrs_cfg: WrsConfig,
    queues: Vec<VecDeque<QueuedRequest>>,
    cutoffs: Vec<f64>,
    quotas: Vec<u64>,
    outstanding: Vec<i64>,
    /// Tokens banked for a physically-blocked queue head (§4.3's
    /// no-starvation guarantee): freed memory is reserved for the blocked
    /// head across cycles until it can afford to run.
    banked: Vec<u64>,
    /// Recent arrivals: (time, wrs, token_need, input, predicted output)
    /// for reconfiguration.
    window: VecDeque<(SimTime, f64, u64, u32, u32)>,
    last_refresh: Option<SimTime>,
    refreshes: u64,
    bypass_admissions: u64,
    /// Dedup scratch for [`Scheduler::queued_adapters_into`].
    seen: std::collections::HashSet<AdapterId>,
    /// Reusable WRS-sample buffer for the K-means refresh.
    wrs_scratch: Vec<f64>,
    /// Retired queue deques kept for reuse across reconfigurations, so a
    /// refresh storm never reallocates queue storage.
    spare_queues: Vec<VecDeque<QueuedRequest>>,
}

impl ChameleonScheduler {
    /// Creates the scheduler.
    ///
    /// `wrs_cfg` is kept for reporting (the engine computes WRS values when
    /// annotating requests; the scheduler only consumes them).
    pub fn new(cfg: ChameleonConfig, wrs_cfg: WrsConfig) -> Self {
        let cutoffs = cfg.initial_cutoffs.clone();
        let n = cutoffs.len() + 1;
        ChameleonScheduler {
            cfg,
            wrs_cfg,
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            cutoffs,
            quotas: vec![u64::MAX / 4; n],
            outstanding: vec![0; n],
            banked: vec![0; n],
            window: VecDeque::new(),
            last_refresh: None,
            refreshes: 0,
            bypass_admissions: 0,
            seen: std::collections::HashSet::new(),
            wrs_scratch: Vec::new(),
            spare_queues: Vec::new(),
        }
    }

    /// The WRS configuration in use.
    pub fn wrs_config(&self) -> &WrsConfig {
        &self.wrs_cfg
    }

    /// Current queue cut-offs (WRS boundaries).
    pub fn cutoffs(&self) -> &[f64] {
        &self.cutoffs
    }

    /// Current per-queue quotas in tokens.
    pub fn quotas(&self) -> &[u64] {
        &self.quotas
    }

    /// Overrides the per-queue quotas (used by the static baseline and by
    /// tests).
    ///
    /// # Panics
    ///
    /// Panics if the length does not match the current queue count.
    pub fn set_quotas(&mut self, quotas: Vec<u64>) {
        assert_eq!(quotas.len(), self.queues.len(), "quota/queue mismatch");
        self.quotas = quotas;
    }

    /// Number of reconfigurations performed.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Number of requests admitted via opportunistic bypass.
    pub fn bypass_admissions(&self) -> u64 {
        self.bypass_admissions
    }

    /// Per-queue (quota, outstanding, backlog) snapshot for diagnostics.
    pub fn queue_state(&self) -> Vec<(u64, i64, usize)> {
        (0..self.queues.len())
            .map(|qi| (self.quotas[qi], self.outstanding[qi], self.queues[qi].len()))
            .collect()
    }

    fn queue_idx(&self, wrs: f64) -> usize {
        kmeans::queue_of(wrs, &self.cutoffs)
    }

    fn available_quota(&self, qi: usize) -> u64 {
        let q = self.quotas[qi] as i64 - self.outstanding[qi];
        q.max(0) as u64
    }

    /// Re-derives queue count, cut-offs and quotas from the recent WRS
    /// window (§4.3.4–5).
    fn reconfigure(&mut self, probe: &dyn ResourceProbe) {
        self.wrs_scratch.clear();
        self.wrs_scratch
            .extend(self.window.iter().map(|&(_, w, ..)| w));
        let Some(clustering) =
            kmeans::choose_queues(&self.wrs_scratch, self.cfg.k_max, self.cfg.elbow_threshold)
        else {
            return;
        };
        let new_cutoffs = kmeans::cutoffs(&clustering.centroids);
        let n = new_cutoffs.len() + 1;

        // Estimate per-queue load from the window.
        let now = probe.now();
        let span = self
            .window
            .front()
            .map(|&(t, ..)| now.saturating_since(t).as_secs_f64())
            .unwrap_or(0.0)
            .max(1.0);
        let mut counts = vec![0u64; n];
        let mut token_max = vec![0u64; n];
        let mut input_sums = vec![0u64; n];
        let mut output_sums = vec![0u64; n];
        for &(_, w, tokens, input, output) in &self.window {
            let qi = kmeans::queue_of(w, &new_cutoffs);
            counts[qi] += 1;
            token_max[qi] = token_max[qi].max(tokens);
            input_sums[qi] += u64::from(input);
            output_sums[qi] += u64::from(output);
        }
        let loads: Vec<QueueLoad> = (0..n)
            .map(|qi| {
                let c = counts[qi].max(1);
                QueueLoad {
                    max_tokens: token_max[qi] as f64,
                    mean_service: probe.estimate_service(input_sums[qi] / c, output_sums[qi] / c),
                    arrival_rate: counts[qi] as f64 / span,
                }
            })
            .collect();
        let mut quotas = assign_quotas(&loads, self.cfg.slo, probe.total_token_capacity());
        // Starvation guard: every queue can always hold at least its
        // largest request, so overload scale-down never freezes a lane.
        for (q, load) in quotas.iter_mut().zip(&loads) {
            *q = (*q).max(load.max_tokens.ceil() as u64);
        }

        // Re-bucket the waiting requests under the new cut-offs with a
        // stable partition: each old queue keeps its internal order and
        // old queues are visited small→large, replacing the previous
        // drain-everything + global `sort_by_key` (which re-sorted the
        // entire waiting set — and silently demoted requeued heads, whose
        // enqueue stamp is their requeue time — on every refresh). Queue
        // storage is recycled through `spare_queues`, so a refresh storm
        // performs no per-refresh queue allocation after warm-up.
        let old_queues = std::mem::take(&mut self.queues);
        self.cutoffs = new_cutoffs;
        self.quotas = quotas;
        self.queues = Vec::with_capacity(n);
        for _ in 0..n {
            self.queues
                .push(self.spare_queues.pop().unwrap_or_default());
        }
        // Fold outstanding charges into the new shape (indices clamp).
        let mut outstanding = vec![0i64; n];
        for (qi, &o) in self.outstanding.iter().enumerate() {
            outstanding[qi.min(n - 1)] += o;
        }
        self.outstanding = outstanding;
        self.banked = vec![0; n];
        for mut q in old_queues {
            for r in q.drain(..) {
                let qi = self.queue_idx(r.wrs());
                self.queues[qi].push_back(r);
            }
            self.spare_queues.push(q);
        }
        self.refreshes += 1;
    }

    fn maybe_refresh(&mut self, probe: &dyn ResourceProbe) {
        if !self.cfg.dynamic {
            return;
        }
        let now = probe.now();
        let due = match self.last_refresh {
            // First configuration happens as soon as a modest sample exists.
            None => self.window.len() >= 64,
            Some(at) => now.saturating_since(at) >= self.cfg.refresh_interval,
        };
        if due && !self.window.is_empty() {
            self.reconfigure(probe);
            self.last_refresh = Some(now);
        }
    }

    /// Algorithm 1's `put_batch`: admit from queue `qi`'s head up to
    /// `budget` tokens (and the global physical/slot limits). Returns the
    /// tokens consumed.
    fn put_batch(
        &mut self,
        qi: usize,
        budget: u64,
        physical: &mut u64,
        slots: &mut usize,
        admitted: &mut Vec<AdmissionOutcome>,
        probe: &dyn ResourceProbe,
    ) -> u64 {
        let mut consumed = 0u64;
        loop {
            if *slots == 0 {
                break;
            }
            let Some(head) = self.queues[qi].front() else {
                break;
            };
            let need = effective_need(head, probe);
            if need > budget.saturating_sub(consumed) || need > *physical {
                // The head cannot be placed (quota or GPU memory). §4.3.3:
                // a younger request whose adapter is already resident or
                // small enough to fit may opportunistically bypass it.
                if self.cfg.enable_bypass {
                    self.try_bypass(
                        qi,
                        budget.saturating_sub(consumed),
                        physical,
                        slots,
                        admitted,
                        probe,
                        &mut consumed,
                    );
                }
                break;
            }
            let request = self.queues[qi].pop_front().expect("front checked");
            consumed += need;
            *physical -= need;
            *slots -= 1;
            self.outstanding[qi] += need as i64;
            admitted.push(AdmissionOutcome {
                request,
                queue_index: qi,
                num_queues: self.queues.len(),
                charged_tokens: need,
                bypassed: false,
            });
        }
        consumed
    }

    /// Opportunistic bypass (§4.3.3): the head `R1` of queue `qi` is
    /// memory-blocked; admit a younger `R2` from the same queue if it fits
    /// *and* its predicted execution ends before `R1`'s memory is predicted
    /// to become available.
    #[allow(clippy::too_many_arguments)]
    fn try_bypass(
        &mut self,
        qi: usize,
        budget: u64,
        physical: &mut u64,
        slots: &mut usize,
        admitted: &mut Vec<AdmissionOutcome>,
        probe: &dyn ResourceProbe,
        consumed: &mut u64,
    ) {
        if *slots == 0 {
            return;
        }
        let head_bytes = self.queues[qi]
            .front()
            .expect("bypass requires a blocked head")
            .adapter_bytes();
        let mem_wait = probe.estimate_mem_wait(head_bytes);
        let candidate = self.queues[qi].iter().enumerate().skip(1).find(|(_, r)| {
            let need = effective_need(r, probe);
            need <= budget
                && need <= *physical
                && probe
                    .estimate_service(u64::from(r.input_tokens()), u64::from(r.predicted_output()))
                    < mem_wait
        });
        let Some((pos, _)) = candidate else {
            return;
        };
        let request = self.queues[qi].remove(pos).expect("position exists");
        let need = effective_need(&request, probe);
        *consumed += need;
        *physical -= need;
        *slots -= 1;
        self.outstanding[qi] += need as i64;
        self.bypass_admissions += 1;
        admitted.push(AdmissionOutcome {
            request,
            queue_index: qi,
            num_queues: self.queues.len(),
            charged_tokens: need,
            bypassed: true,
        });
    }
}

impl Scheduler for ChameleonScheduler {
    fn enqueue(&mut self, req: QueuedRequest) {
        self.window.push_back((
            req.enqueued_at(),
            req.wrs(),
            req.token_need(),
            req.input_tokens(),
            req.predicted_output(),
        ));
        while self.window.len() > self.cfg.window {
            self.window.pop_front();
        }
        let qi = self.queue_idx(req.wrs());
        self.queues[qi].push_back(req);
    }

    fn requeue_front(&mut self, req: QueuedRequest) {
        let qi = self.queue_idx(req.wrs());
        self.queues[qi].push_front(req);
    }

    fn form_batch_into(&mut self, probe: &dyn ResourceProbe, admitted: &mut Vec<AdmissionOutcome>) {
        self.maybe_refresh(probe);
        let mut physical = probe.available_tokens();
        let mut slots = probe.batch_slots();
        // §4.3.5: quotas partition the system's token capacity. Phase 1
        // therefore lets each queue draw only on its *own share* of the
        // currently free physical tokens — otherwise the small-request
        // queue (served first) would consume memory that notionally
        // belongs to the large queue and starve it under overload.
        // Self-healing quota floor: a queued head larger than its queue's
        // entire quota could never run; raise the quota to fit it (§4.3's
        // guarantee that no request starves).
        for qi in 0..self.queues.len() {
            if let Some(head) = self.queues[qi].front() {
                if head.token_need() > self.quotas[qi] {
                    self.quotas[qi] = head.token_need();
                }
            }
        }
        // Tokens banked for blocked heads are spoken for: carve them out of
        // the shared pool before computing shares.
        let total_banked: u64 = self.banked.iter().sum();
        physical = physical.saturating_sub(total_banked);
        let quota_sum: f64 = self.quotas.iter().map(|&q| q as f64).sum::<f64>().max(1.0);
        let phys_shares: Vec<u64> = self
            .quotas
            .iter()
            .map(|&q| (physical as f64 * (q as f64 / quota_sum)).floor() as u64)
            .collect();
        // Phase 1: every queue up to its own quota; emptied queues donate.
        let mut leftover: u64 = 0;
        // Index loop is load-bearing: the body calls `&mut self` methods.
        #[allow(clippy::needless_range_loop)]
        for qi in 0..self.queues.len() {
            // The queue's own bank is usable by the queue itself.
            let bank = self.banked[qi];
            physical += bank;
            let budget = self
                .available_quota(qi)
                .min(phys_shares[qi].saturating_add(bank));
            let consumed = self.put_batch(qi, budget, &mut physical, &mut slots, admitted, probe);
            // Whatever part of the bank went unused is withheld again.
            let bank_left = bank.saturating_sub(consumed);
            self.banked[qi] = bank_left;
            physical = physical.saturating_sub(bank_left);
            // Queues "with few or no requests to put" donate their unused
            // budget (Algorithm 1); blocked heads keep their claim through
            // the bank below, so donation stays starvation-safe.
            leftover += budget.saturating_sub(consumed).saturating_sub(bank_left);
        }
        // Banking (before spare redistribution): a head still blocked by
        // physical memory — its quota would admit it — reserves free tokens
        // now, accumulating a claim across cycles so overload cannot starve
        // it. Largest-request queues bank first: they wait longest for a
        // window this big to reappear.
        let bank_after = self.cfg.slo.mul_f64(0.25);
        for qi in (0..self.queues.len()).rev() {
            let Some(head) = self.queues[qi].front() else {
                self.banked[qi] = 0;
                continue;
            };
            // Only heads that have already waited a meaningful fraction of
            // the SLO may reserve: transient blocking resolves by itself,
            // and eager reservation would throttle the other queues.
            if head.wait(probe.now()) < bank_after {
                continue;
            }
            let need = effective_need(head, probe);
            if need <= self.available_quota(qi) && need > self.banked[qi] {
                let grab = physical.min(need - self.banked[qi]);
                self.banked[qi] += grab;
                physical -= grab;
            }
        }
        // Phase 2: spare resources, smallest-request queue first.
        for qi in 0..self.queues.len() {
            if leftover == 0 {
                break;
            }
            let consumed = self.put_batch(qi, leftover, &mut physical, &mut slots, admitted, probe);
            leftover -= consumed;
        }
    }

    fn on_finish(&mut self, queue_index: usize, charged_tokens: u64) {
        let qi = queue_index.min(self.outstanding.len() - 1);
        self.outstanding[qi] -= charged_tokens as i64;
    }

    fn queued_adapters_into(&mut self, out: &mut Vec<AdapterId>) {
        self.seen.clear();
        for q in &self.queues {
            for r in q {
                if self.seen.insert(r.adapter()) {
                    out.push(r.adapter());
                }
            }
        }
    }

    fn drain_queued_into(&mut self, out: &mut Vec<QueuedRequest>) {
        for q in &mut self.queues {
            out.extend(q.drain(..));
        }
    }

    fn len(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    fn on_refresh(&mut self, probe: &dyn ResourceProbe) {
        if self.cfg.dynamic && !self.window.is_empty() {
            self.reconfigure(probe);
            self.last_refresh = Some(probe.now());
        }
    }

    fn queue_index_for(&self, wrs: f64) -> usize {
        self.queue_idx(wrs)
    }

    fn num_queues(&self) -> usize {
        self.queues.len()
    }

    fn name(&self) -> &'static str {
        "chameleon-mlq"
    }

    fn debug_state(&self) -> String {
        format!(
            "cutoffs={:?} quotas={:?} outstanding={:?} banked={:?} lens={:?}",
            self.cutoffs,
            self.quotas,
            self.outstanding,
            self.banked,
            self.queues.iter().map(|q| q.len()).collect::<Vec<_>>()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::StaticProbe;
    use chameleon_models::AdapterRank;
    use chameleon_workload::{Request, RequestId};

    fn wrs_cfg() -> WrsConfig {
        WrsConfig::paper(2048.0, 1024.0, (256 << 20) as f64)
    }

    fn cfg() -> ChameleonConfig {
        ChameleonConfig::paper(SimDuration::from_secs(5))
    }

    fn sched() -> ChameleonScheduler {
        ChameleonScheduler::new(cfg(), wrs_cfg())
    }

    /// Queued request with explicit WRS and token need.
    fn queued(id: u64, wrs: f64, tokens: u64, adapter: u32) -> QueuedRequest {
        let input = (tokens / 2).max(1) as u32;
        let predicted = (tokens - u64::from(input)) as u32;
        let r = Request::new(
            RequestId(id),
            SimTime::ZERO,
            input,
            predicted.max(1),
            AdapterId(adapter),
            AdapterRank::new(8),
        );
        QueuedRequest::new(r, predicted, 16 << 20, 0, wrs, SimTime::ZERO)
    }

    #[test]
    fn classifies_by_wrs_into_queues() {
        let mut s = sched();
        s.enqueue(queued(0, 0.01, 100, 0)); // below 0.08 → queue 0
        s.enqueue(queued(1, 0.1, 100, 1)); // between → queue 1
        s.enqueue(queued(2, 0.9, 100, 2)); // above 0.25 → queue 2
        assert_eq!(s.num_queues(), 3);
        assert_eq!(s.queue_index_for(0.01), 0);
        assert_eq!(s.queue_index_for(0.1), 1);
        assert_eq!(s.queue_index_for(0.9), 2);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn all_queues_admit_each_cycle_no_starvation() {
        let mut s = sched();
        // Many small requests plus one large: with FIFO the large one could
        // be starved; Chameleon admits from every queue.
        for i in 0..10 {
            s.enqueue(queued(i, 0.01, 100, i as u32));
        }
        s.enqueue(queued(99, 0.9, 500, 99));
        let out = s.form_batch(&StaticProbe::default());
        let ids: Vec<u64> = out.iter().map(|o| o.request.id().0).collect();
        assert!(ids.contains(&99), "large request admitted alongside small");
        assert_eq!(out.len(), 11);
    }

    #[test]
    fn small_queue_admits_first() {
        let mut s = sched();
        s.enqueue(queued(1, 0.9, 100, 1));
        s.enqueue(queued(0, 0.01, 100, 0));
        let out = s.form_batch(&StaticProbe::default());
        assert_eq!(out[0].request.id().0, 0, "small lane goes first");
        assert_eq!(out[0].queue_index, 0);
        assert_eq!(out[1].queue_index, 2);
    }

    #[test]
    fn quota_limits_queue_but_spare_redistributes() {
        let mut s = sched();
        // Force tiny quotas for queue 0 and large for others.
        s.quotas = vec![150, 1_000, 1_000];
        // Queue 0 has three 100-token requests: quota admits one.
        for i in 0..3 {
            s.enqueue(queued(i, 0.01, 100, i as u32));
        }
        let out = s.form_batch(&StaticProbe::default());
        // Phase 1: one admitted (100 ≤ 150 but 200 > 150). Queues 1 and 2
        // are empty → donate 2000 spare. Phase 2: the rest admit on spare.
        assert_eq!(out.len(), 3, "spare resources rescued the rest");
        // Outstanding charged to the queue either way.
        assert_eq!(s.outstanding[0], 300);
    }

    #[test]
    fn no_spare_when_queues_nonempty() {
        let mut s = sched();
        s.quotas = vec![150, 1_000, 150];
        for i in 0..3 {
            s.enqueue(queued(i, 0.01, 100, i as u32));
        }
        // Queue 2 also has backlog — but ITS quota is too small for two.
        for i in 10..13 {
            s.enqueue(queued(i, 0.9, 100, i as u32));
        }
        let out = s.form_batch(&StaticProbe::default());
        // Queue 0: 1 admitted (quota); queue 1 empty donates 1000;
        // queue 2: 1 admitted (quota). Phase 2: spare 1000 admits the
        // remaining 2 + 2.
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn on_finish_returns_quota() {
        let mut s = sched();
        s.quotas = vec![100, 1_000, 1_000];
        s.enqueue(queued(0, 0.01, 100, 0));
        let out = s.form_batch(&StaticProbe::default());
        assert_eq!(out.len(), 1);
        assert_eq!(s.available_quota(0), 0);
        s.on_finish(out[0].queue_index, out[0].charged_tokens);
        assert_eq!(s.available_quota(0), 100);
    }

    #[test]
    fn physical_memory_caps_all_quotas() {
        let mut s = sched();
        for i in 0..5 {
            s.enqueue(queued(i, 0.01, 100, i as u32));
        }
        let probe = StaticProbe {
            available_tokens: 250,
            ..StaticProbe::default()
        };
        // No single cycle may admit beyond the physical pool, and the
        // backlog drains within a few cycles thanks to spare
        // redistribution plus head banking.
        let mut total = 0;
        for _ in 0..8 {
            let out = s.form_batch(&probe);
            let charged: u64 = out.iter().map(|o| o.charged_tokens).sum();
            assert!(charged <= 250, "cycle exceeded physical: {charged}");
            for o in &out {
                s.on_finish(o.queue_index, o.charged_tokens);
            }
            total += out.len();
        }
        assert_eq!(total, 5, "all requests eventually admitted");
    }

    #[test]
    fn bypass_admits_resident_adapter_when_head_blocked() {
        let mut s = sched();
        // Head needs 200 physical tokens; only 150 available. The younger
        // request's adapter is resident and needs 100.
        let head = {
            let r = Request::new(
                RequestId(0),
                SimTime::ZERO,
                100,
                100,
                AdapterId(0),
                AdapterRank::new(64),
            );
            QueuedRequest::new(r, 100, 128 << 20, 64, 0.01, SimTime::ZERO)
        };
        let young = {
            let r = Request::new(
                RequestId(1),
                SimTime::ZERO,
                50,
                50,
                AdapterId(1),
                AdapterRank::new(8),
            );
            QueuedRequest::new(r, 50, 16 << 20, 32, 0.01, SimTime::ZERO)
        };
        s.enqueue(head);
        s.enqueue(young);
        s.set_quotas(vec![10_000, 1, 1]); // queue 0 owns ~all physical share
        let probe = StaticProbe {
            available_tokens: 150,
            resident: vec![AdapterId(1)],
            // Memory frees in 10 s; R2 executes quickly.
            mem_wait: SimDuration::from_secs(10),
            exec_secs_per_kilotoken: 1.0,
            ..StaticProbe::default()
        };
        let out = s.form_batch(&probe);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].request.id().0, 1);
        assert!(out[0].bypassed);
        assert_eq!(s.bypass_admissions(), 1);
        assert_eq!(s.len(), 1, "head still waiting");
    }

    #[test]
    fn bypass_denied_when_execution_outlasts_memory_wait() {
        let mut s = sched();
        let head = {
            let r = Request::new(
                RequestId(0),
                SimTime::ZERO,
                100,
                100,
                AdapterId(0),
                AdapterRank::new(64),
            );
            QueuedRequest::new(r, 100, 128 << 20, 64, 0.01, SimTime::ZERO)
        };
        let young = {
            let r = Request::new(
                RequestId(1),
                SimTime::ZERO,
                50,
                50,
                AdapterId(1),
                AdapterRank::new(8),
            );
            QueuedRequest::new(r, 50, 16 << 20, 32, 0.01, SimTime::ZERO)
        };
        s.enqueue(head);
        s.enqueue(young);
        s.set_quotas(vec![10_000, 1, 1]);
        let probe = StaticProbe {
            available_tokens: 150,
            resident: vec![AdapterId(1)],
            // Memory frees almost immediately: bypass would be wasteful.
            mem_wait: SimDuration::from_millis(1),
            exec_secs_per_kilotoken: 1.0,
            ..StaticProbe::default()
        };
        assert!(s.form_batch(&probe).is_empty());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn bypass_disabled_by_config() {
        let mut c = cfg();
        c.enable_bypass = false;
        let mut s = ChameleonScheduler::new(c, wrs_cfg());
        let head = {
            let r = Request::new(
                RequestId(0),
                SimTime::ZERO,
                100,
                100,
                AdapterId(0),
                AdapterRank::new(64),
            );
            QueuedRequest::new(r, 100, 128 << 20, 64, 0.01, SimTime::ZERO)
        };
        let young = {
            let r = Request::new(
                RequestId(1),
                SimTime::ZERO,
                50,
                50,
                AdapterId(1),
                AdapterRank::new(8),
            );
            QueuedRequest::new(r, 50, 16 << 20, 32, 0.01, SimTime::ZERO)
        };
        s.enqueue(head);
        s.enqueue(young);
        s.set_quotas(vec![10_000, 1, 1]);
        let probe = StaticProbe {
            available_tokens: 150,
            resident: vec![AdapterId(1)],
            ..StaticProbe::default()
        };
        assert!(s.form_batch(&probe).is_empty());
    }

    #[test]
    fn refresh_reconfigures_queues_from_window() {
        let mut s = sched();
        // Three well-separated WRS populations.
        let mut id = 0;
        for _ in 0..40 {
            for &(w, t) in &[(0.05, 60u64), (0.4, 300u64), (0.95, 900u64)] {
                s.enqueue(queued(id, w, t, (id % 50) as u32));
                id += 1;
            }
        }
        let probe = StaticProbe {
            total_capacity: 100_000,
            ..StaticProbe::default()
        };
        s.on_refresh(&probe);
        assert_eq!(s.refreshes(), 1);
        assert_eq!(s.num_queues(), 3, "cutoffs: {:?}", s.cutoffs());
        // Boundaries separate the populations.
        assert!(s.queue_index_for(0.05) == 0);
        assert!(s.queue_index_for(0.4) == 1);
        assert!(s.queue_index_for(0.95) == 2);
        // Quotas assigned within capacity.
        let total: u64 = s.quotas().iter().sum();
        assert!(total <= 100_000);
        assert!(s.quotas().iter().all(|&q| q > 0));
        // All 120 requests survived re-bucketing.
        assert_eq!(s.len(), 120);
    }

    #[test]
    fn static_variant_never_reconfigures() {
        let mut c = cfg();
        c.dynamic = false;
        let mut s = ChameleonScheduler::new(c, wrs_cfg());
        for i in 0..200 {
            s.enqueue(queued(i, (i % 100) as f64 / 100.0, 100, (i % 10) as u32));
        }
        let probe = StaticProbe::default();
        let _ = s.form_batch(&probe);
        s.on_refresh(&probe);
        assert_eq!(s.refreshes(), 0);
        assert_eq!(s.cutoffs(), &[0.08, 0.25]);
    }

    #[test]
    fn conservation_no_request_lost_or_duplicated() {
        let mut s = sched();
        let n = 300;
        for i in 0..n {
            s.enqueue(queued(
                i,
                (i % 97) as f64 / 97.0,
                50 + (i % 200),
                (i % 30) as u32,
            ));
        }
        let mut seen = std::collections::HashSet::new();
        let probe = StaticProbe {
            available_tokens: 2_000,
            batch_slots: 7,
            ..StaticProbe::default()
        };
        let mut guard = 0;
        while s.len() > 0 {
            let out = s.form_batch(&probe);
            for o in &out {
                assert!(seen.insert(o.request.id()), "duplicate admission");
                s.on_finish(o.queue_index, o.charged_tokens);
            }
            guard += 1;
            assert!(guard < 10_000, "no progress");
        }
        assert_eq!(seen.len(), n as usize);
    }

    #[test]
    fn queued_adapters_ordered_small_queue_first() {
        let mut s = sched();
        s.enqueue(queued(0, 0.9, 100, 42)); // large queue
        s.enqueue(queued(1, 0.01, 100, 7)); // small queue
        let adapters = s.queued_adapters();
        assert_eq!(adapters, vec![AdapterId(7), AdapterId(42)]);
    }
}
