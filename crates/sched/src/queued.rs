//! The scheduler's view of a waiting request.

use chameleon_models::{AdapterId, AdapterRank};
use chameleon_simcore::SimTime;
use chameleon_workload::{Request, RequestId};

/// A request waiting in a scheduler queue, annotated with everything the
/// scheduling policies need: the *predicted* output length (§2: the true
/// length is unknown at admission), the weighted request size, and the
/// resource-token accounting of §4.3.
#[derive(Debug, Clone, PartialEq)]
pub struct QueuedRequest {
    request: Request,
    predicted_output: u32,
    adapter_bytes: u64,
    wrs: f64,
    kv_token_need: u64,
    token_need: u64,
    enqueued_at: SimTime,
}

impl QueuedRequest {
    /// Annotates `request` for scheduling.
    ///
    /// `adapter_token_equiv` is the adapter's memory expressed in KV-token
    /// equivalents (§4.3: quotas include "tokens due to the memory required
    /// for the corresponding adapter").
    pub fn new(
        request: Request,
        predicted_output: u32,
        adapter_bytes: u64,
        adapter_token_equiv: u64,
        wrs: f64,
        enqueued_at: SimTime,
    ) -> Self {
        let kv_token_need = u64::from(request.input_tokens()) + u64::from(predicted_output);
        QueuedRequest {
            request,
            predicted_output,
            adapter_bytes,
            wrs,
            kv_token_need,
            token_need: kv_token_need + adapter_token_equiv,
            enqueued_at,
        }
    }

    /// The underlying request.
    pub fn request(&self) -> &Request {
        &self.request
    }

    /// The request id.
    pub fn id(&self) -> RequestId {
        self.request.id()
    }

    /// The adapter this request needs resident before it can run.
    pub fn adapter(&self) -> AdapterId {
        self.request.adapter()
    }

    /// The adapter's rank.
    pub fn rank(&self) -> AdapterRank {
        self.request.rank()
    }

    /// Bytes of the adapter's weights.
    pub fn adapter_bytes(&self) -> u64 {
        self.adapter_bytes
    }

    /// Prompt length (known exactly).
    pub fn input_tokens(&self) -> u32 {
        self.request.input_tokens()
    }

    /// Predicted output length (what SJF/WRS ordering sees).
    pub fn predicted_output(&self) -> u32 {
        self.predicted_output
    }

    /// The weighted request size (§4.3.1).
    pub fn wrs(&self) -> f64 {
        self.wrs
    }

    /// KV tokens this request will need (input + predicted output).
    pub fn kv_token_need(&self) -> u64 {
        self.kv_token_need
    }

    /// Total resource tokens (KV tokens + adapter token-equivalents) —
    /// the unit quotas are charged in.
    pub fn token_need(&self) -> u64 {
        self.token_need
    }

    /// When this request (last) entered a queue.
    pub fn enqueued_at(&self) -> SimTime {
        self.enqueued_at
    }

    /// Waiting time as of `now`.
    pub fn wait(&self, now: SimTime) -> chameleon_simcore::SimDuration {
        now.saturating_since(self.enqueued_at)
    }

    /// Re-stamps the enqueue time (used when a squashed request re-enters).
    pub fn requeued_at(mut self, now: SimTime) -> Self {
        self.enqueued_at = now;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_simcore::SimDuration;

    fn req() -> Request {
        Request::new(
            RequestId(1),
            SimTime::from_secs_f64(1.0),
            100,
            50,
            AdapterId(3),
            AdapterRank::new(32),
        )
    }

    #[test]
    fn token_accounting() {
        let q = QueuedRequest::new(req(), 40, 64 << 20, 128, 0.5, SimTime::from_secs_f64(1.0));
        assert_eq!(q.kv_token_need(), 140); // 100 input + 40 predicted
        assert_eq!(q.token_need(), 268); // + 128 adapter equivalents
        assert_eq!(q.predicted_output(), 40);
        assert_eq!(q.adapter_bytes(), 64 << 20);
        assert_eq!(q.wrs(), 0.5);
        assert_eq!(q.id(), RequestId(1));
        assert_eq!(q.adapter(), AdapterId(3));
        assert_eq!(q.rank().get(), 32);
        assert_eq!(q.input_tokens(), 100);
    }

    #[test]
    fn waiting_time() {
        let q = QueuedRequest::new(req(), 40, 0, 0, 0.0, SimTime::from_secs_f64(2.0));
        assert_eq!(
            q.wait(SimTime::from_secs_f64(5.0)),
            SimDuration::from_secs(3)
        );
        let r = q.requeued_at(SimTime::from_secs_f64(10.0));
        assert_eq!(
            r.wait(SimTime::from_secs_f64(10.5)),
            SimDuration::from_millis(500)
        );
    }
}
