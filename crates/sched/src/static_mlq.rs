//! The "Static" multi-queue baseline of §5.4.5.
//!
//! "a static system that, knowing the smallest and the largest size of
//! requests, sets the number of queues to 4, sets their ranges equally,
//! and assigns the number of resource tokens to each queue equally."
//!
//! Implemented as the Chameleon scheduler with dynamism disabled, fixed
//! equal-width cut-offs and equal quotas.

use crate::chameleon::{ChameleonConfig, ChameleonScheduler};
use crate::queued::QueuedRequest;
use crate::scheduler::{AdmissionOutcome, ResourceProbe, Scheduler};
use crate::wrs::WrsConfig;
use chameleon_models::AdapterId;
use chameleon_simcore::SimDuration;

/// Four fixed equal-range queues with equal quotas.
#[derive(Debug)]
pub struct StaticMlqScheduler {
    inner: ChameleonScheduler,
    quota_initialised: bool,
}

impl StaticMlqScheduler {
    /// Creates the static scheduler for requests whose WRS spans
    /// `[wrs_min, wrs_max]`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn new(slo: SimDuration, wrs_cfg: WrsConfig, wrs_min: f64, wrs_max: f64) -> Self {
        assert!(wrs_min < wrs_max, "empty WRS range");
        let span = wrs_max - wrs_min;
        let cutoffs = vec![
            wrs_min + span * 0.25,
            wrs_min + span * 0.5,
            wrs_min + span * 0.75,
        ];
        let cfg = ChameleonConfig {
            dynamic: false,
            initial_cutoffs: cutoffs,
            ..ChameleonConfig::paper(slo)
        };
        StaticMlqScheduler {
            inner: ChameleonScheduler::new(cfg, wrs_cfg),
            quota_initialised: false,
        }
    }

    /// The fixed cut-offs.
    pub fn cutoffs(&self) -> &[f64] {
        self.inner.cutoffs()
    }
}

impl Scheduler for StaticMlqScheduler {
    fn enqueue(&mut self, req: QueuedRequest) {
        self.inner.enqueue(req);
    }

    fn requeue_front(&mut self, req: QueuedRequest) {
        self.inner.requeue_front(req);
    }

    fn form_batch_into(&mut self, probe: &dyn ResourceProbe, out: &mut Vec<AdmissionOutcome>) {
        if !self.quota_initialised {
            // Equal split of the engine's token capacity, fixed forever.
            let total = probe.total_token_capacity();
            let n = self.inner.num_queues() as u64;
            self.inner.set_quotas(vec![total / n; n as usize]);
            self.quota_initialised = true;
        }
        self.inner.form_batch_into(probe, out);
    }

    fn on_finish(&mut self, queue_index: usize, charged_tokens: u64) {
        self.inner.on_finish(queue_index, charged_tokens);
    }

    fn queued_adapters_into(&mut self, out: &mut Vec<AdapterId>) {
        self.inner.queued_adapters_into(out);
    }

    fn drain_queued_into(&mut self, out: &mut Vec<QueuedRequest>) {
        self.inner.drain_queued_into(out);
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn queue_index_for(&self, wrs: f64) -> usize {
        self.inner.queue_index_for(wrs)
    }

    fn num_queues(&self) -> usize {
        self.inner.num_queues()
    }

    fn name(&self) -> &'static str {
        "static-mlq"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::StaticProbe;
    use chameleon_models::AdapterRank;
    use chameleon_simcore::SimTime;
    use chameleon_workload::{Request, RequestId};

    fn wrs_cfg() -> WrsConfig {
        WrsConfig::paper(2048.0, 1024.0, (256 << 20) as f64)
    }

    fn sched() -> StaticMlqScheduler {
        StaticMlqScheduler::new(SimDuration::from_secs(5), wrs_cfg(), 0.0, 1.0)
    }

    fn queued(id: u64, wrs: f64) -> QueuedRequest {
        let r = Request::new(
            RequestId(id),
            SimTime::ZERO,
            50,
            50,
            AdapterId(id as u32),
            AdapterRank::new(8),
        );
        QueuedRequest::new(r, 50, 16 << 20, 0, wrs, SimTime::ZERO)
    }

    #[test]
    fn four_equal_queues() {
        let s = sched();
        assert_eq!(s.num_queues(), 4);
        assert_eq!(s.cutoffs(), &[0.25, 0.5, 0.75]);
        assert_eq!(s.queue_index_for(0.1), 0);
        assert_eq!(s.queue_index_for(0.3), 1);
        assert_eq!(s.queue_index_for(0.6), 2);
        assert_eq!(s.queue_index_for(0.99), 3);
    }

    #[test]
    fn equal_quotas_from_capacity() {
        let mut s = sched();
        s.enqueue(queued(0, 0.1));
        let probe = StaticProbe {
            total_capacity: 4_000,
            ..StaticProbe::default()
        };
        let out = s.form_batch(&probe);
        assert_eq!(out.len(), 1);
        // Quota is fixed at 1000 per queue; enqueue 11 requests of 100
        // tokens into queue 0: only 10 fit its quota even though all other
        // queues are empty... but spare redistribution rescues them (the
        // static baseline still runs Algorithm 1).
        for i in 1..12 {
            s.enqueue(queued(i, 0.1));
        }
        let out = s.form_batch(&probe);
        assert!(out.len() >= 10);
    }

    #[test]
    fn never_reconfigures() {
        let mut s = sched();
        for i in 0..300 {
            s.enqueue(queued(i, (i % 100) as f64 / 100.0));
        }
        let probe = StaticProbe::default();
        let _ = s.form_batch(&probe);
        s.on_refresh(&probe);
        assert_eq!(s.cutoffs(), &[0.25, 0.5, 0.75]);
        assert_eq!(s.name(), "static-mlq");
    }
}
