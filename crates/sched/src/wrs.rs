//! Weighted Request Size (§4.3.1).
//!
//! Chameleon classifies a request by an estimate of its total execution
//! time computed from the three heterogeneity knobs of §3.1 — input size,
//! (predicted) output size, and adapter size:
//!
//! ```text
//! WRS = (A·Input/MaxInput + B·Output/MaxOutput) · Adapter/MaxAdapter
//! ```
//!
//! a degree-2 polynomial the paper reports beats a purely linear
//! combination by up to 10 %. `A = 0.4`, `B = 0.6`. The §5.4 sensitivity
//! study compares against `OutputOnly` (μServe-style), which we expose as
//! [`WrsMode::OutputOnly`].

use serde::{Deserialize, Serialize};

/// Which size estimate the scheduler uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WrsMode {
    /// The paper's full formula (input, output, adapter).
    Full,
    /// Only the predicted output length, normalised (§5.4 "OutputOnly").
    OutputOnly,
    /// Degree-1 polynomial: `A·in + B·out + C·adapter` with `C = 0.5`.
    /// §4.3.1 reports the degree-2 product form beats this by up to 10 %.
    Linear,
}

/// WRS computation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WrsConfig {
    /// Input-size weight `A` (paper: 0.4).
    pub a: f64,
    /// Output-size weight `B` (paper: 0.6).
    pub b: f64,
    /// Normalisation constant `MaxInputSize` (tokens).
    pub max_input: f64,
    /// Normalisation constant `MaxOutputSize` (tokens).
    pub max_output: f64,
    /// Normalisation constant `MaxAdapterSize` (bytes).
    pub max_adapter_bytes: f64,
    /// Formula variant.
    pub mode: WrsMode,
}

impl WrsConfig {
    /// The paper's configuration for a given workload envelope.
    ///
    /// # Panics
    ///
    /// Panics if any normalisation constant is non-positive.
    pub fn paper(max_input: f64, max_output: f64, max_adapter_bytes: f64) -> Self {
        assert!(max_input > 0.0 && max_output > 0.0 && max_adapter_bytes > 0.0);
        WrsConfig {
            a: 0.4,
            b: 0.6,
            max_input,
            max_output,
            max_adapter_bytes,
            mode: WrsMode::Full,
        }
    }

    /// Switches to the OutputOnly variant (§5.4).
    pub fn output_only(mut self) -> Self {
        self.mode = WrsMode::OutputOnly;
        self
    }

    /// Switches to the degree-1 (linear) variant (§4.3.1 ablation).
    pub fn linear(mut self) -> Self {
        self.mode = WrsMode::Linear;
        self
    }

    /// Computes the WRS of a request.
    ///
    /// Sizes above the normalisation constants are clamped to 1.0 rather
    /// than extrapolated, so the score stays in a bounded range.
    pub fn compute(&self, input_tokens: u32, predicted_output: u32, adapter_bytes: u64) -> f64 {
        let inp = (f64::from(input_tokens) / self.max_input).min(1.0);
        let out = (f64::from(predicted_output) / self.max_output).min(1.0);
        match self.mode {
            WrsMode::OutputOnly => out,
            WrsMode::Full => {
                let ad = (adapter_bytes as f64 / self.max_adapter_bytes).min(1.0);
                (self.a * inp + self.b * out) * ad
            }
            WrsMode::Linear => {
                let ad = (adapter_bytes as f64 / self.max_adapter_bytes).min(1.0);
                (self.a * inp + self.b * out + 0.5 * ad) / 1.5
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg() -> WrsConfig {
        WrsConfig::paper(2048.0, 1024.0, 256.0 * 1024.0 * 1024.0)
    }

    #[test]
    fn paper_weights() {
        let c = cfg();
        assert_eq!(c.a, 0.4);
        assert_eq!(c.b, 0.6);
        assert_eq!(c.mode, WrsMode::Full);
    }

    #[test]
    fn known_values() {
        let c = cfg();
        // Full-scale request: (0.4 + 0.6) · 1.0 = 1.0.
        let w = c.compute(2048, 1024, 256 << 20);
        assert!((w - 1.0).abs() < 1e-12);
        // Half input, half output, half adapter: (0.2 + 0.3) · 0.5 = 0.25.
        let w = c.compute(1024, 512, 128 << 20);
        assert!((w - 0.25).abs() < 1e-12);
    }

    #[test]
    fn output_weighs_more_than_input() {
        let c = cfg();
        let in_heavy = c.compute(2048, 1, 64 << 20);
        let out_heavy = c.compute(1, 1024, 64 << 20);
        assert!(out_heavy > in_heavy, "B > A must favour output");
    }

    #[test]
    fn adapter_scales_multiplicatively() {
        let c = cfg();
        let small = c.compute(1024, 512, 16 << 20);
        let large = c.compute(1024, 512, 256 << 20);
        assert!((large / small - 16.0).abs() < 1e-9);
    }

    #[test]
    fn output_only_ignores_input_and_adapter() {
        let c = cfg().output_only();
        let a = c.compute(1, 512, 16 << 20);
        let b = c.compute(2048, 512, 256 << 20);
        assert_eq!(a, b);
        assert!((a - 0.5).abs() < 1e-12);
    }

    #[test]
    fn linear_mode_is_additive() {
        let c = cfg().linear();
        // A tiny adapter no longer zeroes the score, unlike the product form.
        let w = c.compute(1024, 512, 1);
        assert!(w > 0.2, "linear WRS {w}");
        // Still bounded and monotone in the adapter term.
        assert!(c.compute(1024, 512, 256 << 20) > w);
        assert!(c.compute(2048, 1024, 256 << 20) <= 1.0 + 1e-12);
    }

    #[test]
    fn oversized_requests_clamp() {
        let c = cfg();
        let w = c.compute(10_000, 10_000, 1 << 40);
        assert!((w - 1.0).abs() < 1e-12);
    }

    proptest! {
        /// WRS is bounded in [0, 1] and monotone in each argument.
        #[test]
        fn prop_bounded_and_monotone(
            inp in 1u32..4096, out in 1u32..2048, ad in 1u64..(512u64 << 20)
        ) {
            let c = cfg();
            let w = c.compute(inp, out, ad);
            prop_assert!((0.0..=1.0).contains(&w));
            prop_assert!(c.compute(inp + 1, out, ad) >= w);
            prop_assert!(c.compute(inp, out + 1, ad) >= w);
            prop_assert!(c.compute(inp, out, ad + 1) >= w);
        }
    }
}
