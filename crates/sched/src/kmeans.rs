//! 1-D K-means clustering for queue configuration (§4.3.4).
//!
//! The Chameleon scheduler clusters the observed WRS distribution with
//! K-means for K in `1..=K_max` and derives per-queue cut-offs as midpoints
//! between consecutive centroids.
//!
//! The paper says it "picks the K that yields minimal WCSS"; taken
//! literally that always selects `K_max` because WCSS is non-increasing in
//! K. We read it as the standard elbow criterion — stop increasing K once
//! the marginal WCSS improvement falls below a threshold — and document the
//! interpretation in DESIGN.md.

/// Result of clustering at one K.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Sorted cluster centroids.
    pub centroids: Vec<f64>,
    /// Within-cluster sum of squares.
    pub wcss: f64,
}

/// Lloyd's algorithm specialised for 1-D data, deterministic (quantile
/// initialisation), `iters` refinement rounds.
///
/// Returns `None` for an empty sample or `k == 0`.
pub fn kmeans_1d(values: &[f64], k: usize, iters: usize) -> Option<Clustering> {
    if values.is_empty() || k == 0 {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN WRS"));
    let k = k.min(sorted.len());
    // Quantile initialisation: evenly spaced order statistics.
    let mut centroids: Vec<f64> = (0..k)
        .map(|i| {
            let idx = (i * 2 + 1) * sorted.len() / (2 * k);
            sorted[idx.min(sorted.len() - 1)]
        })
        .collect();
    centroids.dedup();
    let mut assignment = vec![0usize; sorted.len()];
    for _ in 0..iters {
        // Assign: nearest centroid (sorted data + sorted centroids →
        // boundaries are midpoints, single sweep).
        let mut changed = false;
        for (i, &v) in sorted.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (c, &ctr) in centroids.iter().enumerate() {
                let d = (v - ctr).abs();
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Update.
        let mut sums = vec![0.0; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (i, &v) in sorted.iter().enumerate() {
            sums[assignment[i]] += v;
            counts[assignment[i]] += 1;
        }
        for c in 0..centroids.len() {
            if counts[c] > 0 {
                centroids[c] = sums[c] / counts[c] as f64;
            }
        }
        centroids.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        if !changed {
            break;
        }
    }
    // Drop empty/duplicate centroids.
    centroids.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    let wcss = sorted
        .iter()
        .map(|&v| {
            let d = centroids
                .iter()
                .map(|&c| (v - c) * (v - c))
                .fold(f64::INFINITY, f64::min);
            d
        })
        .sum();
    Some(Clustering { centroids, wcss })
}

/// Chooses the number of queues: the smallest K in `1..=k_max` after which
/// adding a cluster improves WCSS by less than `elbow_threshold`
/// (relative), evaluated with `kmeans_1d`.
///
/// Returns the chosen clustering. `None` for an empty sample.
pub fn choose_queues(values: &[f64], k_max: usize, elbow_threshold: f64) -> Option<Clustering> {
    if values.is_empty() || k_max == 0 {
        return None;
    }
    let mut best = kmeans_1d(values, 1, 32)?;
    for k in 2..=k_max {
        let next = kmeans_1d(values, k, 32)?;
        if best.wcss <= f64::EPSILON {
            break;
        }
        let improvement = (best.wcss - next.wcss) / best.wcss;
        if improvement < elbow_threshold {
            break;
        }
        best = next;
    }
    Some(best)
}

/// Queue cut-offs from centroids: the boundary between cluster `i` and
/// `i+1` is `(centroid_i + centroid_{i+1}) / 2` (§4.3.4). A clustering with
/// `n` centroids yields `n-1` boundaries.
pub fn cutoffs(centroids: &[f64]) -> Vec<f64> {
    centroids.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect()
}

/// Maps a WRS value onto its queue index given sorted `cutoffs`:
/// queue 0 holds values below the first cut-off, and so on.
pub fn queue_of(wrs: f64, cutoffs: &[f64]) -> usize {
    cutoffs.partition_point(|&c| wrs >= c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn recovers_separated_clusters() {
        let mut vals = Vec::new();
        for i in 0..50 {
            vals.push(0.1 + (i % 5) as f64 * 0.001);
            vals.push(0.5 + (i % 5) as f64 * 0.001);
            vals.push(0.9 + (i % 5) as f64 * 0.001);
        }
        let c = kmeans_1d(&vals, 3, 32).unwrap();
        assert_eq!(c.centroids.len(), 3);
        assert!((c.centroids[0] - 0.102).abs() < 0.01);
        assert!((c.centroids[1] - 0.502).abs() < 0.01);
        assert!((c.centroids[2] - 0.902).abs() < 0.01);
        assert!(c.wcss < 0.01);
    }

    #[test]
    fn wcss_non_increasing_in_k() {
        let vals: Vec<f64> = (0..200).map(|i| ((i * 37) % 100) as f64 / 100.0).collect();
        let mut prev = f64::INFINITY;
        for k in 1..=6 {
            let c = kmeans_1d(&vals, k, 32).unwrap();
            assert!(c.wcss <= prev + 1e-9, "WCSS rose at k={k}");
            prev = c.wcss;
        }
    }

    #[test]
    fn elbow_picks_three_for_three_clusters() {
        let mut vals = Vec::new();
        for _ in 0..60 {
            vals.extend_from_slice(&[0.1, 0.5, 0.9]);
        }
        let c = choose_queues(&vals, 4, 0.15).unwrap();
        assert_eq!(c.centroids.len(), 3, "centroids: {:?}", c.centroids);
    }

    #[test]
    fn elbow_picks_one_for_uniform_point() {
        let vals = vec![0.4; 100];
        let c = choose_queues(&vals, 4, 0.15).unwrap();
        assert_eq!(c.centroids.len(), 1);
    }

    #[test]
    fn respects_k_max() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let c = choose_queues(&vals, 2, 0.01).unwrap();
        assert!(c.centroids.len() <= 2);
    }

    #[test]
    fn cutoffs_are_midpoints() {
        let b = cutoffs(&[0.1, 0.5, 0.9]);
        assert_eq!(b, vec![0.3, 0.7]);
        assert!(cutoffs(&[0.5]).is_empty());
    }

    #[test]
    fn queue_assignment() {
        let b = vec![0.3, 0.7];
        assert_eq!(queue_of(0.0, &b), 0);
        assert_eq!(queue_of(0.29, &b), 0);
        assert_eq!(queue_of(0.3, &b), 1, "boundary belongs to upper queue");
        assert_eq!(queue_of(0.69, &b), 1);
        assert_eq!(queue_of(0.99, &b), 2);
        assert_eq!(queue_of(0.5, &[]), 0, "single queue when no cutoffs");
    }

    #[test]
    fn degenerate_inputs() {
        assert!(kmeans_1d(&[], 3, 10).is_none());
        assert!(kmeans_1d(&[1.0], 0, 10).is_none());
        assert!(choose_queues(&[], 4, 0.1).is_none());
        let single = kmeans_1d(&[0.7], 4, 10).unwrap();
        assert_eq!(single.centroids, vec![0.7]);
        assert_eq!(single.wcss, 0.0);
    }

    proptest! {
        /// queue_of is consistent with cutoffs: a value lands in queue q iff
        /// it is ≥ all boundaries below q and < the boundary at q.
        #[test]
        fn prop_queue_of_consistent(wrs in 0.0f64..1.0, c1 in 0.1f64..0.4, c2 in 0.5f64..0.9) {
            let b = vec![c1, c2];
            let q = queue_of(wrs, &b);
            match q {
                0 => prop_assert!(wrs < c1),
                1 => prop_assert!(wrs >= c1 && wrs < c2),
                2 => prop_assert!(wrs >= c2),
                _ => prop_assert!(false),
            }
        }

        /// Every centroid lies within the data range.
        #[test]
        fn prop_centroids_in_range(vals in proptest::collection::vec(0.0f64..1.0, 1..100), k in 1usize..5) {
            let c = kmeans_1d(&vals, k, 16).unwrap();
            let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            for &ctr in &c.centroids {
                prop_assert!(ctr >= lo - 1e-9 && ctr <= hi + 1e-9);
            }
        }
    }
}
