//! Iteration-level request schedulers (§3.3, §4.3).
//!
//! The engine re-forms its running batch every iteration (continuous
//! batching); the [`Scheduler`] trait is the pluggable policy deciding
//! which queued requests join. Implementations:
//!
//! * [`FifoScheduler`] — S-LoRA's default: strict arrival order, the
//!   head-of-line-blocking baseline.
//! * [`SjfScheduler`] — μServe's speculative shortest-job-first with an
//!   aging knob; starves long requests without aging, inflates their tail
//!   with it.
//! * [`ChameleonScheduler`] — the paper's contribution: WRS-classified
//!   multi-level queues with per-queue token quotas, two-phase batch
//!   formation (Algorithm 1), opportunistic bypass, and periodic K-means
//!   reconfiguration.
//! * [`StaticMlqScheduler`] — the §5.4 "Static" comparison: four fixed
//!   equal-range queues with equal quotas.
//!
//! Supporting modules: [`wrs`] (weighted request size), [`kmeans`]
//! (queue-count selection), [`quota`] (M/M/1 quota assignment — §4.3.5).

pub mod chameleon;
pub mod fifo;
pub mod kmeans;
pub mod queued;
pub mod quota;
pub mod scheduler;
pub mod sjf;
pub mod static_mlq;
pub mod wrs;

pub use chameleon::{ChameleonConfig, ChameleonScheduler};
pub use fifo::FifoScheduler;
pub use queued::QueuedRequest;
pub use scheduler::{AdmissionOutcome, ResourceProbe, Scheduler, StaticProbe};
pub use sjf::SjfScheduler;
pub use static_mlq::StaticMlqScheduler;
pub use wrs::{WrsConfig, WrsMode};
