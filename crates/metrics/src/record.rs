//! Per-request measurement records.

use chameleon_models::{AdapterId, AdapterRank};
use chameleon_simcore::{SimDuration, SimTime};
use chameleon_workload::RequestId;
use serde::{Deserialize, Serialize};

/// The size class a scheduler assigned to a request (Figure 16 buckets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SizeClass {
    /// Smallest-request queue.
    Small,
    /// Middle queue(s).
    Medium,
    /// Largest-request queue.
    Large,
}

impl SizeClass {
    /// Maps a queue index out of `total` queues onto the three reporting
    /// buckets the paper uses (first queue → small, last → large).
    pub fn from_queue_index(index: usize, total: usize) -> SizeClass {
        debug_assert!(total > 0 && index < total);
        if index == 0 {
            SizeClass::Small
        } else if index + 1 == total {
            if total == 1 {
                SizeClass::Small
            } else {
                SizeClass::Large
            }
        } else {
            SizeClass::Medium
        }
    }
}

impl std::fmt::Display for SizeClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SizeClass::Small => "small",
            SizeClass::Medium => "medium",
            SizeClass::Large => "large",
        };
        f.write_str(s)
    }
}

/// Everything measured about one request's journey through the system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// The request's identity.
    pub id: RequestId,
    /// Arrival at the frontend.
    pub arrival: SimTime,
    /// Prompt length.
    pub input_tokens: u32,
    /// True output length.
    pub output_tokens: u32,
    /// Adapter used.
    pub adapter: AdapterId,
    /// Rank of that adapter.
    pub rank: AdapterRank,
    /// First admission into a running batch.
    pub admitted: Option<SimTime>,
    /// First output token produced (end of prefill).
    pub first_token: Option<SimTime>,
    /// Last output token produced.
    pub finished: Option<SimTime>,
    /// Gaps between consecutive output tokens (TBT samples).
    pub tbt_gaps: Vec<SimDuration>,
    /// Adapter-load time that remained on the request's critical path at
    /// admission (zero on a cache hit; Figure 14's metric).
    pub load_on_critical_path: SimDuration,
    /// Size class assigned by the scheduler, when it classifies.
    pub class: Option<SizeClass>,
    /// Times this request was squashed and re-queued (§4.3.3).
    pub squashes: u32,
    /// Times this request bypassed a blocked older request (§4.3.3).
    pub bypasses: u32,
}

impl RequestRecord {
    /// Creates an empty record for an arriving request.
    pub fn arrive(
        id: RequestId,
        arrival: SimTime,
        input_tokens: u32,
        output_tokens: u32,
        adapter: AdapterId,
        rank: AdapterRank,
    ) -> Self {
        RequestRecord {
            id,
            arrival,
            input_tokens,
            output_tokens,
            adapter,
            rank,
            admitted: None,
            first_token: None,
            finished: None,
            tbt_gaps: Vec::new(),
            load_on_critical_path: SimDuration::ZERO,
            class: None,
            squashes: 0,
            bypasses: 0,
        }
    }

    /// Time-to-first-token, when the request produced one.
    pub fn ttft(&self) -> Option<SimDuration> {
        self.first_token.map(|t| t.saturating_since(self.arrival))
    }

    /// End-to-end latency, when the request completed.
    pub fn e2e(&self) -> Option<SimDuration> {
        self.finished.map(|t| t.saturating_since(self.arrival))
    }

    /// Time spent waiting in scheduler queues before first admission.
    pub fn queue_delay(&self) -> Option<SimDuration> {
        self.admitted.map(|t| t.saturating_since(self.arrival))
    }

    /// True when the request finished generating.
    pub fn is_complete(&self) -> bool {
        self.finished.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> RequestRecord {
        RequestRecord::arrive(
            RequestId(1),
            SimTime::from_secs_f64(10.0),
            100,
            20,
            AdapterId(2),
            AdapterRank::new(16),
        )
    }

    #[test]
    fn latencies_from_timestamps() {
        let mut r = rec();
        assert_eq!(r.ttft(), None);
        assert_eq!(r.e2e(), None);
        assert_eq!(r.queue_delay(), None);
        assert!(!r.is_complete());
        r.admitted = Some(SimTime::from_secs_f64(10.5));
        r.first_token = Some(SimTime::from_secs_f64(11.0));
        r.finished = Some(SimTime::from_secs_f64(12.0));
        assert_eq!(r.queue_delay(), Some(SimDuration::from_millis(500)));
        assert_eq!(r.ttft(), Some(SimDuration::from_secs(1)));
        assert_eq!(r.e2e(), Some(SimDuration::from_secs(2)));
        assert!(r.is_complete());
    }

    #[test]
    fn class_mapping_three_queues() {
        assert_eq!(SizeClass::from_queue_index(0, 3), SizeClass::Small);
        assert_eq!(SizeClass::from_queue_index(1, 3), SizeClass::Medium);
        assert_eq!(SizeClass::from_queue_index(2, 3), SizeClass::Large);
    }

    #[test]
    fn class_mapping_edge_cases() {
        assert_eq!(SizeClass::from_queue_index(0, 1), SizeClass::Small);
        assert_eq!(SizeClass::from_queue_index(1, 2), SizeClass::Large);
        assert_eq!(SizeClass::from_queue_index(1, 4), SizeClass::Medium);
        assert_eq!(SizeClass::from_queue_index(2, 4), SizeClass::Medium);
        assert_eq!(SizeClass::from_queue_index(3, 4), SizeClass::Large);
    }

    #[test]
    fn display_labels() {
        assert_eq!(SizeClass::Small.to_string(), "small");
        assert_eq!(SizeClass::Medium.to_string(), "medium");
        assert_eq!(SizeClass::Large.to_string(), "large");
    }
}
