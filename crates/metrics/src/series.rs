//! Time-binned series for the over-time figures.

use chameleon_simcore::stats::percentile;
use chameleon_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A series of `(time, value)` observations reducible into fixed-width bins.
///
/// Used for the paper's over-time plots: P99 TTFT over elapsed time
/// (Figures 15 and 19) and PCIe bandwidth over time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BinnedSeries {
    samples: Vec<(SimTime, f64)>,
}

impl BinnedSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        BinnedSeries::default()
    }

    /// Appends an observation.
    pub fn push(&mut self, at: SimTime, value: f64) {
        self.samples.push((at, value));
    }

    /// Number of raw observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Raw observations in insertion order.
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// Reduces the series into bins of width `bin`, applying `f` to each
    /// non-empty bin's values. Returns `(bin_start_time, f(values))` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `bin` is zero.
    pub fn reduce_bins<F>(&self, bin: SimDuration, mut f: F) -> Vec<(SimTime, f64)>
    where
        F: FnMut(&[f64]) -> f64,
    {
        assert!(!bin.is_zero(), "zero bin width");
        if self.samples.is_empty() {
            return Vec::new();
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut out = Vec::new();
        let mut bucket: Vec<f64> = Vec::new();
        let mut bin_idx = sorted[0].0.as_nanos() / bin.as_nanos();
        for (t, v) in sorted {
            let idx = t.as_nanos() / bin.as_nanos();
            if idx != bin_idx {
                if !bucket.is_empty() {
                    out.push((SimTime::from_nanos(bin_idx * bin.as_nanos()), f(&bucket)));
                    bucket.clear();
                }
                bin_idx = idx;
            }
            bucket.push(v);
        }
        if !bucket.is_empty() {
            out.push((SimTime::from_nanos(bin_idx * bin.as_nanos()), f(&bucket)));
        }
        out
    }

    /// Per-bin P99 — the Figure 15/19 reduction.
    pub fn p99_bins(&self, bin: SimDuration) -> Vec<(SimTime, f64)> {
        self.reduce_bins(bin, |xs| percentile(xs, 99.0).expect("non-empty bin"))
    }

    /// Per-bin mean.
    pub fn mean_bins(&self, bin: SimDuration) -> Vec<(SimTime, f64)> {
        self.reduce_bins(bin, |xs| xs.iter().sum::<f64>() / xs.len() as f64)
    }

    /// Per-bin sum (e.g. bytes per bin → bandwidth).
    pub fn sum_bins(&self, bin: SimDuration) -> Vec<(SimTime, f64)> {
        self.reduce_bins(bin, |xs| xs.iter().sum::<f64>())
    }
}

/// One snapshot of GPU memory occupancy — a point of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemorySample {
    /// Snapshot instant.
    pub at: SimTime,
    /// Bytes of base-model weights.
    pub weights: u64,
    /// Bytes of KV cache.
    pub kv: u64,
    /// Bytes of adapters referenced by running requests.
    pub adapters_in_use: u64,
    /// Bytes held by the adapter cache.
    pub adapter_cache: u64,
    /// Device capacity.
    pub capacity: u64,
}

impl MemorySample {
    /// Total bytes in use.
    pub fn total_used(&self) -> u64 {
        self.weights + self.kv + self.adapters_in_use + self.adapter_cache
    }

    /// Idle bytes (Figure 6's "IdleMem").
    pub fn idle(&self) -> u64 {
        self.capacity - self.total_used()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn bins_partition_correctly() {
        let mut s = BinnedSeries::new();
        s.push(t(0.1), 1.0);
        s.push(t(0.9), 3.0);
        s.push(t(1.5), 10.0);
        s.push(t(3.2), 7.0);
        let bins = s.mean_bins(SimDuration::from_secs(1));
        assert_eq!(bins.len(), 3);
        assert_eq!(bins[0].1, 2.0);
        assert_eq!(bins[1].1, 10.0);
        assert_eq!(bins[2].1, 7.0);
        assert_eq!(bins[2].0, t(3.0));
    }

    #[test]
    fn unsorted_input_is_handled() {
        let mut s = BinnedSeries::new();
        s.push(t(5.0), 2.0);
        s.push(t(1.0), 4.0);
        let bins = s.sum_bins(SimDuration::from_secs(1));
        assert_eq!(bins[0], (t(1.0), 4.0));
        assert_eq!(bins[1], (t(5.0), 2.0));
    }

    #[test]
    fn p99_reduction() {
        let mut s = BinnedSeries::new();
        for i in 0..100 {
            s.push(t(0.5), i as f64);
        }
        let bins = s.p99_bins(SimDuration::from_secs(1));
        assert_eq!(bins.len(), 1);
        assert!(bins[0].1 > 97.0);
    }

    #[test]
    fn empty_series() {
        let s = BinnedSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.p99_bins(SimDuration::from_secs(1)).is_empty());
    }

    #[test]
    fn memory_sample_arithmetic() {
        let m = MemorySample {
            at: t(1.0),
            weights: 500,
            kv: 200,
            adapters_in_use: 50,
            adapter_cache: 100,
            capacity: 1000,
        };
        assert_eq!(m.total_used(), 850);
        assert_eq!(m.idle(), 150);
    }
}
