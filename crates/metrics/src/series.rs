//! Time-binned series for the over-time figures.

use chameleon_simcore::stats::percentile;
use chameleon_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A series of `(time, value)` observations reducible into fixed-width bins.
///
/// Used for the paper's over-time plots: P99 TTFT over elapsed time
/// (Figures 15 and 19) and PCIe bandwidth over time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BinnedSeries {
    samples: Vec<(SimTime, f64)>,
}

impl BinnedSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        BinnedSeries::default()
    }

    /// Appends an observation.
    pub fn push(&mut self, at: SimTime, value: f64) {
        self.samples.push((at, value));
    }

    /// Number of raw observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Raw observations in insertion order.
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// Reduces the series into bins of width `bin`, applying `f` to each
    /// non-empty bin's values. Returns `(bin_start_time, f(values))` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `bin` is zero.
    pub fn reduce_bins<F>(&self, bin: SimDuration, mut f: F) -> Vec<(SimTime, f64)>
    where
        F: FnMut(&[f64]) -> f64,
    {
        assert!(!bin.is_zero(), "zero bin width");
        if self.samples.is_empty() {
            return Vec::new();
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut out = Vec::new();
        let mut bucket: Vec<f64> = Vec::new();
        let mut bin_idx = sorted[0].0.as_nanos() / bin.as_nanos();
        for (t, v) in sorted {
            let idx = t.as_nanos() / bin.as_nanos();
            if idx != bin_idx {
                if !bucket.is_empty() {
                    out.push((SimTime::from_nanos(bin_idx * bin.as_nanos()), f(&bucket)));
                    bucket.clear();
                }
                bin_idx = idx;
            }
            bucket.push(v);
        }
        if !bucket.is_empty() {
            out.push((SimTime::from_nanos(bin_idx * bin.as_nanos()), f(&bucket)));
        }
        out
    }

    /// Per-bin P99 — the Figure 15/19 reduction.
    pub fn p99_bins(&self, bin: SimDuration) -> Vec<(SimTime, f64)> {
        self.reduce_bins(bin, |xs| percentile(xs, 99.0).expect("non-empty bin"))
    }

    /// Per-bin mean.
    pub fn mean_bins(&self, bin: SimDuration) -> Vec<(SimTime, f64)> {
        self.reduce_bins(bin, |xs| xs.iter().sum::<f64>() / xs.len() as f64)
    }

    /// Per-bin sum (e.g. bytes per bin → bandwidth).
    pub fn sum_bins(&self, bin: SimDuration) -> Vec<(SimTime, f64)> {
        self.reduce_bins(bin, |xs| xs.iter().sum::<f64>())
    }
}

/// The error returned when a [`WindowedSeries`] push goes backwards in
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonotonicTimeError {
    /// The latest accepted sample instant.
    pub last: SimTime,
    /// The rejected (earlier) instant.
    pub attempted: SimTime,
}

impl std::fmt::Display for MonotonicTimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "non-monotonic sample: {} after {}",
            self.attempted, self.last
        )
    }
}

impl std::error::Error for MonotonicTimeError {}

/// A sliding-window series: observations pushed in non-decreasing time
/// order, reducible to percentiles over the trailing window ending at any
/// instant.
///
/// Unlike [`BinnedSeries`] (fixed, disjoint bins for the paper's figures)
/// this is the telemetry plane's view — "P99 TTFT over the last 10 s,
/// evaluated every second" — and the monotonicity requirement is enforced
/// rather than repaired by sorting, so a producer handing samples out of
/// order is caught instead of silently reordered.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedSeries {
    window: SimDuration,
    samples: Vec<(SimTime, f64)>,
}

impl WindowedSeries {
    /// Creates an empty series with the given trailing-window width.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "zero window width");
        WindowedSeries {
            window,
            samples: Vec::new(),
        }
    }

    /// The trailing-window width.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Appends an observation. Samples must arrive in non-decreasing time
    /// order; a violation is rejected (and the series left unchanged).
    pub fn push(&mut self, at: SimTime, value: f64) -> Result<(), MonotonicTimeError> {
        if let Some(&(last, _)) = self.samples.last() {
            if at < last {
                return Err(MonotonicTimeError {
                    last,
                    attempted: at,
                });
            }
        }
        self.samples.push((at, value));
        Ok(())
    }

    /// The samples inside the window `(end - window, end]`.
    ///
    /// The left edge is exclusive: a sample exactly `window` old has
    /// slid out, a sample exactly at `end` is included.
    pub fn window_at(&self, end: SimTime) -> &[(SimTime, f64)] {
        // Before one full window has elapsed nothing can have slid out;
        // past that, the left edge `end - window` is exclusive.
        let lo = if end.as_nanos() >= self.window.as_nanos() {
            let cut = end - self.window;
            self.samples.partition_point(|&(t, _)| t <= cut)
        } else {
            0
        };
        let hi = self.samples.partition_point(|&(t, _)| t <= end);
        &self.samples[lo..hi]
    }

    /// Percentile `p` (0–100) over the trailing window ending at `end`;
    /// `None` when the window holds no samples.
    pub fn percentile_at(&self, end: SimTime, p: f64) -> Option<f64> {
        let vals: Vec<f64> = self.window_at(end).iter().map(|&(_, v)| v).collect();
        percentile(&vals, p)
    }

    /// Evaluates `percentile_at` on a fixed cadence from the first sample
    /// through the last (inclusive of the final partial stride), skipping
    /// empty windows. Returns `(evaluation_instant, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn percentile_series(&self, stride: SimDuration, p: f64) -> Vec<(SimTime, f64)> {
        assert!(!stride.is_zero(), "zero stride");
        let (Some(&(first, _)), Some(&(last, _))) = (self.samples.first(), self.samples.last())
        else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut end = first;
        loop {
            if let Some(v) = self.percentile_at(end, p) {
                out.push((end, v));
            }
            if end >= last {
                break;
            }
            end = (end + stride).min(last);
        }
        out
    }
}

/// One snapshot of GPU memory occupancy — a point of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemorySample {
    /// Snapshot instant.
    pub at: SimTime,
    /// Bytes of base-model weights.
    pub weights: u64,
    /// Bytes of KV cache.
    pub kv: u64,
    /// Bytes of adapters referenced by running requests.
    pub adapters_in_use: u64,
    /// Bytes held by the adapter cache.
    pub adapter_cache: u64,
    /// Device capacity.
    pub capacity: u64,
}

impl MemorySample {
    /// Total bytes in use.
    pub fn total_used(&self) -> u64 {
        self.weights + self.kv + self.adapters_in_use + self.adapter_cache
    }

    /// Idle bytes (Figure 6's "IdleMem").
    pub fn idle(&self) -> u64 {
        self.capacity - self.total_used()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn bins_partition_correctly() {
        let mut s = BinnedSeries::new();
        s.push(t(0.1), 1.0);
        s.push(t(0.9), 3.0);
        s.push(t(1.5), 10.0);
        s.push(t(3.2), 7.0);
        let bins = s.mean_bins(SimDuration::from_secs(1));
        assert_eq!(bins.len(), 3);
        assert_eq!(bins[0].1, 2.0);
        assert_eq!(bins[1].1, 10.0);
        assert_eq!(bins[2].1, 7.0);
        assert_eq!(bins[2].0, t(3.0));
    }

    #[test]
    fn unsorted_input_is_handled() {
        let mut s = BinnedSeries::new();
        s.push(t(5.0), 2.0);
        s.push(t(1.0), 4.0);
        let bins = s.sum_bins(SimDuration::from_secs(1));
        assert_eq!(bins[0], (t(1.0), 4.0));
        assert_eq!(bins[1], (t(5.0), 2.0));
    }

    #[test]
    fn p99_reduction() {
        let mut s = BinnedSeries::new();
        for i in 0..100 {
            s.push(t(0.5), i as f64);
        }
        let bins = s.p99_bins(SimDuration::from_secs(1));
        assert_eq!(bins.len(), 1);
        assert!(bins[0].1 > 97.0);
    }

    #[test]
    fn empty_series() {
        let s = BinnedSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.p99_bins(SimDuration::from_secs(1)).is_empty());
    }

    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs_f64(s)
    }

    #[test]
    fn windowed_empty_window_yields_none() {
        let s = WindowedSeries::new(d(10.0));
        assert!(s.is_empty());
        assert_eq!(s.percentile_at(t(5.0), 99.0), None);
        assert!(s.percentile_series(d(1.0), 99.0).is_empty());
        // Non-empty series, but the window has slid past every sample.
        let mut s = WindowedSeries::new(d(1.0));
        s.push(t(0.5), 1.0).unwrap();
        assert_eq!(s.percentile_at(t(10.0), 50.0), None);
    }

    #[test]
    fn windowed_single_sample() {
        let mut s = WindowedSeries::new(d(10.0));
        s.push(t(2.0), 7.5).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.percentile_at(t(2.0), 50.0), Some(7.5));
        assert_eq!(s.percentile_at(t(11.9), 99.0), Some(7.5));
        let series = s.percentile_series(d(1.0), 50.0);
        assert_eq!(series, vec![(t(2.0), 7.5)]);
    }

    #[test]
    fn windowed_window_boundary_is_left_exclusive_right_inclusive() {
        let mut s = WindowedSeries::new(d(5.0));
        s.push(t(0.0), 1.0).unwrap();
        s.push(t(5.0), 2.0).unwrap();
        s.push(t(10.0), 3.0).unwrap();
        // Window (0, 5]: the t=0 sample is exactly window-old -> out;
        // the t=5 sample is exactly at the end -> in.
        assert_eq!(s.window_at(t(5.0)), &[(t(5.0), 2.0)]);
        // Window (5, 10]: t=5 slid out.
        assert_eq!(s.window_at(t(10.0)), &[(t(10.0), 3.0)]);
        // Before one full window has elapsed nothing has slid out.
        assert_eq!(s.window_at(t(4.0)), &[(t(0.0), 1.0)]);
        // Future samples past `end` are never visible.
        assert_eq!(s.window_at(t(7.0)), &[(t(5.0), 2.0)]);
    }

    #[test]
    fn windowed_percentiles_slide() {
        let mut s = WindowedSeries::new(d(2.0));
        for i in 0..10 {
            s.push(t(i as f64), i as f64).unwrap();
        }
        // Window (7, 9] holds {8, 9}.
        assert_eq!(s.percentile_at(t(9.0), 0.0), Some(8.0));
        assert_eq!(s.percentile_at(t(9.0), 100.0), Some(9.0));
        let series = s.percentile_series(d(3.0), 100.0);
        // Evaluated at 0, 3, 6, 9: max of each trailing 2s window.
        assert_eq!(
            series,
            vec![(t(0.0), 0.0), (t(3.0), 3.0), (t(6.0), 6.0), (t(9.0), 9.0)]
        );
    }

    #[test]
    fn windowed_monotonic_violation_is_rejected() {
        let mut s = WindowedSeries::new(d(1.0));
        s.push(t(3.0), 1.0).unwrap();
        s.push(t(3.0), 2.0).unwrap(); // equal instants are fine
        let err = s.push(t(2.0), 9.0).unwrap_err();
        assert_eq!(
            err,
            MonotonicTimeError {
                last: t(3.0),
                attempted: t(2.0),
            }
        );
        assert!(err.to_string().contains("non-monotonic"));
        // The series is unchanged by the rejected push.
        assert_eq!(s.len(), 2);
        assert_eq!(s.percentile_at(t(3.0), 100.0), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "zero window")]
    fn windowed_zero_window_panics() {
        let _ = WindowedSeries::new(SimDuration::ZERO);
    }

    #[test]
    fn memory_sample_arithmetic() {
        let m = MemorySample {
            at: t(1.0),
            weights: 500,
            kv: 200,
            adapters_in_use: 50,
            adapter_cache: 100,
            capacity: 1000,
        };
        assert_eq!(m.total_used(), 850);
        assert_eq!(m.idle(), 150);
    }
}
