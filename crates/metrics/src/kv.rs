//! KV-memory-economy outcome statistics.
//!
//! Counters of the unified GPU-memory economy (KV-aware admission control
//! and the Apt-Serve-style hybrid cache). All-zero — and absent from
//! `canonical_text` — unless a `KvSpec` armed the run: like the
//! predictive, fault, and dispatch planes, the KV plane is a strict
//! opt-in overlay and the byte-level oracles for unmetered runs must not
//! see these fields.
//!
//! Unlike the sibling planes these counters are *engine*-scoped: each
//! engine meters its own admissions and demotions, and data-parallel
//! clusters sum per-engine stats when reports merge.

use serde::{Deserialize, Serialize};

/// Outcome counters of the KV plane for one run (or one engine, before
/// cluster merge).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KvStats {
    /// The KV plane was active this run (gates report emission).
    pub enabled: bool,
    /// KV-aware admission control was on (vs observe-only metering).
    pub admission: bool,
    /// Hybrid demote-to-proxy mode was on.
    pub hybrid: bool,
    /// Admissions refused *before* touching the allocator because the
    /// block-rounded KV footprint (input + predicted output) could not be
    /// met even by evicting every idle cached adapter.
    pub refused: u64,
    /// Requeue-front storms: optimistic allocations that failed after the
    /// scheduler had already dequeued and charged the request, forcing an
    /// unwind (the failure mode admission control exists to eliminate —
    /// an armed run should report zero).
    pub storms: u64,
    /// Running requests demoted to a compact hidden-state proxy entry
    /// instead of being squashed outright.
    pub demotions: u64,
    /// Demoted requests restored to full KV residency.
    pub restores: u64,
    /// Total proxy bytes moved back over PCIe by restores.
    pub restore_bytes: u64,
    /// Peak bytes held by proxy entries at any instant.
    pub proxy_bytes_peak: u64,
    /// Peak KV pressure observed: KV-cache bytes over usable (non-weight,
    /// non-activation) memory, in `[0, 1]`.
    pub pressure_peak: f64,
}

impl KvStats {
    /// Records one clean admission refusal.
    pub fn on_refused(&mut self) {
        self.refused += 1;
    }

    /// Records one optimistic-allocate unwind (requeue-front storm).
    pub fn on_storm(&mut self) {
        self.storms += 1;
    }

    /// Records a demotion leaving `proxy_total` bytes of proxies resident.
    pub fn on_demoted(&mut self, proxy_total: u64) {
        self.demotions += 1;
        self.proxy_bytes_peak = self.proxy_bytes_peak.max(proxy_total);
    }

    /// Records a restore that moved `bytes` of proxy state back over PCIe.
    pub fn on_restored(&mut self, bytes: u64) {
        self.restores += 1;
        self.restore_bytes += bytes;
    }

    /// Folds an observed KV-pressure sample into the peak.
    pub fn note_pressure(&mut self, pressure: f64) {
        if pressure > self.pressure_peak {
            self.pressure_peak = pressure;
        }
    }

    /// Merges another engine's counters (cluster report aggregation).
    pub fn merge(&mut self, other: &KvStats) {
        self.enabled |= other.enabled;
        self.admission |= other.admission;
        self.hybrid |= other.hybrid;
        self.refused += other.refused;
        self.storms += other.storms;
        self.demotions += other.demotions;
        self.restores += other.restores;
        self.restore_bytes += other.restore_bytes;
        self.proxy_bytes_peak = self.proxy_bytes_peak.max(other.proxy_bytes_peak);
        self.pressure_peak = self.pressure_peak.max(other.pressure_peak);
    }

    /// Fraction of demotions that were eventually restored, in `[0, 1]`
    /// (0 when nothing was demoted).
    pub fn restore_rate(&self) -> f64 {
        if self.demotions == 0 {
            0.0
        } else {
            self.restores as f64 / self.demotions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled_and_empty() {
        let s = KvStats::default();
        assert!(!s.enabled);
        assert_eq!(s.refused, 0);
        assert_eq!(s.restore_rate(), 0.0);
    }

    #[test]
    fn counters_accumulate() {
        let mut s = KvStats {
            enabled: true,
            admission: true,
            hybrid: true,
            ..KvStats::default()
        };
        s.on_refused();
        s.on_refused();
        s.on_storm();
        s.on_demoted(1000);
        s.on_demoted(600);
        s.on_restored(400);
        s.note_pressure(0.7);
        s.note_pressure(0.4);
        assert_eq!(s.refused, 2);
        assert_eq!(s.storms, 1);
        assert_eq!(s.demotions, 2);
        assert_eq!(s.restores, 1);
        assert_eq!(s.restore_bytes, 400);
        assert_eq!(s.proxy_bytes_peak, 1000);
        assert!((s.pressure_peak - 0.7).abs() < 1e-12);
        assert!((s.restore_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_counts_and_maxes_peaks() {
        let mut a = KvStats {
            enabled: true,
            admission: true,
            refused: 3,
            demotions: 1,
            proxy_bytes_peak: 100,
            pressure_peak: 0.5,
            ..KvStats::default()
        };
        let b = KvStats {
            enabled: true,
            hybrid: true,
            refused: 2,
            storms: 4,
            restores: 1,
            restore_bytes: 50,
            proxy_bytes_peak: 300,
            pressure_peak: 0.3,
            ..KvStats::default()
        };
        a.merge(&b);
        assert!(a.enabled && a.admission && a.hybrid);
        assert_eq!(a.refused, 5);
        assert_eq!(a.storms, 4);
        assert_eq!(a.demotions, 1);
        assert_eq!(a.restores, 1);
        assert_eq!(a.restore_bytes, 50);
        assert_eq!(a.proxy_bytes_peak, 300);
        assert!((a.pressure_peak - 0.5).abs() < 1e-12);
    }
}
