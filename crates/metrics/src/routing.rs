//! Cluster-routing outcome statistics.
//!
//! The data-parallel cluster records one entry per dispatched request:
//! which engine it went to (by stable [`EngineId`], so the statistics
//! survive engines joining and draining mid-run), whether the chosen
//! engine already had the request's adapter resident (an *affinity hit* —
//! the placement-level precursor of an adapter-cache hit), and whether an
//! affinity policy had to *spill* the request off its home engine for
//! load reasons. Fleet lifecycle is tracked alongside: engines added and
//! drained, and how many adapters were re-homed by those changes (the
//! rendezvous minimal-re-homing guarantee, measured).
//!
//! # Order-independence under parallel cluster execution
//!
//! All mutation happens on the cluster's coordinator thread, strictly in
//! dispatch/fleet-change order — engine stepping (the part that runs on
//! worker threads under parallel execution) never touches these
//! statistics. Serial and parallel cluster runs therefore produce
//! *identical* `RoutingStats`, and the per-engine rows are keyed by
//! registration order (`engine_ids`), not by retirement or merge order,
//! so the merged report is insensitive to when each engine's report was
//! folded in.

use chameleon_router::EngineId;
use chameleon_simcore::SimTime;
use serde::{Deserialize, Serialize};

/// Outcome counters of the predictive control plane (burst
/// pre-replication, SLO/forecast autoscaling triggers, drain-time shard
/// handoff). All-zero — and absent from `canonical_text` — unless the
/// control plane was enabled for the run: prediction is a strict opt-in
/// overlay, and the byte-level oracles for non-predictive runs must not
/// see these fields.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PredictiveStats {
    /// The control plane was active this run (gates report emission).
    pub enabled: bool,
    /// Warm transfers issued to spill targets ahead of predicted bursts.
    pub prewarms_issued: u64,
    /// Total bytes moved by pre-replication warms.
    pub prewarm_bytes: u64,
    /// Spill dispatches that landed on an engine holding an un-consumed
    /// pre-replicated copy of the request's adapter — the warms that paid.
    pub prewarm_hits: u64,
    /// Warms never consumed by a dispatch (finalised when the run report
    /// is assembled): `prewarms_issued - prewarm_hits`.
    pub prewarm_wasted: u64,
    /// Adapters pushed from a draining engine into survivors' caches.
    pub handoff_adapters: u64,
    /// Total bytes moved by drain-time shard handoff.
    pub handoff_bytes: u64,
    /// Scale-ups fired by the per-engine TTFT-violation estimate while the
    /// queue-depth thresholds alone would have held.
    pub slo_scaleups: u64,
    /// Scale-ups fired by the predicted-arrivals signal while realised
    /// queue depth alone would have held.
    pub forecast_scaleups: u64,
}

impl PredictiveStats {
    /// Records one pre-replication warm of `bytes`.
    pub fn on_prewarm(&mut self, bytes: u64) {
        self.prewarms_issued += 1;
        self.prewarm_bytes += bytes;
    }

    /// Records a spill dispatch consuming a pre-replicated copy.
    pub fn on_prewarm_hit(&mut self) {
        self.prewarm_hits += 1;
    }

    /// Records `adapters` adapters (`bytes` total) handed off at drain.
    pub fn on_handoff(&mut self, adapters: u64, bytes: u64) {
        self.handoff_adapters += adapters;
        self.handoff_bytes += bytes;
    }

    /// Finalises the wasted-warm count (issued warms never consumed).
    pub fn finalize(&mut self) {
        self.prewarm_wasted = self.prewarms_issued.saturating_sub(self.prewarm_hits);
    }

    /// Fraction of issued warms that a spill later consumed, in `[0, 1]`
    /// (0 when none were issued).
    pub fn prewarm_hit_rate(&self) -> f64 {
        rate(self.prewarm_hits, self.prewarms_issued)
    }
}

/// Outcome counters of the fault-injection and recovery plane. All-zero —
/// and absent from `canonical_text` — unless a `FaultSpec` armed the run:
/// like [`PredictiveStats`], faults are a strict opt-in overlay and the
/// byte-level oracles for fault-free runs must not see these fields.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    /// The fault plane was active this run (gates report emission).
    pub enabled: bool,
    /// Engines declared dead by the failure detector.
    pub engines_failed: u64,
    /// Requests extracted from dead engines (queued + in-flight) and
    /// re-dispatched through the router.
    pub requests_recovered: u64,
    /// Re-dispatch attempts, summed over all recovered requests.
    pub retries: u64,
    /// Requests that exhausted their retry budget and left the system.
    pub requests_failed: u64,
    /// Requests refused admission by SLO-aware shedding.
    pub requests_shed: u64,
    /// PCIe transfers that failed and were re-issued.
    pub pcie_retries: u64,
    /// Adapters from dead engines' shards re-homed onto survivors.
    pub shard_adapters_recovered: u64,
    /// Total bytes re-loaded by shard recovery.
    pub shard_bytes_recovered: u64,
    /// Scale-ups that landed late because of injected provisioning delay.
    pub provision_delays: u64,
    /// Scale-ups that failed outright to provision.
    pub provision_failures: u64,
    /// Whole fault domains (racks) crashed by correlated injections.
    pub domains_failed: u64,
    /// Coordinator↔domain partitions opened.
    pub partitions: u64,
    /// Mean time-to-redispatch in seconds over closed recovery episodes:
    /// crash (or partition) barrier → last victim re-dispatched. `0.0`
    /// when no episode produced victims or none closed.
    pub mttr_redispatch: f64,
    /// Mean time-to-complete in seconds over recovery episodes whose
    /// victims finished: crash barrier → last victim completed.
    pub mttr_complete: f64,
    /// Barrier instants at which SLO-aware shedding refused a request —
    /// the fault plane's own shed ledger, recorded whether or not tracing
    /// is on so telemetry can derive availability windows without a trace
    /// stream. One entry per shed request, in shed order.
    pub shed_times: Vec<SimTime>,
}

impl FaultStats {
    /// Fraction of offered requests the fleet actually served:
    /// `1 - (failed + shed) / offered` (1 when nothing was offered).
    pub fn availability(&self, offered: u64) -> f64 {
        if offered == 0 {
            return 1.0;
        }
        1.0 - rate(self.requests_failed + self.requests_shed, offered)
    }
}

/// Outcome counters of the amortised-dispatch (batched-barrier) path.
/// All-zero — and absent from `canonical_text`, like the trace and
/// barrier-profile planes — unless the run opted into batched dispatch
/// via `DispatchSpec`: the state-independent byte-identity oracle
/// compares batched against per-arrival digests, so batching must never
/// add a report line of its own.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DispatchStats {
    /// Batched dispatch was active this run.
    pub enabled: bool,
    /// Arrival barriers executed (each coalesced ≥1 arrivals).
    pub batches: u64,
    /// Arrivals routed (or shed) through batched barriers.
    pub batched_arrivals: u64,
    /// Snapshot generations filled for routing (arrival barriers plus
    /// fault-barrier retry refreshes; generation reuse refreshes nothing).
    pub snapshot_refreshes: u64,
    /// Fault-barrier retry batches that reused an arrival barrier's
    /// snapshot generation instead of refreshing.
    pub retry_generation_reuses: u64,
    /// Largest single batch observed.
    pub max_batch: u64,
}

impl DispatchStats {
    /// Records one arrival batch of `size` members.
    pub fn on_batch(&mut self, size: u64) {
        self.batches += 1;
        self.batched_arrivals += size;
        self.max_batch = self.max_batch.max(size);
    }

    /// Mean arrivals coalesced per barrier (0 when nothing was batched).
    pub fn mean_batch(&self) -> f64 {
        rate(self.batched_arrivals, self.batches)
    }
}

/// Aggregate routing statistics for one cluster run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RoutingStats {
    /// Routing policy label (empty for single-engine runs, which never
    /// dispatch through a router).
    pub policy: String,
    /// Every engine that was ever part of the fleet, in registration
    /// order (initial fleet first, then engines added at runtime).
    /// Draining an engine retires it from dispatch but keeps its row.
    pub engine_ids: Vec<EngineId>,
    /// Requests dispatched to each engine, parallel to `engine_ids`.
    pub per_engine: Vec<u64>,
    /// Dispatches that landed on an engine with the adapter resident.
    pub affinity_hits: u64,
    /// Dispatches diverted off their home engine by load-aware spill.
    pub spills: u64,
    /// Total dispatches.
    pub dispatched: u64,
    /// Engines added after the initial fleet was built.
    pub engines_added: u64,
    /// Engines drained (retired from dispatch) during the run.
    pub engines_drained: u64,
    /// Adapters whose rendezvous home moved because the fleet changed —
    /// with minimal re-homing this is exactly the sum of the joining /
    /// departing engines' shard sizes. Zero for affinity-free policies.
    pub adapters_rehomed: u64,
    /// Predictive-control-plane counters; default (all-zero, disabled)
    /// unless the run opted into prediction.
    pub predictive: PredictiveStats,
    /// Fault-plane counters; default (all-zero, disabled) unless the run
    /// armed a fault spec.
    pub fault: FaultStats,
    /// Batched-dispatch counters; default (all-zero, disabled) unless the
    /// run opted into amortised dispatch barriers.
    pub dispatch: DispatchStats,
}

impl RoutingStats {
    /// Creates empty statistics for the initial fleet `engines` under
    /// `policy`.
    pub fn new(policy: impl Into<String>, engines: &[EngineId]) -> Self {
        RoutingStats {
            policy: policy.into(),
            engine_ids: engines.to_vec(),
            per_engine: vec![0; engines.len()],
            ..RoutingStats::default()
        }
    }

    /// Position of `id` in the registration order, if known.
    fn position(&self, id: EngineId) -> Option<usize> {
        // Fleets are small (single digits); a scan beats a map.
        self.engine_ids.iter().position(|&e| e == id)
    }

    /// Registers an engine added to the fleet at runtime.
    pub fn on_engine_added(&mut self, id: EngineId) {
        assert!(self.position(id).is_none(), "engine {id} registered twice");
        self.engine_ids.push(id);
        self.per_engine.push(0);
        self.engines_added += 1;
    }

    /// Records an engine draining out of the fleet.
    pub fn on_engine_drained(&mut self, id: EngineId) {
        assert!(self.position(id).is_some(), "unknown engine {id} drained");
        self.engines_drained += 1;
    }

    /// Records `n` adapters re-homed by a fleet change.
    pub fn on_adapters_rehomed(&mut self, n: u64) {
        self.adapters_rehomed += n;
    }

    /// Records one dispatch to `engine`.
    ///
    /// # Panics
    ///
    /// Panics if `engine` was never registered.
    pub fn record(&mut self, engine: EngineId, affinity_hit: bool, spilled: bool) {
        let pos = self
            .position(engine)
            .unwrap_or_else(|| panic!("dispatch to unregistered engine {engine}"));
        self.per_engine[pos] += 1;
        self.dispatched += 1;
        if affinity_hit {
            self.affinity_hits += 1;
        }
        if spilled {
            self.spills += 1;
        }
    }

    /// Requests dispatched to `engine` (0 for unknown engines).
    pub fn dispatched_to(&self, engine: EngineId) -> u64 {
        self.position(engine).map_or(0, |pos| self.per_engine[pos])
    }

    /// Fraction of dispatches that landed where the adapter was already
    /// resident, in `[0, 1]` (0 when nothing was dispatched).
    pub fn affinity_hit_rate(&self) -> f64 {
        rate(self.affinity_hits, self.dispatched)
    }

    /// Fraction of dispatches diverted off their home engine.
    pub fn spill_rate(&self) -> f64 {
        rate(self.spills, self.dispatched)
    }

    /// Load-imbalance coefficient: the coefficient of variation
    /// (standard deviation / mean) of per-engine dispatch counts over
    /// every engine that was ever registered. 0 means perfectly even; 0
    /// is also returned for empty or single-engine runs.
    pub fn load_imbalance(&self) -> f64 {
        if self.per_engine.len() < 2 || self.dispatched == 0 {
            return 0.0;
        }
        let n = self.per_engine.len() as f64;
        let mean = self.dispatched as f64 / n;
        let var = self
            .per_engine
            .iter()
            .map(|&c| {
                let d = c as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }
}

fn rate(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u32) -> Vec<EngineId> {
        (0..n).map(EngineId).collect()
    }

    #[test]
    fn empty_stats_are_all_zero() {
        let s = RoutingStats::new("jsq", &ids(4));
        assert_eq!(s.affinity_hit_rate(), 0.0);
        assert_eq!(s.spill_rate(), 0.0);
        assert_eq!(s.load_imbalance(), 0.0);
        assert_eq!(s.adapters_rehomed, 0);
    }

    #[test]
    fn rates_count_correctly() {
        let mut s = RoutingStats::new("affinity", &ids(2));
        s.record(EngineId(0), true, false);
        s.record(EngineId(0), true, false);
        s.record(EngineId(1), false, true);
        s.record(EngineId(1), false, false);
        assert_eq!(s.dispatched, 4);
        assert_eq!(s.per_engine, vec![2, 2]);
        assert_eq!(s.dispatched_to(EngineId(1)), 2);
        assert!((s.affinity_hit_rate() - 0.5).abs() < 1e-12);
        assert!((s.spill_rate() - 0.25).abs() < 1e-12);
        assert_eq!(s.load_imbalance(), 0.0, "even split has zero CV");
    }

    #[test]
    fn imbalance_grows_with_skew() {
        let mut even = RoutingStats::new("x", &ids(2));
        let mut skewed = RoutingStats::new("x", &ids(2));
        for i in 0..100u32 {
            even.record(EngineId(i % 2), false, false);
            skewed.record(EngineId(u32::from(i % 10 == 0)), false, false);
        }
        assert!(skewed.load_imbalance() > even.load_imbalance());
        // 90/10 split over two engines: CV = 0.8.
        assert!((skewed.load_imbalance() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn single_engine_has_no_imbalance() {
        let mut s = RoutingStats::new("", &ids(1));
        s.record(EngineId(0), true, false);
        assert_eq!(s.load_imbalance(), 0.0);
    }

    #[test]
    fn fleet_lifecycle_is_tracked() {
        let mut s = RoutingStats::new("affinity", &ids(2));
        s.on_engine_added(EngineId(7));
        s.record(EngineId(7), false, false);
        s.on_adapters_rehomed(31);
        s.on_engine_drained(EngineId(0));
        s.on_adapters_rehomed(12);
        assert_eq!(s.engine_ids, vec![EngineId(0), EngineId(1), EngineId(7)]);
        assert_eq!(s.per_engine, vec![0, 0, 1]);
        assert_eq!(s.engines_added, 1);
        assert_eq!(s.engines_drained, 1);
        assert_eq!(s.adapters_rehomed, 43);
        // The drained engine keeps its dispatch row.
        assert_eq!(s.dispatched_to(EngineId(0)), 0);
    }

    #[test]
    fn predictive_stats_default_is_disabled_and_empty() {
        let s = RoutingStats::new("affinity", &ids(3));
        assert_eq!(s.predictive, PredictiveStats::default());
        assert!(!s.predictive.enabled);
        assert_eq!(s.predictive.prewarm_hit_rate(), 0.0);
    }

    #[test]
    fn predictive_stats_count_and_finalize() {
        let mut p = PredictiveStats {
            enabled: true,
            ..PredictiveStats::default()
        };
        p.on_prewarm(100);
        p.on_prewarm(250);
        p.on_prewarm(50);
        p.on_prewarm_hit();
        p.on_handoff(4, 1000);
        p.finalize();
        assert_eq!(p.prewarms_issued, 3);
        assert_eq!(p.prewarm_bytes, 400);
        assert_eq!(p.prewarm_hits, 1);
        assert_eq!(p.prewarm_wasted, 2);
        assert_eq!(p.handoff_adapters, 4);
        assert_eq!(p.handoff_bytes, 1000);
        assert!((p.prewarm_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fault_stats_default_is_disabled_and_fully_available() {
        let s = RoutingStats::new("jsq", &ids(2));
        assert_eq!(s.fault, FaultStats::default());
        assert!(!s.fault.enabled);
        assert_eq!(s.fault.availability(100), 1.0);
        assert_eq!(s.fault.availability(0), 1.0);
    }

    #[test]
    fn fault_availability_counts_failed_and_shed() {
        let f = FaultStats {
            enabled: true,
            requests_failed: 5,
            requests_shed: 15,
            ..FaultStats::default()
        };
        assert!((f.availability(100) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn dispatch_stats_default_is_disabled_and_empty() {
        let s = RoutingStats::new("jsq", &ids(2));
        assert_eq!(s.dispatch, DispatchStats::default());
        assert!(!s.dispatch.enabled);
        assert_eq!(s.dispatch.mean_batch(), 0.0);
    }

    #[test]
    fn dispatch_stats_track_batches() {
        let mut d = DispatchStats {
            enabled: true,
            ..DispatchStats::default()
        };
        d.on_batch(1);
        d.on_batch(7);
        d.on_batch(4);
        d.snapshot_refreshes = 3;
        assert_eq!(d.batches, 3);
        assert_eq!(d.batched_arrivals, 12);
        assert_eq!(d.max_batch, 7);
        assert!((d.mean_batch() - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unregistered engine")]
    fn dispatch_to_unknown_engine_panics() {
        let mut s = RoutingStats::new("x", &ids(1));
        s.record(EngineId(5), false, false);
    }
}
