//! Cluster-routing outcome statistics.
//!
//! The data-parallel cluster records one entry per dispatched request:
//! which engine it went to, whether the chosen engine already had the
//! request's adapter resident (an *affinity hit* — the placement-level
//! precursor of an adapter-cache hit), and whether an affinity policy had
//! to *spill* the request off its home engine for load reasons.

use serde::{Deserialize, Serialize};

/// Aggregate routing statistics for one cluster run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RoutingStats {
    /// Routing policy label (empty for single-engine runs, which never
    /// dispatch through a router).
    pub policy: String,
    /// Requests dispatched to each engine.
    pub per_engine: Vec<u64>,
    /// Dispatches that landed on an engine with the adapter resident.
    pub affinity_hits: u64,
    /// Dispatches diverted off their home engine by load-aware spill.
    pub spills: u64,
    /// Total dispatches.
    pub dispatched: u64,
}

impl RoutingStats {
    /// Creates empty statistics for a cluster of `engines` under `policy`.
    pub fn new(policy: impl Into<String>, engines: usize) -> Self {
        RoutingStats {
            policy: policy.into(),
            per_engine: vec![0; engines],
            affinity_hits: 0,
            spills: 0,
            dispatched: 0,
        }
    }

    /// Records one dispatch.
    pub fn record(&mut self, engine: usize, affinity_hit: bool, spilled: bool) {
        self.per_engine[engine] += 1;
        self.dispatched += 1;
        if affinity_hit {
            self.affinity_hits += 1;
        }
        if spilled {
            self.spills += 1;
        }
    }

    /// Fraction of dispatches that landed where the adapter was already
    /// resident, in `[0, 1]` (0 when nothing was dispatched).
    pub fn affinity_hit_rate(&self) -> f64 {
        rate(self.affinity_hits, self.dispatched)
    }

    /// Fraction of dispatches diverted off their home engine.
    pub fn spill_rate(&self) -> f64 {
        rate(self.spills, self.dispatched)
    }

    /// Load-imbalance coefficient: the coefficient of variation
    /// (standard deviation / mean) of per-engine dispatch counts. 0 means
    /// perfectly even; 0 is also returned for empty or single-engine runs.
    pub fn load_imbalance(&self) -> f64 {
        if self.per_engine.len() < 2 || self.dispatched == 0 {
            return 0.0;
        }
        let n = self.per_engine.len() as f64;
        let mean = self.dispatched as f64 / n;
        let var = self
            .per_engine
            .iter()
            .map(|&c| {
                let d = c as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }
}

fn rate(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_all_zero() {
        let s = RoutingStats::new("jsq", 4);
        assert_eq!(s.affinity_hit_rate(), 0.0);
        assert_eq!(s.spill_rate(), 0.0);
        assert_eq!(s.load_imbalance(), 0.0);
    }

    #[test]
    fn rates_count_correctly() {
        let mut s = RoutingStats::new("affinity", 2);
        s.record(0, true, false);
        s.record(0, true, false);
        s.record(1, false, true);
        s.record(1, false, false);
        assert_eq!(s.dispatched, 4);
        assert_eq!(s.per_engine, vec![2, 2]);
        assert!((s.affinity_hit_rate() - 0.5).abs() < 1e-12);
        assert!((s.spill_rate() - 0.25).abs() < 1e-12);
        assert_eq!(s.load_imbalance(), 0.0, "even split has zero CV");
    }

    #[test]
    fn imbalance_grows_with_skew() {
        let mut even = RoutingStats::new("x", 2);
        let mut skewed = RoutingStats::new("x", 2);
        for i in 0..100 {
            even.record(i % 2, false, false);
            skewed.record(usize::from(i % 10 == 0), false, false);
        }
        assert!(skewed.load_imbalance() > even.load_imbalance());
        // 90/10 split over two engines: CV = 0.8.
        assert!((skewed.load_imbalance() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn single_engine_has_no_imbalance() {
        let mut s = RoutingStats::new("", 1);
        s.record(0, true, false);
        assert_eq!(s.load_imbalance(), 0.0);
    }
}
