//! Measurement layer for the Chameleon reproduction.
//!
//! Everything the paper reports is computed here, from per-request records:
//!
//! * [`record`] — the per-request ledger ([`RequestRecord`]) the engine
//!   fills in as requests move through the system: arrival, admission,
//!   first token (TTFT), inter-token gaps (TBT), completion (E2E),
//!   adapter-load time on the critical path, bypass/squash counters.
//! * [`collector`] — the engine-facing sink ([`Collector`]).
//! * [`summary`] — percentile summaries ([`LatencySummary`]) and SLO
//!   accounting.
//! * [`series`] — time-binned series for the over-time figures (memory
//!   occupancy for Figure 6, P99-over-time for Figures 15/19) and the
//!   telemetry plane's sliding-window percentile series
//!   ([`WindowedSeries`]).
//! * [`routing`] — cluster-routing statistics ([`RoutingStats`]): per-
//!   engine dispatch counts, affinity hit rate, spill rate, and the
//!   load-imbalance coefficient of the global dispatcher.

pub mod collector;
pub mod kv;
pub mod record;
pub mod routing;
pub mod series;
pub mod summary;

pub use collector::Collector;
pub use kv::KvStats;
pub use record::{RequestRecord, SizeClass};
pub use routing::{DispatchStats, FaultStats, PredictiveStats, RoutingStats};
pub use series::{BinnedSeries, MemorySample, MonotonicTimeError, WindowedSeries};
pub use summary::LatencySummary;
