//! Latency summaries and SLO accounting.

use chameleon_simcore::stats::percentile_of_sorted;
use chameleon_simcore::SimDuration;
use serde::{Deserialize, Serialize};

/// Percentile summary of a latency sample, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile — the paper's tail-latency headline metric.
    pub p99: f64,
    /// Maximum observed.
    pub max: f64,
}

impl LatencySummary {
    /// Summarises a sample of durations.
    ///
    /// Returns `None` for an empty sample.
    pub fn from_durations<I>(xs: I) -> Option<LatencySummary>
    where
        I: IntoIterator<Item = SimDuration>,
    {
        let secs: Vec<f64> = xs.into_iter().map(|d| d.as_secs_f64()).collect();
        Self::from_seconds(&secs)
    }

    /// Summarises a sample already expressed in seconds.
    ///
    /// Returns `None` for an empty sample.
    pub fn from_seconds(xs: &[f64]) -> Option<LatencySummary> {
        if xs.is_empty() {
            return None;
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN latency"));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Some(LatencySummary {
            count: sorted.len(),
            mean,
            p50: percentile_of_sorted(&sorted, 50.0),
            p90: percentile_of_sorted(&sorted, 90.0),
            p99: percentile_of_sorted(&sorted, 99.0),
            max: *sorted.last().expect("non-empty"),
        })
    }

    /// Fraction of the sample exceeding `slo` (recomputed from a sample).
    pub fn violation_fraction(xs: &[f64], slo: f64) -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        xs.iter().filter(|&&x| x > slo).count() as f64 / xs.len() as f64
    }
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.3}s p50={:.3}s p90={:.3}s p99={:.3}s max={:.3}s",
            self.count, self.mean, self.p50, self.p90, self.p99, self.max
        )
    }
}

/// Finds the highest load whose measured tail latency stays within the SLO —
/// the paper's throughput definition (§5.2.2: "the load that a system can
/// sustain without violating this SLO").
///
/// `points` are `(load, p99_latency_seconds)` pairs; they are sorted by load
/// internally. Returns the largest load whose latency ≤ `slo`, linearly
/// interpolating the crossing point between the last compliant and first
/// violating measurement, or `None` if even the lowest load violates.
pub fn throughput_at_slo(points: &[(f64, f64)], slo: f64) -> Option<f64> {
    if points.is_empty() {
        return None;
    }
    let mut pts = points.to_vec();
    pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN load"));
    let mut last_ok: Option<(f64, f64)> = None;
    for &(load, lat) in &pts {
        if lat <= slo {
            last_ok = Some((load, lat));
        } else if let Some((l0, y0)) = last_ok {
            // Interpolate the SLO crossing between (l0, y0) and (load, lat).
            if lat > y0 {
                let frac = (slo - y0) / (lat - y0);
                return Some(l0 + frac * (load - l0));
            }
            return Some(l0);
        } else {
            return None;
        }
    }
    last_ok.map(|(l, _)| l)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = LatencySummary::from_seconds(&xs).unwrap();
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert!((s.p99 - 99.01).abs() < 0.01);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn summary_from_durations() {
        let ds = [
            SimDuration::from_millis(100),
            SimDuration::from_millis(200),
            SimDuration::from_millis(300),
        ];
        let s = LatencySummary::from_durations(ds).unwrap();
        assert!((s.p50 - 0.2).abs() < 1e-9);
        assert_eq!(LatencySummary::from_durations([]), None);
    }

    #[test]
    fn violations() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(LatencySummary::violation_fraction(&xs, 2.5), 0.5);
        assert_eq!(LatencySummary::violation_fraction(&xs, 10.0), 0.0);
        assert_eq!(LatencySummary::violation_fraction(&[], 1.0), 0.0);
    }

    #[test]
    fn throughput_interpolates_crossing() {
        // p99 crosses slo=5.0 between load 8 (4.0) and load 9 (8.0).
        let pts = [(5.0, 1.0), (8.0, 4.0), (9.0, 8.0), (10.0, 20.0)];
        let t = throughput_at_slo(&pts, 5.0).unwrap();
        assert!((t - 8.25).abs() < 1e-9, "throughput {t}");
    }

    #[test]
    fn throughput_edge_cases() {
        assert_eq!(throughput_at_slo(&[], 5.0), None);
        // Everything violates.
        assert_eq!(throughput_at_slo(&[(5.0, 9.0)], 5.0), None);
        // Nothing violates → last load.
        assert_eq!(throughput_at_slo(&[(5.0, 1.0), (6.0, 2.0)], 5.0), Some(6.0));
        // Non-monotone latency dip after a violation still reports first crossing.
        let pts = [(5.0, 1.0), (6.0, 6.0), (7.0, 2.0)];
        let t = throughput_at_slo(&pts, 5.0).unwrap();
        assert!(t > 5.0 && t < 6.0);
    }

    #[test]
    fn display_is_readable() {
        let s = LatencySummary::from_seconds(&[1.0]).unwrap();
        let text = s.to_string();
        assert!(text.contains("p99=1.000s"));
    }
}
