//! The engine-facing metrics sink.

use crate::record::{RequestRecord, SizeClass};
use chameleon_models::{AdapterId, AdapterRank};
use chameleon_simcore::{SimDuration, SimTime};
use chameleon_workload::RequestId;
use std::collections::HashMap;

/// Collects per-request records as the engine reports lifecycle events.
///
/// The collector is deliberately forgiving about event order within one
/// request (e.g. class assignment before or after admission) but panics on
/// events for unknown requests — those are engine bugs worth catching early.
#[derive(Debug, Default)]
pub struct Collector {
    records: HashMap<RequestId, RequestRecord>,
    last_token_at: HashMap<RequestId, SimTime>,
}

impl Collector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Collector::default()
    }

    /// Registers an arriving request.
    ///
    /// # Panics
    ///
    /// Panics if the id was already registered.
    #[allow(clippy::too_many_arguments)]
    pub fn on_arrival(
        &mut self,
        id: RequestId,
        at: SimTime,
        input_tokens: u32,
        output_tokens: u32,
        adapter: AdapterId,
        rank: AdapterRank,
    ) {
        let prev = self.records.insert(
            id,
            RequestRecord::arrive(id, at, input_tokens, output_tokens, adapter, rank),
        );
        assert!(prev.is_none(), "{id} arrived twice");
    }

    /// Records the scheduler's size-class decision.
    pub fn on_classified(&mut self, id: RequestId, class: SizeClass) {
        self.rec(id).class = Some(class);
    }

    /// Records first admission into a batch, with the adapter-load time
    /// left on the critical path at that moment (zero on a cache hit).
    pub fn on_admitted(&mut self, id: RequestId, at: SimTime, load_on_path: SimDuration) {
        let r = self.rec(id);
        if r.admitted.is_none() {
            r.admitted = Some(at);
            r.load_on_critical_path = load_on_path;
        }
    }

    /// Records a produced output token; the first one sets TTFT.
    pub fn on_token(&mut self, id: RequestId, at: SimTime) {
        let r = self.rec(id);
        if r.first_token.is_none() {
            r.first_token = Some(at);
        } else if let Some(&prev) = self.last_token_at.get(&id) {
            let gap = at.saturating_since(prev);
            self.records
                .get_mut(&id)
                .expect("checked above")
                .tbt_gaps
                .push(gap);
        }
        self.last_token_at.insert(id, at);
    }

    /// Records completion.
    pub fn on_finish(&mut self, id: RequestId, at: SimTime) {
        let r = self.rec(id);
        assert!(r.finished.is_none(), "{id} finished twice");
        r.finished = Some(at);
    }

    /// Records a squash (§4.3.3): generated state is discarded and the
    /// request re-queued; its admission/token state resets.
    pub fn on_squash(&mut self, id: RequestId) {
        let r = self.rec(id);
        r.squashes += 1;
        r.admitted = None;
        r.first_token = None;
        r.tbt_gaps.clear();
        self.last_token_at.remove(&id);
    }

    /// Records an opportunistic bypass by this request (§4.3.3).
    pub fn on_bypass(&mut self, id: RequestId) {
        self.rec(id).bypasses += 1;
    }

    /// Number of registered requests.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has arrived yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Read access to one record.
    pub fn get(&self, id: RequestId) -> Option<&RequestRecord> {
        self.records.get(&id)
    }

    /// Removes a request from the collector entirely, returning its
    /// partial record (crash recovery: the request re-arrives on another
    /// engine, whose collector registers it fresh — without this the
    /// re-dispatch would trip the arrived-twice guard or leave a duplicate
    /// record behind on the dead engine).
    pub fn remove(&mut self, id: RequestId) -> Option<RequestRecord> {
        self.last_token_at.remove(&id);
        self.records.remove(&id)
    }

    /// Finalises the collector into records sorted by arrival time.
    pub fn into_records(self) -> Vec<RequestRecord> {
        let mut v: Vec<RequestRecord> = self.records.into_values().collect();
        v.sort_by_key(|r| (r.arrival, r.id));
        v
    }

    fn rec(&mut self, id: RequestId) -> &mut RequestRecord {
        self.records
            .get_mut(&id)
            .unwrap_or_else(|| panic!("event for unknown {id}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn arrive(c: &mut Collector, id: u64, at: f64) {
        c.on_arrival(
            RequestId(id),
            t(at),
            100,
            4,
            AdapterId(0),
            AdapterRank::new(8),
        );
    }

    #[test]
    fn full_lifecycle() {
        let mut c = Collector::new();
        arrive(&mut c, 1, 0.0);
        c.on_classified(RequestId(1), SizeClass::Small);
        c.on_admitted(RequestId(1), t(0.5), SimDuration::from_millis(6));
        c.on_token(RequestId(1), t(1.0));
        c.on_token(RequestId(1), t(1.1));
        c.on_token(RequestId(1), t(1.25));
        c.on_finish(RequestId(1), t(1.25));
        let recs = c.into_records();
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        assert_eq!(r.ttft(), Some(SimDuration::from_secs(1)));
        assert_eq!(r.e2e(), Some(SimDuration::from_millis(1250)));
        assert_eq!(r.queue_delay(), Some(SimDuration::from_millis(500)));
        assert_eq!(r.tbt_gaps.len(), 2);
        assert_eq!(r.tbt_gaps[0], SimDuration::from_millis(100));
        assert_eq!(r.tbt_gaps[1], SimDuration::from_millis(150));
        assert_eq!(r.load_on_critical_path, SimDuration::from_millis(6));
        assert_eq!(r.class, Some(SizeClass::Small));
    }

    #[test]
    fn squash_resets_progress() {
        let mut c = Collector::new();
        arrive(&mut c, 1, 0.0);
        c.on_admitted(RequestId(1), t(0.1), SimDuration::ZERO);
        c.on_token(RequestId(1), t(0.2));
        c.on_token(RequestId(1), t(0.3));
        c.on_squash(RequestId(1));
        // Re-execution.
        c.on_admitted(RequestId(1), t(1.0), SimDuration::ZERO);
        c.on_token(RequestId(1), t(1.2));
        c.on_finish(RequestId(1), t(1.2));
        let r = &c.into_records()[0];
        assert_eq!(r.squashes, 1);
        assert_eq!(r.queue_delay(), Some(SimDuration::from_secs(1)));
        assert_eq!(r.ttft(), Some(SimDuration::from_millis(1200)));
        assert!(r.tbt_gaps.is_empty());
    }

    #[test]
    fn only_first_admission_counts() {
        let mut c = Collector::new();
        arrive(&mut c, 1, 0.0);
        c.on_admitted(RequestId(1), t(0.5), SimDuration::from_millis(3));
        c.on_admitted(RequestId(1), t(0.9), SimDuration::ZERO);
        assert_eq!(
            c.get(RequestId(1)).unwrap().queue_delay(),
            Some(SimDuration::from_millis(500))
        );
        assert_eq!(
            c.get(RequestId(1)).unwrap().load_on_critical_path,
            SimDuration::from_millis(3)
        );
    }

    #[test]
    fn records_sorted_by_arrival() {
        let mut c = Collector::new();
        arrive(&mut c, 2, 5.0);
        arrive(&mut c, 1, 1.0);
        arrive(&mut c, 3, 3.0);
        let ids: Vec<u64> = c.into_records().iter().map(|r| r.id.0).collect();
        assert_eq!(ids, vec![1, 3, 2]);
    }

    #[test]
    fn export_is_insertion_order_independent() {
        // The records live in a HashMap; the export path must sort so
        // derived outputs are reproducible regardless of the order the
        // engine (or a future parallel producer) fed events in.
        let build = |order: &[u64]| {
            let mut c = Collector::new();
            for &id in order {
                arrive(&mut c, id, id as f64 * 0.5);
            }
            for &id in order.iter().rev() {
                c.on_token(RequestId(id), t(100.0 + id as f64));
                c.on_finish(RequestId(id), t(200.0 + id as f64));
            }
            c.into_records()
                .iter()
                .map(|r| (r.id, r.arrival, r.first_token, r.finished))
                .collect::<Vec<_>>()
        };
        let a = build(&[1, 2, 3, 4, 5, 6, 7]);
        let b = build(&[7, 3, 1, 6, 2, 5, 4]);
        let c = build(&[4, 5, 6, 7, 1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a, c);
        let ids: Vec<u64> = a.iter().map(|&(id, ..)| id.0).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5, 6, 7], "sorted by (arrival, id)");
    }

    #[test]
    #[should_panic(expected = "unknown")]
    fn unknown_request_panics() {
        let mut c = Collector::new();
        c.on_token(RequestId(9), t(0.0));
    }

    #[test]
    #[should_panic(expected = "arrived twice")]
    fn double_arrival_panics() {
        let mut c = Collector::new();
        arrive(&mut c, 1, 0.0);
        arrive(&mut c, 1, 1.0);
    }

    #[test]
    fn bypass_counter() {
        let mut c = Collector::new();
        arrive(&mut c, 1, 0.0);
        c.on_bypass(RequestId(1));
        c.on_bypass(RequestId(1));
        assert_eq!(c.get(RequestId(1)).unwrap().bypasses, 2);
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }
}
