//! Data-parallel multi-engine cluster (§4.4), elastic and heterogeneous.
//!
//! "In DP, Chameleon uses a two-level scheduler: a global scheduler
//! dispatches requests to the different engines, and each engine has its
//! local scheduler." The global scheduler is a pluggable [`Router`] from
//! `chameleon_router`: [`Cluster::new`] keeps the paper's
//! production-standard join-shortest-queue dispatch (over outstanding
//! resource tokens) and its replicated-adapter-cache behaviour, while
//! [`Cluster::with_router`] accepts any placement policy — notably
//! `AdapterAffinity`, which partitions the adapter working set across
//! engines instead of replicating it.
//!
//! Beyond the paper's fixed fleet, the cluster is *elastic*: every engine
//! carries a stable [`EngineId`] (identity, not position), and the fleet
//! can change while a trace is in flight. [`Cluster::add_engine`] joins a
//! new engine — of any capacity: heterogeneous fleets mix TP1/TP2/TP4
//! engines whose weighted rendezvous shards are proportional to memory —
//! and [`Cluster::drain_engine`] retires one gracefully: the drained
//! engine stops receiving dispatches immediately, finishes its in-flight
//! and queued work, and leaves; identity-keyed rendezvous guarantees that
//! only the departing engine's adapter shard is re-homed, which the
//! cluster measures (`adapters_rehomed`) rather than assumes.
//! [`Cluster::run_elastic`] drives a trace with an [`Autoscaler`]
//! watching queue depth and scaling the fleet mid-trace.
//!
//! Every dispatch is recorded in [`RoutingStats`]: per-engine counts
//! keyed by [`EngineId`], affinity hits (the chosen engine already had
//! the adapter resident), spills, load imbalance, and the fleet-change
//! counters, all flowing into the merged [`EngineReport`].
//!
//! # Epochs, barriers, and parallel execution
//!
//! The cluster loop is organised around a single observation: between
//! two *cross-engine* events — a dispatch decision for an arrival or an
//! autoscaler evaluation tick — every pending event is engine-local
//! (step completions, adapter loads, periodic ticks, pokes), and an
//! engine's local events can only ever schedule more events *for the
//! same engine*. The run is therefore a sequence of **epochs**: each
//! engine owns a local [`EventQueue`] and steps it up to (strictly
//! before) the next cross-engine instant, after which the coordinator
//! applies the routing or autoscaling decision at the **barrier** with
//! exclusive access to every engine, exactly as the old single-heap loop
//! would have.
//!
//! Because engine state is thread-confined between barriers (the
//! zero-alloc scratch from the hot-path overhaul lives inside each
//! [`Engine`]), epochs parallelise: [`ClusterExecution::Parallel`] steps
//! the engines on a [`chameleon_simcore::shard`] worker pool instead of
//! in a slot-order loop. Simultaneous events are ordered by a fixed
//! class precedence (arrivals, then autoscaler ticks, then engine-local
//! events; within a class, trace/push order) that both execution modes
//! share, so **serial and parallel runs are bit-identical** — the
//! determinism suite asserts `RunReport::canonical_text()` equality
//! across seeds, worker counts, and mid-trace fleet changes.

use crate::autoscaler::{Autoscaler, ForecastSignal, ScaleAction, ScaleTrigger};
use crate::dispatch::DispatchSpec;
use crate::engine::{Engine, EngineEvent};
use crate::predictive::PredictiveSpec;
use crate::report::EngineReport;
use chameleon_fault::{fault_roll, FaultAction, FaultSpec, FaultTimeline, PcieFaultInjector};
use chameleon_metrics::RoutingStats;
use chameleon_models::AdapterId;
use chameleon_predictor::{Forecast, HistogramLoadPredictor};
use chameleon_router::{
    policies, EngineId, EngineSnapshot, JoinShortestQueue, Router, StalenessClass,
};
use chameleon_simcore::shard::{self, ShardPool};
use chameleon_simcore::{EventQueue, SimDuration, SimTime};
use chameleon_trace::{AutoscaleAction, BarrierProfile, Lane, TraceBuffer, TraceEvent, TraceLog};
use chameleon_workload::{Request, Trace};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::time::Instant;

/// Counter-hash stream for provisioning-fault rolls. Engine PCIe streams
/// use the engine id (always below `u32::MAX`), so the coordinator's own
/// stream can never collide with one.
const PROVISION_STREAM: u64 = u64::MAX;

/// How a cluster run steps its engines between barriers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClusterExecution {
    /// Step every engine on the coordinator thread (the default).
    #[default]
    Serial,
    /// Step engines on an epoch-synchronised worker pool. Bit-identical
    /// to [`ClusterExecution::Serial`] for every worker count.
    Parallel {
        /// Worker threads; `0` means auto (the `CHAMELEON_WORKERS`
        /// environment variable, falling back to the machine's cores).
        workers: usize,
    },
}

impl ClusterExecution {
    /// Parallel execution with the automatic worker count.
    pub fn parallel_auto() -> Self {
        ClusterExecution::Parallel { workers: 0 }
    }

    /// The effective worker count (≥ 1) this mode resolves to.
    pub fn worker_count(self) -> usize {
        match self {
            ClusterExecution::Serial => 1,
            ClusterExecution::Parallel { workers: 0 } => {
                shard::workers_from_env().unwrap_or_else(shard::default_workers)
            }
            ClusterExecution::Parallel { workers } => workers,
        }
    }
}

/// The per-epoch command the coordinator hands every engine stepper.
#[derive(Debug, Clone, Copy)]
struct EpochCmd {
    /// Step local events with time strictly below this; `None` drains
    /// everything (no cross-engine event is pending). Simultaneous
    /// events at the boundary instant belong to the *next* epoch: the
    /// cross event (arrival or autoscaler tick) wins equal-time ties.
    boundary: Option<SimTime>,
    /// Whether undispatched arrivals remain anywhere in the trace —
    /// constant within an epoch, and the condition keeping periodic
    /// ticks alive on idle engines.
    arrivals_remaining: bool,
    /// Batched dispatch only: the last arrival instant of the in-flight
    /// batch being delivered this epoch. Periodic ticks at `t <
    /// batch_until` stay alive even when `arrivals_remaining` is false —
    /// exactly the ticks per-arrival dispatch would have kept because it
    /// had not consumed those arrivals yet.
    batch_until: Option<SimTime>,
    mem_int: SimDuration,
    refresh_int: SimDuration,
}

/// The class of the next cross-engine event. Simultaneous cross events
/// resolve by this fixed precedence — arrivals, then the autoscaler
/// tick, then fault barriers — shared by both execution modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CrossEvent {
    Arrival,
    Scale,
    Fault,
}

/// One crash-recovery re-dispatch waiting out its backoff.
#[derive(Debug, Clone, Copy)]
struct RetryEntry {
    due: SimTime,
    attempt: u32,
    req: Request,
}

/// The MTTR ledger entry for one recovery episode: a crash (or a
/// partition's victim extraction) and the fate of the requests it
/// orphaned. `mttr_redispatch` closes when the last victim re-enters an
/// engine; `mttr_complete` is settled from the merged report, where the
/// victims' completion instants live.
struct RecoveryEpisode {
    /// The barrier the victims were extracted at.
    at: SimTime,
    /// Victims still waiting out detection + backoff.
    outstanding: u32,
    /// Instant the last victim so far was re-dispatched.
    redispatch_last: Option<SimTime>,
    /// Request ids extracted into the retry ledger by this episode.
    victims: Vec<u64>,
}

/// Engine-id → fault-domain map pinned by [`Cluster::set_topology`].
/// Engines provisioned after the pin (autoscaler growth) are absent —
/// each is its own singleton domain, which anti-affinity treats as
/// "always a different rack".
struct ClusterTopology {
    racks: HashMap<u32, u32>,
    /// Whether placement (spill / pre-replication second choices) should
    /// see the racks. Fault scoping (domain crash, brownout, partition
    /// membership) reads the map regardless — a topology-blind ablation
    /// still lives on real racks.
    anti_affinity: bool,
}

/// Coordinator-owned fault-plane state ([`Cluster::set_fault`]). Every
/// field is observed and mutated only at barriers, which is what keeps
/// fault-armed runs bit-identical between serial and parallel execution.
struct FaultState {
    spec: FaultSpec,
    /// Scheduled crashes and straggler windows, replayed in time order.
    timeline: FaultTimeline,
    /// TTFT SLO the shedding gate prices against (the run's SLO axis).
    slo: Option<SimDuration>,
    /// Pending re-dispatches, sorted by `(due, arrival, id)`.
    retries: Vec<RetryEntry>,
    /// Ready instants of autoscaler provisions slowed by injected delay.
    pending_provisions: Vec<SimTime>,
    /// Counter for the provisioning-failure roll stream.
    provision_counter: u64,
    /// Crash count per request id — the retry budget ledger.
    attempts: HashMap<u64, u32>,
    /// Racks currently cut off from the coordinator. Members leave the
    /// routing candidate set until the partition heals.
    partitioned: BTreeSet<u32>,
    /// MTTR ledger: one entry per crash / partition that orphaned work.
    episodes: Vec<RecoveryEpisode>,
    /// Victim request id → index into `episodes` (latest extraction wins;
    /// removed when the victim re-dispatches).
    victim_episode: HashMap<u64, usize>,
}

/// One engine plus its cluster-lifecycle state and its shard of the
/// event horizon (the engine-local future-event queue).
struct EngineSlot {
    id: EngineId,
    /// Draining engines accept no new dispatches; they finish their
    /// queued and running work and are then retired.
    draining: bool,
    /// Set by the epoch stepper the moment a draining engine runs out of
    /// work: the coordinator retires the slot at the next barrier.
    retire_ready: bool,
    engine: Engine,
    /// Engine-local future events. Only this slot's stepper (during an
    /// epoch) and the coordinator (at barriers) touch it.
    queue: EventQueue<EngineEvent>,
    /// Reused `Engine::handle` output buffer, thread-confined with its
    /// slot.
    out: Vec<(SimTime, EngineEvent)>,
    /// Events this slot processed during the current run.
    processed: u64,
    /// Instant of this slot's last processed event this run.
    last: SimTime,
    /// Batched dispatch only: arrivals the coordinator routed here at
    /// the last batch barrier, in arrival order, delivered by `step_to`
    /// interleaved with local events (arrival wins an equal-time tie —
    /// the same order per-arrival dispatch produces, where the arrival
    /// is handled at its barrier and same-instant local events wait for
    /// the next epoch). Kept separate from the event queue because the
    /// queue breaks same-instant ties by insertion order, which would
    /// put pre-existing same-time events *before* the arrival.
    arrivals: VecDeque<(SimTime, Request)>,
    /// Adapter-resident-at-delivery count for batched arrivals. The
    /// residency state at delivery (all local events strictly before the
    /// arrival instant applied) is exactly what the per-arrival path
    /// measures at its dispatch barrier, so harvesting this into
    /// `RoutingStats::affinity_hits` keeps batched dispatch
    /// byte-identical to per-arrival for state-independent routers.
    arrival_hits: u64,
}

impl EngineSlot {
    fn new(id: EngineId, draining: bool, engine: Engine) -> Self {
        EngineSlot {
            id,
            draining,
            retire_ready: false,
            engine,
            queue: EventQueue::with_capacity(32),
            out: Vec::new(),
            processed: 0,
            last: SimTime::ZERO,
            arrivals: VecDeque::new(),
            arrival_hits: 0,
        }
    }

    /// Resets the per-run state and schedules the first periodic ticks
    /// (the queue is always empty between runs: a run returns only after
    /// every local queue drained or was cleared by retirement).
    fn begin_run(&mut self, mem_int: SimDuration, refresh_int: SimDuration) {
        debug_assert!(self.queue.is_empty());
        debug_assert!(self.arrivals.is_empty());
        debug_assert_eq!(self.arrival_hits, 0, "hits harvested at run end");
        self.processed = 0;
        self.last = SimTime::ZERO;
        self.retire_ready = false;
        self.queue
            .push(SimTime::ZERO + mem_int, EngineEvent::MemSample);
        self.queue
            .push(SimTime::ZERO + refresh_int, EngineEvent::Refresh);
    }

    /// True when this slot has a local event due before `boundary` or an
    /// undelivered batched arrival (the coordinator guarantees every
    /// routed arrival lands at or before the boundary).
    fn has_pending(&self, boundary: Option<SimTime>) -> bool {
        !self.arrivals.is_empty()
            || match self.queue.peek_time() {
                Some(t) => boundary.is_none_or(|b| t < b),
                None => false,
            }
    }

    /// Steps this engine's local events up to the epoch boundary. This is
    /// the per-shard body of both execution modes; it touches nothing
    /// outside the slot, which is what makes parallel stepping sound and
    /// bit-identical to serial.
    fn step_to(&mut self, cmd: &EpochCmd) {
        loop {
            // Batched dispatch: deliver routed arrivals interleaved with
            // local events, arrival first on an equal-time tie — the
            // exact order the per-arrival path produces (arrival handled
            // at its barrier, same-instant local events in the next
            // epoch). Every pending arrival is at or before the epoch
            // boundary by construction, so none survives the epoch.
            let next_arrival = self.arrivals.front().map(|&(ta, _)| ta);
            let next_local = self.queue.peek_time();
            let deliver = match (next_arrival, next_local) {
                (Some(ta), Some(tl)) => ta <= tl,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if deliver {
                let (ta, req) = self.arrivals.pop_front().expect("peeked arrival");
                if self.engine.is_adapter_resident(req.adapter()) {
                    self.arrival_hits += 1;
                }
                self.engine
                    .handle(ta, EngineEvent::Arrival(req), &mut self.out);
                for (at, e) in self.out.drain(..) {
                    self.queue.push(at, e);
                }
                self.processed += 1;
                self.last = ta;
                continue;
            }
            let Some(t) = next_local else { break };
            if let Some(b) = cmd.boundary {
                if t >= b {
                    break;
                }
            }
            let (t, ev) = self.queue.pop().expect("peeked event");
            let reschedule = match &ev {
                EngineEvent::MemSample => Some((t + cmd.mem_int, EngineEvent::MemSample)),
                EngineEvent::Refresh => Some((t + cmd.refresh_int, EngineEvent::Refresh)),
                _ => None,
            };
            self.engine.handle(t, ev, &mut self.out);
            for (at, e) in self.out.drain(..) {
                self.queue.push(at, e);
            }
            if let Some((at, e)) = reschedule {
                // Keep periodic ticks alive while dispatches remain —
                // including batch members not yet delivered (`t <
                // batch_until`), which per-arrival dispatch would still
                // count as remaining arrivals at this instant.
                if cmd.arrivals_remaining
                    || cmd.batch_until.is_some_and(|u| t < u)
                    || self.engine.has_work()
                {
                    self.queue.push(at, e);
                }
            }
            self.processed += 1;
            self.last = t;
            if self.draining && !self.engine.has_work() {
                // A drained engine retires the moment it goes idle; its
                // remaining events (stale periodic ticks) are exactly the
                // ones the single-heap loop would pop and drop later.
                self.retire_ready = true;
                self.queue.clear();
                break;
            }
        }
        debug_assert!(
            self.arrivals.is_empty(),
            "batched arrivals must drain within their epoch"
        );
    }
}

/// A data-parallel group of engines behind a global dispatcher.
pub struct Cluster {
    slots: Vec<EngineSlot>,
    next_id: u32,
    router: Box<dyn Router>,
    stats: RoutingStats,
    /// Reused per-arrival snapshot buffer (dispatch is the hot path).
    snap_buf: Vec<EngineSnapshot>,
    /// Slot position of each snapshot in `snap_buf` (parallel).
    snap_slots: Vec<usize>,
    /// Reports of engines drained and retired during the run, tagged
    /// with their stable id so the final merge is order-independent.
    retired: Vec<(EngineId, EngineReport)>,
    /// Periodic-event cadence, shared by every engine (taken from the
    /// initial fleet; `add_engine` asserts newcomers agree).
    mem_int: SimDuration,
    refresh_int: SimDuration,
    /// Events processed across all [`Cluster::run`] calls.
    events_processed: u64,
    /// Predictive control plane (pre-replication, forecast autoscaling,
    /// drain handoff); `None` keeps the cluster purely reactive — and
    /// byte-identical to the pre-control-plane stack.
    predictive: Option<PredictiveSpec>,
    /// Coordinator-owned arrival-history predictor. Observed and queried
    /// only at barriers, which is what keeps every predictive decision
    /// bit-identical between serial and parallel execution.
    forecaster: HistogramLoadPredictor,
    /// Reused forecast scratch (the control plane's per-scan buffer).
    forecast_buf: Vec<Forecast>,
    /// Last pre-replication attempt per adapter (re-warm cooldown).
    last_warm: HashMap<AdapterId, SimTime>,
    /// Outstanding warms: adapter → engine the copy was pushed to. A
    /// dispatch landing there with the adapter resident consumes the
    /// entry (a pre-replication *hit*); leftovers count as wasted.
    outstanding_warms: HashMap<AdapterId, EngineId>,
    /// Earliest instant of the next candidate scan (scan throttling).
    next_scan: SimTime,
    /// Decision-trace merge buffer: the coordinator pushes its own lane
    /// directly; engine lanes are drained at retirement and finalisation.
    /// `None` (the default) keeps every emission site one branch and all
    /// presets byte-identical to the untraced stack.
    tracer: Option<TraceBuffer>,
    /// Monotone epoch counter for barrier open/close events.
    trace_epoch: u64,
    /// Wall-clock barrier profile; accumulated across runs. Lives outside
    /// the deterministic trace stream by design.
    profile: Option<BarrierProfile>,
    /// Fault-injection and recovery plane ([`Cluster::set_fault`]);
    /// `None` keeps every run byte-identical to the pre-fault stack.
    fault: Option<FaultState>,
    /// Amortised dispatch barriers ([`Cluster::set_dispatch`]): `None`
    /// keeps the legacy one-barrier-per-arrival loop untouched; `Some`
    /// coalesces arrival runs into batches routed from one cached
    /// snapshot generation.
    dispatch: Option<DispatchSpec>,
    /// Monotone snapshot-generation counter (batched dispatch): bumped
    /// by every [`Cluster::refresh_snapshots`], stamped into the
    /// `DispatchBatch`/`RetryBatch` trace events so tests can assert
    /// which placements shared a generation.
    snap_gen: u64,
    /// The barrier instant `snap_buf` was last filled *for batched
    /// routing* at, or `None` when the cached generation is unusable —
    /// any plain refill (autoscaler path) or fleet mutation
    /// (add/drain/retire) invalidates it, because `snap_slots` positions
    /// go stale the moment the slot vector changes. A fault barrier at
    /// the same instant as a dispatch batch reuses the generation (and
    /// its echoes) instead of re-snapshotting.
    snap_filled_at: Option<SimTime>,
    /// Fault-domain topology ([`Cluster::set_topology`]); `None` keeps
    /// every placement and fault byte-identical to the topology-free
    /// stack.
    topology: Option<ClusterTopology>,
}

impl Cluster {
    /// Builds a cluster of `n` engines from a factory, dispatching with
    /// the paper's global scheduler (join-shortest-queue over outstanding
    /// resource tokens). The factory is called with each engine's
    /// [`EngineId`] value (`0..n`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new<F: FnMut(usize) -> Engine>(n: usize, factory: F) -> Self {
        Cluster::with_router(n, factory, Box::new(JoinShortestQueue::new()))
    }

    /// Builds a cluster of `n` engines dispatching through `router`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_router<F: FnMut(usize) -> Engine>(
        n: usize,
        mut factory: F,
        router: Box<dyn Router>,
    ) -> Self {
        assert!(n > 0, "empty cluster");
        let slots: Vec<EngineSlot> = (0..n)
            .map(|i| EngineSlot::new(EngineId(i as u32), false, factory(i)))
            .collect();
        let ids: Vec<EngineId> = slots.iter().map(|s| s.id).collect();
        let stats = RoutingStats::new(router.name(), &ids);
        let mem_int = slots[0].engine.config().mem_sample_interval;
        let refresh_int = slots[0].engine.config().refresh_interval;
        Cluster {
            next_id: n as u32,
            snap_buf: Vec::with_capacity(n),
            snap_slots: Vec::with_capacity(n),
            retired: Vec::new(),
            mem_int,
            refresh_int,
            slots,
            router,
            stats,
            events_processed: 0,
            predictive: None,
            forecaster: HistogramLoadPredictor::new(),
            forecast_buf: Vec::new(),
            last_warm: HashMap::new(),
            outstanding_warms: HashMap::new(),
            next_scan: SimTime::ZERO,
            tracer: None,
            trace_epoch: 0,
            profile: None,
            fault: None,
            dispatch: None,
            snap_gen: 0,
            snap_filled_at: None,
            topology: None,
        }
    }

    /// Turns on decision tracing for the whole cluster: the coordinator's
    /// routing/scaling/barrier decisions and every engine's local events
    /// (first tokens, cache admits/evicts, batch formations, samples)
    /// merge into one [`TraceLog`] under the pinned `(time, lane, seq)`
    /// total order, so serial and parallel runs emit byte-identical
    /// streams. Engines joining later inherit tracing automatically.
    pub fn enable_tracing(&mut self) {
        if self.tracer.is_none() {
            self.tracer = Some(TraceBuffer::new());
        }
        for slot in &mut self.slots {
            slot.engine.enable_tracing();
        }
    }

    /// True when [`enable_tracing`](Self::enable_tracing) was called.
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// Turns on the wall-clock barrier profiler: per-epoch coordinator
    /// dispatch vs worker stepping vs barrier wait, accumulated across
    /// runs into a [`BarrierProfile`]. Wall-clock only — profiled runs
    /// stay bit-identical to unprofiled ones.
    pub fn enable_barrier_profiling(&mut self) {
        self.profile.get_or_insert_with(BarrierProfile::default);
    }

    /// Enables the predictive control plane: burst pre-replication onto
    /// spill targets, the forecast signal into elastic runs' autoscaler,
    /// and drain-time shard handoff, per `spec`'s switches. Strictly
    /// additive — a cluster without this call behaves byte-for-byte as if
    /// the control plane did not exist.
    pub fn set_predictive(&mut self, spec: PredictiveSpec) {
        self.predictive = Some(spec);
        self.stats.predictive.enabled = true;
    }

    /// The active predictive configuration, if any.
    pub fn predictive(&self) -> Option<&PredictiveSpec> {
        self.predictive.as_ref()
    }

    /// Enables amortised dispatch barriers: consecutive arrivals
    /// coalesce into a single barrier, routed from one cached snapshot
    /// generation whose size/age budget is the router's declared
    /// [`StalenessClass`] tightened by `spec`. State-independent routers
    /// (pure rendezvous with spill off, round-robin) batch without
    /// bounds and place byte-identically to per-arrival dispatch;
    /// load-aware routers see coordinator-echoed snapshots whose queue
    /// depths drift from the frozen generation by at most the batch
    /// size per engine.
    pub fn set_dispatch(&mut self, spec: DispatchSpec) {
        self.dispatch = Some(spec);
        self.stats.dispatch.enabled = true;
    }

    /// The active batched-dispatch configuration, if any.
    pub fn dispatch(&self) -> Option<&DispatchSpec> {
        self.dispatch.as_ref()
    }

    /// Arms the fault-injection and recovery plane: `spec`'s scheduled
    /// crashes and straggler windows replay at coordinator barriers,
    /// PCIe fault injectors (seeded per engine id) attach to every
    /// engine, and recovery — timeout-detected failover with capped
    /// exponential backoff, warm shard re-homing, SLO-aware shedding
    /// against `slo` — switches on. Strictly additive: a cluster without
    /// this call behaves byte-for-byte as if the plane did not exist.
    pub fn set_fault(&mut self, spec: FaultSpec, slo: Option<SimDuration>) {
        let timeline = FaultTimeline::compile(&spec);
        if spec.pcie_fail_prob > 0.0 {
            for slot in &mut self.slots {
                slot.engine.set_pcie_fault_injector(PcieFaultInjector::new(
                    spec.seed,
                    u64::from(slot.id.0),
                    spec.pcie_fail_prob,
                ));
            }
        }
        self.stats.fault.enabled = true;
        self.fault = Some(FaultState {
            timeline,
            slo,
            spec,
            retries: Vec::new(),
            pending_provisions: Vec::new(),
            provision_counter: 0,
            attempts: HashMap::new(),
            partitioned: BTreeSet::new(),
            episodes: Vec::new(),
            victim_episode: HashMap::new(),
        });
    }

    /// Pins each engine to a fault domain (rack), in slot order — one
    /// rack id per engine currently in the fleet. With `anti_affinity`
    /// on, second-choice placement (affinity spill, pre-replication)
    /// prefers the best-ranked engine *outside* the primary's rack;
    /// with it off the racks scope only correlated faults (domain
    /// crash, brownout, partition) — the topology-blind ablation.
    ///
    /// # Panics
    ///
    /// Panics if `racks` does not name exactly one domain per engine.
    pub fn set_topology(&mut self, racks: &[u32], anti_affinity: bool) {
        assert_eq!(
            racks.len(),
            self.slots.len(),
            "topology must name one fault domain per engine"
        );
        let map = self
            .slots
            .iter()
            .zip(racks)
            .map(|(s, &r)| (s.id.0, r))
            .collect();
        self.topology = Some(ClusterTopology {
            racks: map,
            anti_affinity,
        });
        self.snap_filled_at = None;
    }

    /// The rack engine `id` lives on, for fault scoping. `None` when no
    /// topology is pinned or the engine joined after the pin (a
    /// singleton domain correlated with nothing).
    fn rack_of(&self, id: EngineId) -> Option<u32> {
        self.topology
            .as_ref()
            .and_then(|t| t.racks.get(&id.0).copied())
    }

    /// The rack placement decisions see: [`Cluster::rack_of`] when
    /// anti-affinity is armed, `None` (topology-blind) otherwise.
    fn placement_rack(&self, id: EngineId) -> Option<u32> {
        match &self.topology {
            Some(t) if t.anti_affinity => t.racks.get(&id.0).copied(),
            _ => None,
        }
    }

    /// True while engine `id`'s rack is cut off from the coordinator.
    fn slot_unreachable(&self, id: EngineId) -> bool {
        match self.fault.as_ref() {
            Some(fs) if !fs.partitioned.is_empty() => self
                .rack_of(id)
                .is_some_and(|r| fs.partitioned.contains(&r)),
            _ => false,
        }
    }

    /// Engines the coordinator can currently dispatch to: active and not
    /// behind a partition. Equals [`Cluster::active_engines`] whenever no
    /// partition is in flight.
    fn reachable_active(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| !s.draining && !self.slot_unreachable(s.id))
            .count()
    }

    /// The active fault configuration, if any.
    pub fn fault(&self) -> Option<&FaultSpec> {
        self.fault.as_ref().map(|f| &f.spec)
    }

    /// Events processed across all run calls so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of engines currently in the cluster (active + draining;
    /// drained engines have left).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the cluster has no engines (never: the constructor
    /// forbids it and the last active engine cannot be drained).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of engines accepting new dispatches.
    pub fn active_engines(&self) -> usize {
        self.slots.iter().filter(|s| !s.draining).count()
    }

    /// Ids of the engines accepting new dispatches, in registration order.
    pub fn active_engine_ids(&self) -> Vec<EngineId> {
        self.slots
            .iter()
            .filter(|s| !s.draining)
            .map(|s| s.id)
            .collect()
    }

    /// The active routing policy's label.
    pub fn router_name(&self) -> &'static str {
        self.router.name()
    }

    /// The stable id the next engine to join will be registered under —
    /// the single mint point for engine identities.
    pub fn next_engine_id(&self) -> EngineId {
        EngineId(self.next_id)
    }

    /// Requests dispatched to each engine ever registered, in
    /// registration order (see [`RoutingStats::engine_ids`]).
    pub fn dispatch_counts(&self) -> &[u64] {
        &self.stats.per_engine
    }

    /// Routing statistics so far.
    pub fn routing_stats(&self) -> &RoutingStats {
        &self.stats
    }

    /// Joins `engine` to the fleet and returns its id. The newcomer
    /// starts receiving dispatches on the next arrival; with an affinity
    /// router, exactly the adapters whose weighted-rendezvous top choice
    /// is the new engine re-home onto it (measured into
    /// `adapters_rehomed`).
    ///
    /// # Panics
    ///
    /// Panics if the newcomer's periodic-event cadence differs from the
    /// fleet's (the cluster shares one tick schedule).
    pub fn add_engine(&mut self, engine: Engine) -> EngineId {
        assert_eq!(
            engine.config().mem_sample_interval,
            self.mem_int,
            "newcomer must share the fleet's sampling cadence"
        );
        assert_eq!(
            engine.config().refresh_interval,
            self.refresh_int,
            "newcomer must share the fleet's refresh cadence"
        );
        let id = self.next_engine_id();
        self.next_id += 1;
        if self.router.uses_affinity() {
            let moved = self.count_rehomed(&engine, Some((id, engine.capacity_weight())), None);
            self.stats.on_adapters_rehomed(moved);
        }
        self.stats.on_engine_added(id);
        let mut slot = EngineSlot::new(id, false, engine);
        if self.tracer.is_some() {
            slot.engine.enable_tracing();
        }
        if let Some(fs) = &self.fault {
            if fs.spec.pcie_fail_prob > 0.0 {
                slot.engine.set_pcie_fault_injector(PcieFaultInjector::new(
                    fs.spec.seed,
                    u64::from(id.0),
                    fs.spec.pcie_fail_prob,
                ));
            }
        }
        self.slots.push(slot);
        // The cached routing generation indexes slot positions; any
        // fleet change invalidates it.
        self.snap_filled_at = None;
        id
    }

    /// Starts draining engine `id`: it stops receiving new dispatches
    /// immediately, finishes its in-flight and queued work, and is then
    /// retired (its measurements are folded into the final report). With
    /// an affinity router, exactly the departing engine's adapter shard
    /// re-homes onto the survivors.
    ///
    /// Returns `false` (and does nothing) when `id` is unknown, already
    /// draining, or the last active engine — a cluster never drains to
    /// zero.
    pub fn drain_engine(&mut self, id: EngineId) -> bool {
        let Some(pos) = self.slots.iter().position(|s| s.id == id) else {
            return false;
        };
        if self.slots[pos].draining || self.active_engines() <= 1 {
            return false;
        }
        // Draining the last engine the coordinator can still reach would
        // leave arrivals with an empty candidate set for as long as the
        // partition lasts. (Without partitions this is the check above.)
        if !self.slot_unreachable(id) && self.reachable_active() <= 1 {
            return false;
        }
        if self.router.uses_affinity() {
            let moved = self.count_rehomed(&self.slots[pos].engine, None, Some(id));
            self.stats.on_adapters_rehomed(moved);
        }
        self.slots[pos].draining = true;
        self.stats.on_engine_drained(id);
        self.snap_filled_at = None;
        true
    }

    /// The `(id, capacity weight)` pairs of the engines currently
    /// accepting dispatches — the candidate set every placement and
    /// re-homing computation works over. Engines behind a partition are
    /// unreachable and drop out until the heal.
    fn active_weights(&self) -> Vec<(EngineId, f64)> {
        self.slots
            .iter()
            .filter(|s| !s.draining && !self.slot_unreachable(s.id))
            .map(|s| (s.id, s.engine.capacity_weight()))
            .collect()
    }

    /// Counts adapters whose weighted-rendezvous home differs between the
    /// current active set and the same set with `joining` added or
    /// `leaving` removed — the measured (not assumed) migration cost of a
    /// fleet change. `pool_of` only lends its adapter pool (all engines
    /// share one).
    fn count_rehomed(
        &self,
        pool_of: &Engine,
        joining: Option<(EngineId, f64)>,
        leaving: Option<EngineId>,
    ) -> u64 {
        let before = self.active_weights();
        let mut after = before.clone();
        if let Some(e) = joining {
            after.push(e);
        }
        if let Some(id) = leaving {
            after.retain(|&(e, _)| e != id);
        }
        if before.is_empty() || after.is_empty() {
            return 0;
        }
        let home = |set: &[(EngineId, f64)], a: AdapterId| {
            set[policies::rendezvous_home(a, set.iter().copied())].0
        };
        pool_of
            .pool()
            .iter()
            .filter(|spec| home(&before, spec.id()) != home(&after, spec.id()))
            .count() as u64
    }

    /// The weighted-rendezvous home (engine id) of `adapter` over the
    /// currently active engines — what an affinity router would pick on an
    /// unloaded fleet. Exposed for tests and capacity planning.
    pub fn home_of(&self, adapter: AdapterId) -> EngineId {
        let active = self.active_weights();
        active[policies::rendezvous_home(adapter, active.iter().copied())].0
    }

    /// Refills the reusable snapshot buffer (live engines only) for a
    /// routing decision. Residency sets are copied only when the router
    /// declares it reads them, so queue-depth-only policies stay cheap
    /// per arrival.
    fn fill_snapshots(&mut self) {
        let with_residency = self.router.needs_residency();
        self.snap_buf.clear();
        self.snap_slots.clear();
        self.snap_filled_at = None;
        for (pos, slot) in self.slots.iter().enumerate() {
            if slot.draining || self.slot_unreachable(slot.id) {
                continue;
            }
            let mut snap = slot.engine.snapshot(slot.id, with_residency);
            // Racks ride along only under an anti-affinity topology, so
            // the blind ablation routes byte-identically to the
            // topology-free stack.
            snap.rack = self.placement_rack(slot.id);
            self.snap_buf.push(snap);
            self.snap_slots.push(pos);
        }
    }

    /// [`Cluster::fill_snapshots`] for a batched-dispatch barrier: opens
    /// a new snapshot *generation* at `at`, which every routing decision
    /// of the batch (and any fault-barrier retry landing at the same
    /// instant) reads from — with the coordinator's own placements
    /// echoed in — instead of re-snapshotting per request.
    fn refresh_snapshots(&mut self, at: SimTime) {
        self.fill_snapshots();
        self.snap_gen += 1;
        self.snap_filled_at = Some(at);
        self.stats.dispatch.snapshot_refreshes += 1;
    }

    /// Retires slot `pos`: its report (tagged with its stable id) is
    /// stashed for the final merge, its run counters fold into the
    /// cluster's, and its pending events are discarded — exactly the
    /// stale ticks the pre-epoch single-heap loop popped and dropped.
    fn retire_slot(&mut self, pos: usize, last: &mut SimTime, processed: &mut u64) {
        let mut slot = self.slots.remove(pos);
        self.snap_filled_at = None;
        slot.queue.clear();
        *processed += slot.processed;
        *last = (*last).max(slot.last);
        self.stats.affinity_hits += slot.arrival_hits;
        self.stats.fault.pcie_retries += slot.engine.pcie_fault_retries();
        if let Some(tracer) = self.tracer.as_mut() {
            tracer.extend_lane(Lane::Engine(slot.id.0), slot.engine.take_trace_events());
        }
        self.retired.push((slot.id, slot.engine.into_report()));
    }

    /// Retires every slot the last epoch marked retire-ready, in slot
    /// order (the merged report is id-ordered anyway, so this order is
    /// not observable).
    fn harvest_retired(&mut self, last: &mut SimTime, processed: &mut u64) {
        let mut pos = 0;
        while pos < self.slots.len() {
            if self.slots[pos].retire_ready {
                self.retire_slot(pos, last, processed);
            } else {
                pos += 1;
            }
        }
    }

    /// One epoch: advances every engine's local queue up to `boundary`
    /// (exclusive). Engines with nothing due are skipped entirely; a
    /// lone busy engine is stepped inline even in parallel mode (a
    /// barrier would cost more than it buys); otherwise the shard pool —
    /// when one is attached — fans the engines out to worker threads.
    /// All three paths run the identical `EngineSlot::step_to`, which is
    /// what makes them bit-identical.
    fn run_epoch(
        &mut self,
        boundary: Option<SimTime>,
        arrivals_remaining: bool,
        batch_until: Option<SimTime>,
        pool: Option<&ShardPool<'_, EngineSlot, EpochCmd>>,
    ) {
        let cmd = EpochCmd {
            boundary,
            arrivals_remaining,
            batch_until,
            mem_int: self.mem_int,
            refresh_int: self.refresh_int,
        };
        let mut pending = 0usize;
        let mut lone = usize::MAX;
        for (pos, slot) in self.slots.iter().enumerate() {
            if slot.has_pending(boundary) {
                pending += 1;
                lone = pos;
            }
        }
        // Step-count snapshot for the barrier-close event. The slot set
        // cannot change during an epoch (retirement happens at barriers),
        // so positional deltas are sound.
        let stepped_before: Option<Vec<u64>> = (self.tracer.is_some() && pending > 0)
            .then(|| self.slots.iter().map(|s| s.processed).collect());
        let epoch_start = self.profile.is_some().then(Instant::now);
        let pooled = pool.is_some() && pending > 1;
        match (pool, pending) {
            (_, 0) => {}
            (_, 1) => self.slots[lone].step_to(&cmd),
            (Some(pool), _) => pool.epoch(&mut self.slots, cmd),
            (None, _) => {
                for slot in &mut self.slots {
                    slot.step_to(&cmd);
                }
            }
        }
        if let Some(start) = epoch_start {
            let dt = start.elapsed().as_nanos() as u64;
            let p = self.profile.as_mut().expect("profiling enabled");
            p.epochs += 1;
            p.step_wall_ns += dt;
            if pooled {
                p.pool_epochs += 1;
                p.pool_step_wall_ns += dt;
            }
        }
        if let Some(before) = stepped_before {
            // Event time: the barrier instant. The final (unbounded) epoch
            // closes at the last event any engine processed — identical in
            // both execution modes because stepping is.
            let at = boundary.unwrap_or_else(|| {
                self.slots
                    .iter()
                    .map(|s| s.last)
                    .max()
                    .unwrap_or(SimTime::ZERO)
            });
            let stepped: Vec<(u32, u64)> = self
                .slots
                .iter()
                .zip(before)
                .filter(|(slot, was)| slot.processed > *was)
                .map(|(slot, was)| (slot.id.0, slot.processed - was))
                .collect();
            let epoch = self.trace_epoch;
            self.trace_epoch += 1;
            let tracer = self.tracer.as_mut().expect("tracing enabled");
            tracer.push(
                at,
                Lane::Coordinator,
                TraceEvent::BarrierOpen {
                    epoch,
                    boundary,
                    pending: pending as u32,
                },
            );
            tracer.push(
                at,
                Lane::Coordinator,
                TraceEvent::BarrierClose { epoch, stepped },
            );
        }
    }

    /// Burst pre-replication, run at dispatch barriers: adapters the
    /// forecaster flags as imminently hot (predicted next use inside the
    /// configured window, observed rate above the floor) are warmed onto
    /// their *second* rendezvous choice — the exact engine affinity spill
    /// diverts to — before the burst lands. Scans are throttled by
    /// `scan_interval`, warms capped per barrier, and a per-adapter
    /// cooldown prevents re-issuing a copy that keeps getting evicted.
    ///
    /// Everything here runs on the coordinator with exclusive fleet
    /// access; warm-transfer completions are ordinary engine-local
    /// `LoadDone` events pushed into the target's queue, so serial and
    /// parallel execution see identical schedules.
    fn pre_replicate(&mut self, now: SimTime) {
        let Some(spec) = self.predictive else {
            return;
        };
        if !spec.prereplicate || now < self.next_scan {
            return;
        }
        self.next_scan = now + spec.scan_interval;
        let mut buf = std::mem::take(&mut self.forecast_buf);
        self.forecaster.forecast_into(now, spec.window, &mut buf);
        let weights = self.active_weights();
        if weights.len() >= 2 {
            let mut warms = 0usize;
            for f in &buf {
                if warms >= spec.max_warms_per_barrier {
                    break;
                }
                if f.rate < spec.min_rate {
                    continue;
                }
                if self
                    .last_warm
                    .get(&f.adapter)
                    .is_some_and(|&at| now.saturating_since(at) < spec.rewarm_interval)
                {
                    continue;
                }
                // Only ever the second rendezvous choice: pre-replication
                // adds a warm spill replica, never re-homes a primary
                // (property-tested in chameleon-router). Under an
                // anti-affinity topology the replica prefers the best
                // engine outside the primary's rack, so a whole-domain
                // failure cannot take both copies.
                let (home, target) = policies::rendezvous_top2_domains(
                    f.adapter,
                    weights
                        .iter()
                        .map(|&(id, w)| (id, w, self.placement_rack(id))),
                );
                let Some(target) = target else {
                    continue;
                };
                let home_id = weights[home].0;
                let target_id = weights[target].0;
                let pos = self
                    .slots
                    .iter()
                    .position(|s| s.id == target_id)
                    .expect("active engine is present");
                let slot = &mut self.slots[pos];
                if let Some(bytes) = slot.engine.warm_load(f.adapter, now, &mut slot.out) {
                    for (at, e) in slot.out.drain(..) {
                        slot.queue.push(at, e);
                    }
                    // Cooldown starts only on a warm that was actually
                    // issued: a skip for tight memory (exactly when a
                    // burst is ramping) must stay retryable on the next
                    // scan, and an already-resident skip costs one O(1)
                    // check — not worth locking the adapter out for.
                    self.last_warm.insert(f.adapter, now);
                    self.stats.predictive.on_prewarm(bytes);
                    self.outstanding_warms.insert(f.adapter, target_id);
                    if let Some(tracer) = self.tracer.as_mut() {
                        tracer.push(
                            now,
                            Lane::Coordinator,
                            TraceEvent::PrewarmIssued {
                                adapter: f.adapter.0,
                                target: target_id.0,
                                home: home_id.0,
                                bytes,
                            },
                        );
                    }
                    warms += 1;
                }
            }
        }
        self.forecast_buf = buf;
    }

    /// The predicted-arrivals signal for one autoscaler evaluation:
    /// expected requests within the controller's next interval, summed
    /// over every adapter the forecaster places there (each contributes
    /// at least one arrival, hot adapters their rate × interval).
    fn forecast_signal(&mut self, now: SimTime, interval: SimDuration) -> ForecastSignal {
        let enabled = self.predictive.is_some_and(|s| s.forecast_autoscale);
        if !enabled {
            return ForecastSignal::default();
        }
        let mut buf = std::mem::take(&mut self.forecast_buf);
        self.forecaster.forecast_into(now, interval, &mut buf);
        let secs = interval.as_secs_f64();
        let predicted_arrivals = buf.iter().map(|f| (f.rate * secs).max(1.0)).sum();
        self.forecast_buf = buf;
        ForecastSignal { predicted_arrivals }
    }

    /// Drain-time shard handoff: the departing engine's resident adapters
    /// that *homed* on it are pushed into the survivors that inherit them
    /// (each adapter to its post-drain rendezvous home), as
    /// PCIe-cost-modelled warm transfers on the survivors' links — so the
    /// migrated shard is warm before its first post-drain request instead
    /// of cold-missing on demand. Spilled or pre-replicated copies the
    /// victim happened to hold are not part of the shard and stay behind.
    fn handoff_shard(&mut self, victim: EngineId, now: SimTime) {
        let survivors = self.active_weights();
        if survivors.is_empty() {
            return;
        }
        let vpos = self
            .slots
            .iter()
            .position(|s| s.id == victim)
            .expect("drained engine is present");
        let mut before = survivors.clone();
        before.push((victim, self.slots[vpos].engine.capacity_weight()));
        let mut shard: Vec<AdapterId> = self.slots[vpos]
            .engine
            .resident_adapters()
            .into_iter()
            .collect();
        // The residency set iterates in arbitrary order; transfers queue
        // on each survivor's PCIe link, so the order must be pinned.
        shard.sort_unstable();
        let mut moved = 0u64;
        let mut bytes_total = 0u64;
        for a in shard {
            let home_before = before[policies::rendezvous_home(a, before.iter().copied())].0;
            if home_before != victim {
                continue;
            }
            let new_home = survivors[policies::rendezvous_home(a, survivors.iter().copied())].0;
            let pos = self
                .slots
                .iter()
                .position(|s| s.id == new_home)
                .expect("survivor is present");
            let slot = &mut self.slots[pos];
            if let Some(bytes) = slot.engine.warm_load(a, now, &mut slot.out) {
                for (at, e) in slot.out.drain(..) {
                    slot.queue.push(at, e);
                }
                moved += 1;
                bytes_total += bytes;
            }
        }
        if moved > 0 {
            self.stats.predictive.on_handoff(moved, bytes_total);
            if let Some(tracer) = self.tracer.as_mut() {
                tracer.push(
                    now,
                    Lane::Coordinator,
                    TraceEvent::Handoff {
                        from: victim.0,
                        adapters: moved as u32,
                        bytes: bytes_total,
                    },
                );
            }
        }
    }

    /// The instant of the next fault-plane cross event: the earliest of
    /// the scheduled-fault timeline head, the first due retry, and any
    /// pending delayed provision. `None` when no plane is armed or it
    /// has nothing left to do.
    fn next_fault_time(&self) -> Option<SimTime> {
        let fs = self.fault.as_ref()?;
        let mut next = fs.timeline.peek();
        if let Some(r) = fs.retries.first() {
            next = Some(next.map_or(r.due, |n| n.min(r.due)));
        }
        if let Some(&p) = fs.pending_provisions.iter().min() {
            next = Some(next.map_or(p, |n| n.min(p)));
        }
        next
    }

    /// One fault barrier: applies every fault-plane item due at `t`, in a
    /// fixed order — scheduled faults (crashes, straggler windows), then
    /// delayed provisions completing, then due re-dispatches. Runs on the
    /// coordinator with exclusive fleet access, like every other barrier.
    fn fault_barrier(
        &mut self,
        t: SimTime,
        last: &mut SimTime,
        processed: &mut u64,
        scale: &mut Option<(&mut Autoscaler, &mut dyn FnMut(EngineId) -> Engine)>,
    ) {
        loop {
            let action = match self.fault.as_mut() {
                Some(fs) => fs.timeline.pop_due(t),
                None => None,
            };
            let Some(action) = action else { break };
            match action {
                FaultAction::Crash(engine) => self.fault_crash(engine, t, last, processed),
                FaultAction::StragglerStart(engine, factor) => {
                    self.set_slot_slowdown(engine, factor)
                }
                FaultAction::StragglerEnd(engine) => self.set_slot_slowdown(engine, 1.0),
                FaultAction::DomainCrash(rack) => self.fault_domain_crash(rack, t, last, processed),
                FaultAction::BrownoutStart(rack, factor) => self.set_domain_slowdown(rack, factor),
                FaultAction::BrownoutEnd(rack) => self.set_domain_slowdown(rack, 1.0),
                FaultAction::PartitionStart(rack, heal) => self.partition_start(rack, heal, t),
                FaultAction::PartitionEnd(rack) => self.partition_end(rack, t),
            }
        }
        loop {
            let due = {
                let fs = self.fault.as_mut().expect("fault barrier without plane");
                match fs.pending_provisions.iter().position(|&p| p <= t) {
                    Some(pos) => fs.pending_provisions.remove(pos),
                    None => break,
                }
            };
            debug_assert!(due <= t);
            let (_, grow) = scale
                .as_mut()
                .expect("delayed provision without autoscaler");
            let id = self.next_engine_id();
            let engine = grow(id);
            let assigned = self.add_engine(engine);
            assert_eq!(assigned, id, "engine id minted twice");
            let (mem_int, refresh_int) = (self.mem_int, self.refresh_int);
            let slot = self.slots.last_mut().expect("engine just added");
            slot.queue.push(t + mem_int, EngineEvent::MemSample);
            slot.queue.push(t + refresh_int, EngineEvent::Refresh);
        }
        let mut retry_count: u32 = 0;
        let mut retry_reused = false;
        loop {
            let entry = {
                let fs = self.fault.as_mut().expect("fault barrier without plane");
                if fs.retries.first().is_some_and(|r| r.due <= t) {
                    fs.retries.remove(0)
                } else {
                    break;
                }
            };
            if self.dispatch.is_some() && retry_count == 0 {
                // Batched dispatch: all retries due at this barrier share
                // one snapshot generation — the arrival batch's when it
                // routed at this same instant and the fleet has not
                // changed since (crashes and provisions above invalidate
                // it), a fresh one otherwise.
                retry_reused = self.snap_filled_at == Some(t);
                if retry_reused {
                    self.stats.dispatch.retry_generation_reuses += 1;
                } else {
                    self.refresh_snapshots(t);
                }
            }
            retry_count += 1;
            self.dispatch_retry(t, entry, last);
        }
        if retry_count > 0 && self.dispatch.is_some() {
            if let Some(tracer) = self.tracer.as_mut() {
                tracer.push(
                    t,
                    Lane::Coordinator,
                    TraceEvent::RetryBatch {
                        generation: self.snap_gen,
                        size: retry_count,
                        reused: retry_reused,
                    },
                );
            }
        }
    }

    /// Kills engine `engine` at `t`: its shard re-homes (warm, when the
    /// predictive handoff is armed — the same machinery a graceful drain
    /// uses, minus the victim's cooperation), its unfinished requests are
    /// extracted for router re-dispatch after the detection timeout plus
    /// per-request capped exponential backoff, and the corpse is retired
    /// (the records of requests it *completed* survive into the report).
    /// The last active engine refuses to die — a fleet never crashes to
    /// zero — and a crash aimed at an engine that already left is moot.
    fn fault_crash(&mut self, engine: u32, t: SimTime, last: &mut SimTime, processed: &mut u64) {
        let victim = EngineId(engine);
        let Some(pos) = self.slots.iter().position(|s| s.id == victim) else {
            return;
        };
        let was_draining = self.slots[pos].draining;
        if !was_draining
            && (self.active_engines() <= 1
                || (!self.slot_unreachable(victim) && self.reachable_active() <= 1))
        {
            return;
        }
        let queued = self.slots[pos].engine.queue_len() as u32;
        let running = self.slots[pos].engine.running_len() as u32;
        self.stats.fault.engines_failed += 1;
        if let Some(tracer) = self.tracer.as_mut() {
            tracer.push(
                t,
                Lane::Coordinator,
                TraceEvent::EngineFailed {
                    engine,
                    queued,
                    running,
                },
            );
        }
        if !was_draining {
            if self.router.uses_affinity() {
                let moved = self.count_rehomed(&self.slots[pos].engine, None, Some(victim));
                self.stats.on_adapters_rehomed(moved);
            }
            // Out of the routing candidate set before any recovery
            // decision looks at the fleet.
            self.slots[pos].draining = true;
            if self.predictive.is_some_and(|s| s.handoff) {
                self.recover_shard(victim, t);
            }
        }
        let lost = self.slots[pos].engine.crash_unfinished();
        self.enqueue_victims(lost, t, None);
        self.retire_slot(pos, last, processed);
    }

    /// Pushes extracted victims into the retry ledger — detection
    /// timeout plus per-request capped exponential backoff, clamped to
    /// `heal` when the victims sit behind a partition (whichever the
    /// coordinator observes first re-dispatches them) — and opens one
    /// MTTR episode over those that stayed within their retry budget.
    fn enqueue_victims(&mut self, victims: Vec<Request>, t: SimTime, heal: Option<SimTime>) {
        let fs = self.fault.as_mut().expect("victims without fault plane");
        let mut recovered: Vec<u64> = Vec::new();
        for req in victims {
            let attempt = {
                let a = fs.attempts.entry(req.id().0).or_insert(0);
                *a += 1;
                *a
            };
            if attempt > fs.spec.max_retries {
                self.stats.fault.requests_failed += 1;
                continue;
            }
            self.stats.fault.requests_recovered += 1;
            let mut due = t + fs.spec.detect_timeout + fs.spec.backoff_for(attempt);
            if let Some(heal) = heal {
                due = due.min(heal);
            }
            recovered.push(req.id().0);
            fs.retries.push(RetryEntry { due, attempt, req });
        }
        if !recovered.is_empty() {
            // A victim crashed out of an earlier episode re-keys to this
            // one: its earlier re-dispatch already closed it there.
            let ep = fs.episodes.len();
            for &id in &recovered {
                fs.victim_episode.insert(id, ep);
            }
            fs.episodes.push(RecoveryEpisode {
                at: t,
                outstanding: recovered.len() as u32,
                redispatch_last: None,
                victims: recovered,
            });
        }
        fs.retries
            .sort_by_key(|r| (r.due, r.req.arrival(), r.req.id().0));
    }

    /// Kills every engine of `rack` at `t`, in slot order — the
    /// correlated failure anti-affinity placement exists to survive. A
    /// rack with no members (engines all retired, or topology absent) is
    /// moot; the last-engine refusal in [`Cluster::fault_crash`] still
    /// applies per member, so a rack holding the whole fleet loses all
    /// but one engine.
    fn fault_domain_crash(
        &mut self,
        rack: u32,
        t: SimTime,
        last: &mut SimTime,
        processed: &mut u64,
    ) {
        let members: Vec<u32> = self
            .slots
            .iter()
            .filter(|s| self.rack_of(s.id) == Some(rack))
            .map(|s| s.id.0)
            .collect();
        if members.is_empty() {
            return;
        }
        self.stats.fault.domains_failed += 1;
        if let Some(tracer) = self.tracer.as_mut() {
            tracer.push(
                t,
                Lane::Coordinator,
                TraceEvent::DomainFailed {
                    rack,
                    engines: members.len() as u32,
                },
            );
        }
        for engine in members {
            self.fault_crash(engine, t, last, processed);
        }
    }

    /// Applies a brownout slowdown to every engine of `rack` (`1.0`
    /// heals it).
    fn set_domain_slowdown(&mut self, rack: u32, factor: f64) {
        let members: Vec<u32> = self
            .slots
            .iter()
            .filter(|s| self.rack_of(s.id) == Some(rack))
            .map(|s| s.id.0)
            .collect();
        for engine in members {
            self.set_slot_slowdown(engine, factor);
        }
    }

    /// Cuts `rack` off from the coordinator until `heal`: its engines
    /// leave the routing candidate set (traffic routes around the
    /// domain), and their in-flight work — which the coordinator must
    /// presume lost — is evacuated into the retry ledger, due at the
    /// heal or the detection timeout, whichever lands first. The engines
    /// themselves stay up and rejoin at [`Cluster::partition_end`]. A
    /// partition that would leave the coordinator with no reachable
    /// engine is refused, as is one for a memberless or already-cut rack.
    fn partition_start(&mut self, rack: u32, heal: SimTime, t: SimTime) {
        let members: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| self.rack_of(s.id) == Some(rack))
            .map(|(pos, _)| pos)
            .collect();
        if members.is_empty() {
            return;
        }
        let remaining = self
            .slots
            .iter()
            .filter(|s| {
                !s.draining && !self.slot_unreachable(s.id) && self.rack_of(s.id) != Some(rack)
            })
            .count();
        if remaining == 0 {
            return;
        }
        {
            let fs = self.fault.as_mut().expect("partition without fault plane");
            if !fs.partitioned.insert(rack) {
                return;
            }
        }
        self.stats.fault.partitions += 1;
        self.snap_filled_at = None;
        let mut victims: Vec<Request> = Vec::new();
        for &pos in &members {
            victims.extend(self.slots[pos].engine.evacuate_unfinished(t));
        }
        self.enqueue_victims(victims, t, Some(heal));
    }

    /// Heals the partition on `rack`: its engines rejoin the candidate
    /// set at the next snapshot fill, and the victims whose retry clamp
    /// was this heal re-dispatch at this same barrier (actions run
    /// before due retries).
    fn partition_end(&mut self, rack: u32, t: SimTime) {
        let healed = self
            .fault
            .as_mut()
            .expect("partition without fault plane")
            .partitioned
            .remove(&rack);
        if !healed {
            return;
        }
        self.snap_filled_at = None;
        if let Some(tracer) = self.tracer.as_mut() {
            tracer.push(t, Lane::Coordinator, TraceEvent::PartitionHealed { rack });
        }
    }

    /// Sets the straggler slowdown on one engine (moot when it left).
    fn set_slot_slowdown(&mut self, engine: u32, factor: f64) {
        if let Some(slot) = self.slots.iter_mut().find(|s| s.id.0 == engine) {
            slot.engine.set_slowdown(factor);
        }
    }

    /// Crash-time shard recovery: the dead engine's homed adapters are
    /// warm-loaded onto their post-crash rendezvous homes among the
    /// survivors — [`Cluster::handoff_shard`]'s placement, re-counted
    /// into the fault ledger because here the copies race the backlog's
    /// re-dispatch instead of a graceful drain.
    fn recover_shard(&mut self, victim: EngineId, now: SimTime) {
        let survivors = self.active_weights();
        if survivors.is_empty() {
            return;
        }
        let vpos = self
            .slots
            .iter()
            .position(|s| s.id == victim)
            .expect("crashed engine is present");
        let mut before = survivors.clone();
        before.push((victim, self.slots[vpos].engine.capacity_weight()));
        let mut shard: Vec<AdapterId> = self.slots[vpos]
            .engine
            .resident_adapters()
            .into_iter()
            .collect();
        shard.sort_unstable();
        let mut moved = 0u64;
        let mut bytes_total = 0u64;
        for a in shard {
            let home_before = before[policies::rendezvous_home(a, before.iter().copied())].0;
            if home_before != victim {
                continue;
            }
            let new_home = survivors[policies::rendezvous_home(a, survivors.iter().copied())].0;
            let pos = self
                .slots
                .iter()
                .position(|s| s.id == new_home)
                .expect("survivor is present");
            let slot = &mut self.slots[pos];
            if let Some(bytes) = slot.engine.warm_load(a, now, &mut slot.out) {
                for (at, e) in slot.out.drain(..) {
                    slot.queue.push(at, e);
                }
                moved += 1;
                bytes_total += bytes;
            }
        }
        if moved > 0 {
            self.stats.fault.shard_adapters_recovered += moved;
            self.stats.fault.shard_bytes_recovered += bytes_total;
            if let Some(tracer) = self.tracer.as_mut() {
                tracer.push(
                    now,
                    Lane::Coordinator,
                    TraceEvent::ShardRecovered {
                        from: victim.0,
                        adapters: moved as u32,
                        bytes: bytes_total,
                    },
                );
            }
        }
    }

    /// Re-dispatches one recovered request through the router, exactly
    /// like a fresh arrival (snapshots, routing stats, engine handoff) —
    /// except it bypasses the shedding gate (the system already owes this
    /// request) and does not feed the forecaster (its adapter's arrival
    /// was observed once, at the original dispatch).
    ///
    /// Under batched dispatch the caller ([`Cluster::fault_barrier`])
    /// prepares the snapshot generation — reusing the arrival batch's
    /// when the barrier lands at the same instant — and this routes from
    /// the cache, echoing its placement like any other batch member.
    fn dispatch_retry(&mut self, t: SimTime, entry: RetryEntry, last: &mut SimTime) {
        if self.dispatch.is_none() {
            self.fill_snapshots();
        }
        let decision = self.router.route(&entry.req, &self.snap_buf);
        assert!(
            decision.engine < self.snap_buf.len(),
            "router out of bounds"
        );
        let pos = self.snap_slots[decision.engine];
        let chosen = self.slots[pos].id;
        let affinity_hit = self.slots[pos]
            .engine
            .is_adapter_resident(entry.req.adapter());
        self.stats.record(chosen, affinity_hit, decision.spilled);
        self.stats.fault.retries += 1;
        if let Some(fs) = self.fault.as_mut() {
            // Close the victim's MTTR episode leg: re-dispatched.
            if let Some(ep) = fs.victim_episode.remove(&entry.req.id().0) {
                let e = &mut fs.episodes[ep];
                e.outstanding = e.outstanding.saturating_sub(1);
                e.redispatch_last = Some(e.redispatch_last.map_or(t, |p| p.max(t)));
            }
        }
        if self.dispatch.is_some() {
            let snap = &mut self.snap_buf[decision.engine];
            snap.queue_depth += 1;
            snap.outstanding_tokens +=
                u64::from(entry.req.input_tokens()) + u64::from(entry.req.output_tokens());
        }
        if let Some(tracer) = self.tracer.as_mut() {
            tracer.push(
                t,
                Lane::Coordinator,
                TraceEvent::RequestRetried {
                    req: entry.req.id().0,
                    attempt: entry.attempt,
                    target: chosen.0,
                },
            );
        }
        let slot = &mut self.slots[pos];
        slot.engine
            .handle(t, EngineEvent::Arrival(entry.req), &mut slot.out);
        for (at, e) in slot.out.drain(..) {
            slot.queue.push(at, e);
        }
        *last = (*last).max(t);
    }

    /// Runs `trace` through the (fixed) cluster until drained, serially.
    /// Returns the instant of the last processed event.
    pub fn run(&mut self, trace: &Trace) -> SimTime {
        self.run_with(trace, ClusterExecution::Serial)
    }

    /// [`Cluster::run`] with an explicit [`ClusterExecution`] mode.
    /// Parallel runs are bit-identical to serial for every worker count.
    pub fn run_with(&mut self, trace: &Trace, exec: ClusterExecution) -> SimTime {
        self.dispatch_run(trace, None, exec)
    }

    /// Runs `trace` with `autoscaler` evaluating the fleet every
    /// [`AutoscalerConfig::interval`](crate::autoscaler::AutoscalerConfig)
    /// and `grow` building each engine the fleet scales up by (called
    /// with the newcomer's id). Scale-downs drain gracefully — only the
    /// departing engine's adapter shard re-homes.
    pub fn run_elastic(
        &mut self,
        trace: &Trace,
        autoscaler: &mut Autoscaler,
        grow: &mut dyn FnMut(EngineId) -> Engine,
    ) -> SimTime {
        self.run_elastic_with(trace, autoscaler, grow, ClusterExecution::Serial)
    }

    /// [`Cluster::run_elastic`] with an explicit [`ClusterExecution`]
    /// mode; fleet changes happen at barriers, so elastic parallel runs
    /// are bit-identical to serial too.
    pub fn run_elastic_with(
        &mut self,
        trace: &Trace,
        autoscaler: &mut Autoscaler,
        grow: &mut dyn FnMut(EngineId) -> Engine,
        exec: ClusterExecution,
    ) -> SimTime {
        self.dispatch_run(trace, Some((autoscaler, grow)), exec)
    }

    /// Resolves the execution mode and enters the epoch loop, with a
    /// shard pool wrapped around it when the run is parallel.
    fn dispatch_run(
        &mut self,
        trace: &Trace,
        scale: Option<(&mut Autoscaler, &mut dyn FnMut(EngineId) -> Engine)>,
        exec: ClusterExecution,
    ) -> SimTime {
        let workers = exec.worker_count().max(1);
        let t0 = self.profile.is_some().then(Instant::now);
        let horizon = match workers {
            1 => self.run_loop(trace, scale, None),
            workers => {
                let profiling = self.profile.is_some();
                shard::with_shard_pool(
                    workers,
                    |cmd: &EpochCmd, slot: &mut EngineSlot| slot.step_to(cmd),
                    |pool| {
                        if profiling {
                            pool.enable_profiling();
                        }
                        let horizon = self.run_loop(trace, scale, Some(pool));
                        if let Some(p) = self.profile.as_mut() {
                            p.worker_busy_ns += pool.busy_ns();
                        }
                        horizon
                    },
                )
            }
        };
        if let (Some(p), Some(t0)) = (self.profile.as_mut(), t0) {
            p.run_wall_ns += t0.elapsed().as_nanos() as u64;
            if workers > 1 {
                p.workers = p.workers.max(workers);
            }
        }
        horizon
    }

    /// The epoch loop shared by serial and parallel execution: partition
    /// the event horizon at the next cross-engine event (arrival or
    /// autoscaler tick), step every engine's local queue to that
    /// boundary ([`Cluster::run_epoch`]), then apply the routing or
    /// scaling decision at the barrier with exclusive access to the
    /// whole fleet.
    ///
    /// Simultaneous events follow a fixed precedence both modes share:
    /// arrivals (in trace order), then the autoscaler tick, then
    /// engine-local events (in per-engine schedule order) — the same
    /// order the pre-epoch single-heap loop produced for arrivals, and a
    /// pinned choice for the (previously push-order-dependent)
    /// tick-vs-scale tie.
    fn run_loop(
        &mut self,
        trace: &Trace,
        mut scale: Option<(&mut Autoscaler, &mut dyn FnMut(EngineId) -> Engine)>,
        pool: Option<&ShardPool<'_, EngineSlot, EpochCmd>>,
    ) -> SimTime {
        // Arrivals in dispatch order: by time, ties by trace position
        // (the old heap's FIFO tie-break for the up-front pushes).
        // Traces are normally already sorted, making this a cheap
        // verification pass.
        let reqs = trace.requests();
        let mut order: Vec<u32> = (0..reqs.len() as u32).collect();
        order.sort_by_key(|&i| reqs[i as usize].arrival());
        let mem_int = self.mem_int;
        let refresh_int = self.refresh_int;
        for slot in &mut self.slots {
            slot.begin_run(mem_int, refresh_int);
        }
        let mut next_scale = scale
            .as_ref()
            .map(|(autoscaler, _)| SimTime::ZERO + autoscaler.config().interval);
        let mut next_arr = 0usize;
        // `last` (the reported horizon) advances on arrivals and
        // live-engine events only, so a trailing controller tick cannot
        // inflate it; stale events of retired engines count toward
        // neither `last` nor the processed total.
        let mut last = SimTime::ZERO;
        let mut processed: u64 = 0;
        // Amortised dispatch: the effective `(batch size, age)` budget —
        // the router's declared staleness class tightened by the spec.
        // `None` runs the legacy one-barrier-per-arrival path untouched.
        let budget: Option<(u32, SimDuration)> = self.dispatch.map(|spec| {
            let (declared_batch, declared_age) = match self.router.staleness() {
                StalenessClass::StateIndependent => (u32::MAX, SimDuration::MAX),
                StalenessClass::BoundedStaleness { max_batch, max_age } => (max_batch, max_age),
            };
            spec.effective(declared_batch, declared_age)
        });
        // Last arrival instant of the batch routed at the previous
        // barrier, handed to the next epoch so its deliveries keep
        // periodic ticks alive exactly as undispatched arrivals would.
        let mut batch_until: Option<SimTime> = None;
        loop {
            let arr_t = order.get(next_arr).map(|&i| reqs[i as usize].arrival());
            let fault_t = self.next_fault_time();
            // The next cross-engine event. Equal-time ties resolve by the
            // fixed [`CrossEvent`] class precedence (arrivals, then the
            // autoscaler tick, then fault barriers); the loop below keeps
            // an earlier-listed class on a time tie.
            let mut cross: Option<(SimTime, CrossEvent)> = None;
            for (cand, kind) in [
                (arr_t, CrossEvent::Arrival),
                (next_scale, CrossEvent::Scale),
                (fault_t, CrossEvent::Fault),
            ] {
                if let Some(cand) = cand {
                    if cross.is_none_or(|(best, _)| cand < best) {
                        cross = Some((cand, kind));
                    }
                }
            }
            // Pending re-dispatches count as future dispatches: they keep
            // periodic ticks alive on the idle engines about to inherit
            // the recovered work.
            let dispatches_remaining =
                arr_t.is_some() || self.fault.as_ref().is_some_and(|fs| !fs.retries.is_empty());
            self.run_epoch(
                cross.map(|(t, _)| t),
                dispatches_remaining,
                batch_until.take(),
                pool,
            );
            self.harvest_retired(&mut last, &mut processed);
            let Some((t, kind)) = cross else {
                break; // final epoch drained every local queue
            };
            if kind == CrossEvent::Fault {
                processed += 1;
                self.fault_barrier(t, &mut last, &mut processed, &mut scale);
            } else if kind == CrossEvent::Arrival && budget.is_some() {
                // Amortised dispatch: open one snapshot generation at
                // this barrier and route every coalescible arrival from
                // it — the run of consecutive arrivals up to the next
                // non-coalescible cross event (autoscaler tick or fault
                // barrier; inclusive, since the arrival class wins an
                // equal-time tie) and within the staleness budget's size
                // and age caps. Routed placements land in per-engine
                // queues and are handled *inside* the next epoch at
                // their own arrival instants; sheds stay coordinator
                // events. Delivered members count into `processed` at
                // delivery (`EngineSlot::step_to`), sheds here — the
                // same totals per-arrival dispatch produces.
                let (max_batch, max_age) = budget.expect("budget checked");
                let limit = match (next_scale, fault_t) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                self.refresh_snapshots(t);
                let generation = self.snap_gen;
                let mut size: u32 = 0;
                let mut batch_end = t;
                while let Some(&idx) = order.get(next_arr) {
                    let req = reqs[idx as usize];
                    let ta = req.arrival();
                    if size > 0
                        && (limit.is_some_and(|l| ta > l)
                            || size >= max_batch
                            || ta.saturating_since(t) > max_age)
                    {
                        break;
                    }
                    next_arr += 1;
                    size += 1;
                    batch_end = ta;
                    last = last.max(ta);
                    if self.predictive.is_some() {
                        self.forecaster.observe(req.adapter(), ta);
                    }
                    // The shedding gate prices against the generation's
                    // frozen TTFT estimates (echoes bump queue depth and
                    // outstanding tokens, not the estimate), so a
                    // brownout verdict holds for the whole batch.
                    if let Some(fs) = self.fault.as_ref() {
                        if fs.spec.sheds() {
                            if let Some(slo) = fs.slo {
                                let min_est = self
                                    .snap_buf
                                    .iter()
                                    .map(|s| s.est_ttft_secs)
                                    .fold(f64::INFINITY, f64::min);
                                if min_est > fs.spec.shed_multiple * slo.as_secs_f64() {
                                    let idle =
                                        self.snap_buf
                                            .iter()
                                            .filter(|s| s.queue_depth == 0 && s.running == 0)
                                            .count() as u32;
                                    self.stats.fault.requests_shed += 1;
                                    self.stats.fault.shed_times.push(ta);
                                    processed += 1;
                                    if let Some(tracer) = self.tracer.as_mut() {
                                        tracer.push(
                                            ta,
                                            Lane::Coordinator,
                                            TraceEvent::RequestShed {
                                                req: req.id().0,
                                                est_ttft: SimDuration::from_secs_f64(min_est),
                                                idle_engines: idle,
                                            },
                                        );
                                    }
                                    continue;
                                }
                            }
                        }
                    }
                    let decision = self.router.route(&req, &self.snap_buf);
                    assert!(
                        decision.engine < self.snap_buf.len(),
                        "router out of bounds"
                    );
                    let pos = self.snap_slots[decision.engine];
                    let chosen = self.slots[pos].id;
                    // Residency as of the generation barrier. The stats
                    // affinity-hit counter is measured at delivery time
                    // inside the slot (`EngineSlot::arrival_hits`) —
                    // the same measurement point per-arrival dispatch
                    // uses — so the generation view here drives only
                    // prewarm accounting and the trace.
                    let resident = self.slots[pos].engine.is_adapter_resident(req.adapter());
                    self.stats.record(chosen, false, decision.spilled);
                    let mut prewarm_hit = false;
                    if resident && self.outstanding_warms.get(&req.adapter()) == Some(&chosen) {
                        self.outstanding_warms.remove(&req.adapter());
                        self.stats.predictive.on_prewarm_hit();
                        prewarm_hit = true;
                    }
                    if let Some(tracer) = self.tracer.as_mut() {
                        let candidates: Vec<(u32, u64)> = self
                            .snap_buf
                            .iter()
                            .map(|s| (s.id.0, s.outstanding_tokens))
                            .collect();
                        tracer.push(
                            ta,
                            Lane::Coordinator,
                            TraceEvent::RouteDecision {
                                req: req.id().0,
                                adapter: req.adapter().0,
                                chosen: chosen.0,
                                spilled: decision.spilled,
                                affinity_hit: resident,
                                candidates,
                            },
                        );
                        if prewarm_hit {
                            tracer.push(
                                ta,
                                Lane::Coordinator,
                                TraceEvent::PrewarmHit {
                                    adapter: req.adapter().0,
                                    engine: chosen.0,
                                },
                            );
                        }
                    }
                    // Echo the placement into the cached generation so
                    // later batch members observe it — what keeps the
                    // bounded-staleness queue-depth error within the
                    // batch budget.
                    let snap = &mut self.snap_buf[decision.engine];
                    snap.queue_depth += 1;
                    snap.outstanding_tokens +=
                        u64::from(req.input_tokens()) + u64::from(req.output_tokens());
                    self.slots[pos].arrivals.push_back((ta, req));
                }
                self.stats.dispatch.on_batch(u64::from(size));
                if let Some(tracer) = self.tracer.as_mut() {
                    tracer.push(
                        t,
                        Lane::Coordinator,
                        TraceEvent::DispatchBatch {
                            generation,
                            size,
                            span: batch_end.saturating_since(t),
                        },
                    );
                }
                self.pre_replicate(t);
                batch_until = Some(batch_end);
            } else if kind == CrossEvent::Arrival {
                processed += 1;
                let req = reqs[order[next_arr] as usize];
                next_arr += 1;
                last = last.max(t);
                // Control plane: arrival history is observed here, at the
                // dispatch barrier, on the coordinator — never on worker
                // threads — so predictions are identical in both modes.
                if self.predictive.is_some() {
                    self.forecaster.observe(req.adapter(), t);
                }
                // Global scheduler: delegate placement to the router.
                self.fill_snapshots();
                // SLO-aware load shedding: when even the least-loaded
                // engine's estimated TTFT is past `shed_multiple` × SLO,
                // admitting this request would both miss its own SLO and
                // deepen everyone else's backlog — refuse it at the door
                // and count it, rather than time it out silently.
                if let Some(fs) = self.fault.as_ref() {
                    if fs.spec.sheds() {
                        if let Some(slo) = fs.slo {
                            let min_est = self
                                .snap_buf
                                .iter()
                                .map(|s| s.est_ttft_secs)
                                .fold(f64::INFINITY, f64::min);
                            if min_est > fs.spec.shed_multiple * slo.as_secs_f64() {
                                let idle = self
                                    .snap_buf
                                    .iter()
                                    .filter(|s| s.queue_depth == 0 && s.running == 0)
                                    .count() as u32;
                                self.stats.fault.requests_shed += 1;
                                self.stats.fault.shed_times.push(t);
                                if let Some(tracer) = self.tracer.as_mut() {
                                    tracer.push(
                                        t,
                                        Lane::Coordinator,
                                        TraceEvent::RequestShed {
                                            req: req.id().0,
                                            est_ttft: SimDuration::from_secs_f64(min_est),
                                            idle_engines: idle,
                                        },
                                    );
                                }
                                continue;
                            }
                        }
                    }
                }
                let decision = self.router.route(&req, &self.snap_buf);
                assert!(
                    decision.engine < self.snap_buf.len(),
                    "router out of bounds"
                );
                let pos = self.snap_slots[decision.engine];
                let chosen = self.slots[pos].id;
                let affinity_hit = self.slots[pos].engine.is_adapter_resident(req.adapter());
                self.stats.record(chosen, affinity_hit, decision.spilled);
                let mut prewarm_hit = false;
                if affinity_hit && self.outstanding_warms.get(&req.adapter()) == Some(&chosen) {
                    // The dispatch landed on an engine holding a
                    // pre-replicated copy: the warm paid for itself.
                    self.outstanding_warms.remove(&req.adapter());
                    self.stats.predictive.on_prewarm_hit();
                    prewarm_hit = true;
                }
                if let Some(tracer) = self.tracer.as_mut() {
                    let candidates: Vec<(u32, u64)> = self
                        .snap_buf
                        .iter()
                        .map(|s| (s.id.0, s.outstanding_tokens))
                        .collect();
                    tracer.push(
                        t,
                        Lane::Coordinator,
                        TraceEvent::RouteDecision {
                            req: req.id().0,
                            adapter: req.adapter().0,
                            chosen: chosen.0,
                            spilled: decision.spilled,
                            affinity_hit,
                            candidates,
                        },
                    );
                    if prewarm_hit {
                        tracer.push(
                            t,
                            Lane::Coordinator,
                            TraceEvent::PrewarmHit {
                                adapter: req.adapter().0,
                                engine: chosen.0,
                            },
                        );
                    }
                }
                let slot = &mut self.slots[pos];
                slot.engine
                    .handle(t, EngineEvent::Arrival(req), &mut slot.out);
                for (at, e) in slot.out.drain(..) {
                    slot.queue.push(at, e);
                }
                self.pre_replicate(t);
            } else {
                processed += 1;
                let (autoscaler, grow) = scale.as_mut().expect("scale event without scaler");
                self.fill_snapshots();
                let signal = self.forecast_signal(t, autoscaler.config().interval);
                let draining = self.slots.len() - self.snap_buf.len();
                let action = autoscaler.decide_with(t, &self.snap_buf, draining, &signal);
                let trigger = match autoscaler.last_trigger() {
                    Some(ScaleTrigger::SloEstimate) => "slo-estimate",
                    Some(ScaleTrigger::Forecast) => "forecast",
                    _ => "queue-depth",
                };
                match action {
                    ScaleAction::Hold => {}
                    ScaleAction::ScaleUp => {
                        // Provisioning faults: a scale-up can fail outright
                        // (the controller simply retries on a later tick)
                        // or be slowed by an injected delay, in which case
                        // the engine joins at the fault barrier where its
                        // provision completes.
                        let mut skip_add = false;
                        if let Some(fs) = self.fault.as_mut() {
                            if fs.spec.provision_fail_prob > 0.0 {
                                let roll = fault_roll(
                                    fs.spec.seed,
                                    PROVISION_STREAM,
                                    fs.provision_counter,
                                );
                                fs.provision_counter += 1;
                                if roll < fs.spec.provision_fail_prob {
                                    self.stats.fault.provision_failures += 1;
                                    skip_add = true;
                                }
                            }
                            if !skip_add && !fs.spec.provision_delay.is_zero() {
                                fs.pending_provisions.push(t + fs.spec.provision_delay);
                                self.stats.fault.provision_delays += 1;
                                skip_add = true;
                            }
                        }
                        if skip_add {
                            let work_left = next_arr < order.len()
                                || self.slots.iter().any(|s| s.engine.has_work());
                            next_scale = work_left.then(|| t + autoscaler.config().interval);
                            continue;
                        }
                        // The factory sees the id the newcomer will be
                        // registered under (per-engine RNG streams and
                        // growth specs key off it).
                        let id = self.next_engine_id();
                        let engine = grow(id);
                        let assigned = self.add_engine(engine);
                        assert_eq!(assigned, id, "engine id minted twice");
                        // The newcomer joins the shared tick schedule.
                        let slot = self.slots.last_mut().expect("engine just added");
                        slot.queue.push(t + mem_int, EngineEvent::MemSample);
                        slot.queue.push(t + refresh_int, EngineEvent::Refresh);
                        if self.predictive.is_some() {
                            match autoscaler.last_trigger() {
                                Some(ScaleTrigger::SloEstimate) => {
                                    self.stats.predictive.slo_scaleups += 1;
                                }
                                Some(ScaleTrigger::Forecast) => {
                                    self.stats.predictive.forecast_scaleups += 1;
                                }
                                _ => {}
                            }
                        }
                        if let Some(tracer) = self.tracer.as_mut() {
                            tracer.push(
                                t,
                                Lane::Coordinator,
                                TraceEvent::AutoscaleTrigger {
                                    action: AutoscaleAction::ScaleUp,
                                    trigger,
                                },
                            );
                        }
                    }
                    ScaleAction::Drain(victim) => {
                        if self.drain_engine(victim) {
                            if let Some(tracer) = self.tracer.as_mut() {
                                tracer.push(
                                    t,
                                    Lane::Coordinator,
                                    TraceEvent::AutoscaleTrigger {
                                        action: AutoscaleAction::Drain(victim.0),
                                        trigger,
                                    },
                                );
                                tracer.push(
                                    t,
                                    Lane::Coordinator,
                                    TraceEvent::DrainStarted { engine: victim.0 },
                                );
                            }
                            if self.predictive.is_some_and(|s| s.handoff) {
                                self.handoff_shard(victim, t);
                            }
                            let pos = self
                                .slots
                                .iter()
                                .position(|s| s.id == victim)
                                .expect("drained engine is present");
                            if !self.slots[pos].engine.has_work() {
                                self.retire_slot(pos, &mut last, &mut processed);
                            }
                        }
                    }
                }
                let work_left =
                    next_arr < order.len() || self.slots.iter().any(|s| s.engine.has_work());
                next_scale = work_left.then(|| t + autoscaler.config().interval);
            }
        }
        // Fold the run counters of the engines still in the fleet
        // (retired engines folded at retirement).
        for slot in &mut self.slots {
            processed += slot.processed;
            last = last.max(slot.last);
            self.stats.affinity_hits += slot.arrival_hits;
            slot.arrival_hits = 0;
        }
        self.events_processed += processed;
        last
    }

    /// Total completed requests across live and retired engines.
    pub fn completed(&self) -> u64 {
        let live: u64 = self.slots.iter().map(|s| s.engine.completed()).sum();
        let retired: u64 = self.retired.iter().map(|(_, r)| r.completed() as u64).sum();
        live + retired
    }

    /// Finalises into one merged report carrying the routing statistics
    /// (retired engines included). Reports are merged in stable-id order
    /// regardless of when each engine retired, so the result is
    /// independent of retirement timing — and therefore identical
    /// between serial and parallel execution by construction.
    pub fn into_report(self) -> EngineReport {
        self.into_report_with_trace().0
    }

    /// [`Cluster::into_report`] plus the telemetry the run accumulated:
    /// the merged deterministic trace log (when tracing was enabled) and
    /// the wall-clock barrier profile (when profiling was enabled).
    /// Live engines' buffered events are drained into their lanes before
    /// the log is sealed, so late-run decisions are never lost.
    pub fn into_report_with_trace(
        mut self,
    ) -> (EngineReport, Option<TraceLog>, Option<BarrierProfile>) {
        if let Some(tracer) = self.tracer.as_mut() {
            for slot in &mut self.slots {
                tracer.extend_lane(Lane::Engine(slot.id.0), slot.engine.take_trace_events());
            }
        }
        let log = self.tracer.take().map(TraceBuffer::finish);
        let profile = self.profile.take();
        let fault = self.fault.take();
        let mut stats = self.stats;
        stats.fault.pcie_retries += self
            .slots
            .iter()
            .map(|s| s.engine.pcie_fault_retries())
            .sum::<u64>();
        stats.predictive.finalize();
        let mut tagged = self.retired;
        tagged.extend(
            self.slots
                .into_iter()
                .map(|s| (s.id, s.engine.into_report())),
        );
        tagged.sort_by_key(|&(id, _)| id.0);
        let mut reports = tagged.into_iter().map(|(_, r)| r);
        let mut merged = reports.next().expect("non-empty cluster");
        for r in reports {
            merged.merge(r);
        }
        // Settle the MTTR ledger. Redispatch legs closed during the run;
        // completion legs need the merged records, where every victim's
        // finish instant lives regardless of which engine it landed on.
        if let Some(fs) = fault {
            let redis: Vec<f64> = fs
                .episodes
                .iter()
                .filter(|e| e.outstanding == 0)
                .filter_map(|e| {
                    e.redispatch_last
                        .map(|r| r.saturating_since(e.at).as_secs_f64())
                })
                .collect();
            if !redis.is_empty() {
                stats.fault.mttr_redispatch = redis.iter().sum::<f64>() / redis.len() as f64;
            }
            if !fs.episodes.is_empty() {
                let finished: HashMap<u64, SimTime> = merged
                    .records
                    .iter()
                    .filter_map(|r| r.finished.map(|f| (r.id.0, f)))
                    .collect();
                let spans: Vec<f64> = fs
                    .episodes
                    .iter()
                    .filter_map(|e| {
                        e.victims
                            .iter()
                            .filter_map(|v| finished.get(v).copied())
                            .max()
                            .map(|f| f.saturating_since(e.at).as_secs_f64())
                    })
                    .collect();
                if !spans.is_empty() {
                    stats.fault.mttr_complete = spans.iter().sum::<f64>() / spans.len() as f64;
                }
            }
        }
        merged.routing = stats;
        (merged, log, profile)
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("engines", &self.slots.len())
            .field("active", &self.active_engines())
            .field("retired", &self.retired.len())
            .field("router", &self.router.name())
            .field("dispatched", &self.stats.per_engine)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autoscaler::AutoscalerConfig;
    use crate::config::EngineConfig;
    use chameleon_cache::{AdapterCache, EvictionPolicy};
    use chameleon_models::{AdapterPool, GpuSpec, LlmSpec, PoolConfig};
    use chameleon_predictor::OraclePredictor;
    use chameleon_router::{AdapterAffinity, RouterPolicy};
    use chameleon_sched::{FifoScheduler, WrsConfig};
    use chameleon_simcore::SimRng;
    use chameleon_workload::{ArrivalModel, LengthModel, TraceGenerator};

    fn cluster_and_trace(n_engines: usize, n_reqs: usize) -> (Cluster, Trace) {
        let (factory, trace) = factory_and_trace(n_reqs);
        (Cluster::new(n_engines, factory), trace)
    }

    fn factory_and_trace(n_reqs: usize) -> (impl FnMut(usize) -> Engine, Trace) {
        factory_and_trace_at(20.0, n_reqs)
    }

    fn factory_and_trace_at(rps: f64, n_reqs: usize) -> (impl FnMut(usize) -> Engine, Trace) {
        let llm = LlmSpec::llama_7b();
        let pool = AdapterPool::generate(&llm, &PoolConfig::paper_default(10));
        let gen = TraceGenerator::new(
            LengthModel::Custom {
                input: chameleon_workload::generator::TokenLengthModel {
                    median: 64.0,
                    sigma: 0.5,
                    min: 8,
                    max: 256,
                },
                output: chameleon_workload::generator::TokenLengthModel {
                    median: 8.0,
                    sigma: 0.5,
                    min: 2,
                    max: 32,
                },
            },
            ArrivalModel::poisson(rps),
        );
        let mut rng = SimRng::seed(7);
        let trace = gen.generate_n(&pool, n_reqs, &mut rng);
        let factory = move |_| {
            Engine::new(
                EngineConfig::new(LlmSpec::llama_7b(), GpuSpec::a40()),
                pool.clone(),
                Box::new(FifoScheduler::new()),
                Box::new(OraclePredictor::new()),
                AdapterCache::new(EvictionPolicy::chameleon()),
                WrsConfig::paper(2048.0, 1024.0, (256 << 20) as f64),
            )
        };
        (factory, trace)
    }

    #[test]
    fn completes_everything_and_balances() {
        let (mut c, trace) = cluster_and_trace(3, 60);
        c.run(&trace);
        assert_eq!(c.completed(), 60);
        // JSQ keeps dispatch counts reasonably balanced.
        let counts = c.dispatch_counts().to_vec();
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min.max(1.0) < 4.0, "imbalanced: {counts:?}");
        let report = c.into_report();
        assert_eq!(report.records.len(), 60);
        assert!(report.records.iter().all(|r| r.is_complete()));
    }

    #[test]
    fn more_engines_cut_latency_under_load() {
        let (mut one, trace) = cluster_and_trace(1, 80);
        let (mut four, _) = cluster_and_trace(4, 0);
        one.run(&trace);
        four.run(&trace);
        let p99 = |rep: &EngineReport| {
            let mut v: Vec<f64> = rep
                .records
                .iter()
                .filter_map(|r| r.ttft())
                .map(|d| d.as_secs_f64())
                .collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let i = ((v.len() as f64 * 0.99) as usize).min(v.len() - 1);
            v[i]
        };
        let r1 = one.into_report();
        let r4 = four.into_report();
        assert_eq!(r4.records.len(), 80);
        assert!(
            p99(&r4) <= p99(&r1),
            "4 engines should not be slower than 1"
        );
    }

    /// The extracted JoinShortestQueue policy reproduces the seed
    /// dispatcher byte for byte: `Cluster::new` (which delegates to the
    /// router) and a hand-rolled min-outstanding-tokens dispatch make
    /// identical choices, so the refactor is behaviour-preserving.
    #[test]
    fn default_router_preserves_jsq_dispatch_behaviour() {
        let (factory, trace) = factory_and_trace(120);
        let mut via_router = Cluster::new(3, factory);
        via_router.run(&trace);

        // Reference run: the pre-refactor inlined global scheduler.
        let (factory, _) = factory_and_trace(0);
        let mut reference = ReferenceJsqCluster::new(3, factory);
        reference.run(&trace);

        assert_eq!(via_router.dispatch_counts(), &reference.dispatched[..]);
        assert_eq!(via_router.completed(), reference.completed());
        let a = via_router.into_report();
        let b = reference.into_report();
        let key = |rep: &EngineReport| {
            rep.records
                .iter()
                .map(|r| (r.id, r.first_token, r.finished))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&a), key(&b), "per-request timings diverged");
    }

    /// Verbatim re-implementation of the pre-refactor cluster dispatch
    /// loop (global scheduler inlined as `min_by_key(outstanding_tokens)`),
    /// kept as the behaviour-preservation oracle.
    struct ReferenceJsqCluster {
        engines: Vec<Engine>,
        dispatched: Vec<u64>,
    }

    impl ReferenceJsqCluster {
        fn new<F: FnMut(usize) -> Engine>(n: usize, mut factory: F) -> Self {
            ReferenceJsqCluster {
                engines: (0..n).map(&mut factory).collect(),
                dispatched: vec![0; n],
            }
        }

        fn completed(&self) -> u64 {
            self.engines.iter().map(|e| e.completed()).sum()
        }

        fn into_report(self) -> EngineReport {
            let mut reports = self.engines.into_iter().map(Engine::into_report);
            let mut merged = reports.next().expect("non-empty cluster");
            for r in reports {
                merged.merge(r);
            }
            merged
        }

        fn run(&mut self, trace: &Trace) -> SimTime {
            enum Ev {
                Arrival(chameleon_workload::Request),
                Engine(usize, EngineEvent),
            }
            let mut q: EventQueue<Ev> = EventQueue::with_capacity(trace.len() * 4);
            let mut arrivals_left = trace.len();
            for r in trace {
                q.push(r.arrival(), Ev::Arrival(*r));
            }
            let mem_int = self.engines[0].config().mem_sample_interval;
            let refresh_int = self.engines[0].config().refresh_interval;
            for i in 0..self.engines.len() {
                q.push(
                    SimTime::ZERO + mem_int,
                    Ev::Engine(i, EngineEvent::MemSample),
                );
                q.push(
                    SimTime::ZERO + refresh_int,
                    Ev::Engine(i, EngineEvent::Refresh),
                );
            }
            let mut out = Vec::new();
            let mut last = SimTime::ZERO;
            while let Some((t, ev)) = q.pop() {
                last = t;
                match ev {
                    Ev::Arrival(req) => {
                        arrivals_left -= 1;
                        let target = (0..self.engines.len())
                            .min_by_key(|&i| self.engines[i].outstanding_tokens())
                            .expect("non-empty cluster");
                        self.dispatched[target] += 1;
                        self.engines[target].handle(t, EngineEvent::Arrival(req), &mut out);
                        for (at, e) in out.drain(..) {
                            q.push(at, Ev::Engine(target, e));
                        }
                    }
                    Ev::Engine(i, ev) => {
                        let reschedule = match &ev {
                            EngineEvent::MemSample => Some((t + mem_int, EngineEvent::MemSample)),
                            EngineEvent::Refresh => Some((t + refresh_int, EngineEvent::Refresh)),
                            _ => None,
                        };
                        let periodic = reschedule.is_some();
                        self.engines[i].handle(t, ev, &mut out);
                        for (at, e) in out.drain(..) {
                            q.push(at, Ev::Engine(i, e));
                        }
                        if periodic && (arrivals_left > 0 || self.engines[i].has_work()) {
                            let (at, e) = reschedule.expect("periodic");
                            q.push(at, Ev::Engine(i, e));
                        }
                    }
                }
            }
            last
        }
    }

    #[test]
    fn every_policy_drains_the_cluster() {
        for policy in RouterPolicy::ALL {
            let (factory, trace) = factory_and_trace(50);
            let mut c = Cluster::with_router(3, factory, policy.build(11));
            c.run(&trace);
            assert_eq!(c.completed(), 50, "{} lost requests", policy.name());
            let stats = c.routing_stats().clone();
            assert_eq!(stats.dispatched, 50);
            assert_eq!(stats.per_engine.iter().sum::<u64>(), 50);
            assert_eq!(stats.policy, policy.name());
            let report = c.into_report();
            assert_eq!(report.routing, stats, "routing stats reach the report");
        }
    }

    #[test]
    fn round_robin_splits_exactly() {
        let (factory, trace) = factory_and_trace(60);
        let mut c = Cluster::with_router(3, factory, RouterPolicy::RoundRobin.build(0));
        c.run(&trace);
        assert_eq!(c.dispatch_counts(), &[20, 20, 20]);
        assert_eq!(c.routing_stats().load_imbalance(), 0.0);
    }

    #[test]
    fn drain_stops_dispatch_finishes_work_and_rehomes_one_shard() {
        let (mut factory, trace) = factory_and_trace(80);
        let probe = factory(0);
        let mut c = Cluster::with_router(4, factory, Box::new(AdapterAffinity::new()));

        // The departing shard, computed independently of the cluster's
        // accounting from the pure rendezvous function. Drain an engine
        // (other than 0, which must survive) that is home to something.
        let weights: Vec<(EngineId, f64)> = (0..4)
            .map(|i| (EngineId(i), probe.capacity_weight()))
            .collect();
        let shard_of = |victim: EngineId| -> Vec<AdapterId> {
            probe
                .pool()
                .iter()
                .map(|s| s.id())
                .filter(|&a| {
                    weights[policies::rendezvous_home(a, weights.iter().copied())].0 == victim
                })
                .collect()
        };
        let victim = (1..4)
            .map(EngineId)
            .find(|&v| !shard_of(v).is_empty())
            .expect("some engine past 0 holds a shard");
        let shard = shard_of(victim);
        let survivors: Vec<(EngineId, f64)> = weights
            .iter()
            .copied()
            .filter(|&(id, _)| id != victim)
            .collect();

        assert!(c.drain_engine(victim));
        assert!(!c.drain_engine(victim), "double drain is refused");
        assert_eq!(c.active_engines(), 3);
        assert_eq!(
            c.routing_stats().adapters_rehomed,
            shard.len() as u64,
            "drain must migrate exactly the departing shard"
        );
        // Every re-homed adapter now homes where the survivors' rendezvous
        // puts it.
        for &a in &shard {
            let expect = survivors[policies::rendezvous_home(a, survivors.iter().copied())].0;
            assert_eq!(c.home_of(a), expect);
        }

        c.run(&trace);
        assert_eq!(c.completed(), 80, "drain lost requests");
        assert_eq!(
            c.routing_stats().dispatched_to(victim),
            0,
            "drained engine must receive no dispatches"
        );
        assert_eq!(c.len(), 3, "idle drained engine was retired");
        let report = c.into_report();
        assert_eq!(report.records.len(), 80);
        assert_eq!(report.routing.engines_drained, 1);
    }

    #[test]
    fn drain_mid_run_finishes_in_flight_work_on_the_victim() {
        // Dispatch some work first, then drain an engine that has it.
        let (factory, trace) = factory_and_trace(60);
        let mut c = Cluster::with_router(2, factory, Box::new(AdapterAffinity::new()));
        let half: Trace = Trace::new(trace.requests()[..30].to_vec());
        let rest: Trace = Trace::new(trace.requests()[30..].to_vec());
        c.run(&half);
        let before = c.routing_stats().dispatched_to(EngineId(0));
        assert!(c.drain_engine(EngineId(0)));
        c.run(&rest);
        assert_eq!(c.completed(), 60);
        assert_eq!(
            c.routing_stats().dispatched_to(EngineId(0)),
            before,
            "no dispatches after drain"
        );
        assert!(!c.drain_engine(EngineId(1)), "last active engine stays");
    }

    #[test]
    fn add_engine_attracts_only_its_own_shard() {
        let (mut factory, trace) = factory_and_trace(60);
        let newcomer = factory(9);
        let mut c = Cluster::with_router(2, factory, Box::new(AdapterAffinity::new()));
        let before: Vec<(EngineId, f64)> = c
            .active_engine_ids()
            .iter()
            .map(|&id| (id, newcomer.capacity_weight()))
            .collect();
        let mut after = before.clone();
        after.push((EngineId(2), newcomer.capacity_weight()));
        let expected: u64 = newcomer
            .pool()
            .iter()
            .filter(|s| {
                before[policies::rendezvous_home(s.id(), before.iter().copied())].0
                    != after[policies::rendezvous_home(s.id(), after.iter().copied())].0
            })
            .count() as u64;
        let id = c.add_engine(newcomer);
        assert_eq!(id, EngineId(2));
        assert_eq!(c.routing_stats().adapters_rehomed, expected);
        assert_eq!(c.routing_stats().engines_added, 1);
        c.run(&trace);
        assert_eq!(c.completed(), 60);
        assert!(
            c.routing_stats().dispatched_to(id) > 0,
            "newcomer received nothing"
        );
    }

    #[test]
    fn jsq_fleet_changes_rehome_nothing() {
        let (mut factory, _) = factory_and_trace(0);
        let newcomer = factory(9);
        let mut c = Cluster::new(2, factory);
        c.add_engine(newcomer);
        c.drain_engine(EngineId(0));
        assert_eq!(
            c.routing_stats().adapters_rehomed,
            0,
            "queue-depth policies have no homes to migrate"
        );
    }

    /// A second `run` whose trace timeline starts before the busy horizon
    /// carried over from the first run must still dispatch (regression:
    /// the phantom-busy state used to leave queued requests stranded with
    /// no event ever re-triggering dispatch).
    #[test]
    fn second_run_starting_inside_previous_busy_horizon_makes_progress() {
        // Overload burst: backlog processing extends well past the last
        // arrival instant, so the second run's arrivals replay "inside"
        // the first run's busy horizon.
        let (factory, trace) = factory_and_trace_at(2000.0, 120);
        let mut c = Cluster::new(2, factory);
        let reqs = trace.requests().to_vec();
        c.run(&Trace::new(reqs[..60].to_vec()));
        c.run(&Trace::new(reqs[60..].to_vec()));
        assert_eq!(c.completed(), 120, "second run stalled");
    }

    #[test]
    fn autoscaler_grows_and_drains_mid_trace() {
        // An overload burst on a deliberately small fleet: the controller
        // must grow, then drain back while the backlog clears.
        let (factory, trace) = factory_and_trace_at(2000.0, 600);
        let mut grow_factory = {
            let (mut f, _) = factory_and_trace(0);
            move |id: EngineId| f(id.0 as usize)
        };
        let mut c = Cluster::with_router(2, factory, Box::new(AdapterAffinity::new()));
        let mut scaler = Autoscaler::new(AutoscalerConfig {
            min_engines: 2,
            max_engines: 4,
            interval: SimDuration::from_millis(100),
            scale_up_mean_queue: 4.0,
            scale_up_max_queue: 32,
            scale_down_mean_queue: 0.5,
            cooldown: SimDuration::from_millis(250),
            ttft_slo: None,
        });
        c.run_elastic(&trace, &mut scaler, &mut grow_factory);
        assert_eq!(c.completed(), 600, "elastic run lost requests");
        let stats = c.routing_stats();
        assert!(
            stats.engines_added > 0,
            "burst never triggered scale-up: {:?}",
            scaler.actions()
        );
        assert!(
            stats.engines_drained > 0,
            "fleet never shrank back: {:?}",
            scaler.actions()
        );
        assert!(stats.adapters_rehomed > 0, "no migration accounted");
        let report = c.into_report();
        assert_eq!(report.records.len(), 600);
        assert!(report.records.iter().all(|r| r.is_complete()));
    }

    /// The merged trace stream is a deterministic artefact: serial and
    /// parallel runs of the same trace produce byte-identical JSONL.
    #[test]
    fn trace_stream_is_identical_across_execution_modes() {
        let run = |exec: ClusterExecution| {
            let (mut c, trace) = cluster_and_trace(3, 120);
            c.enable_tracing();
            c.run_with(&trace, exec);
            let (report, log, _) = c.into_report_with_trace();
            (
                format!("{:?}", report.records),
                log.expect("tracing on").to_jsonl(),
            )
        };
        let (serial_report, serial_jsonl) = run(ClusterExecution::Serial);
        assert!(!serial_jsonl.is_empty(), "traced run produced no events");
        assert!(serial_jsonl.contains("\"ev\":\"route\""));
        assert!(serial_jsonl.contains("\"ev\":\"barrier_close\""));
        for workers in [2, 7] {
            let (report, jsonl) = run(ClusterExecution::Parallel { workers });
            assert_eq!(
                serial_report, report,
                "results diverged at {workers} workers"
            );
            assert_eq!(serial_jsonl, jsonl, "trace diverged at {workers} workers");
        }
    }

    /// Profiling measures wall time without perturbing simulation
    /// results, and pool runs account their worker busy time.
    #[test]
    fn barrier_profile_measures_without_perturbing() {
        let (mut plain, trace) = cluster_and_trace(3, 120);
        plain.run_with(&trace, ClusterExecution::Parallel { workers: 2 });
        let baseline = format!("{:?}", plain.into_report().records);

        let (mut c, trace) = cluster_and_trace(3, 120);
        c.enable_barrier_profiling();
        c.run_with(&trace, ClusterExecution::Parallel { workers: 2 });
        let (report, _, profile) = c.into_report_with_trace();
        let p = profile.expect("profiling on");
        assert_eq!(
            format!("{:?}", report.records),
            baseline,
            "profiling changed results"
        );
        assert_eq!(p.workers, 2);
        assert!(p.epochs > 0, "no epochs counted");
        assert!(p.run_wall_ns > 0, "no wall time measured");
        assert!(p.run_wall_ns >= p.step_wall_ns, "step exceeds run wall");
        assert!(p.step_wall_ns >= p.pool_step_wall_ns);
    }

    /// A cluster run's observable fingerprint for batched-vs-per-arrival
    /// comparisons: per-request timings, routing counters, processed
    /// totals.
    fn fingerprint(c: Cluster) -> (Vec<u64>, u64, u64, u64, u64, String) {
        let counts = c.dispatch_counts().to_vec();
        let events = c.events_processed();
        let stats = c.routing_stats();
        let (hits, spills, dispatched) = (stats.affinity_hits, stats.spills, stats.dispatched);
        let report = c.into_report();
        let records = format!(
            "{:?}",
            report
                .records
                .iter()
                .map(|r| (r.id, r.first_token, r.finished))
                .collect::<Vec<_>>()
        );
        (counts, events, hits, spills, dispatched, records)
    }

    /// Tentpole oracle (engine level): with a state-independent router —
    /// pure weighted rendezvous, spill disabled — batched dispatch
    /// produces the same placements, timings, affinity hits, and event
    /// totals as per-arrival dispatch. Zero snapshot refreshes per
    /// arrival become one per batch.
    #[test]
    fn batched_dispatch_matches_per_arrival_for_state_independent_router() {
        for policy in [
            RouterPolicy::AdapterAffinityNoSpill,
            RouterPolicy::RoundRobin,
        ] {
            let run = |batched: bool| {
                let (factory, trace) = factory_and_trace_at(200.0, 300);
                let mut c = Cluster::with_router(3, factory, policy.build(0));
                if batched {
                    c.set_dispatch(DispatchSpec::new());
                }
                c.run(&trace);
                let stats = c.routing_stats();
                assert_eq!(stats.dispatch.enabled, batched);
                if batched {
                    assert!(
                        stats.dispatch.mean_batch() > 1.0,
                        "{}: arrivals at 200 rps should coalesce (mean {})",
                        policy.name(),
                        stats.dispatch.mean_batch()
                    );
                    assert_eq!(stats.dispatch.snapshot_refreshes, stats.dispatch.batches);
                }
                fingerprint(c)
            };
            assert_eq!(
                run(false),
                run(true),
                "{}: batched dispatch diverged from per-arrival",
                policy.name()
            );
        }
    }

    /// Bounded-staleness batching (the default JSQ router) stays a
    /// complete, balanced run: every request finishes, batches form, and
    /// the per-engine queue-depth error is bounded by the batch budget
    /// (the router property suite covers the bound itself; here the
    /// end-to-end run must not lose or duplicate work).
    #[test]
    fn bounded_staleness_batching_completes_everything() {
        let (factory, trace) = factory_and_trace_at(200.0, 300);
        let mut c = Cluster::new(3, factory);
        c.set_dispatch(DispatchSpec::new());
        c.run(&trace);
        assert_eq!(c.completed(), 300);
        let stats = c.routing_stats();
        assert_eq!(stats.dispatched, 300);
        assert_eq!(stats.dispatch.batched_arrivals, 300);
        assert!(stats.dispatch.batches < 300, "no coalescing happened");
        assert!(
            stats.dispatch.max_batch <= 32,
            "JSQ's declared budget (32) was exceeded: {}",
            stats.dispatch.max_batch
        );
        let report = c.into_report();
        assert!(report.records.iter().all(|r| r.is_complete()));
    }

    /// The spec's overrides tighten the router's declared budget: a
    /// max_batch of 1 degenerates to per-arrival barriers (one batch per
    /// request) even though JSQ declares 32.
    #[test]
    fn spec_budget_caps_batch_size() {
        let (factory, trace) = factory_and_trace_at(200.0, 120);
        let mut c = Cluster::new(3, factory);
        c.set_dispatch(DispatchSpec::with_budget(1, SimDuration::from_secs(3600)));
        c.run(&trace);
        let stats = c.routing_stats();
        assert_eq!(stats.dispatch.max_batch, 1);
        assert_eq!(stats.dispatch.batches, 120);
    }

    /// Batched runs emit `dispatch_batch` coordinator events carrying
    /// the generation, and route decisions at each member's own arrival
    /// instant — and stay bit-identical between serial and parallel
    /// execution.
    #[test]
    fn batched_trace_is_identical_across_execution_modes() {
        let run = |exec: ClusterExecution| {
            let (factory, trace) = factory_and_trace_at(200.0, 200);
            let mut c = Cluster::new(3, factory);
            c.set_dispatch(DispatchSpec::new());
            c.enable_tracing();
            c.run_with(&trace, exec);
            let (report, log, _) = c.into_report_with_trace();
            (
                format!("{:?}", report.records),
                log.expect("tracing on").to_jsonl(),
            )
        };
        let (serial_report, serial_jsonl) = run(ClusterExecution::Serial);
        assert!(serial_jsonl.contains("\"ev\":\"dispatch_batch\""));
        assert!(serial_jsonl.contains("\"ev\":\"route\""));
        for workers in [2, 7] {
            let (report, jsonl) = run(ClusterExecution::Parallel { workers });
            assert_eq!(
                serial_report, report,
                "results diverged at {workers} workers"
            );
            assert_eq!(serial_jsonl, jsonl, "trace diverged at {workers} workers");
        }
    }
}
