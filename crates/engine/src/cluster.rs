//! Data-parallel multi-engine cluster (§4.4).
//!
//! "In DP, Chameleon uses a two-level scheduler: a global scheduler
//! dispatches requests to the different engines, and each engine has its
//! local scheduler." The global scheduler here is join-shortest-queue over
//! outstanding resource tokens, the standard production choice. Each engine
//! keeps its own local scheduler and its own replica of the adapter cache
//! ("in DP, Chameleon replicates the adapter cache across engines").

use crate::engine::{Engine, EngineEvent};
use crate::report::EngineReport;
use chameleon_simcore::{EventQueue, SimTime};
use chameleon_workload::Trace;

/// Events at cluster scope: an undispatched arrival or an engine-local
/// event.
#[derive(Debug)]
enum ClusterEvent {
    Arrival(chameleon_workload::Request),
    Engine(usize, EngineEvent),
}

/// A data-parallel group of engines behind a global dispatcher.
pub struct Cluster {
    engines: Vec<Engine>,
    dispatched: Vec<u64>,
}

impl Cluster {
    /// Builds a cluster of `n` engines from a factory.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new<F: FnMut(usize) -> Engine>(n: usize, mut factory: F) -> Self {
        assert!(n > 0, "empty cluster");
        Cluster {
            engines: (0..n).map(&mut factory).collect(),
            dispatched: vec![0; n],
        }
    }

    /// Number of engines.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// True when the cluster has no engines (never: constructor forbids).
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// Requests dispatched to each engine.
    pub fn dispatch_counts(&self) -> &[u64] {
        &self.dispatched
    }

    /// Runs `trace` through the cluster until drained. Returns the instant
    /// of the last processed event.
    pub fn run(&mut self, trace: &Trace) -> SimTime {
        let mut q: EventQueue<ClusterEvent> = EventQueue::with_capacity(trace.len() * 4);
        let mut arrivals_left = trace.len();
        for r in trace {
            q.push(r.arrival(), ClusterEvent::Arrival(*r));
        }
        let mem_int = self.engines[0].config().mem_sample_interval;
        let refresh_int = self.engines[0].config().refresh_interval;
        for i in 0..self.engines.len() {
            q.push(
                SimTime::ZERO + mem_int,
                ClusterEvent::Engine(i, EngineEvent::MemSample),
            );
            q.push(
                SimTime::ZERO + refresh_int,
                ClusterEvent::Engine(i, EngineEvent::Refresh),
            );
        }
        let mut out = Vec::new();
        let mut last = SimTime::ZERO;
        while let Some((t, ev)) = q.pop() {
            last = t;
            match ev {
                ClusterEvent::Arrival(req) => {
                    arrivals_left -= 1;
                    // Global scheduler: least outstanding work at arrival.
                    let target = (0..self.engines.len())
                        .min_by_key(|&i| self.engines[i].outstanding_tokens())
                        .expect("non-empty cluster");
                    self.dispatched[target] += 1;
                    self.engines[target].handle(t, EngineEvent::Arrival(req), &mut out);
                    for (at, e) in out.drain(..) {
                        q.push(at, ClusterEvent::Engine(target, e));
                    }
                }
                ClusterEvent::Engine(i, ev) => {
                    let reschedule = match &ev {
                        EngineEvent::MemSample => Some((t + mem_int, EngineEvent::MemSample)),
                        EngineEvent::Refresh => Some((t + refresh_int, EngineEvent::Refresh)),
                        _ => None,
                    };
                    let periodic = reschedule.is_some();
                    self.engines[i].handle(t, ev, &mut out);
                    for (at, e) in out.drain(..) {
                        q.push(at, ClusterEvent::Engine(i, e));
                    }
                    if periodic && (arrivals_left > 0 || self.engines[i].has_work()) {
                        let (at, e) = reschedule.expect("periodic");
                        q.push(at, ClusterEvent::Engine(i, e));
                    }
                }
            }
        }
        last
    }

    /// Total completed requests across engines.
    pub fn completed(&self) -> u64 {
        self.engines.iter().map(|e| e.completed()).sum()
    }

    /// Finalises into one merged report.
    pub fn into_report(self) -> EngineReport {
        let mut reports = self.engines.into_iter().map(Engine::into_report);
        let mut merged = reports.next().expect("non-empty cluster");
        for r in reports {
            merged.merge(r);
        }
        merged
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("engines", &self.engines.len())
            .field("dispatched", &self.dispatched)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use chameleon_cache::{AdapterCache, EvictionPolicy};
    use chameleon_models::{AdapterPool, GpuSpec, LlmSpec, PoolConfig};
    use chameleon_predictor::OraclePredictor;
    use chameleon_sched::{FifoScheduler, WrsConfig};
    use chameleon_simcore::SimRng;
    use chameleon_workload::{ArrivalModel, LengthModel, TraceGenerator};

    fn cluster_and_trace(n_engines: usize, n_reqs: usize) -> (Cluster, Trace) {
        let llm = LlmSpec::llama_7b();
        let pool = AdapterPool::generate(&llm, &PoolConfig::paper_default(10));
        let gen = TraceGenerator::new(
            LengthModel::Custom {
                input: chameleon_workload::generator::TokenLengthModel {
                    median: 64.0,
                    sigma: 0.5,
                    min: 8,
                    max: 256,
                },
                output: chameleon_workload::generator::TokenLengthModel {
                    median: 8.0,
                    sigma: 0.5,
                    min: 2,
                    max: 32,
                },
            },
            ArrivalModel::poisson(20.0),
        );
        let mut rng = SimRng::seed(7);
        let trace = gen.generate_n(&pool, n_reqs, &mut rng);
        let cluster = Cluster::new(n_engines, |_| {
            Engine::new(
                EngineConfig::new(LlmSpec::llama_7b(), GpuSpec::a40()),
                pool.clone(),
                Box::new(FifoScheduler::new()),
                Box::new(OraclePredictor::new()),
                AdapterCache::new(EvictionPolicy::chameleon()),
                WrsConfig::paper(2048.0, 1024.0, (256 << 20) as f64),
            )
        });
        (cluster, trace)
    }

    #[test]
    fn completes_everything_and_balances() {
        let (mut c, trace) = cluster_and_trace(3, 60);
        c.run(&trace);
        assert_eq!(c.completed(), 60);
        // JSQ keeps dispatch counts reasonably balanced.
        let counts = c.dispatch_counts().to_vec();
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min.max(1.0) < 4.0, "imbalanced: {counts:?}");
        let report = c.into_report();
        assert_eq!(report.records.len(), 60);
        assert!(report.records.iter().all(|r| r.is_complete()));
    }

    #[test]
    fn more_engines_cut_latency_under_load() {
        let (mut one, trace) = cluster_and_trace(1, 80);
        let (mut four, _) = cluster_and_trace(4, 0);
        one.run(&trace);
        four.run(&trace);
        let p99 = |rep: &EngineReport| {
            let mut v: Vec<f64> = rep
                .records
                .iter()
                .filter_map(|r| r.ttft())
                .map(|d| d.as_secs_f64())
                .collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let i = ((v.len() as f64 * 0.99) as usize).min(v.len() - 1);
            v[i]
        };
        let r1 = one.into_report();
        let r4 = four.into_report();
        assert_eq!(r4.records.len(), 80);
        assert!(
            p99(&r4) <= p99(&r1),
            "4 engines should not be slower than 1"
        );
    }
}
