//! Data-parallel multi-engine cluster (§4.4).
//!
//! "In DP, Chameleon uses a two-level scheduler: a global scheduler
//! dispatches requests to the different engines, and each engine has its
//! local scheduler." The global scheduler is now a pluggable
//! [`Router`] from `chameleon_router`: [`Cluster::new`] keeps the paper's
//! production-standard join-shortest-queue dispatch (over outstanding
//! resource tokens) and its replicated-adapter-cache behaviour, while
//! [`Cluster::with_router`] accepts any placement policy — notably
//! `AdapterAffinity`, which partitions the adapter working set across
//! engines instead of replicating it. Each engine keeps its own local
//! scheduler and its own adapter cache either way; only *where requests
//! land* changes, and with it which adapters each cache ends up holding.
//!
//! Every dispatch is recorded in [`RoutingStats`]: per-engine counts,
//! affinity hits (the chosen engine already had the adapter resident),
//! spills, and the per-policy load-imbalance coefficient, all flowing
//! into the merged [`EngineReport`].

use crate::engine::{Engine, EngineEvent};
use crate::report::EngineReport;
use chameleon_metrics::RoutingStats;
use chameleon_router::{EngineSnapshot, JoinShortestQueue, Router};
use chameleon_simcore::{EventQueue, SimTime};
use chameleon_workload::Trace;

/// Events at cluster scope: an undispatched arrival or an engine-local
/// event.
#[derive(Debug)]
enum ClusterEvent {
    Arrival(chameleon_workload::Request),
    Engine(usize, EngineEvent),
}

/// A data-parallel group of engines behind a global dispatcher.
pub struct Cluster {
    engines: Vec<Engine>,
    router: Box<dyn Router>,
    stats: RoutingStats,
    /// Reused per-arrival snapshot buffer (dispatch is the hot path).
    snap_buf: Vec<EngineSnapshot>,
    /// Events processed across all [`Cluster::run`] calls.
    events_processed: u64,
}

impl Cluster {
    /// Builds a cluster of `n` engines from a factory, dispatching with
    /// the paper's global scheduler (join-shortest-queue over outstanding
    /// resource tokens).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new<F: FnMut(usize) -> Engine>(n: usize, factory: F) -> Self {
        Cluster::with_router(n, factory, Box::new(JoinShortestQueue::new()))
    }

    /// Builds a cluster of `n` engines dispatching through `router`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_router<F: FnMut(usize) -> Engine>(
        n: usize,
        mut factory: F,
        router: Box<dyn Router>,
    ) -> Self {
        assert!(n > 0, "empty cluster");
        let stats = RoutingStats::new(router.name(), n);
        Cluster {
            engines: (0..n).map(&mut factory).collect(),
            router,
            stats,
            snap_buf: Vec::with_capacity(n),
            events_processed: 0,
        }
    }

    /// Events processed across all [`Cluster::run`] calls so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of engines.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// True when the cluster has no engines (never: constructor forbids).
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// The active routing policy's label.
    pub fn router_name(&self) -> &'static str {
        self.router.name()
    }

    /// Requests dispatched to each engine.
    pub fn dispatch_counts(&self) -> &[u64] {
        &self.stats.per_engine
    }

    /// Routing statistics so far.
    pub fn routing_stats(&self) -> &RoutingStats {
        &self.stats
    }

    /// Refills the reusable snapshot buffer for a routing decision.
    /// Residency sets are copied only when the router declares it reads
    /// them, so queue-depth-only policies stay cheap per arrival.
    fn fill_snapshots(&mut self) {
        let with_residency = self.router.needs_residency();
        self.snap_buf.clear();
        self.snap_buf.extend(
            self.engines
                .iter()
                .enumerate()
                .map(|(i, e)| e.snapshot(i, with_residency)),
        );
    }

    /// Runs `trace` through the cluster until drained. Returns the instant
    /// of the last processed event.
    pub fn run(&mut self, trace: &Trace) -> SimTime {
        // Pending events peak near the unconsumed arrivals plus a few
        // in-flight events per engine; size the heap from the trace.
        let mut q: EventQueue<ClusterEvent> =
            EventQueue::with_capacity(trace.len() + 4 * self.engines.len() + 16);
        let mut arrivals_left = trace.len();
        for r in trace {
            q.push(r.arrival(), ClusterEvent::Arrival(*r));
        }
        let mem_int = self.engines[0].config().mem_sample_interval;
        let refresh_int = self.engines[0].config().refresh_interval;
        for i in 0..self.engines.len() {
            q.push(
                SimTime::ZERO + mem_int,
                ClusterEvent::Engine(i, EngineEvent::MemSample),
            );
            q.push(
                SimTime::ZERO + refresh_int,
                ClusterEvent::Engine(i, EngineEvent::Refresh),
            );
        }
        let mut out = Vec::new();
        let mut last = SimTime::ZERO;
        while let Some((t, ev)) = q.pop() {
            last = t;
            match ev {
                ClusterEvent::Arrival(req) => {
                    arrivals_left -= 1;
                    // Global scheduler: delegate placement to the router.
                    self.fill_snapshots();
                    let decision = self.router.route(&req, &self.snap_buf);
                    let target = decision.engine;
                    assert!(target < self.engines.len(), "router out of bounds");
                    let affinity_hit = self.engines[target].is_adapter_resident(req.adapter());
                    self.stats.record(target, affinity_hit, decision.spilled);
                    self.engines[target].handle(t, EngineEvent::Arrival(req), &mut out);
                    for (at, e) in out.drain(..) {
                        q.push(at, ClusterEvent::Engine(target, e));
                    }
                }
                ClusterEvent::Engine(i, ev) => {
                    let reschedule = match &ev {
                        EngineEvent::MemSample => Some((t + mem_int, EngineEvent::MemSample)),
                        EngineEvent::Refresh => Some((t + refresh_int, EngineEvent::Refresh)),
                        _ => None,
                    };
                    let periodic = reschedule.is_some();
                    self.engines[i].handle(t, ev, &mut out);
                    for (at, e) in out.drain(..) {
                        q.push(at, ClusterEvent::Engine(i, e));
                    }
                    if periodic && (arrivals_left > 0 || self.engines[i].has_work()) {
                        let (at, e) = reschedule.expect("periodic");
                        q.push(at, ClusterEvent::Engine(i, e));
                    }
                }
            }
        }
        self.events_processed += q.processed();
        last
    }

    /// Total completed requests across engines.
    pub fn completed(&self) -> u64 {
        self.engines.iter().map(|e| e.completed()).sum()
    }

    /// Finalises into one merged report carrying the routing statistics.
    pub fn into_report(self) -> EngineReport {
        let stats = self.stats;
        let mut reports = self.engines.into_iter().map(Engine::into_report);
        let mut merged = reports.next().expect("non-empty cluster");
        for r in reports {
            merged.merge(r);
        }
        merged.routing = stats;
        merged
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("engines", &self.engines.len())
            .field("router", &self.router.name())
            .field("dispatched", &self.stats.per_engine)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use chameleon_cache::{AdapterCache, EvictionPolicy};
    use chameleon_models::{AdapterPool, GpuSpec, LlmSpec, PoolConfig};
    use chameleon_predictor::OraclePredictor;
    use chameleon_router::RouterPolicy;
    use chameleon_sched::{FifoScheduler, WrsConfig};
    use chameleon_simcore::SimRng;
    use chameleon_workload::{ArrivalModel, LengthModel, TraceGenerator};

    fn cluster_and_trace(n_engines: usize, n_reqs: usize) -> (Cluster, Trace) {
        let (factory, trace) = factory_and_trace(n_reqs);
        (Cluster::new(n_engines, factory), trace)
    }

    fn factory_and_trace(n_reqs: usize) -> (impl FnMut(usize) -> Engine, Trace) {
        let llm = LlmSpec::llama_7b();
        let pool = AdapterPool::generate(&llm, &PoolConfig::paper_default(10));
        let gen = TraceGenerator::new(
            LengthModel::Custom {
                input: chameleon_workload::generator::TokenLengthModel {
                    median: 64.0,
                    sigma: 0.5,
                    min: 8,
                    max: 256,
                },
                output: chameleon_workload::generator::TokenLengthModel {
                    median: 8.0,
                    sigma: 0.5,
                    min: 2,
                    max: 32,
                },
            },
            ArrivalModel::poisson(20.0),
        );
        let mut rng = SimRng::seed(7);
        let trace = gen.generate_n(&pool, n_reqs, &mut rng);
        let factory = move |_| {
            Engine::new(
                EngineConfig::new(LlmSpec::llama_7b(), GpuSpec::a40()),
                pool.clone(),
                Box::new(FifoScheduler::new()),
                Box::new(OraclePredictor::new()),
                AdapterCache::new(EvictionPolicy::chameleon()),
                WrsConfig::paper(2048.0, 1024.0, (256 << 20) as f64),
            )
        };
        (factory, trace)
    }

    #[test]
    fn completes_everything_and_balances() {
        let (mut c, trace) = cluster_and_trace(3, 60);
        c.run(&trace);
        assert_eq!(c.completed(), 60);
        // JSQ keeps dispatch counts reasonably balanced.
        let counts = c.dispatch_counts().to_vec();
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min.max(1.0) < 4.0, "imbalanced: {counts:?}");
        let report = c.into_report();
        assert_eq!(report.records.len(), 60);
        assert!(report.records.iter().all(|r| r.is_complete()));
    }

    #[test]
    fn more_engines_cut_latency_under_load() {
        let (mut one, trace) = cluster_and_trace(1, 80);
        let (mut four, _) = cluster_and_trace(4, 0);
        one.run(&trace);
        four.run(&trace);
        let p99 = |rep: &EngineReport| {
            let mut v: Vec<f64> = rep
                .records
                .iter()
                .filter_map(|r| r.ttft())
                .map(|d| d.as_secs_f64())
                .collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let i = ((v.len() as f64 * 0.99) as usize).min(v.len() - 1);
            v[i]
        };
        let r1 = one.into_report();
        let r4 = four.into_report();
        assert_eq!(r4.records.len(), 80);
        assert!(
            p99(&r4) <= p99(&r1),
            "4 engines should not be slower than 1"
        );
    }

    /// The extracted JoinShortestQueue policy reproduces the seed
    /// dispatcher byte for byte: `Cluster::new` (which delegates to the
    /// router) and a hand-rolled min-outstanding-tokens dispatch make
    /// identical choices, so the refactor is behaviour-preserving.
    #[test]
    fn default_router_preserves_jsq_dispatch_behaviour() {
        let (factory, trace) = factory_and_trace(120);
        let mut via_router = Cluster::new(3, factory);
        via_router.run(&trace);

        // Reference run: the pre-refactor inlined global scheduler.
        let (factory, _) = factory_and_trace(0);
        let mut reference = ReferenceJsqCluster::new(3, factory);
        reference.run(&trace);

        assert_eq!(via_router.dispatch_counts(), &reference.dispatched[..]);
        assert_eq!(via_router.completed(), reference.completed());
        let a = via_router.into_report();
        let b = reference.into_report();
        let key = |rep: &EngineReport| {
            rep.records
                .iter()
                .map(|r| (r.id, r.first_token, r.finished))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&a), key(&b), "per-request timings diverged");
    }

    /// Verbatim re-implementation of the pre-refactor cluster dispatch
    /// loop (global scheduler inlined as `min_by_key(outstanding_tokens)`),
    /// kept as the behaviour-preservation oracle.
    struct ReferenceJsqCluster {
        engines: Vec<Engine>,
        dispatched: Vec<u64>,
    }

    impl ReferenceJsqCluster {
        fn new<F: FnMut(usize) -> Engine>(n: usize, mut factory: F) -> Self {
            ReferenceJsqCluster {
                engines: (0..n).map(&mut factory).collect(),
                dispatched: vec![0; n],
            }
        }

        fn completed(&self) -> u64 {
            self.engines.iter().map(|e| e.completed()).sum()
        }

        fn into_report(self) -> EngineReport {
            let mut reports = self.engines.into_iter().map(Engine::into_report);
            let mut merged = reports.next().expect("non-empty cluster");
            for r in reports {
                merged.merge(r);
            }
            merged
        }

        fn run(&mut self, trace: &Trace) -> SimTime {
            let mut q: EventQueue<ClusterEvent> = EventQueue::with_capacity(trace.len() * 4);
            let mut arrivals_left = trace.len();
            for r in trace {
                q.push(r.arrival(), ClusterEvent::Arrival(*r));
            }
            let mem_int = self.engines[0].config().mem_sample_interval;
            let refresh_int = self.engines[0].config().refresh_interval;
            for i in 0..self.engines.len() {
                q.push(
                    SimTime::ZERO + mem_int,
                    ClusterEvent::Engine(i, EngineEvent::MemSample),
                );
                q.push(
                    SimTime::ZERO + refresh_int,
                    ClusterEvent::Engine(i, EngineEvent::Refresh),
                );
            }
            let mut out = Vec::new();
            let mut last = SimTime::ZERO;
            while let Some((t, ev)) = q.pop() {
                last = t;
                match ev {
                    ClusterEvent::Arrival(req) => {
                        arrivals_left -= 1;
                        let target = (0..self.engines.len())
                            .min_by_key(|&i| self.engines[i].outstanding_tokens())
                            .expect("non-empty cluster");
                        self.dispatched[target] += 1;
                        self.engines[target].handle(t, EngineEvent::Arrival(req), &mut out);
                        for (at, e) in out.drain(..) {
                            q.push(at, ClusterEvent::Engine(target, e));
                        }
                    }
                    ClusterEvent::Engine(i, ev) => {
                        let reschedule = match &ev {
                            EngineEvent::MemSample => Some((t + mem_int, EngineEvent::MemSample)),
                            EngineEvent::Refresh => Some((t + refresh_int, EngineEvent::Refresh)),
                            _ => None,
                        };
                        let periodic = reschedule.is_some();
                        self.engines[i].handle(t, ev, &mut out);
                        for (at, e) in out.drain(..) {
                            q.push(at, ClusterEvent::Engine(i, e));
                        }
                        if periodic && (arrivals_left > 0 || self.engines[i].has_work()) {
                            let (at, e) = reschedule.expect("periodic");
                            q.push(at, ClusterEvent::Engine(i, e));
                        }
                    }
                }
            }
            last
        }
    }

    #[test]
    fn every_policy_drains_the_cluster() {
        for policy in RouterPolicy::ALL {
            let (factory, trace) = factory_and_trace(50);
            let mut c = Cluster::with_router(3, factory, policy.build(11));
            c.run(&trace);
            assert_eq!(c.completed(), 50, "{} lost requests", policy.name());
            let stats = c.routing_stats().clone();
            assert_eq!(stats.dispatched, 50);
            assert_eq!(stats.per_engine.iter().sum::<u64>(), 50);
            assert_eq!(stats.policy, policy.name());
            let report = c.into_report();
            assert_eq!(report.routing, stats, "routing stats reach the report");
        }
    }

    #[test]
    fn round_robin_splits_exactly() {
        let (factory, trace) = factory_and_trace(60);
        let mut c = Cluster::with_router(3, factory, RouterPolicy::RoundRobin.build(0));
        c.run(&trace);
        assert_eq!(c.dispatch_counts(), &[20, 20, 20]);
        assert_eq!(c.routing_stats().load_imbalance(), 0.0);
    }
}
