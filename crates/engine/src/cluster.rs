//! Data-parallel multi-engine cluster (§4.4), elastic and heterogeneous.
//!
//! "In DP, Chameleon uses a two-level scheduler: a global scheduler
//! dispatches requests to the different engines, and each engine has its
//! local scheduler." The global scheduler is a pluggable [`Router`] from
//! `chameleon_router`: [`Cluster::new`] keeps the paper's
//! production-standard join-shortest-queue dispatch (over outstanding
//! resource tokens) and its replicated-adapter-cache behaviour, while
//! [`Cluster::with_router`] accepts any placement policy — notably
//! `AdapterAffinity`, which partitions the adapter working set across
//! engines instead of replicating it.
//!
//! Beyond the paper's fixed fleet, the cluster is *elastic*: every engine
//! carries a stable [`EngineId`] (identity, not position), and the fleet
//! can change while a trace is in flight. [`Cluster::add_engine`] joins a
//! new engine — of any capacity: heterogeneous fleets mix TP1/TP2/TP4
//! engines whose weighted rendezvous shards are proportional to memory —
//! and [`Cluster::drain_engine`] retires one gracefully: the drained
//! engine stops receiving dispatches immediately, finishes its in-flight
//! and queued work, and leaves; identity-keyed rendezvous guarantees that
//! only the departing engine's adapter shard is re-homed, which the
//! cluster measures (`adapters_rehomed`) rather than assumes.
//! [`Cluster::run_elastic`] drives a trace with an [`Autoscaler`]
//! watching queue depth and scaling the fleet mid-trace.
//!
//! Every dispatch is recorded in [`RoutingStats`]: per-engine counts
//! keyed by [`EngineId`], affinity hits (the chosen engine already had
//! the adapter resident), spills, load imbalance, and the fleet-change
//! counters, all flowing into the merged [`EngineReport`].

use crate::autoscaler::{Autoscaler, ScaleAction};
use crate::engine::{Engine, EngineEvent};
use crate::report::EngineReport;
use chameleon_metrics::RoutingStats;
use chameleon_models::AdapterId;
use chameleon_router::{policies, EngineId, EngineSnapshot, JoinShortestQueue, Router};
use chameleon_simcore::{EventQueue, SimDuration, SimTime};
use chameleon_workload::Trace;

/// Events at cluster scope: an undispatched arrival, an engine-local
/// event, or an autoscaler evaluation tick.
#[derive(Debug)]
enum ClusterEvent {
    Arrival(chameleon_workload::Request),
    Engine(EngineId, EngineEvent),
    Scale,
}

/// One engine plus its cluster-lifecycle state.
struct EngineSlot {
    id: EngineId,
    /// Draining engines accept no new dispatches; they finish their
    /// queued and running work and are then retired.
    draining: bool,
    engine: Engine,
}

/// A data-parallel group of engines behind a global dispatcher.
pub struct Cluster {
    slots: Vec<EngineSlot>,
    next_id: u32,
    router: Box<dyn Router>,
    stats: RoutingStats,
    /// Reused per-arrival snapshot buffer (dispatch is the hot path).
    snap_buf: Vec<EngineSnapshot>,
    /// Slot position of each snapshot in `snap_buf` (parallel).
    snap_slots: Vec<usize>,
    /// Reports of engines drained and retired during the run.
    retired: Vec<EngineReport>,
    /// Periodic-event cadence, shared by every engine (taken from the
    /// initial fleet; `add_engine` asserts newcomers agree).
    mem_int: SimDuration,
    refresh_int: SimDuration,
    /// Events processed across all [`Cluster::run`] calls.
    events_processed: u64,
}

impl Cluster {
    /// Builds a cluster of `n` engines from a factory, dispatching with
    /// the paper's global scheduler (join-shortest-queue over outstanding
    /// resource tokens). The factory is called with each engine's
    /// [`EngineId`] value (`0..n`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new<F: FnMut(usize) -> Engine>(n: usize, factory: F) -> Self {
        Cluster::with_router(n, factory, Box::new(JoinShortestQueue::new()))
    }

    /// Builds a cluster of `n` engines dispatching through `router`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_router<F: FnMut(usize) -> Engine>(
        n: usize,
        mut factory: F,
        router: Box<dyn Router>,
    ) -> Self {
        assert!(n > 0, "empty cluster");
        let slots: Vec<EngineSlot> = (0..n)
            .map(|i| EngineSlot {
                id: EngineId(i as u32),
                draining: false,
                engine: factory(i),
            })
            .collect();
        let ids: Vec<EngineId> = slots.iter().map(|s| s.id).collect();
        let stats = RoutingStats::new(router.name(), &ids);
        let mem_int = slots[0].engine.config().mem_sample_interval;
        let refresh_int = slots[0].engine.config().refresh_interval;
        Cluster {
            next_id: n as u32,
            snap_buf: Vec::with_capacity(n),
            snap_slots: Vec::with_capacity(n),
            retired: Vec::new(),
            mem_int,
            refresh_int,
            slots,
            router,
            stats,
            events_processed: 0,
        }
    }

    /// Events processed across all run calls so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of engines currently in the cluster (active + draining;
    /// drained engines have left).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the cluster has no engines (never: the constructor
    /// forbids it and the last active engine cannot be drained).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of engines accepting new dispatches.
    pub fn active_engines(&self) -> usize {
        self.slots.iter().filter(|s| !s.draining).count()
    }

    /// Ids of the engines accepting new dispatches, in registration order.
    pub fn active_engine_ids(&self) -> Vec<EngineId> {
        self.slots
            .iter()
            .filter(|s| !s.draining)
            .map(|s| s.id)
            .collect()
    }

    /// The active routing policy's label.
    pub fn router_name(&self) -> &'static str {
        self.router.name()
    }

    /// The stable id the next engine to join will be registered under —
    /// the single mint point for engine identities.
    pub fn next_engine_id(&self) -> EngineId {
        EngineId(self.next_id)
    }

    /// Requests dispatched to each engine ever registered, in
    /// registration order (see [`RoutingStats::engine_ids`]).
    pub fn dispatch_counts(&self) -> &[u64] {
        &self.stats.per_engine
    }

    /// Routing statistics so far.
    pub fn routing_stats(&self) -> &RoutingStats {
        &self.stats
    }

    /// Joins `engine` to the fleet and returns its id. The newcomer
    /// starts receiving dispatches on the next arrival; with an affinity
    /// router, exactly the adapters whose weighted-rendezvous top choice
    /// is the new engine re-home onto it (measured into
    /// `adapters_rehomed`).
    ///
    /// # Panics
    ///
    /// Panics if the newcomer's periodic-event cadence differs from the
    /// fleet's (the cluster shares one tick schedule).
    pub fn add_engine(&mut self, engine: Engine) -> EngineId {
        assert_eq!(
            engine.config().mem_sample_interval,
            self.mem_int,
            "newcomer must share the fleet's sampling cadence"
        );
        assert_eq!(
            engine.config().refresh_interval,
            self.refresh_int,
            "newcomer must share the fleet's refresh cadence"
        );
        let id = self.next_engine_id();
        self.next_id += 1;
        if self.router.uses_affinity() {
            let moved = self.count_rehomed(&engine, Some((id, engine.capacity_weight())), None);
            self.stats.on_adapters_rehomed(moved);
        }
        self.stats.on_engine_added(id);
        self.slots.push(EngineSlot {
            id,
            draining: false,
            engine,
        });
        id
    }

    /// Starts draining engine `id`: it stops receiving new dispatches
    /// immediately, finishes its in-flight and queued work, and is then
    /// retired (its measurements are folded into the final report). With
    /// an affinity router, exactly the departing engine's adapter shard
    /// re-homes onto the survivors.
    ///
    /// Returns `false` (and does nothing) when `id` is unknown, already
    /// draining, or the last active engine — a cluster never drains to
    /// zero.
    pub fn drain_engine(&mut self, id: EngineId) -> bool {
        let Some(pos) = self.slots.iter().position(|s| s.id == id) else {
            return false;
        };
        if self.slots[pos].draining || self.active_engines() <= 1 {
            return false;
        }
        if self.router.uses_affinity() {
            let moved = self.count_rehomed(&self.slots[pos].engine, None, Some(id));
            self.stats.on_adapters_rehomed(moved);
        }
        self.slots[pos].draining = true;
        self.stats.on_engine_drained(id);
        true
    }

    /// The `(id, capacity weight)` pairs of the engines currently
    /// accepting dispatches — the candidate set every placement and
    /// re-homing computation works over.
    fn active_weights(&self) -> Vec<(EngineId, f64)> {
        self.slots
            .iter()
            .filter(|s| !s.draining)
            .map(|s| (s.id, s.engine.capacity_weight()))
            .collect()
    }

    /// Counts adapters whose weighted-rendezvous home differs between the
    /// current active set and the same set with `joining` added or
    /// `leaving` removed — the measured (not assumed) migration cost of a
    /// fleet change. `pool_of` only lends its adapter pool (all engines
    /// share one).
    fn count_rehomed(
        &self,
        pool_of: &Engine,
        joining: Option<(EngineId, f64)>,
        leaving: Option<EngineId>,
    ) -> u64 {
        let before = self.active_weights();
        let mut after = before.clone();
        if let Some(e) = joining {
            after.push(e);
        }
        if let Some(id) = leaving {
            after.retain(|&(e, _)| e != id);
        }
        if before.is_empty() || after.is_empty() {
            return 0;
        }
        let home = |set: &[(EngineId, f64)], a: AdapterId| {
            set[policies::rendezvous_home(a, set.iter().copied())].0
        };
        pool_of
            .pool()
            .iter()
            .filter(|spec| home(&before, spec.id()) != home(&after, spec.id()))
            .count() as u64
    }

    /// The weighted-rendezvous home (engine id) of `adapter` over the
    /// currently active engines — what an affinity router would pick on an
    /// unloaded fleet. Exposed for tests and capacity planning.
    pub fn home_of(&self, adapter: AdapterId) -> EngineId {
        let active = self.active_weights();
        active[policies::rendezvous_home(adapter, active.iter().copied())].0
    }

    /// Refills the reusable snapshot buffer (live engines only) for a
    /// routing decision. Residency sets are copied only when the router
    /// declares it reads them, so queue-depth-only policies stay cheap
    /// per arrival.
    fn fill_snapshots(&mut self) {
        let with_residency = self.router.needs_residency();
        self.snap_buf.clear();
        self.snap_slots.clear();
        for (pos, slot) in self.slots.iter().enumerate() {
            if slot.draining {
                continue;
            }
            self.snap_buf
                .push(slot.engine.snapshot(slot.id, with_residency));
            self.snap_slots.push(pos);
        }
    }

    /// Retires `slot` if it is draining and fully idle: its report is
    /// stashed for the final merge and its id stops matching events.
    fn maybe_retire(&mut self, pos: usize) {
        if self.slots[pos].draining && !self.slots[pos].engine.has_work() {
            let slot = self.slots.remove(pos);
            self.retired.push(slot.engine.into_report());
        }
    }

    /// Runs `trace` through the (fixed) cluster until drained. Returns
    /// the instant of the last processed event.
    pub fn run(&mut self, trace: &Trace) -> SimTime {
        self.run_loop(trace, None)
    }

    /// Runs `trace` with `autoscaler` evaluating the fleet every
    /// [`AutoscalerConfig::interval`](crate::autoscaler::AutoscalerConfig)
    /// and `grow` building each engine the fleet scales up by (called
    /// with the newcomer's id). Scale-downs drain gracefully — only the
    /// departing engine's adapter shard re-homes.
    pub fn run_elastic(
        &mut self,
        trace: &Trace,
        autoscaler: &mut Autoscaler,
        grow: &mut dyn FnMut(EngineId) -> Engine,
    ) -> SimTime {
        self.run_loop(trace, Some((autoscaler, grow)))
    }

    fn run_loop(
        &mut self,
        trace: &Trace,
        mut scale: Option<(&mut Autoscaler, &mut dyn FnMut(EngineId) -> Engine)>,
    ) -> SimTime {
        // Pending events peak near the unconsumed arrivals plus a few
        // in-flight events per engine; size the heap from the trace.
        let mut q: EventQueue<ClusterEvent> =
            EventQueue::with_capacity(trace.len() + 4 * self.slots.len() + 16);
        let mut arrivals_left = trace.len();
        for r in trace {
            q.push(r.arrival(), ClusterEvent::Arrival(*r));
        }
        let mem_int = self.mem_int;
        let refresh_int = self.refresh_int;
        for slot in &self.slots {
            q.push(
                SimTime::ZERO + mem_int,
                ClusterEvent::Engine(slot.id, EngineEvent::MemSample),
            );
            q.push(
                SimTime::ZERO + refresh_int,
                ClusterEvent::Engine(slot.id, EngineEvent::Refresh),
            );
        }
        if let Some((autoscaler, _)) = &scale {
            q.push(
                SimTime::ZERO + autoscaler.config().interval,
                ClusterEvent::Scale,
            );
        }
        let mut out = Vec::new();
        let mut last = SimTime::ZERO;
        // Popped events that did no simulation work (stale ticks of
        // retired engines): excluded from the processed count, and `last`
        // (the reported horizon) only advances on real work, so a
        // trailing controller tick cannot inflate it.
        let mut dropped: u64 = 0;
        while let Some((t, ev)) = q.pop() {
            match ev {
                ClusterEvent::Arrival(req) => {
                    last = t;
                    arrivals_left -= 1;
                    // Global scheduler: delegate placement to the router.
                    self.fill_snapshots();
                    let decision = self.router.route(&req, &self.snap_buf);
                    assert!(
                        decision.engine < self.snap_buf.len(),
                        "router out of bounds"
                    );
                    let pos = self.snap_slots[decision.engine];
                    let slot = &mut self.slots[pos];
                    let affinity_hit = slot.engine.is_adapter_resident(req.adapter());
                    self.stats.record(slot.id, affinity_hit, decision.spilled);
                    slot.engine.handle(t, EngineEvent::Arrival(req), &mut out);
                    let id = slot.id;
                    for (at, e) in out.drain(..) {
                        q.push(at, ClusterEvent::Engine(id, e));
                    }
                }
                ClusterEvent::Engine(id, ev) => {
                    // Events may outlive their engine (a retired engine's
                    // periodic ticks are still in the heap): drop them.
                    let Some(pos) = self.slots.iter().position(|s| s.id == id) else {
                        dropped += 1;
                        continue;
                    };
                    last = t;
                    let reschedule = match &ev {
                        EngineEvent::MemSample => Some((t + mem_int, EngineEvent::MemSample)),
                        EngineEvent::Refresh => Some((t + refresh_int, EngineEvent::Refresh)),
                        _ => None,
                    };
                    let periodic = reschedule.is_some();
                    self.slots[pos].engine.handle(t, ev, &mut out);
                    for (at, e) in out.drain(..) {
                        q.push(at, ClusterEvent::Engine(id, e));
                    }
                    if periodic && (arrivals_left > 0 || self.slots[pos].engine.has_work()) {
                        let (at, e) = reschedule.expect("periodic");
                        q.push(at, ClusterEvent::Engine(id, e));
                    }
                    self.maybe_retire(pos);
                }
                ClusterEvent::Scale => {
                    let (autoscaler, grow) = scale.as_mut().expect("scale event without scaler");
                    self.fill_snapshots();
                    let draining = self.slots.len() - self.snap_buf.len();
                    match autoscaler.decide(t, &self.snap_buf, draining) {
                        ScaleAction::Hold => {}
                        ScaleAction::ScaleUp => {
                            // The factory sees the id the newcomer will be
                            // registered under (per-engine RNG streams and
                            // growth specs key off it).
                            let id = self.next_engine_id();
                            let engine = grow(id);
                            let assigned = self.add_engine(engine);
                            assert_eq!(assigned, id, "engine id minted twice");
                            let id = assigned;
                            // The newcomer joins the shared tick schedule.
                            q.push(
                                t + mem_int,
                                ClusterEvent::Engine(id, EngineEvent::MemSample),
                            );
                            q.push(
                                t + refresh_int,
                                ClusterEvent::Engine(id, EngineEvent::Refresh),
                            );
                        }
                        ScaleAction::Drain(victim) => {
                            if self.drain_engine(victim) {
                                if let Some(pos) = self.slots.iter().position(|s| s.id == victim) {
                                    self.maybe_retire(pos);
                                }
                            }
                        }
                    }
                    let work_left =
                        arrivals_left > 0 || self.slots.iter().any(|s| s.engine.has_work());
                    if work_left {
                        q.push(t + autoscaler.config().interval, ClusterEvent::Scale);
                    }
                }
            }
        }
        self.events_processed += q.processed() - dropped;
        last
    }

    /// Total completed requests across live and retired engines.
    pub fn completed(&self) -> u64 {
        let live: u64 = self.slots.iter().map(|s| s.engine.completed()).sum();
        let retired: u64 = self.retired.iter().map(|r| r.completed() as u64).sum();
        live + retired
    }

    /// Finalises into one merged report carrying the routing statistics
    /// (retired engines included).
    pub fn into_report(self) -> EngineReport {
        let stats = self.stats;
        let mut reports = self
            .retired
            .into_iter()
            .chain(self.slots.into_iter().map(|s| s.engine.into_report()));
        let mut merged = reports.next().expect("non-empty cluster");
        for r in reports {
            merged.merge(r);
        }
        merged.routing = stats;
        merged
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("engines", &self.slots.len())
            .field("active", &self.active_engines())
            .field("retired", &self.retired.len())
            .field("router", &self.router.name())
            .field("dispatched", &self.stats.per_engine)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autoscaler::AutoscalerConfig;
    use crate::config::EngineConfig;
    use chameleon_cache::{AdapterCache, EvictionPolicy};
    use chameleon_models::{AdapterPool, GpuSpec, LlmSpec, PoolConfig};
    use chameleon_predictor::OraclePredictor;
    use chameleon_router::{AdapterAffinity, RouterPolicy};
    use chameleon_sched::{FifoScheduler, WrsConfig};
    use chameleon_simcore::SimRng;
    use chameleon_workload::{ArrivalModel, LengthModel, TraceGenerator};

    fn cluster_and_trace(n_engines: usize, n_reqs: usize) -> (Cluster, Trace) {
        let (factory, trace) = factory_and_trace(n_reqs);
        (Cluster::new(n_engines, factory), trace)
    }

    fn factory_and_trace(n_reqs: usize) -> (impl FnMut(usize) -> Engine, Trace) {
        factory_and_trace_at(20.0, n_reqs)
    }

    fn factory_and_trace_at(rps: f64, n_reqs: usize) -> (impl FnMut(usize) -> Engine, Trace) {
        let llm = LlmSpec::llama_7b();
        let pool = AdapterPool::generate(&llm, &PoolConfig::paper_default(10));
        let gen = TraceGenerator::new(
            LengthModel::Custom {
                input: chameleon_workload::generator::TokenLengthModel {
                    median: 64.0,
                    sigma: 0.5,
                    min: 8,
                    max: 256,
                },
                output: chameleon_workload::generator::TokenLengthModel {
                    median: 8.0,
                    sigma: 0.5,
                    min: 2,
                    max: 32,
                },
            },
            ArrivalModel::poisson(rps),
        );
        let mut rng = SimRng::seed(7);
        let trace = gen.generate_n(&pool, n_reqs, &mut rng);
        let factory = move |_| {
            Engine::new(
                EngineConfig::new(LlmSpec::llama_7b(), GpuSpec::a40()),
                pool.clone(),
                Box::new(FifoScheduler::new()),
                Box::new(OraclePredictor::new()),
                AdapterCache::new(EvictionPolicy::chameleon()),
                WrsConfig::paper(2048.0, 1024.0, (256 << 20) as f64),
            )
        };
        (factory, trace)
    }

    #[test]
    fn completes_everything_and_balances() {
        let (mut c, trace) = cluster_and_trace(3, 60);
        c.run(&trace);
        assert_eq!(c.completed(), 60);
        // JSQ keeps dispatch counts reasonably balanced.
        let counts = c.dispatch_counts().to_vec();
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min.max(1.0) < 4.0, "imbalanced: {counts:?}");
        let report = c.into_report();
        assert_eq!(report.records.len(), 60);
        assert!(report.records.iter().all(|r| r.is_complete()));
    }

    #[test]
    fn more_engines_cut_latency_under_load() {
        let (mut one, trace) = cluster_and_trace(1, 80);
        let (mut four, _) = cluster_and_trace(4, 0);
        one.run(&trace);
        four.run(&trace);
        let p99 = |rep: &EngineReport| {
            let mut v: Vec<f64> = rep
                .records
                .iter()
                .filter_map(|r| r.ttft())
                .map(|d| d.as_secs_f64())
                .collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let i = ((v.len() as f64 * 0.99) as usize).min(v.len() - 1);
            v[i]
        };
        let r1 = one.into_report();
        let r4 = four.into_report();
        assert_eq!(r4.records.len(), 80);
        assert!(
            p99(&r4) <= p99(&r1),
            "4 engines should not be slower than 1"
        );
    }

    /// The extracted JoinShortestQueue policy reproduces the seed
    /// dispatcher byte for byte: `Cluster::new` (which delegates to the
    /// router) and a hand-rolled min-outstanding-tokens dispatch make
    /// identical choices, so the refactor is behaviour-preserving.
    #[test]
    fn default_router_preserves_jsq_dispatch_behaviour() {
        let (factory, trace) = factory_and_trace(120);
        let mut via_router = Cluster::new(3, factory);
        via_router.run(&trace);

        // Reference run: the pre-refactor inlined global scheduler.
        let (factory, _) = factory_and_trace(0);
        let mut reference = ReferenceJsqCluster::new(3, factory);
        reference.run(&trace);

        assert_eq!(via_router.dispatch_counts(), &reference.dispatched[..]);
        assert_eq!(via_router.completed(), reference.completed());
        let a = via_router.into_report();
        let b = reference.into_report();
        let key = |rep: &EngineReport| {
            rep.records
                .iter()
                .map(|r| (r.id, r.first_token, r.finished))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&a), key(&b), "per-request timings diverged");
    }

    /// Verbatim re-implementation of the pre-refactor cluster dispatch
    /// loop (global scheduler inlined as `min_by_key(outstanding_tokens)`),
    /// kept as the behaviour-preservation oracle.
    struct ReferenceJsqCluster {
        engines: Vec<Engine>,
        dispatched: Vec<u64>,
    }

    impl ReferenceJsqCluster {
        fn new<F: FnMut(usize) -> Engine>(n: usize, mut factory: F) -> Self {
            ReferenceJsqCluster {
                engines: (0..n).map(&mut factory).collect(),
                dispatched: vec![0; n],
            }
        }

        fn completed(&self) -> u64 {
            self.engines.iter().map(|e| e.completed()).sum()
        }

        fn into_report(self) -> EngineReport {
            let mut reports = self.engines.into_iter().map(Engine::into_report);
            let mut merged = reports.next().expect("non-empty cluster");
            for r in reports {
                merged.merge(r);
            }
            merged
        }

        fn run(&mut self, trace: &Trace) -> SimTime {
            enum Ev {
                Arrival(chameleon_workload::Request),
                Engine(usize, EngineEvent),
            }
            let mut q: EventQueue<Ev> = EventQueue::with_capacity(trace.len() * 4);
            let mut arrivals_left = trace.len();
            for r in trace {
                q.push(r.arrival(), Ev::Arrival(*r));
            }
            let mem_int = self.engines[0].config().mem_sample_interval;
            let refresh_int = self.engines[0].config().refresh_interval;
            for i in 0..self.engines.len() {
                q.push(
                    SimTime::ZERO + mem_int,
                    Ev::Engine(i, EngineEvent::MemSample),
                );
                q.push(
                    SimTime::ZERO + refresh_int,
                    Ev::Engine(i, EngineEvent::Refresh),
                );
            }
            let mut out = Vec::new();
            let mut last = SimTime::ZERO;
            while let Some((t, ev)) = q.pop() {
                last = t;
                match ev {
                    Ev::Arrival(req) => {
                        arrivals_left -= 1;
                        let target = (0..self.engines.len())
                            .min_by_key(|&i| self.engines[i].outstanding_tokens())
                            .expect("non-empty cluster");
                        self.dispatched[target] += 1;
                        self.engines[target].handle(t, EngineEvent::Arrival(req), &mut out);
                        for (at, e) in out.drain(..) {
                            q.push(at, Ev::Engine(target, e));
                        }
                    }
                    Ev::Engine(i, ev) => {
                        let reschedule = match &ev {
                            EngineEvent::MemSample => Some((t + mem_int, EngineEvent::MemSample)),
                            EngineEvent::Refresh => Some((t + refresh_int, EngineEvent::Refresh)),
                            _ => None,
                        };
                        let periodic = reschedule.is_some();
                        self.engines[i].handle(t, ev, &mut out);
                        for (at, e) in out.drain(..) {
                            q.push(at, Ev::Engine(i, e));
                        }
                        if periodic && (arrivals_left > 0 || self.engines[i].has_work()) {
                            let (at, e) = reschedule.expect("periodic");
                            q.push(at, Ev::Engine(i, e));
                        }
                    }
                }
            }
            last
        }
    }

    #[test]
    fn every_policy_drains_the_cluster() {
        for policy in RouterPolicy::ALL {
            let (factory, trace) = factory_and_trace(50);
            let mut c = Cluster::with_router(3, factory, policy.build(11));
            c.run(&trace);
            assert_eq!(c.completed(), 50, "{} lost requests", policy.name());
            let stats = c.routing_stats().clone();
            assert_eq!(stats.dispatched, 50);
            assert_eq!(stats.per_engine.iter().sum::<u64>(), 50);
            assert_eq!(stats.policy, policy.name());
            let report = c.into_report();
            assert_eq!(report.routing, stats, "routing stats reach the report");
        }
    }

    #[test]
    fn round_robin_splits_exactly() {
        let (factory, trace) = factory_and_trace(60);
        let mut c = Cluster::with_router(3, factory, RouterPolicy::RoundRobin.build(0));
        c.run(&trace);
        assert_eq!(c.dispatch_counts(), &[20, 20, 20]);
        assert_eq!(c.routing_stats().load_imbalance(), 0.0);
    }

    #[test]
    fn drain_stops_dispatch_finishes_work_and_rehomes_one_shard() {
        let (mut factory, trace) = factory_and_trace(80);
        let probe = factory(0);
        let mut c = Cluster::with_router(4, factory, Box::new(AdapterAffinity::new()));

        // The departing shard, computed independently of the cluster's
        // accounting from the pure rendezvous function. Drain an engine
        // (other than 0, which must survive) that is home to something.
        let weights: Vec<(EngineId, f64)> = (0..4)
            .map(|i| (EngineId(i), probe.capacity_weight()))
            .collect();
        let shard_of = |victim: EngineId| -> Vec<AdapterId> {
            probe
                .pool()
                .iter()
                .map(|s| s.id())
                .filter(|&a| {
                    weights[policies::rendezvous_home(a, weights.iter().copied())].0 == victim
                })
                .collect()
        };
        let victim = (1..4)
            .map(EngineId)
            .find(|&v| !shard_of(v).is_empty())
            .expect("some engine past 0 holds a shard");
        let shard = shard_of(victim);
        let survivors: Vec<(EngineId, f64)> = weights
            .iter()
            .copied()
            .filter(|&(id, _)| id != victim)
            .collect();

        assert!(c.drain_engine(victim));
        assert!(!c.drain_engine(victim), "double drain is refused");
        assert_eq!(c.active_engines(), 3);
        assert_eq!(
            c.routing_stats().adapters_rehomed,
            shard.len() as u64,
            "drain must migrate exactly the departing shard"
        );
        // Every re-homed adapter now homes where the survivors' rendezvous
        // puts it.
        for &a in &shard {
            let expect = survivors[policies::rendezvous_home(a, survivors.iter().copied())].0;
            assert_eq!(c.home_of(a), expect);
        }

        c.run(&trace);
        assert_eq!(c.completed(), 80, "drain lost requests");
        assert_eq!(
            c.routing_stats().dispatched_to(victim),
            0,
            "drained engine must receive no dispatches"
        );
        assert_eq!(c.len(), 3, "idle drained engine was retired");
        let report = c.into_report();
        assert_eq!(report.records.len(), 80);
        assert_eq!(report.routing.engines_drained, 1);
    }

    #[test]
    fn drain_mid_run_finishes_in_flight_work_on_the_victim() {
        // Dispatch some work first, then drain an engine that has it.
        let (factory, trace) = factory_and_trace(60);
        let mut c = Cluster::with_router(2, factory, Box::new(AdapterAffinity::new()));
        let half: Trace = Trace::new(trace.requests()[..30].to_vec());
        let rest: Trace = Trace::new(trace.requests()[30..].to_vec());
        c.run(&half);
        let before = c.routing_stats().dispatched_to(EngineId(0));
        assert!(c.drain_engine(EngineId(0)));
        c.run(&rest);
        assert_eq!(c.completed(), 60);
        assert_eq!(
            c.routing_stats().dispatched_to(EngineId(0)),
            before,
            "no dispatches after drain"
        );
        assert!(!c.drain_engine(EngineId(1)), "last active engine stays");
    }

    #[test]
    fn add_engine_attracts_only_its_own_shard() {
        let (mut factory, trace) = factory_and_trace(60);
        let newcomer = factory(9);
        let mut c = Cluster::with_router(2, factory, Box::new(AdapterAffinity::new()));
        let before: Vec<(EngineId, f64)> = c
            .active_engine_ids()
            .iter()
            .map(|&id| (id, newcomer.capacity_weight()))
            .collect();
        let mut after = before.clone();
        after.push((EngineId(2), newcomer.capacity_weight()));
        let expected: u64 = newcomer
            .pool()
            .iter()
            .filter(|s| {
                before[policies::rendezvous_home(s.id(), before.iter().copied())].0
                    != after[policies::rendezvous_home(s.id(), after.iter().copied())].0
            })
            .count() as u64;
        let id = c.add_engine(newcomer);
        assert_eq!(id, EngineId(2));
        assert_eq!(c.routing_stats().adapters_rehomed, expected);
        assert_eq!(c.routing_stats().engines_added, 1);
        c.run(&trace);
        assert_eq!(c.completed(), 60);
        assert!(
            c.routing_stats().dispatched_to(id) > 0,
            "newcomer received nothing"
        );
    }

    #[test]
    fn jsq_fleet_changes_rehome_nothing() {
        let (mut factory, _) = factory_and_trace(0);
        let newcomer = factory(9);
        let mut c = Cluster::new(2, factory);
        c.add_engine(newcomer);
        c.drain_engine(EngineId(0));
        assert_eq!(
            c.routing_stats().adapters_rehomed,
            0,
            "queue-depth policies have no homes to migrate"
        );
    }

    #[test]
    fn autoscaler_grows_and_drains_mid_trace() {
        // An overload burst on a deliberately small fleet: the controller
        // must grow, then drain back while the backlog clears.
        let (factory, trace) = factory_and_trace_at(2000.0, 600);
        let mut grow_factory = {
            let (mut f, _) = factory_and_trace(0);
            move |id: EngineId| f(id.0 as usize)
        };
        let mut c = Cluster::with_router(2, factory, Box::new(AdapterAffinity::new()));
        let mut scaler = Autoscaler::new(AutoscalerConfig {
            min_engines: 2,
            max_engines: 4,
            interval: SimDuration::from_millis(100),
            scale_up_mean_queue: 4.0,
            scale_up_max_queue: 32,
            scale_down_mean_queue: 0.5,
            cooldown: SimDuration::from_millis(250),
        });
        c.run_elastic(&trace, &mut scaler, &mut grow_factory);
        assert_eq!(c.completed(), 600, "elastic run lost requests");
        let stats = c.routing_stats();
        assert!(
            stats.engines_added > 0,
            "burst never triggered scale-up: {:?}",
            scaler.actions()
        );
        assert!(
            stats.engines_drained > 0,
            "fleet never shrank back: {:?}",
            scaler.actions()
        );
        assert!(stats.adapters_rehomed > 0, "no migration accounted");
        let report = c.into_report();
        assert_eq!(report.records.len(), 600);
        assert!(report.records.iter().all(|r| r.is_complete()));
    }
}
