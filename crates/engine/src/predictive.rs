//! Configuration of the cluster-level predictive control plane.
//!
//! Chameleon's §4.2 thesis — act *before* load lands — applied to the
//! cluster layer. Three mechanisms, each individually switchable and all
//! off by default (the control plane is a strict opt-in overlay; with it
//! disabled every cluster run is byte-identical to the reactive stack):
//!
//! * **Burst pre-replication** — the coordinator runs a
//!   [`HistogramLoadPredictor`] over dispatch-time arrivals; when an
//!   adapter is predicted to be used within [`window`] and its observed
//!   arrival rate exceeds [`min_rate`], its weights are warmed onto the
//!   adapter's *second* rendezvous choice (the stable spill fallback)
//!   ahead of the burst, so affinity spill lands on a warm replica
//!   instead of a cold engine.
//! * **Forecast-driven autoscaling** — the predicted-arrivals count over
//!   the controller's evaluation interval is folded into the scale-up
//!   signal (see [`ForecastSignal`]), so the fleet grows on forecast
//!   pressure rather than realised queue depth. The companion SLO signal
//!   (per-engine TTFT-violation estimates) is configured on
//!   [`AutoscalerConfig::ttft_slo`] directly.
//! * **Drain-time shard handoff** — when the autoscaler drains an engine,
//!   the departing shard's resident adapters are pushed into the
//!   survivors' caches through their PCIe links (cost-modelled warm
//!   transfers) instead of being reloaded on demand after the first
//!   post-drain miss.
//!
//! All predictor updates and warm decisions happen at coordinator
//! barriers, so every predictive configuration stays bit-identical
//! between serial and parallel cluster execution.
//!
//! [`HistogramLoadPredictor`]: chameleon_predictor::HistogramLoadPredictor
//! [`window`]: PredictiveSpec::window
//! [`min_rate`]: PredictiveSpec::min_rate
//! [`ForecastSignal`]: crate::autoscaler::ForecastSignal
//! [`AutoscalerConfig::ttft_slo`]: crate::autoscaler::AutoscalerConfig::ttft_slo

use chameleon_simcore::SimDuration;

/// Tunables of the predictive control plane. Construct with
/// [`PredictiveSpec::new`] (everything enabled) and switch individual
/// mechanisms off, or start from a single-mechanism constructor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictiveSpec {
    /// Warm predicted-hot adapters onto their second rendezvous choice
    /// ahead of bursts.
    pub prereplicate: bool,
    /// Pre-replicate an adapter when its predicted next use falls within
    /// this window from now.
    pub window: SimDuration,
    /// ... and its estimated arrival rate (requests/second) is at least
    /// this — cold long-tail adapters are never worth a speculative copy.
    pub min_rate: f64,
    /// Upper bound on warm transfers issued per coordinator barrier, so a
    /// popularity shift cannot flood the PCIe links in one instant.
    pub max_warms_per_barrier: usize,
    /// Per-adapter cooldown between pre-replication attempts (a warm that
    /// was evicted again is not worth re-issuing every arrival).
    pub rewarm_interval: SimDuration,
    /// Minimum gap between candidate scans: the forecast is recomputed at
    /// most this often, bounding control-plane work per simulated second.
    pub scan_interval: SimDuration,
    /// Wire the run's TTFT SLO into the autoscaler as a per-engine
    /// violation-estimate trigger (the simulation layer translates this
    /// into [`AutoscalerConfig::ttft_slo`](crate::autoscaler::AutoscalerConfig::ttft_slo)).
    pub slo_autoscale: bool,
    /// Feed the predicted-arrivals signal into the autoscaler's scale-up
    /// decision.
    pub forecast_autoscale: bool,
    /// Push a draining engine's shard into the survivors' caches.
    pub handoff: bool,
}

impl PredictiveSpec {
    /// Every mechanism enabled with the default tunables: 10 s
    /// pre-replication window, 0.2 req/s rate floor, 2 warms per barrier,
    /// 30 s re-warm cooldown, 250 ms scan throttle.
    pub fn new() -> Self {
        PredictiveSpec {
            prereplicate: true,
            window: SimDuration::from_secs(10),
            min_rate: 0.2,
            max_warms_per_barrier: 2,
            rewarm_interval: SimDuration::from_secs(30),
            scan_interval: SimDuration::from_millis(250),
            slo_autoscale: true,
            forecast_autoscale: true,
            handoff: true,
        }
    }

    /// Only burst pre-replication (controller and drain path reactive).
    pub fn prereplicate_only() -> Self {
        PredictiveSpec {
            slo_autoscale: false,
            forecast_autoscale: false,
            handoff: false,
            ..PredictiveSpec::new()
        }
    }

    /// Only drain-time shard handoff (no speculative warms, reactive
    /// controller).
    pub fn handoff_only() -> Self {
        PredictiveSpec {
            prereplicate: false,
            slo_autoscale: false,
            forecast_autoscale: false,
            ..PredictiveSpec::new()
        }
    }

    /// Overrides the pre-replication imminence window.
    pub fn with_window(mut self, window: SimDuration) -> Self {
        self.window = window;
        self
    }

    /// Overrides the arrival-rate floor.
    pub fn with_min_rate(mut self, min_rate: f64) -> Self {
        self.min_rate = min_rate;
        self
    }

    /// Overrides the per-adapter re-warm cooldown.
    pub fn with_rewarm_interval(mut self, interval: SimDuration) -> Self {
        self.rewarm_interval = interval;
        self
    }
}

impl Default for PredictiveSpec {
    fn default() -> Self {
        PredictiveSpec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_everything() {
        let s = PredictiveSpec::new();
        assert!(s.prereplicate && s.slo_autoscale && s.forecast_autoscale && s.handoff);
        assert!(s.min_rate > 0.0);
        assert!(!s.window.is_zero());
        assert!(s.max_warms_per_barrier > 0);
    }

    #[test]
    fn single_mechanism_constructors() {
        let p = PredictiveSpec::prereplicate_only();
        assert!(p.prereplicate && !p.handoff && !p.slo_autoscale && !p.forecast_autoscale);
        let h = PredictiveSpec::handoff_only();
        assert!(h.handoff && !h.prereplicate && !h.slo_autoscale && !h.forecast_autoscale);
    }

    #[test]
    fn builders_override_tunables() {
        let s = PredictiveSpec::new()
            .with_window(SimDuration::from_secs(3))
            .with_min_rate(1.5)
            .with_rewarm_interval(SimDuration::from_secs(7));
        assert_eq!(s.window, SimDuration::from_secs(3));
        assert_eq!(s.min_rate, 1.5);
        assert_eq!(s.rewarm_interval, SimDuration::from_secs(7));
    }
}
