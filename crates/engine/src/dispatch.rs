//! Amortised dispatch barriers: configuration for arrival batching and
//! bounded-staleness routing.
//!
//! The legacy cluster loop pays one coordinator barrier per arriving
//! request because every `Router::route` call reads freshly filled
//! per-engine snapshots — arrival rate, not engine work, sets the epoch
//! count and caps parallel speedup. Batched dispatch coalesces
//! consecutive arrivals into a single barrier and routes the whole run
//! from one cached snapshot generation:
//!
//! * **State-independent** routers (pure weighted rendezvous with spill
//!   disabled, round-robin) never read load fields, so batches are
//!   unbounded — they end only at the next *non-coalescible* cross event
//!   (autoscaler tick, fault barrier) — and the routed placements are
//!   byte-identical to per-arrival dispatch (digest-pinned oracle in
//!   `tests/batched_dispatch.rs`).
//! * **Bounded-staleness** routers (JSQ, power-of-two,
//!   adapter-affinity-with-spill) declare a `(max_batch, max_age)`
//!   budget via `Router::staleness`; the coordinator refreshes the
//!   snapshots at each batch barrier and *echoes its own placements*
//!   into the cached generation (queue depth +1, outstanding tokens +=
//!   request charge), so the only state a batch member cannot observe is
//!   work that completed since the refresh. The cached queue depth
//!   therefore never drifts from the frozen generation by more than the
//!   batch size per engine — the documented, property-tested imbalance
//!   bound (`chameleon_router::policies` property suite).
//!
//! Batched dispatch is a strict opt-in overlay: with [`DispatchSpec`]
//! unset the cluster runs the legacy per-arrival path untouched.

use chameleon_simcore::SimDuration;

/// Opt-in configuration for amortised dispatch barriers.
///
/// Presence of a spec enables arrival batching; the optional fields
/// *tighten* the router's declared staleness budget (they can never
/// loosen it — the effective budget is the minimum of both). For
/// state-independent routers the declared budget is unbounded, so the
/// overrides are the only limit.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DispatchSpec {
    /// Cap on arrivals coalesced into one barrier (`None` = the router's
    /// declared budget).
    pub max_batch: Option<u32>,
    /// Cap on the trace-time span of one batch (`None` = the router's
    /// declared budget).
    pub max_age: Option<SimDuration>,
}

impl DispatchSpec {
    /// Batched dispatch at the router's own declared staleness budget.
    pub fn new() -> Self {
        DispatchSpec::default()
    }

    /// Batched dispatch with an explicit budget tighter than (or equal
    /// to) the router's declaration.
    pub fn with_budget(max_batch: u32, max_age: SimDuration) -> Self {
        assert!(max_batch > 0, "a zero batch budget cannot dispatch");
        DispatchSpec {
            max_batch: Some(max_batch),
            max_age: Some(max_age),
        }
    }

    /// The effective budget against a router-declared `(max_batch,
    /// max_age)`: the spec can only tighten.
    pub fn effective(&self, declared_batch: u32, declared_age: SimDuration) -> (u32, SimDuration) {
        (
            self.max_batch
                .map_or(declared_batch, |b| b.min(declared_batch)),
            self.max_age.map_or(declared_age, |a| a.min(declared_age)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_defers_to_the_router_budget() {
        let spec = DispatchSpec::new();
        assert_eq!(
            spec.effective(32, SimDuration::from_millis(50)),
            (32, SimDuration::from_millis(50))
        );
    }

    #[test]
    fn overrides_only_tighten() {
        let spec = DispatchSpec::with_budget(8, SimDuration::from_millis(10));
        assert_eq!(
            spec.effective(32, SimDuration::from_millis(50)),
            (8, SimDuration::from_millis(10))
        );
        // Against an unbounded (state-independent) declaration the spec
        // is the only limit.
        assert_eq!(
            spec.effective(u32::MAX, SimDuration::MAX),
            (8, SimDuration::from_millis(10))
        );
        // A looser spec cannot widen a tight declaration.
        let loose = DispatchSpec::with_budget(1000, SimDuration::from_secs(1));
        assert_eq!(
            loose.effective(32, SimDuration::from_millis(50)),
            (32, SimDuration::from_millis(50))
        );
    }

    #[test]
    #[should_panic(expected = "zero batch budget")]
    fn zero_batch_budget_is_rejected() {
        let _ = DispatchSpec::with_budget(0, SimDuration::ZERO);
    }
}
