//! The serving engine: event-driven continuous batching with adapter
//! orchestration (§2, §4).
//!
//! [`Engine`] models one inference engine — a GPU (or tensor-parallel GPU
//! group) running a base LLM with LoRA adapters:
//!
//! * **Iteration-level scheduling** (Orca-style continuous batching): at
//!   every iteration boundary the active [`Scheduler`] may admit waiting
//!   requests into the running batch and completed requests leave.
//! * **Adapter orchestration**: admissions acquire their adapter from the
//!   [`AdapterCache`] (hit) or trigger a host→GPU load over the shared
//!   [`PcieLink`] (miss); prefill cannot start before the adapter is
//!   resident, which puts loading on the TTFT critical path exactly as in
//!   S-LoRA (§3.2). Queued-request adapters are prefetched asynchronously.
//! * **Memory discipline**: KV blocks, in-use adapters and cached adapters
//!   share one [`MemoryPool`]; the cache dynamically shrinks under load
//!   (§4.2 dynamic sizing) and admission is bounded by real memory.
//! * **Bypass & squash** (§4.3.3): memory-blocked heads can be bypassed by
//!   the Chameleon scheduler; the engine squashes the bypasser if the
//!   blocked request's memory frees early, and squashes the youngest
//!   running request if KV growth hits an out-of-memory condition.
//!
//! [`driver::run_engine`] drives a single engine through a trace;
//! [`cluster::Cluster`] runs N data-parallel engines behind the paper's
//! two-level (global + local) scheduler (§4.4). The global level is
//! delegated to the `chameleon_router` subsystem: each arrival is routed
//! through a pluggable [`Router`] fed per-engine [`EngineSnapshot`]s
//! (stable identity, capacity weight, queue depth, outstanding tokens,
//! free memory, resident adapters, built by [`Engine::snapshot`]).
//! [`Cluster::new`] keeps the paper's join-shortest-queue dispatch with
//! replicated adapter caches; [`Cluster::with_router`] swaps in any
//! policy — adapter-affinity routing partitions the adapter working set
//! across the fleet instead, with capacity-weighted rendezvous shards on
//! heterogeneous (mixed-TP) fleets.
//!
//! The fleet is *elastic*: [`Cluster::add_engine`] and
//! [`Cluster::drain_engine`] change it at runtime (a drain stops new
//! dispatches, lets in-flight work finish, and re-homes only the
//! departing adapter shard), and [`Cluster::run_elastic`] drives a trace
//! with a queue-depth-watching [`Autoscaler`] growing and shrinking the
//! fleet mid-trace. Routing outcomes (per-engine dispatch counts keyed by
//! `EngineId`, affinity hit rate, spill rate, load imbalance, engines
//! added/drained, adapters re-homed) land in [`EngineReport::routing`].
//!
//! Cluster runs step engines between cross-engine barriers in *epochs*
//! (see the [`cluster`] module docs); [`Cluster::run_with`] and
//! [`Cluster::run_elastic_with`] select a [`ClusterExecution`] mode —
//! [`ClusterExecution::Parallel`] steps the engines on worker threads
//! with results bit-identical to the serial loop.
//!
//! [`Scheduler`]: chameleon_sched::Scheduler
//! [`AdapterCache`]: chameleon_cache::AdapterCache
//! [`PcieLink`]: chameleon_gpu::PcieLink
//! [`MemoryPool`]: chameleon_gpu::MemoryPool
//! [`Router`]: chameleon_router::Router
//! [`EngineSnapshot`]: chameleon_router::EngineSnapshot

pub mod autoscaler;
pub mod cluster;
pub mod config;
pub mod dispatch;
pub mod driver;
pub mod engine;
pub mod kv_spec;
pub mod predictive;
pub mod probe;
pub mod report;

pub use autoscaler::{Autoscaler, AutoscalerConfig, ForecastSignal, ScaleAction, ScaleTrigger};
pub use chameleon_fault::{FaultSpec, StragglerWindow};
pub use cluster::{Cluster, ClusterExecution};
pub use config::EngineConfig;
pub use dispatch::DispatchSpec;
pub use engine::{Engine, EngineEvent};
pub use kv_spec::KvSpec;
pub use predictive::PredictiveSpec;
pub use report::EngineReport;
