//! Locality-aware fleet autoscaling.
//!
//! The controller behind [`Cluster::run_elastic`](crate::Cluster::run_elastic):
//! it watches per-engine queue depth (the backlog that turns into TTFT SLO
//! violations once it exceeds what an engine can drain inside the SLO) and
//! decides, on a fixed cadence, whether the fleet should grow, shrink, or
//! hold. The *decision* lives here; the *mechanism* — spawning an engine,
//! draining one with minimal adapter re-homing — is the cluster's
//! add/drain lifecycle, so the controller stays a pure, unit-testable
//! policy over [`EngineSnapshot`]s.
//!
//! Two predictive signals extend the realised-queue-depth triggers, both
//! off by default so the reactive controller's decisions are unchanged
//! until a run opts in:
//!
//! * **SLO pressure** ([`AutoscalerConfig::ttft_slo`]): each snapshot
//!   carries a per-engine TTFT-violation estimate (the engine's backlog
//!   priced through its isolated-latency oracle,
//!   [`EngineSnapshot::est_ttft_secs`]); any engine whose estimate
//!   exceeds the SLO is a violation in the making and fires scale-up even
//!   while raw queue depths look tolerable.
//! * **Forecast pressure** ([`ForecastSignal`]): the cluster's load
//!   predictor supplies the arrivals expected within the next evaluation
//!   interval; [`Autoscaler::decide_with`] folds them into the mean-queue
//!   test, so the fleet grows *before* a predicted burst lands.
//!
//! [`Autoscaler::last_trigger`] reports which signal fired, letting the
//! cluster account predictive scale-ups separately from reactive ones.

use chameleon_router::{EngineId, EngineSnapshot};
use chameleon_simcore::{SimDuration, SimTime};

/// Tunables of the queue-depth/SLO-watching controller.
#[derive(Debug, Clone)]
pub struct AutoscalerConfig {
    /// Never drain below this many active engines.
    pub min_engines: usize,
    /// Never grow the *total* fleet (active + still-draining engines)
    /// beyond this.
    pub max_engines: usize,
    /// Evaluation cadence.
    pub interval: SimDuration,
    /// Grow when the mean queue depth per active engine exceeds this.
    pub scale_up_mean_queue: f64,
    /// Grow when *any* engine's queue depth exceeds this (a saturated
    /// home engine is an SLO violation in the making even when the fleet
    /// mean looks healthy — affinity routing concentrates load).
    pub scale_up_max_queue: usize,
    /// Drain when the mean queue depth per active engine falls below this.
    pub scale_down_mean_queue: f64,
    /// Minimum time between consecutive scaling actions, so one burst
    /// does not trigger a grow/drain oscillation.
    pub cooldown: SimDuration,
    /// TTFT SLO for the violation-estimate trigger: grow when any active
    /// engine's [`EngineSnapshot::est_ttft_secs`] exceeds it. `None` (the
    /// default) disables the signal, leaving the controller purely
    /// queue-depth-reactive.
    pub ttft_slo: Option<SimDuration>,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        AutoscalerConfig {
            min_engines: 1,
            max_engines: 8,
            interval: SimDuration::from_secs(5),
            scale_up_mean_queue: 8.0,
            scale_up_max_queue: 64,
            scale_down_mean_queue: 1.0,
            cooldown: SimDuration::from_secs(20),
            ttft_slo: None,
        }
    }
}

/// One scaling decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleAction {
    /// Fleet stays as is.
    Hold,
    /// Add one engine.
    ScaleUp,
    /// Drain the named engine.
    Drain(EngineId),
}

/// Which signal fired the most recent scale-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleTrigger {
    /// Realised queue depth crossed a reactive threshold.
    QueueDepth,
    /// An engine's TTFT-violation estimate exceeded the configured SLO
    /// while queue depths alone would have held.
    SloEstimate,
    /// Predicted arrivals pushed the projected mean queue over the
    /// threshold while realised depth alone would have held.
    Forecast,
}

/// Predicted load handed to [`Autoscaler::decide_with`] by the cluster's
/// control plane. [`ForecastSignal::default`] (no predicted arrivals)
/// reproduces the reactive controller exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ForecastSignal {
    /// Requests the load predictor expects to arrive fleet-wide within the
    /// controller's next evaluation interval.
    pub predicted_arrivals: f64,
}

/// The queue-depth/SLO-watching fleet controller.
#[derive(Debug)]
pub struct Autoscaler {
    cfg: AutoscalerConfig,
    last_action_at: Option<SimTime>,
    last_trigger: Option<ScaleTrigger>,
    log: Vec<(SimTime, ScaleAction)>,
}

impl Autoscaler {
    /// Creates a controller.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (`min == 0`, `min > max`, or
    /// a non-positive interval).
    pub fn new(cfg: AutoscalerConfig) -> Self {
        assert!(cfg.min_engines > 0, "min_engines must be positive");
        assert!(cfg.min_engines <= cfg.max_engines, "min > max");
        assert!(!cfg.interval.is_zero(), "zero evaluation interval");
        Autoscaler {
            cfg,
            last_action_at: None,
            last_trigger: None,
            log: Vec::new(),
        }
    }

    /// The controller configuration.
    pub fn config(&self) -> &AutoscalerConfig {
        &self.cfg
    }

    /// Every non-hold decision taken so far, in time order.
    pub fn actions(&self) -> &[(SimTime, ScaleAction)] {
        &self.log
    }

    /// The signal that fired the most recent scale-up (None before any).
    pub fn last_trigger(&self) -> Option<ScaleTrigger> {
        self.last_trigger
    }

    /// Decides on the fleet given snapshots of the *active* engines plus
    /// the number still draining. Non-hold decisions start the cooldown
    /// clock.
    ///
    /// `max_engines` bounds the *total* fleet (active + draining): a
    /// draining engine still occupies its hardware until its in-flight
    /// work finishes, so a burst arriving mid-drain cannot push the
    /// simulated fleet past the cap.
    pub fn decide(
        &mut self,
        now: SimTime,
        engines: &[EngineSnapshot],
        draining: usize,
    ) -> ScaleAction {
        self.decide_with(now, engines, draining, &ForecastSignal::default())
    }

    /// [`Autoscaler::decide`] with a predicted-load signal folded in: the
    /// forecast arrivals are spread over the active engines and added to
    /// the mean-queue tests (both scale-up and scale-down — the fleet
    /// neither ignores a predicted burst nor drains into one). With the
    /// default (zero) signal and no [`AutoscalerConfig::ttft_slo`], the
    /// decision is identical to the purely reactive controller.
    pub fn decide_with(
        &mut self,
        now: SimTime,
        engines: &[EngineSnapshot],
        draining: usize,
        signal: &ForecastSignal,
    ) -> ScaleAction {
        if engines.is_empty() {
            return ScaleAction::Hold;
        }
        if let Some(last) = self.last_action_at {
            if now.saturating_since(last) < self.cfg.cooldown {
                return ScaleAction::Hold;
            }
        }
        let n = engines.len();
        let mean_queue = engines.iter().map(|s| s.queue_depth).sum::<usize>() as f64 / n as f64;
        let max_queue = engines.iter().map(|s| s.queue_depth).max().unwrap_or(0);
        let projected_mean = mean_queue + signal.predicted_arrivals.max(0.0) / n as f64;
        let queue_up =
            mean_queue > self.cfg.scale_up_mean_queue || max_queue > self.cfg.scale_up_max_queue;
        let slo_up = self
            .cfg
            .ttft_slo
            .is_some_and(|slo| engines.iter().any(|s| s.est_ttft_secs > slo.as_secs_f64()));
        let forecast_up = projected_mean > self.cfg.scale_up_mean_queue;
        let action = if n + draining < self.cfg.max_engines && (queue_up || slo_up || forecast_up) {
            self.last_trigger = Some(if queue_up {
                ScaleTrigger::QueueDepth
            } else if slo_up {
                ScaleTrigger::SloEstimate
            } else {
                ScaleTrigger::Forecast
            });
            ScaleAction::ScaleUp
        } else if n > self.cfg.min_engines && projected_mean < self.cfg.scale_down_mean_queue {
            // Drain the least-loaded engine; among ties the newest (highest
            // id), so the fleet shrinks back the way it grew.
            let victim = engines
                .iter()
                .min_by_key(|s| (s.outstanding_tokens, std::cmp::Reverse(s.id)))
                .expect("non-empty");
            ScaleAction::Drain(victim.id)
        } else {
            ScaleAction::Hold
        };
        if action != ScaleAction::Hold {
            self.last_action_at = Some(now);
            self.log.push((now, action));
        }
        action
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snaps(queues: &[usize]) -> Vec<EngineSnapshot> {
        queues
            .iter()
            .enumerate()
            .map(|(i, &q)| EngineSnapshot {
                queue_depth: q,
                outstanding_tokens: q as u64 * 100,
                ..EngineSnapshot::idle(EngineId(i as u32))
            })
            .collect()
    }

    fn controller() -> Autoscaler {
        Autoscaler::new(AutoscalerConfig {
            min_engines: 2,
            max_engines: 4,
            interval: SimDuration::from_secs(5),
            scale_up_mean_queue: 8.0,
            scale_up_max_queue: 64,
            scale_down_mean_queue: 1.0,
            cooldown: SimDuration::from_secs(20),
            ttft_slo: None,
        })
    }

    #[test]
    fn scales_up_on_deep_mean_queue() {
        let mut a = controller();
        assert_eq!(
            a.decide(SimTime::from_secs_f64(5.0), &snaps(&[10, 12]), 0),
            ScaleAction::ScaleUp
        );
        assert_eq!(a.actions().len(), 1);
    }

    #[test]
    fn scales_up_on_one_saturated_engine() {
        let mut a = controller();
        assert_eq!(
            a.decide(SimTime::from_secs_f64(5.0), &snaps(&[0, 100]), 0),
            ScaleAction::ScaleUp,
            "one saturated home is SLO pressure even with a healthy mean"
        );
    }

    #[test]
    fn respects_max_engines() {
        let mut a = controller();
        assert_eq!(
            a.decide(SimTime::from_secs_f64(5.0), &snaps(&[50, 50, 50, 50]), 0),
            ScaleAction::Hold
        );
    }

    #[test]
    fn draining_engines_count_against_the_cap() {
        // 3 active + 1 draining = 4 total: at the cap, a burst must not
        // grow the fleet to 5 pieces of hardware.
        let mut a = controller();
        assert_eq!(
            a.decide(SimTime::from_secs_f64(5.0), &snaps(&[50, 50, 50]), 1),
            ScaleAction::Hold
        );
        assert_eq!(
            a.decide(SimTime::from_secs_f64(5.0), &snaps(&[50, 50, 50]), 0),
            ScaleAction::ScaleUp,
            "once the drain completes the slot frees up"
        );
    }

    #[test]
    fn drains_least_loaded_newest_down_to_min() {
        let mut a = controller();
        assert_eq!(
            a.decide(SimTime::from_secs_f64(5.0), &snaps(&[0, 0, 1]), 0),
            ScaleAction::Drain(EngineId(1)),
            "ties drain the newest idle engine"
        );
        // At the floor: hold.
        let mut b = controller();
        assert_eq!(
            b.decide(SimTime::from_secs_f64(5.0), &snaps(&[0, 0]), 0),
            ScaleAction::Hold
        );
    }

    #[test]
    fn cooldown_suppresses_consecutive_actions() {
        let mut a = controller();
        assert_eq!(
            a.decide(SimTime::from_secs_f64(5.0), &snaps(&[10, 12]), 0),
            ScaleAction::ScaleUp
        );
        assert_eq!(
            a.decide(SimTime::from_secs_f64(10.0), &snaps(&[10, 12, 0]), 0),
            ScaleAction::Hold,
            "inside cooldown"
        );
        assert_eq!(
            a.decide(SimTime::from_secs_f64(25.0), &snaps(&[10, 12, 11]), 0),
            ScaleAction::ScaleUp,
            "cooldown expired"
        );
        assert_eq!(a.actions().len(), 2);
    }

    #[test]
    fn decisions_are_deterministic() {
        let run = || {
            let mut a = controller();
            let mut out = Vec::new();
            for (t, q) in [
                (5.0, vec![10, 12]),
                (25.0, vec![9, 9, 10]),
                (45.0, vec![0, 0, 0, 0]),
                (65.0, vec![0, 0, 0]),
            ] {
                out.push(a.decide(SimTime::from_secs_f64(t), &snaps(&q), 0));
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn slo_estimate_fires_scale_up_before_queues_trip() {
        let mut a = Autoscaler::new(AutoscalerConfig {
            ttft_slo: Some(SimDuration::from_secs(5)),
            ..controller().cfg
        });
        // Shallow queues (mean 1.5, max 3: both under the thresholds) but
        // one engine's backlog already prices out past the SLO.
        let mut engines = snaps(&[0, 3]);
        engines[1].est_ttft_secs = 9.0;
        assert_eq!(
            a.decide(SimTime::from_secs_f64(5.0), &engines, 0),
            ScaleAction::ScaleUp,
            "violation estimate must fire ahead of queue depth"
        );
        assert_eq!(a.last_trigger(), Some(ScaleTrigger::SloEstimate));
        // Without the SLO configured the same snapshots hold.
        let mut reactive = controller();
        assert_eq!(
            reactive.decide(SimTime::from_secs_f64(5.0), &engines, 0),
            ScaleAction::Hold,
            "the signal must be strictly opt-in"
        );
    }

    #[test]
    fn forecast_signal_fires_scale_up_and_blocks_scale_down() {
        // Mean queue 2 (< 8): reactive holds. 20 predicted arrivals over
        // 2 engines project the mean to 12 → predictive grows.
        let mut a = controller();
        let signal = ForecastSignal {
            predicted_arrivals: 20.0,
        };
        assert_eq!(
            a.decide_with(SimTime::from_secs_f64(5.0), &snaps(&[2, 2]), 0, &signal),
            ScaleAction::ScaleUp
        );
        assert_eq!(a.last_trigger(), Some(ScaleTrigger::Forecast));
        // Idle fleet, but a heavy burst is predicted (30 arrivals over 3
        // engines project the mean to 10): pre-grow instead of idling.
        let heavy = ForecastSignal {
            predicted_arrivals: 30.0,
        };
        let mut b = controller();
        assert_eq!(
            b.decide_with(SimTime::from_secs_f64(5.0), &snaps(&[0, 0, 0]), 0, &heavy),
            ScaleAction::ScaleUp,
            "predicted burst should pre-grow an idle fleet"
        );
        let mild = ForecastSignal {
            predicted_arrivals: 4.0,
        };
        let mut c = controller();
        assert_eq!(
            c.decide_with(SimTime::from_secs_f64(5.0), &snaps(&[0, 0, 0]), 0, &mild),
            ScaleAction::Hold,
            "mild forecast blocks the drain without growing"
        );
        // Zero signal reproduces the reactive drain exactly.
        let mut d = controller();
        assert_eq!(
            d.decide_with(
                SimTime::from_secs_f64(5.0),
                &snaps(&[0, 0, 0]),
                0,
                &ForecastSignal::default()
            ),
            ScaleAction::Drain(EngineId(2)),
        );
    }

    #[test]
    fn queue_depth_trigger_takes_precedence_in_accounting() {
        let mut a = Autoscaler::new(AutoscalerConfig {
            ttft_slo: Some(SimDuration::from_secs(5)),
            ..controller().cfg
        });
        let mut engines = snaps(&[10, 12]);
        engines[0].est_ttft_secs = 100.0;
        assert_eq!(
            a.decide(SimTime::from_secs_f64(5.0), &engines, 0),
            ScaleAction::ScaleUp
        );
        assert_eq!(
            a.last_trigger(),
            Some(ScaleTrigger::QueueDepth),
            "when the reactive threshold also tripped, the scale-up is reactive"
        );
    }

    #[test]
    #[should_panic(expected = "min > max")]
    fn rejects_degenerate_bounds() {
        let _ = Autoscaler::new(AutoscalerConfig {
            min_engines: 5,
            max_engines: 2,
            ..AutoscalerConfig::default()
        });
    }
}
