//! Per-engine run reports.

use chameleon_cache::CacheStats;
use chameleon_gpu::pcie::TransferRecord;
use chameleon_metrics::{KvStats, MemorySample, RequestRecord, RoutingStats};
use chameleon_simcore::SimDuration;

/// Everything one engine measured over a run. The core crate aggregates
/// this into the experiment-level [`RunReport`](https://docs.rs/chameleon-core).
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Per-request records, sorted by arrival.
    pub records: Vec<RequestRecord>,
    /// Adapter-cache statistics.
    pub cache_stats: CacheStats,
    /// Total bytes moved over the host link.
    pub pcie_total_bytes: u64,
    /// Total time the host link was busy.
    pub pcie_busy: SimDuration,
    /// Individual transfers (for binned bandwidth series).
    pub pcie_history: Vec<TransferRecord>,
    /// Memory-occupancy samples (Figure 6).
    pub mem_series: Vec<MemorySample>,
    /// Requests squashed for re-execution (§4.3.3).
    pub squashes: u64,
    /// Scheduler label.
    pub scheduler: &'static str,
    /// Cluster-routing statistics. Default (empty) for single-engine runs;
    /// the cluster stamps the merged report with its dispatcher's stats.
    pub routing: RoutingStats,
    /// KV-memory-economy counters (admission refusals, requeue-front
    /// storms, demotions/restores, peak pressure). Default (disabled)
    /// unless a `KvSpec` armed the run.
    pub kv: KvStats,
}

impl EngineReport {
    /// Number of completed requests.
    pub fn completed(&self) -> usize {
        self.records.iter().filter(|r| r.is_complete()).count()
    }

    /// Fraction of requests that were squashed at least once.
    pub fn squash_fraction(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.squashes > 0).count() as f64 / self.records.len() as f64
    }

    /// Merges another engine's report into this one (data-parallel
    /// clusters aggregate per-engine reports). Routing statistics are
    /// cluster-scoped, not per-engine, so `merge` leaves them untouched —
    /// the cluster stamps them onto the merged report afterwards.
    pub fn merge(&mut self, other: EngineReport) {
        self.records.extend(other.records);
        self.records.sort_by_key(|r| (r.arrival, r.id));
        self.cache_stats.hits += other.cache_stats.hits;
        self.cache_stats.misses += other.cache_stats.misses;
        self.cache_stats.evictions += other.cache_stats.evictions;
        self.cache_stats.bytes_evicted += other.cache_stats.bytes_evicted;
        self.cache_stats.bytes_loaded += other.cache_stats.bytes_loaded;
        self.pcie_total_bytes += other.pcie_total_bytes;
        self.pcie_busy += other.pcie_busy;
        self.pcie_history.extend(other.pcie_history);
        self.mem_series.extend(other.mem_series);
        self.squashes += other.squashes;
        self.kv.merge(&other.kv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_models::{AdapterId, AdapterRank};
    use chameleon_simcore::SimTime;
    use chameleon_workload::RequestId;

    fn report_with(n: usize, squashed: usize) -> EngineReport {
        let records = (0..n)
            .map(|i| {
                let mut r = RequestRecord::arrive(
                    RequestId(i as u64),
                    SimTime::from_secs_f64(i as f64),
                    10,
                    10,
                    AdapterId(0),
                    AdapterRank::new(8),
                );
                r.finished = Some(SimTime::from_secs_f64(i as f64 + 1.0));
                if i < squashed {
                    r.squashes = 1;
                }
                r
            })
            .collect();
        EngineReport {
            records,
            cache_stats: CacheStats::default(),
            pcie_total_bytes: 100,
            pcie_busy: SimDuration::from_millis(5),
            pcie_history: Vec::new(),
            mem_series: Vec::new(),
            squashes: squashed as u64,
            scheduler: "test",
            routing: RoutingStats::default(),
            kv: KvStats::default(),
        }
    }

    #[test]
    fn squash_fraction() {
        let r = report_with(10, 2);
        assert!((r.squash_fraction() - 0.2).abs() < 1e-12);
        assert_eq!(r.completed(), 10);
        assert_eq!(report_with(0, 0).squash_fraction(), 0.0);
    }

    #[test]
    fn merge_aggregates() {
        let mut a = report_with(3, 1);
        let b = report_with(2, 0);
        a.merge(b);
        assert_eq!(a.records.len(), 5);
        assert_eq!(a.pcie_total_bytes, 200);
        assert_eq!(a.squashes, 1);
    }
}
