//! Single-engine simulation driver.

use crate::engine::{Engine, EngineEvent};
use chameleon_simcore::{EventQueue, SimTime};
use chameleon_workload::Trace;

/// Drives `engine` through `trace` until every request completes and the
/// system drains. Returns the instant of the last processed event.
///
/// Periodic [`EngineEvent::MemSample`] and [`EngineEvent::Refresh`] events
/// fire at the intervals in the engine's configuration while work remains.
pub fn run_engine(engine: &mut Engine, trace: &Trace) -> SimTime {
    run_engine_counted(engine, trace).0
}

/// Like [`run_engine`], additionally returning the number of events
/// processed (the denominator of the benchmark harness's events/sec).
pub fn run_engine_counted(engine: &mut Engine, trace: &Trace) -> (SimTime, u64) {
    // Pending events peak at roughly the not-yet-consumed arrivals (all
    // pushed up front) plus a handful of in-flight engine events, so the
    // heap is sized from the trace rather than grown by doubling.
    let mut q: EventQueue<EngineEvent> = EventQueue::with_capacity(trace.len() + 16);
    let mut arrivals_left = trace.len();
    for r in trace {
        q.push(r.arrival(), EngineEvent::Arrival(*r));
    }
    let mem_int = engine.config().mem_sample_interval;
    let refresh_int = engine.config().refresh_interval;
    q.push(SimTime::ZERO + mem_int, EngineEvent::MemSample);
    q.push(SimTime::ZERO + refresh_int, EngineEvent::Refresh);

    let mut out = Vec::new();
    let mut last = SimTime::ZERO;
    while let Some((t, ev)) = q.pop() {
        last = t;
        let periodic = matches!(ev, EngineEvent::MemSample | EngineEvent::Refresh);
        if matches!(ev, EngineEvent::Arrival(_)) {
            arrivals_left -= 1;
        }
        let reschedule = match &ev {
            EngineEvent::MemSample => Some((t + mem_int, EngineEvent::MemSample)),
            EngineEvent::Refresh => Some((t + refresh_int, EngineEvent::Refresh)),
            _ => None,
        };
        engine.handle(t, ev, &mut out);
        for (at, e) in out.drain(..) {
            q.push(at, e);
        }
        if periodic && (arrivals_left > 0 || engine.has_work()) {
            let (at, e) = reschedule.expect("periodic events always reschedule");
            q.push(at, e);
        }
    }
    (last, q.processed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use chameleon_cache::{AdapterCache, EvictionPolicy};
    use chameleon_models::{AdapterPool, GpuSpec, LlmSpec, PoolConfig};
    use chameleon_predictor::OraclePredictor;
    use chameleon_sched::{FifoScheduler, WrsConfig};
    use chameleon_simcore::SimRng;
    use chameleon_workload::{ArrivalModel, LengthModel, TraceGenerator};

    fn small_trace(n: usize, rps: f64) -> (AdapterPool, Trace) {
        let llm = LlmSpec::llama_7b();
        let pool = AdapterPool::generate(&llm, &PoolConfig::paper_default(20));
        let gen = TraceGenerator::new(
            LengthModel::Custom {
                input: chameleon_workload::generator::TokenLengthModel {
                    median: 64.0,
                    sigma: 0.5,
                    min: 8,
                    max: 256,
                },
                output: chameleon_workload::generator::TokenLengthModel {
                    median: 16.0,
                    sigma: 0.5,
                    min: 2,
                    max: 64,
                },
            },
            ArrivalModel::poisson(rps),
        );
        let mut rng = SimRng::seed(42);
        let trace = gen.generate_n(&pool, n, &mut rng);
        (pool, trace)
    }

    fn engine(pool: AdapterPool) -> Engine {
        let cfg = EngineConfig::new(LlmSpec::llama_7b(), GpuSpec::a40());
        Engine::new(
            cfg,
            pool,
            Box::new(FifoScheduler::new()),
            Box::new(OraclePredictor::new()),
            AdapterCache::new(EvictionPolicy::chameleon()),
            WrsConfig::paper(2048.0, 1024.0, (256 << 20) as f64),
        )
    }

    #[test]
    fn drains_full_trace() {
        let (pool, trace) = small_trace(50, 5.0);
        let mut e = engine(pool);
        let last = run_engine(&mut e, &trace);
        assert_eq!(e.completed(), 50);
        assert!(!e.has_work());
        assert!(last >= trace.requests().last().unwrap().arrival());
        let report = e.into_report();
        assert!(report.records.iter().all(|r| r.is_complete()));
        assert!(!report.mem_series.is_empty(), "memory was sampled");
    }

    #[test]
    fn deterministic_across_runs() {
        let (pool, trace) = small_trace(40, 8.0);
        let run = || {
            let mut e = engine(pool.clone());
            run_engine(&mut e, &trace);
            let rep = e.into_report();
            rep.records
                .iter()
                .map(|r| (r.id, r.first_token, r.finished))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_trace_is_fine() {
        let (pool, _) = small_trace(1, 1.0);
        let mut e = engine(pool);
        let last = run_engine(&mut e, &Trace::new(vec![]));
        assert_eq!(e.completed(), 0);
        assert!(last >= SimTime::ZERO);
    }
}
