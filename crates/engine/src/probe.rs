//! The engine's [`ResourceProbe`] snapshot handed to schedulers.

use chameleon_models::AdapterId;
use chameleon_sched::ResourceProbe;
use chameleon_simcore::{SimDuration, SimTime};
use std::collections::HashSet;

/// Immutable snapshot of engine resource state at one iteration boundary.
#[derive(Debug, Clone)]
pub struct EngineProbe {
    pub(crate) now: SimTime,
    pub(crate) available_tokens: u64,
    pub(crate) batch_slots: usize,
    pub(crate) resident: HashSet<AdapterId>,
    /// Seconds of engine time per resource token (blended prefill/decode,
    /// used for generic token costs).
    pub(crate) secs_per_token: f64,
    /// Wall seconds per decode token at the current batch size.
    pub(crate) decode_secs_per_token: f64,
    /// Seconds per prefill token.
    pub(crate) prefill_secs_per_token: f64,
    /// Predicted (finish_time, cumulative_freed_bytes) of running requests,
    /// sorted by finish time — answers "when do `bytes` free up?".
    pub(crate) mem_release_schedule: Vec<(SimTime, u64)>,
    pub(crate) total_token_capacity: u64,
    /// Free pool memory plus reclaimable idle adapter cache — the ceiling
    /// of what a new admission's KV footprint can claim.
    pub(crate) free_kv_bytes: u64,
    /// KV bytes per token and per block, for block-rounded footprints.
    pub(crate) kv_bytes_per_token: u64,
    pub(crate) kv_block_bytes: u64,
}

impl Default for EngineProbe {
    /// An empty probe shell — the engine keeps one as reusable scratch
    /// (take, refill in place, put back) so probing allocates nothing
    /// after warm-up.
    fn default() -> Self {
        EngineProbe {
            now: SimTime::ZERO,
            available_tokens: 0,
            batch_slots: 0,
            resident: HashSet::new(),
            secs_per_token: 0.0,
            decode_secs_per_token: 0.0,
            prefill_secs_per_token: 0.0,
            mem_release_schedule: Vec::new(),
            total_token_capacity: 0,
            free_kv_bytes: 0,
            kv_bytes_per_token: 0,
            kv_block_bytes: 0,
        }
    }
}

impl ResourceProbe for EngineProbe {
    fn now(&self) -> SimTime {
        self.now
    }

    fn available_tokens(&self) -> u64 {
        self.available_tokens
    }

    fn batch_slots(&self) -> usize {
        self.batch_slots
    }

    fn adapter_resident(&self, id: AdapterId) -> bool {
        self.resident.contains(&id)
    }

    fn estimate_exec(&self, tokens: u64) -> SimDuration {
        SimDuration::from_secs_f64(tokens as f64 * self.secs_per_token)
    }

    fn estimate_service(&self, input_tokens: u64, output_tokens: u64) -> SimDuration {
        SimDuration::from_secs_f64(
            input_tokens as f64 * self.prefill_secs_per_token
                + output_tokens as f64 * self.decode_secs_per_token,
        )
    }

    fn estimate_mem_wait(&self, bytes: u64) -> SimDuration {
        for &(finish, freed) in &self.mem_release_schedule {
            if freed >= bytes {
                return finish.saturating_since(self.now);
            }
        }
        // Nothing running frees enough: effectively unbounded.
        SimDuration::MAX
    }

    fn total_token_capacity(&self) -> u64 {
        self.total_token_capacity
    }

    fn free_kv_bytes(&self) -> u64 {
        self.free_kv_bytes
    }

    fn kv_bytes_for(&self, tokens: u64) -> u64 {
        let raw = tokens * self.kv_bytes_per_token;
        if self.kv_block_bytes == 0 {
            return raw;
        }
        raw.div_ceil(self.kv_block_bytes) * self.kv_block_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe() -> EngineProbe {
        EngineProbe {
            now: SimTime::from_secs_f64(10.0),
            available_tokens: 500,
            batch_slots: 8,
            resident: [AdapterId(1)].into(),
            secs_per_token: 0.001,
            decode_secs_per_token: 0.002,
            prefill_secs_per_token: 0.0001,
            mem_release_schedule: vec![
                (SimTime::from_secs_f64(12.0), 100),
                (SimTime::from_secs_f64(15.0), 300),
            ],
            total_token_capacity: 10_000,
            free_kv_bytes: 4096,
            kv_bytes_per_token: 64,
            kv_block_bytes: 1024,
        }
    }

    #[test]
    fn basic_accessors() {
        let p = probe();
        assert_eq!(p.available_tokens(), 500);
        assert_eq!(p.batch_slots(), 8);
        assert!(p.adapter_resident(AdapterId(1)));
        assert!(!p.adapter_resident(AdapterId(2)));
        assert_eq!(p.total_token_capacity(), 10_000);
    }

    #[test]
    fn exec_estimate_linear() {
        let p = probe();
        assert_eq!(p.estimate_exec(2000), SimDuration::from_secs(2));
    }

    #[test]
    fn service_estimate_weighs_decode_more() {
        let p = probe();
        use chameleon_sched::ResourceProbe as _;
        let in_heavy = p.estimate_service(1000, 10);
        let out_heavy = p.estimate_service(10, 1000);
        assert!(out_heavy > in_heavy * 5);
    }

    #[test]
    fn kv_footprints_are_block_rounded() {
        let p = probe();
        assert_eq!(p.free_kv_bytes(), 4096);
        // 17 tokens × 64 B = 1088 B → 2 × 1024 B blocks.
        assert_eq!(p.kv_bytes_for(17), 2048);
        assert_eq!(p.kv_bytes_for(16), 1024);
        assert_eq!(p.kv_bytes_for(0), 0);
    }

    #[test]
    fn mem_wait_walks_release_schedule() {
        let p = probe();
        assert_eq!(p.estimate_mem_wait(50), SimDuration::from_secs(2));
        assert_eq!(p.estimate_mem_wait(100), SimDuration::from_secs(2));
        assert_eq!(p.estimate_mem_wait(250), SimDuration::from_secs(5));
        assert_eq!(p.estimate_mem_wait(1000), SimDuration::MAX);
    }
}
