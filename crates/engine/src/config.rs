//! Engine configuration.

use crate::kv_spec::KvSpec;
use chameleon_models::{GpuSpec, LlmSpec};
use chameleon_simcore::SimDuration;

/// Static configuration of one serving engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Base model served.
    pub llm: LlmSpec,
    /// GPU platform (per device when tensor-parallel).
    pub gpu: GpuSpec,
    /// Tensor-parallel degree (1 = single GPU).
    pub tp_degree: u32,
    /// Maximum concurrent requests in the running batch.
    pub max_batch_requests: usize,
    /// KV block size in tokens.
    pub kv_block_tokens: u32,
    /// Sarathi-style chunked prefill: prompts are processed in chunks
    /// folded into decode iterations, prioritising decode latency.
    pub chunked_prefill: bool,
    /// Prompt tokens processed per iteration in chunked mode.
    pub prefill_chunk_tokens: u32,
    /// Maximum prompt tokens batched into one (non-chunked) prefill
    /// iteration; pending prompts beyond this wait for the next iteration.
    /// Bounds the decode stall a prefill iteration can cause (LightLLM's
    /// max new-batch input cap).
    pub max_prefill_batch_tokens: u32,
    /// Asynchronously prefetch adapters of queued requests (§2: S-LoRA and
    /// Chameleon both do this).
    pub prefetch_queued: bool,
    /// Histogram-based predictive prefetch of adapters for requests that
    /// have not arrived yet (§4.2 3; evaluated separately in Figure 18).
    pub predictive_prefetch: bool,
    /// S-LoRA batch semantics (§2): "Before it sends the batch to the
    /// inference engine on the GPU, the scheduler also loads any missing
    /// adapters required by the requests in the batch" — the engine stalls
    /// while an admitted request's adapter is in flight. Chameleon's cache
    /// manager is asynchronous and clears this flag.
    pub block_on_load: bool,
    /// Look-ahead window for predictive prefetch.
    pub prefetch_window: SimDuration,
    /// Maximum adapters to prefetch speculatively per opportunity.
    pub prefetch_depth: usize,
    /// Fraction of GPU memory reserved for activation workspace.
    pub activation_headroom: f64,
    /// Scheduler/cache reconfiguration period (`T_refresh`, §4.3.4).
    pub refresh_interval: SimDuration,
    /// Memory-occupancy sampling period (Figure 6).
    pub mem_sample_interval: SimDuration,
    /// Unified GPU-memory economy: KV-aware admission control and the
    /// Apt-Serve-style hybrid cache. `None` (the default) keeps the
    /// optimistic allocate-then-unwind baseline byte-identical to the
    /// digest-pinned oracles.
    pub kv: Option<KvSpec>,
}

impl EngineConfig {
    /// A sensible default configuration for `llm` on `gpu` (single GPU).
    pub fn new(llm: LlmSpec, gpu: GpuSpec) -> Self {
        EngineConfig {
            llm,
            gpu,
            tp_degree: 1,
            max_batch_requests: 256,
            kv_block_tokens: 16,
            chunked_prefill: false,
            prefill_chunk_tokens: 512,
            max_prefill_batch_tokens: 768,
            prefetch_queued: true,
            predictive_prefetch: false,
            block_on_load: false,
            prefetch_window: SimDuration::from_secs(10),
            prefetch_depth: 4,
            activation_headroom: 0.04,
            refresh_interval: SimDuration::from_secs(300),
            mem_sample_interval: SimDuration::from_secs(1),
            kv: None,
        }
    }

    /// Sets the tensor-parallel degree.
    pub fn with_tp(mut self, tp: u32) -> Self {
        self.tp_degree = tp;
        self
    }

    /// Total GPU memory across the TP group.
    pub fn total_memory_bytes(&self) -> u64 {
        self.gpu.memory_bytes() * u64::from(self.tp_degree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = EngineConfig::new(LlmSpec::llama_7b(), GpuSpec::a40());
        assert_eq!(c.tp_degree, 1);
        assert!(c.max_batch_requests > 0);
        assert!(c.prefetch_queued);
        assert!(!c.predictive_prefetch);
        assert!(c.activation_headroom < 0.5);
    }

    #[test]
    fn tp_multiplies_memory() {
        let c = EngineConfig::new(LlmSpec::llama_7b(), GpuSpec::a100_80gb()).with_tp(4);
        assert_eq!(
            c.total_memory_bytes(),
            4 * GpuSpec::a100_80gb().memory_bytes()
        );
    }
}
