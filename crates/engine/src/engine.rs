//! The engine state machine.
//!
//! [`Engine`] is deliberately reactive: it owns no event queue. A driver
//! ([`crate::driver`] or [`crate::cluster`]) feeds it [`EngineEvent`]s and
//! collects the future events the engine wants scheduled. This keeps one
//! implementation reusable for both single-engine runs and data-parallel
//! clusters, and makes every transition unit-testable.

use crate::config::EngineConfig;
use crate::kv_spec::KvSpec;
use crate::probe::EngineProbe;
use crate::report::EngineReport;
use chameleon_cache::{AdapterCache, CacheJournalEvent};
use chameleon_fault::PcieFaultInjector;
use chameleon_gpu::cost::{DecodeItem, PrefillItem};
use chameleon_gpu::memory::{MemoryPool, Region};
use chameleon_gpu::{CostModel, KvAllocator, PcieLink};
use chameleon_metrics::{Collector, KvStats, MemorySample, SizeClass};
use chameleon_models::{AdapterId, AdapterPool};
use chameleon_predictor::{HistogramLoadPredictor, OutputLenPredictor};
use chameleon_sched::{AdmissionOutcome, QueuedRequest, ResourceProbe, Scheduler, WrsConfig};
use chameleon_simcore::{SimDuration, SimTime};
use chameleon_trace::TraceEvent;
use chameleon_workload::{Request, RequestId};
use std::collections::{HashMap, HashSet};

/// Events driving the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineEvent {
    /// A request reached the frontend.
    Arrival(Request),
    /// The iteration started earlier finished (tagged with its sequence
    /// number so stale completions are ignored).
    StepDone(u64),
    /// An adapter load (or prefetch) completed.
    LoadDone(AdapterId),
    /// Periodic reconfiguration tick (`T_refresh`).
    Refresh,
    /// Periodic memory-occupancy sample (Figure 6).
    MemSample,
    /// Retry dispatch after a fully idle engine could not admit a waiting
    /// request (e.g. a blocked head banking memory across cycles).
    Poke,
}

/// A request in the running batch.
#[derive(Debug, Clone)]
struct Running {
    req: Request,
    queue_index: usize,
    charged_tokens: u64,
    predicted_output: u32,
    /// Prompt tokens not yet prefilled.
    prefill_remaining: u32,
    /// Output tokens produced.
    produced: u32,
    /// KV tokens currently reserved for this request.
    kv_reserved: u32,
    admitted_at: SimTime,
}

impl Running {
    fn finished(&self) -> bool {
        self.prefill_remaining == 0 && self.produced >= self.req.output_tokens()
    }
}

/// An in-flight adapter transfer.
#[derive(Debug, Clone)]
struct Loading {
    ready_at: SimTime,
    bytes: u64,
    /// Requests already admitted and waiting on this adapter.
    waiters: u32,
}

/// A running request demoted to a compact hidden-state proxy entry
/// (hybrid cache mode, Apt-Serve-style). Progress is frozen, the full KV
/// blocks are released, and the scheduler quota stays charged — the
/// request never left the system, so its eventual retirement credits the
/// quota exactly once.
#[derive(Debug, Clone)]
struct Demoted {
    req: Request,
    queue_index: usize,
    charged_tokens: u64,
    predicted_output: u32,
    prefill_remaining: u32,
    produced: u32,
    /// Proxy bytes left resident (the PCIe payload of the restore).
    proxy_bytes: u64,
    admitted_at: SimTime,
    demoted_at: SimTime,
}

/// A demoted request whose full KV is being re-materialised over PCIe;
/// it rejoins the running batch when the transfer lands.
#[derive(Debug, Clone)]
struct Restoring {
    d: Demoted,
    ready_at: SimTime,
    /// Tokens the restore reserved (input + refreshed prediction).
    kv_reserved: u32,
}

/// What the engine is executing right now.
#[derive(Debug, Clone)]
enum StepPlan {
    /// Full (or chunked) prefill for these requests; `chunks[i]` prompt
    /// tokens are processed for request `ids[i]`.
    Prefill {
        ids: Vec<RequestId>,
        chunks: Vec<u32>,
    },
    /// One decode iteration for these requests, plus (in chunked-prefill
    /// mode) prompt chunks folded in.
    Decode {
        ids: Vec<RequestId>,
        folded_prefill: Vec<(RequestId, u32)>,
    },
}

/// A record of an opportunistic bypass: `r2` jumped over blocked `r1`
/// needing `r1_tokens`; if that much frees while `r2` runs, `r2` squashes.
#[derive(Debug, Clone, Copy)]
struct BypassPair {
    r2: RequestId,
    r1: RequestId,
    r1_tokens: u64,
}

/// One LLM serving engine (a GPU or TP group).
pub struct Engine {
    cfg: EngineConfig,
    cost: CostModel,
    pool: AdapterPool,
    mem: MemoryPool,
    kv: KvAllocator,
    link: PcieLink,
    cache: AdapterCache,
    sched: Box<dyn Scheduler>,
    predictor: Box<dyn OutputLenPredictor>,
    wrs_cfg: WrsConfig,
    load_predictor: HistogramLoadPredictor,
    collector: Collector,
    running: Vec<Running>,
    loading: HashMap<AdapterId, Loading>,
    /// KV plane (unified GPU-memory economy): `None` keeps every path
    /// byte-identical to the optimistic allocate-then-unwind baseline.
    kv_spec: Option<KvSpec>,
    kv_stats: KvStats,
    /// Requests demoted to hidden-state proxies, oldest first.
    demoted: Vec<Demoted>,
    /// Demotion reversals in flight over PCIe.
    restoring: Vec<Restoring>,
    current_step: Option<StepPlan>,
    step_seq: u64,
    busy_until: SimTime,
    bypass_pairs: Vec<BypassPair>,
    poke_pending: bool,
    mem_series: Vec<MemorySample>,
    squashes: u64,
    completed: u64,
    kv_bytes_per_token: u64,
    /// Isolated per-token decode cost (seconds) from the cost model,
    /// cached at construction — the oracle behind the O(1) per-snapshot
    /// TTFT-violation estimate.
    isolated_secs_per_token: f64,
    // --- reusable per-step scratch (zero-alloc stepping) ------------------
    // Every buffer below is cleared and refilled in place each iteration,
    // so the steady-state event loop performs no heap allocation.
    probe_scratch: EngineProbe,
    admit_buf: Vec<AdmissionOutcome>,
    requeue_buf: Vec<AdmissionOutcome>,
    adapters_buf: Vec<AdapterId>,
    protected_buf: HashSet<AdapterId>,
    prefetch_buf: Vec<AdapterId>,
    prefill_idx: Vec<usize>,
    decode_idx: Vec<usize>,
    prefill_items: Vec<PrefillItem>,
    decode_items: Vec<DecodeItem>,
    ids_pool: Vec<RequestId>,
    chunks_pool: Vec<u32>,
    folded_pool: Vec<(RequestId, u32)>,
    pairs_scratch: Vec<BypassPair>,
    /// Decision-trace buffer in this engine's own execution order; `None`
    /// (the default) keeps every emission site a single branch. The driver
    /// drains it via [`take_trace_events`](Self::take_trace_events) and
    /// assigns the lane — the engine never knows its cluster id.
    trace: Option<Vec<(SimTime, TraceEvent)>>,
    /// Fault plane: injected PCIe transfer failures. `None` (the default)
    /// keeps the load path byte-identical to a fault-free build.
    pcie_faults: Option<PcieFaultInjector>,
    /// Fault plane: straggler slowdown multiplier applied to every step
    /// duration. Exactly `1.0` outside an injected straggler window, and
    /// the multiply is skipped entirely then so the fault hook cannot
    /// perturb a healthy engine's floating-point timeline.
    slowdown: f64,
}

impl Engine {
    /// Builds an engine.
    ///
    /// # Panics
    ///
    /// Panics if the base model does not fit in the configured GPU memory.
    pub fn new(
        cfg: EngineConfig,
        pool: AdapterPool,
        sched: Box<dyn Scheduler>,
        predictor: Box<dyn OutputLenPredictor>,
        cache: AdapterCache,
        wrs_cfg: WrsConfig,
    ) -> Self {
        let cost = CostModel::new(cfg.llm.clone(), cfg.gpu.clone(), cfg.tp_degree);
        let total_mem = cfg.total_memory_bytes();
        let mut mem = MemoryPool::new(total_mem);
        mem.reserve(Region::Weights, cfg.llm.weight_bytes())
            .expect("base model must fit in GPU memory");
        let headroom = (total_mem as f64 * cfg.activation_headroom) as u64;
        mem.reserve(Region::Activations, headroom)
            .expect("activation headroom must fit");
        let kv_bytes_per_token = cfg.llm.kv_bytes_per_token();
        let kv = KvAllocator::new(kv_bytes_per_token, cfg.kv_block_tokens);
        let link = PcieLink::new(cfg.gpu.effective_copy_bytes_per_sec());
        let isolated_secs_per_token = cost
            .decode_step_time(&[DecodeItem {
                kv_tokens: 256,
                rank: None,
            }])
            .as_secs_f64();
        let kv_spec = cfg.kv;
        let kv_stats = KvStats {
            enabled: kv_spec.is_some(),
            admission: kv_spec.is_some_and(|s| s.admission),
            hybrid: kv_spec.is_some_and(|s| s.hybrid),
            ..KvStats::default()
        };
        Engine {
            cost,
            pool,
            mem,
            kv,
            link,
            cache,
            sched,
            predictor,
            wrs_cfg,
            load_predictor: HistogramLoadPredictor::new(),
            collector: Collector::new(),
            running: Vec::new(),
            loading: HashMap::new(),
            kv_spec,
            kv_stats,
            demoted: Vec::new(),
            restoring: Vec::new(),
            current_step: None,
            step_seq: 0,
            busy_until: SimTime::ZERO,
            bypass_pairs: Vec::new(),
            poke_pending: false,
            mem_series: Vec::new(),
            squashes: 0,
            completed: 0,
            kv_bytes_per_token,
            isolated_secs_per_token,
            cfg,
            probe_scratch: EngineProbe::default(),
            admit_buf: Vec::new(),
            requeue_buf: Vec::new(),
            adapters_buf: Vec::new(),
            protected_buf: HashSet::new(),
            prefetch_buf: Vec::new(),
            prefill_idx: Vec::new(),
            decode_idx: Vec::new(),
            prefill_items: Vec::new(),
            decode_items: Vec::new(),
            ids_pool: Vec::new(),
            chunks_pool: Vec::new(),
            folded_pool: Vec::new(),
            pairs_scratch: Vec::new(),
            trace: None,
            pcie_faults: None,
            slowdown: 1.0,
        }
    }

    /// Turns on decision tracing: first-token, queue-sample, and batch
    /// events buffer here, and the cache's admit/evict journal is enabled
    /// and re-tagged into the same buffer. Strict opt-in overlay — until
    /// this is called every emission site is one `is_some` branch.
    pub fn enable_tracing(&mut self) {
        self.trace.get_or_insert_with(Vec::new);
        self.cache.enable_journal();
    }

    /// True when [`enable_tracing`](Self::enable_tracing) was called.
    pub fn tracing_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Drains buffered trace events in this engine's execution order.
    /// Returns an empty vec when tracing is off.
    pub fn take_trace_events(&mut self) -> Vec<(SimTime, TraceEvent)> {
        match self.trace.as_mut() {
            Some(t) => std::mem::take(t),
            None => Vec::new(),
        }
    }

    /// Arms injected PCIe transfer failures. Fault plane only — never
    /// called on a fault-free run.
    pub fn set_pcie_fault_injector(&mut self, injector: PcieFaultInjector) {
        self.pcie_faults = Some(injector);
    }

    /// Injected PCIe transfer failures absorbed so far (each one occupied
    /// the link for a full transfer before the retry went through).
    pub fn pcie_fault_retries(&self) -> u64 {
        self.pcie_faults.as_ref().map_or(0, |f| f.failures())
    }

    /// Sets the straggler slowdown multiplier (`1.0` = healthy). Fault
    /// plane only; the coordinator flips this at fault barriers.
    pub fn set_slowdown(&mut self, factor: f64) {
        debug_assert!(factor >= 1.0, "a straggler cannot speed up");
        self.slowdown = factor;
    }

    /// Rips every unfinished request out of a crashing engine: the queued
    /// backlog and the running batch lose all progress, their collector
    /// records are deleted (each will re-arrive on a surviving engine,
    /// whose collector must register it fresh), and the requests come back
    /// sorted by `(arrival, id)` so the re-dispatch order is independent
    /// of internal container order. Records of requests the engine
    /// *finished* before dying survive — that work really happened.
    pub fn crash_unfinished(&mut self) -> Vec<Request> {
        let mut queued = Vec::new();
        self.sched.drain_queued_into(&mut queued);
        let mut lost: Vec<Request> = queued.iter().map(|q| *q.request()).collect();
        lost.extend(self.running.drain(..).map(|r| r.req));
        lost.extend(self.demoted.drain(..).map(|d| d.req));
        lost.extend(self.restoring.drain(..).map(|r| r.d.req));
        self.current_step = None;
        self.loading.clear();
        self.bypass_pairs.clear();
        self.poke_pending = false;
        for req in &lost {
            self.collector.remove(req.id());
        }
        lost.sort_by_key(|r| (r.arrival(), r.id()));
        lost
    }

    /// [`Engine::crash_unfinished`] for an engine that *survives* the
    /// event — a network partition: the coordinator presumes the work
    /// lost and re-dispatches it elsewhere, while the engine itself
    /// stays up and rejoins the fleet at the heal. Beyond the
    /// extraction, every reservation the unfinished work held — KV
    /// blocks, scheduler quota, adapter-cache references, in-flight load
    /// reservations — is released, so the survivor comes back idle and
    /// consistent, able to admit fresh work. Events the dead work left
    /// in flight (step or load completions) are ignored as stale when
    /// they land.
    pub fn evacuate_unfinished(&mut self, now: SimTime) -> Vec<Request> {
        for idx in 0..self.running.len() {
            let (id, queue_index, charged) = {
                let r = &self.running[idx];
                (r.req.id(), r.queue_index, r.charged_tokens)
            };
            self.kv.free(&mut self.mem, id);
            self.sched.on_finish(queue_index, charged);
        }
        // Hybrid-cache state evacuates like running reservations: proxies
        // are dropped, in-flight restores release the full KV they had
        // already re-reserved, and both give their scheduler quota back.
        for idx in 0..self.demoted.len() {
            let (id, queue_index, charged) = {
                let d = &self.demoted[idx];
                (d.req.id(), d.queue_index, d.charged_tokens)
            };
            self.kv.drop_proxy(&mut self.mem, id);
            self.sched.on_finish(queue_index, charged);
        }
        for idx in 0..self.restoring.len() {
            let (id, queue_index, charged) = {
                let r = &self.restoring[idx];
                (r.d.req.id(), r.d.queue_index, r.d.charged_tokens)
            };
            self.kv.free(&mut self.mem, id);
            self.sched.on_finish(queue_index, charged);
        }
        // Cache references: a running request holds one on its adapter
        // unless it is still waiting on an in-flight load (that
        // reference would only have materialised at the LoadDone that is
        // now stale). Restoring requests re-acquired their adapter at
        // restore initiation under the same discipline; demoted requests
        // released theirs at demotion.
        let mut held: Vec<AdapterId> = self
            .running
            .iter()
            .map(|r| r.req.adapter())
            .chain(self.restoring.iter().map(|r| r.d.req.adapter()))
            .filter(|a| !self.loading.contains_key(a))
            .collect();
        held.sort_unstable();
        for a in held {
            self.cache.release(&mut self.mem, a, now);
        }
        // In-flight load reservations die with their waiters.
        let mut loads: Vec<u64> = self.loading.values().map(|l| l.bytes).collect();
        loads.sort_unstable();
        for bytes in loads {
            self.mem.release(Region::AdaptersInUse, bytes);
        }
        self.crash_unfinished()
    }

    /// The engine's WRS configuration (used by drivers for reporting).
    pub fn wrs_config(&self) -> &WrsConfig {
        &self.wrs_cfg
    }

    /// The engine's static configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The engine's cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The adapter pool this engine serves.
    pub fn pool(&self) -> &AdapterPool {
        &self.pool
    }

    /// Relative serving capacity for weighted rendezvous placement: total
    /// GPU memory across the TP group, in GiB. Any consistent scale works
    /// (rendezvous scores are scale-invariant), so a homogeneous fleet
    /// behaves exactly like the unweighted scheme while a TP4 engine
    /// weighs 4× its TP1 neighbour and wins a proportional adapter shard.
    pub fn capacity_weight(&self) -> f64 {
        self.cfg.total_memory_bytes() as f64 / (1u64 << 30) as f64
    }

    /// True while any request is queued, running, demoted/restoring, or
    /// loading an adapter.
    pub fn has_work(&self) -> bool {
        !self.running.is_empty()
            || !self.sched.is_empty()
            || !self.loading.is_empty()
            || !self.demoted.is_empty()
            || !self.restoring.is_empty()
    }

    /// Outstanding resource tokens (running + queued) — the JSQ signal for
    /// the cluster's global scheduler. Demoted/restoring requests keep
    /// their charge: they never left the system.
    pub fn outstanding_tokens(&self) -> u64 {
        let running: u64 = self.running.iter().map(|r| r.charged_tokens).sum::<u64>()
            + self.demoted.iter().map(|d| d.charged_tokens).sum::<u64>()
            + self
                .restoring
                .iter()
                .map(|r| r.d.charged_tokens)
                .sum::<u64>();
        // Queued work approximated by queue length × mean running charge.
        let mean = if self.running.is_empty() {
            256
        } else {
            running / self.running.len() as u64
        };
        running + self.sched.len() as u64 * mean
    }

    /// Number of requests in the running batch.
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// Free GPU memory in bytes, counting evictable idle cache bytes —
    /// the memory signal cluster routers and admission paths see.
    ///
    /// O(1): idle cached adapters are billed to [`Region::AdapterCache`],
    /// so the pool's region counter equals `cache.idle_bytes()` (the
    /// cache ↔ pool accounting invariant, property-tested in
    /// `chameleon-cache`).
    pub fn free_memory_bytes(&self) -> u64 {
        self.mem.free() + self.mem.used(Region::AdapterCache)
    }

    /// Estimated TTFT, in seconds, of a request dispatched to this engine
    /// right now: the outstanding backlog (running + queued resource
    /// tokens) priced through the isolated-latency oracle (per-token
    /// decode cost at batch 1). A crude but monotone estimate — exactly
    /// what the SLO-aware autoscaler needs to see a saturated engine as a
    /// TTFT violation in the making. O(1) per call.
    pub fn estimated_ttft_secs(&self) -> f64 {
        self.outstanding_tokens() as f64 * self.isolated_secs_per_token
    }

    /// Adapters whose weights are on (or in flight to) this engine.
    pub fn resident_adapters(&self) -> HashSet<AdapterId> {
        self.cache
            .resident_adapters()
            .chain(self.loading.keys().copied())
            .collect()
    }

    /// True when the adapter's weights are on (or in flight to) this
    /// engine — the O(1) residency query behind the router's affinity-hit
    /// accounting.
    pub fn is_adapter_resident(&self, id: AdapterId) -> bool {
        self.cache.is_resident(id) || self.loading.contains_key(&id)
    }

    /// Introspection snapshot for the cluster router (§4.4's global
    /// scheduler input, generalised): queue depth, outstanding work, free
    /// memory, capacity weight, and — when `with_residency` is set, for
    /// routers that ask for it — the resident-adapter set, tagged with
    /// this engine's stable `id` in the cluster.
    pub fn snapshot(
        &self,
        id: chameleon_router::EngineId,
        with_residency: bool,
    ) -> chameleon_router::EngineSnapshot {
        chameleon_router::EngineSnapshot {
            id,
            weight: self.capacity_weight(),
            queue_depth: self.sched.len(),
            running: self.running.len(),
            outstanding_tokens: self.outstanding_tokens(),
            free_memory_bytes: self.free_memory_bytes(),
            est_ttft_secs: self.estimated_ttft_secs(),
            resident_adapters: if with_residency {
                self.resident_adapters()
            } else {
                HashSet::new()
            },
            // The engine does not know where it is racked; the cluster
            // stamps the fault domain when a topology is attached.
            rack: None,
        }
    }

    /// Number of queued requests.
    pub fn queue_len(&self) -> usize {
        self.sched.len()
    }

    /// Total completed requests.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Scheduler-internal state dump for diagnostics.
    pub fn scheduler_debug(&self) -> String {
        format!(
            "sched[{}] queued={} running={} loading={} :: {}",
            self.sched.name(),
            self.sched.len(),
            self.running.len(),
            self.loading.len(),
            self.sched.debug_state()
        )
    }

    /// Handles one event at `now`, appending any future events to `out`.
    pub fn handle(
        &mut self,
        now: SimTime,
        event: EngineEvent,
        out: &mut Vec<(SimTime, EngineEvent)>,
    ) {
        match event {
            EngineEvent::Arrival(req) => self.on_arrival(now, req, out),
            EngineEvent::StepDone(seq) => self.on_step_done(now, seq, out),
            EngineEvent::LoadDone(id) => self.on_load_done(now, id, out),
            EngineEvent::Refresh => self.on_refresh(now),
            EngineEvent::MemSample => self.sample_memory(now),
            EngineEvent::Poke => {
                self.poke_pending = false;
                self.try_dispatch(now, out);
            }
        }
        if self.trace.is_some() {
            self.drain_cache_journal(now);
        }
    }

    /// Re-tags cache-journal decisions accumulated during this event into
    /// the trace buffer. Every cache mutation happens inside `handle` (the
    /// cluster's `warm_load` only reserves memory; the admit lands at
    /// `LoadDone`), so draining here timestamps each decision with the
    /// event that caused it.
    fn drain_cache_journal(&mut self, now: SimTime) {
        let journal = self.cache.drain_journal();
        if journal.is_empty() {
            return;
        }
        let buf = self.trace.as_mut().expect("tracing checked by caller");
        for ev in journal {
            let mapped = match ev {
                CacheJournalEvent::Admit {
                    adapter,
                    bytes,
                    refs,
                } => TraceEvent::CacheAdmit {
                    adapter: adapter.0,
                    bytes,
                    refs,
                },
                CacheJournalEvent::Evict {
                    adapter,
                    bytes,
                    frequency,
                    last_used,
                } => TraceEvent::CacheEvict {
                    adapter: adapter.0,
                    bytes,
                    frequency,
                    last_used,
                },
            };
            buf.push((now, mapped));
        }
    }

    /// Finalises the engine into its report.
    pub fn into_report(self) -> EngineReport {
        EngineReport {
            records: self.collector.into_records(),
            cache_stats: self.cache.stats(),
            pcie_total_bytes: self.link.total_bytes(),
            pcie_busy: self.link.total_busy(),
            pcie_history: self.link.history().to_vec(),
            mem_series: self.mem_series,
            squashes: self.squashes,
            scheduler: self.sched.name(),
            routing: chameleon_metrics::RoutingStats::default(),
            kv: self.kv_stats,
        }
    }

    /// KV-accounting invariant view: `(allocator bytes, pool KV-region
    /// bytes)`. The two are equal at every event boundary — the
    /// engine-level property the cross-crate invariant suite asserts
    /// across growth/squash/demotion/crash interleavings.
    pub fn kv_accounting(&self) -> (u64, u64) {
        (self.kv.total_bytes(), self.mem.used(Region::KvCache))
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn on_arrival(&mut self, now: SimTime, req: Request, out: &mut Vec<(SimTime, EngineEvent)>) {
        let spec = self
            .pool
            .get(req.adapter())
            .unwrap_or_else(|| panic!("unknown adapter {}", req.adapter()))
            .clone();
        // The ledger clocks TTFT/E2E from the request's *original* arrival
        // (identical to `now` on every normal dispatch; later than `now`
        // only for crash-recovery re-dispatches, whose dead-engine and
        // backoff time must stay on the record).
        self.collector.on_arrival(
            req.id(),
            req.arrival(),
            req.input_tokens(),
            req.output_tokens(),
            req.adapter(),
            req.rank(),
        );
        self.load_predictor.observe(req.adapter(), now);
        let predicted = self.predictor.predict(&req);
        let wrs = self
            .wrs_cfg
            .compute(req.input_tokens(), predicted, spec.bytes());
        let adapter_token_equiv = spec.bytes() / self.kv_bytes_per_token;
        let queued =
            QueuedRequest::new(req, predicted, spec.bytes(), adapter_token_equiv, wrs, now);
        let class = SizeClass::from_queue_index(
            self.sched.queue_index_for(wrs),
            self.sched.num_queues().max(1),
        );
        self.collector.on_classified(queued.id(), class);
        self.sched.enqueue(queued);
        self.try_dispatch(now, out);
        self.prefetch(now, out);
    }

    fn on_load_done(&mut self, now: SimTime, id: AdapterId, out: &mut Vec<(SimTime, EngineEvent)>) {
        let Some(loading) = self.loading.remove(&id) else {
            return; // duplicate completion (cannot normally happen)
        };
        // The load reservation becomes a cache entry with the waiting
        // requests' references.
        self.mem.release(Region::AdaptersInUse, loading.bytes);
        let spec = self.pool.get(id).expect("loaded adapter exists").clone();
        self.cache
            .insert_loaded(&mut self.mem, &spec, now, loading.waiters)
            .expect("reservation was released just above");
        self.try_dispatch(now, out);
    }

    fn on_refresh(&mut self, now: SimTime) {
        let probe = self.take_probe(now);
        self.sched.on_refresh(&probe);
        self.probe_scratch = probe;
        self.cache.decay_frequencies();
    }

    fn sample_memory(&mut self, now: SimTime) {
        self.mem_series.push(MemorySample {
            at: now,
            weights: self.mem.used(Region::Weights),
            kv: self.mem.used(Region::KvCache),
            adapters_in_use: self.mem.used(Region::AdaptersInUse),
            adapter_cache: self.mem.used(Region::AdapterCache),
            capacity: self.mem.capacity(),
        });
        if self.kv_stats.enabled {
            let p = self.kv_pressure();
            self.kv_stats.note_pressure(p);
        }
        if let Some(buf) = self.trace.as_mut() {
            buf.push((
                now,
                TraceEvent::QueueSample {
                    queued: self.sched.len() as u32,
                    running: self.running.len() as u32,
                    kv_bytes: self.mem.used(Region::KvCache),
                    cache_bytes: self.mem.used(Region::AdapterCache),
                },
            ));
        }
    }

    fn on_step_done(&mut self, now: SimTime, seq: u64, out: &mut Vec<(SimTime, EngineEvent)>) {
        if seq != self.step_seq {
            return; // stale completion from a squashed plan
        }
        let Some(plan) = self.current_step.take() else {
            return;
        };
        match plan {
            StepPlan::Prefill { ids, chunks } => {
                for (&id, &chunk) in ids.iter().zip(chunks.iter()) {
                    self.apply_prefill_progress(id, chunk, now);
                }
                // Return the plan's buffers to the pool for the next step.
                self.ids_pool = ids;
                self.chunks_pool = chunks;
            }
            StepPlan::Decode {
                ids,
                folded_prefill,
            } => {
                for &(id, chunk) in &folded_prefill {
                    self.apply_prefill_progress(id, chunk, now);
                }
                for &id in &ids {
                    self.apply_decode_progress(id, now);
                }
                self.ids_pool = ids;
                self.folded_pool = folded_prefill;
            }
        }
        self.retire_finished(now);
        self.try_dispatch(now, out);
        self.prefetch(now, out);
    }

    fn apply_prefill_progress(&mut self, id: RequestId, chunk: u32, now: SimTime) {
        let mut first_token_arrival = None;
        {
            let Some(r) = self.running.iter_mut().find(|r| r.req.id() == id) else {
                return; // squashed mid-step
            };
            r.prefill_remaining = r.prefill_remaining.saturating_sub(chunk);
            if r.prefill_remaining == 0 && r.produced == 0 {
                // Prefill completion produces the first token.
                r.produced = 1;
                first_token_arrival = Some(r.req.arrival());
            }
        }
        if let Some(arrival) = first_token_arrival {
            self.collector.on_token(id, now);
            if let Some(buf) = self.trace.as_mut() {
                buf.push((
                    now,
                    TraceEvent::FirstToken {
                        req: id.0,
                        ttft: now.saturating_since(arrival),
                    },
                ));
            }
        }
    }

    fn apply_decode_progress(&mut self, id: RequestId, now: SimTime) {
        let Some(idx) = self.running.iter().position(|r| r.req.id() == id) else {
            return; // squashed mid-step
        };
        {
            let r = &mut self.running[idx];
            r.produced += 1;
            self.collector.on_token(id, now);
        }
        // Grow KV beyond the admission reservation when the request
        // outlives its prediction.
        let (needed, reserved) = {
            let r = &self.running[idx];
            (r.req.input_tokens() + r.produced, r.kv_reserved)
        };
        if needed > reserved && !self.ensure_kv_growth(id, now) {
            // OOM during decode: with the hybrid cache armed and pressure
            // past the threshold, demote the youngest running request to a
            // compact hidden-state proxy; otherwise squash it outright
            // (recompute-style preemption).
            if !self.try_demote_youngest_except(id, now) {
                self.squash_youngest_except(id, now);
            }
            // Retry; if it still fails the request stalls one token —
            // growth will be retried next iteration.
            let _ = self.ensure_kv_growth(id, now);
        }
    }

    /// KV pressure: KV-cache bytes over usable (non-weight,
    /// non-activation) memory, in `[0, 1]`.
    fn kv_pressure(&self) -> f64 {
        let usable = self
            .mem
            .capacity()
            .saturating_sub(self.mem.used(Region::Weights))
            .saturating_sub(self.mem.used(Region::Activations));
        if usable == 0 {
            return 1.0;
        }
        self.mem.used(Region::KvCache) as f64 / usable as f64
    }

    /// Hybrid cache mode (Apt-Serve): under KV pressure, demotes the
    /// youngest running request (except `keep`) to a compact proxy entry
    /// instead of squashing it. The victim's full blocks free, a
    /// `proxy_ratio` fraction stays resident, and the scheduler quota
    /// stays charged — retirement after restore credits it exactly once.
    /// Returns whether a demotion happened.
    fn try_demote_youngest_except(&mut self, keep: RequestId, now: SimTime) -> bool {
        let Some(spec) = self.kv_spec else {
            return false;
        };
        if !spec.hybrid
            || self.demoted.len() + self.restoring.len() >= spec.max_proxies
            || self.kv_pressure() < spec.pressure_threshold
        {
            return false;
        }
        let Some(idx) = self
            .running
            .iter()
            .enumerate()
            .filter(|(_, r)| r.req.id() != keep)
            .max_by_key(|(_, r)| (r.admitted_at, r.req.id()))
            .map(|(i, _)| i)
        else {
            return false;
        };
        let r = self.running.swap_remove(idx);
        let id = r.req.id();
        let (full, proxy) = self.kv.demote(&mut self.mem, id, spec.proxy_ratio);
        // Adapter reference: same discipline as squash — the adapter may
        // still be in flight, in which case the waiter is dropped instead
        // of a cache reference that does not exist yet.
        if let Some(l) = self.loading.get_mut(&r.req.adapter()) {
            l.waiters = l.waiters.saturating_sub(1);
        } else {
            self.cache.release(&mut self.mem, r.req.adapter(), now);
        }
        self.bypass_pairs.retain(|p| p.r2 != id);
        self.kv_stats.on_demoted(self.kv.proxy_bytes());
        if let Some(buf) = self.trace.as_mut() {
            buf.push((
                now,
                TraceEvent::KvDemoted {
                    req: id.0,
                    full_bytes: full,
                    proxy_bytes: proxy,
                },
            ));
        }
        self.demoted.push(Demoted {
            req: r.req,
            queue_index: r.queue_index,
            charged_tokens: r.charged_tokens,
            predicted_output: r.predicted_output,
            prefill_remaining: r.prefill_remaining,
            produced: r.produced,
            proxy_bytes: proxy,
            admitted_at: r.admitted_at,
            demoted_at: now,
        });
        true
    }

    /// Drives the demotion state machine at an iteration boundary: first
    /// lands restores whose PCIe transfer completed (the request rejoins
    /// the running batch with its frozen progress), then initiates new
    /// restores oldest-first while *genuinely free* memory — never
    /// eviction, so restores cannot thrash admissions — covers the full
    /// footprint, a cold adapter reload, and a little growth headroom.
    fn service_kv_restores(&mut self, now: SimTime, out: &mut Vec<(SimTime, EngineEvent)>) {
        if self.restoring.is_empty() && self.demoted.is_empty() {
            return;
        }
        // Stable removal (not swap_remove): running-batch push order is
        // part of the deterministic timeline.
        let mut i = 0;
        while i < self.restoring.len() {
            if self.restoring[i].ready_at > now {
                i += 1;
                continue;
            }
            let rst = self.restoring.remove(i);
            if let Some(buf) = self.trace.as_mut() {
                buf.push((
                    now,
                    TraceEvent::KvRestored {
                        req: rst.d.req.id().0,
                        kv_bytes: self.kv.bytes_for(rst.kv_reserved),
                        stalled: now.saturating_since(rst.d.demoted_at),
                    },
                ));
            }
            self.running.push(Running {
                req: rst.d.req,
                queue_index: rst.d.queue_index,
                charged_tokens: rst.d.charged_tokens,
                predicted_output: rst.d.predicted_output,
                prefill_remaining: rst.d.prefill_remaining,
                produced: rst.d.produced,
                kv_reserved: rst.kv_reserved,
                admitted_at: rst.d.admitted_at,
            });
        }
        while !self.demoted.is_empty() {
            let (kv_tokens, adapter, adapter_need) = {
                let d = &self.demoted[0];
                // Refresh the reservation the way squash re-annotation
                // does: the system has seen `produced` tokens, so reserve
                // at least that plus a block of headroom.
                let predicted = d
                    .predicted_output
                    .max(d.produced + self.cfg.kv_block_tokens)
                    .min(d.req.output_tokens().max(1));
                let kv_tokens = d.req.input_tokens() + predicted;
                let adapter = d.req.adapter();
                let adapter_need =
                    if self.cache.is_resident(adapter) || self.loading.contains_key(&adapter) {
                        0
                    } else {
                        self.pool.get(adapter).map(|a| a.bytes()).unwrap_or(0)
                    };
                (kv_tokens, adapter, adapter_need)
            };
            let need = self.kv.bytes_for(kv_tokens) + adapter_need + 2 * self.kv.block_bytes();
            if self.mem.free() < need {
                break;
            }
            let d = self.demoted.remove(0);
            let id = d.req.id();
            self.kv
                .restore(&mut self.mem, id, kv_tokens)
                .expect("free memory checked above");
            // The proxy → full-KV re-materialisation rides the host link
            // like any transfer.
            let mut ready_at = self.issue_adapter_transfer(d.proxy_bytes, now);
            // Adapter residency, exactly as admission acquires it.
            if self.cache.acquire(&mut self.mem, adapter, now) {
                // Hit: nothing to do.
            } else if let Some(l) = self.loading.get_mut(&adapter) {
                l.waiters += 1;
                ready_at = ready_at.max(l.ready_at);
            } else {
                self.mem
                    .reserve(Region::AdaptersInUse, adapter_need)
                    .expect("free memory checked above");
                let adapter_ready = self.issue_adapter_transfer(adapter_need, now);
                self.loading.insert(
                    adapter,
                    Loading {
                        ready_at: adapter_ready,
                        bytes: adapter_need,
                        waiters: 1,
                    },
                );
                out.push((adapter_ready, EngineEvent::LoadDone(adapter)));
                ready_at = ready_at.max(adapter_ready);
            }
            self.kv_stats.on_restored(d.proxy_bytes);
            // Revisit this state machine when the transfer lands even if
            // no other event would fire then.
            out.push((ready_at, EngineEvent::Poke));
            self.restoring.push(Restoring {
                kv_reserved: kv_tokens,
                ready_at,
                d,
            });
        }
    }

    /// Refills the reusable protected-adapter set (adapters of queued
    /// requests, §4.2) from the scheduler; `adapters_buf` keeps the
    /// ordered list, `protected_buf` the set view.
    fn refresh_protected(&mut self) {
        self.adapters_buf.clear();
        self.sched.queued_adapters_into(&mut self.adapters_buf);
        self.protected_buf.clear();
        self.protected_buf.extend(self.adapters_buf.iter().copied());
    }

    /// Tries to grow `id`'s KV reservation by one token, evicting idle
    /// cached adapters if needed. Returns success.
    ///
    /// The grow is attempted *first*: when the new token fits in the
    /// sequence's already-allocated block, `kv.grow` reserves zero bytes
    /// and succeeds regardless of free memory, so neither eviction nor
    /// preemption may be demanded on that path. Only a failed grow — the
    /// token crosses a block boundary and the pool is out — evicts idle
    /// cache and retries.
    fn ensure_kv_growth(&mut self, id: RequestId, now: SimTime) -> bool {
        if self.kv.grow(&mut self.mem, id, 1).is_ok() {
            if let Some(r) = self.running.iter_mut().find(|r| r.req.id() == id) {
                r.kv_reserved += 1;
            }
            return true;
        }
        // A new block is genuinely needed: make room and retry once.
        self.refresh_protected();
        let need_block = self.kv.block_bytes();
        if self.mem.free() < need_block
            && !self
                .cache
                .make_room(&mut self.mem, need_block, now, &self.protected_buf)
        {
            return false;
        }
        match self.kv.grow(&mut self.mem, id, 1) {
            Ok(()) => {
                if let Some(r) = self.running.iter_mut().find(|r| r.req.id() == id) {
                    r.kv_reserved += 1;
                }
                true
            }
            Err(_) => false,
        }
    }

    fn retire_finished(&mut self, now: SimTime) {
        // Descending scan with in-place swap_remove: identical removal
        // order to the old collect-then-remove (every element past `idx`
        // has already been examined), without the per-step index Vec.
        for idx in (0..self.running.len()).rev() {
            if !self.running[idx].finished() {
                continue;
            }
            let r = self.running.swap_remove(idx);
            let id = r.req.id();
            self.collector.on_finish(id, now);
            self.kv.free(&mut self.mem, id);
            self.cache.release(&mut self.mem, r.req.adapter(), now);
            self.sched.on_finish(r.queue_index, r.charged_tokens);
            self.completed += 1;
            self.bypass_pairs.retain(|p| p.r2 != id && p.r1 != id);
        }
    }

    // ------------------------------------------------------------------
    // Dispatch
    // ------------------------------------------------------------------

    fn is_idle(&self, now: SimTime) -> bool {
        self.current_step.is_none() && now >= self.busy_until
    }

    /// Takes the reusable probe scratch, refilled for `now`. Callers put
    /// it back via `self.probe_scratch = probe` when done, so steady-state
    /// probing allocates nothing.
    fn take_probe(&mut self, now: SimTime) -> EngineProbe {
        let mut probe = std::mem::take(&mut self.probe_scratch);
        self.fill_probe(now, &mut probe);
        probe
    }

    fn fill_probe(&mut self, now: SimTime, probe: &mut EngineProbe) {
        // Evictable idle cache bytes count as available.
        let available_bytes = self.free_memory_bytes();
        let available_tokens = available_bytes / self.kv_bytes_per_token;
        probe.resident.clear();
        probe.resident.extend(
            self.cache
                .idle_adapters()
                .chain(self.running.iter().map(|r| r.req.adapter()))
                .chain(self.loading.keys().copied()),
        );
        // Per-token execution estimates at the current batch size: a decode
        // token costs one full (shared) iteration of wall time; a prefill
        // token costs its compute share.
        let batch = self.running.len().max(1);
        self.decode_items.clear();
        self.decode_items.resize(
            batch,
            DecodeItem {
                kv_tokens: 256,
                rank: None,
            },
        );
        let step = self.cost.decode_step_time(&self.decode_items);
        let decode_secs_per_token = step.as_secs_f64();
        let prefill_secs_per_token = {
            let t1k = self.cost.base_prefill_time(1024).as_secs_f64();
            let t0 = self.cost.base_prefill_time(1).as_secs_f64();
            (t1k - t0) / 1023.0
        };
        let secs_per_token = step.as_secs_f64() / batch as f64;
        // Predicted release schedule: when each running request is expected
        // to finish and how many bytes it would free.
        let rel = &mut probe.mem_release_schedule;
        rel.clear();
        rel.extend(self.running.iter().map(|r| {
            let remaining = u64::from(
                r.predicted_output
                    .max(r.produced)
                    .saturating_sub(r.produced),
            ) + u64::from(r.prefill_remaining) / 64;
            let finish = now + step.mul_f64(remaining as f64);
            // Block-rounded, matching what `KvAllocator::free` actually
            // releases at retirement.
            let freed = self.kv.bytes_for(r.kv_reserved)
                + self
                    .pool
                    .get(r.req.adapter())
                    .map(|a| a.bytes())
                    .unwrap_or(0);
            (finish, freed)
        }));
        // In-place unstable sort (no temp buffer); tied finish times all
        // resolve to the same wait, so the tie order is immaterial.
        rel.sort_unstable_by_key(|&(t, _)| t);
        let mut acc = 0u64;
        for item in rel.iter_mut() {
            acc += item.1;
            item.1 = acc;
        }
        let usable = self
            .mem
            .capacity()
            .saturating_sub(self.mem.used(Region::Weights))
            .saturating_sub(self.mem.used(Region::Activations));
        probe.now = now;
        probe.available_tokens = available_tokens;
        probe.batch_slots = self
            .cfg
            .max_batch_requests
            .saturating_sub(self.running.len());
        probe.secs_per_token = secs_per_token;
        probe.decode_secs_per_token = decode_secs_per_token;
        probe.prefill_secs_per_token = prefill_secs_per_token;
        probe.total_token_capacity = usable / self.kv_bytes_per_token;
        probe.free_kv_bytes = available_bytes;
        probe.kv_bytes_per_token = self.kv_bytes_per_token;
        probe.kv_block_bytes = self.kv.block_bytes();
    }

    fn try_dispatch(&mut self, now: SimTime, out: &mut Vec<(SimTime, EngineEvent)>) {
        if !self.is_idle(now) {
            // Phantom busy: `busy_until` ahead of `now` with no step in
            // flight. Within one run this cannot happen (the StepDone that
            // clears `current_step` fires exactly at `busy_until`), but a
            // later `run` call may replay a trace whose timeline starts
            // before the busy horizon carried over from the previous run —
            // and then no future event would ever re-trigger dispatch.
            // Schedule the wake-up that the missing StepDone would have
            // been.
            if self.current_step.is_none() && !self.poke_pending {
                self.poke_pending = true;
                out.push((self.busy_until, EngineEvent::Poke));
            }
            return;
        }
        self.service_kv_restores(now, out);
        self.check_squash(now);
        let probe = self.take_probe(now);
        let mut admissions = std::mem::take(&mut self.admit_buf);
        admissions.clear();
        self.sched.form_batch_into(&probe, &mut admissions);
        self.probe_scratch = probe;
        let mut admitted = 0u32;
        {
            let mut iter = admissions.drain(..);
            while let Some(adm) = iter.next() {
                if !self.admit(adm, now, out) {
                    // The scheduler already dequeued and charged the
                    // remaining admissions; give their quota back and
                    // return them to the front of their queues (in
                    // reverse, preserving order).
                    let mut rest = std::mem::take(&mut self.requeue_buf);
                    rest.clear();
                    rest.extend(iter);
                    for adm in rest.drain(..).rev() {
                        self.sched.on_finish(adm.queue_index, adm.charged_tokens);
                        self.sched.requeue_front(adm.request.requeued_at(now));
                    }
                    self.requeue_buf = rest;
                    break;
                }
                admitted += 1;
            }
        }
        self.admit_buf = admissions;
        if admitted > 0 {
            if let Some(buf) = self.trace.as_mut() {
                buf.push((
                    now,
                    TraceEvent::BatchFormed {
                        admitted,
                        running: self.running.len() as u32,
                        queued: self.sched.len() as u32,
                    },
                ));
            }
        }
        self.launch_step(now, out);
        // Liveness: if the engine is now completely idle but requests are
        // still queued (blocked head waiting on banked memory or an aging
        // gate), wake up again shortly — no other event would.
        if self.current_step.is_none()
            && self.running.is_empty()
            && self.loading.is_empty()
            && !self.sched.is_empty()
            && !self.poke_pending
        {
            self.poke_pending = true;
            out.push((now + SimDuration::from_millis(50), EngineEvent::Poke));
        }
    }

    /// Applies one admission. Returns `false` when resources ran out and
    /// admission processing should stop.
    fn admit(
        &mut self,
        adm: chameleon_sched::AdmissionOutcome,
        now: SimTime,
        out: &mut Vec<(SimTime, EngineEvent)>,
    ) -> bool {
        let queued = adm.request;
        let id = queued.id();
        let req = *queued.request();
        let adapter = req.adapter();
        let spec = self.pool.get(adapter).expect("known adapter").clone();
        self.refresh_protected();

        // 1. KV reservation for input + predicted output.
        let kv_tokens = req.input_tokens() + queued.predicted_output();
        let kv_bytes = self.kv.bytes_for(kv_tokens);
        if self.kv_spec.is_some_and(|s| s.admission) {
            // KV-aware admission control: refuse *before* touching the
            // allocator when the block-rounded footprint — KV plus a cold
            // adapter load — cannot be met even by evicting every idle,
            // unprotected cached adapter. Reserving input + predicted
            // output up front is the completability criterion; the
            // optimistic baseline instead allocates, fails halfway, and
            // unwinds via requeue-front.
            let adapter_need =
                if self.cache.is_resident(adapter) || self.loading.contains_key(&adapter) {
                    0
                } else {
                    spec.bytes()
                };
            let need = kv_bytes + adapter_need;
            // Reclaimable mirrors what `make_room` can actually deliver:
            // every idle adapter counts (its §4.2 second pass overrides
            // queue protection when memory demands it) — except the
            // request's *own* adapter, which cannot fund its admission:
            // evicting it frees exactly the bytes its reload would
            // consume, so counting it as both "resident, need 0" and
            // "evictable" overstates capacity and ends in a
            // self-inflicted storm when the cold-load reserve fails.
            let reclaimable = self.mem.free()
                + self
                    .cache
                    .idle_adapters()
                    .filter(|a| *a != adapter)
                    .map(|a| self.pool.get(a).map(|s| s.bytes()).unwrap_or(0))
                    .sum::<u64>();
            if need > reclaimable {
                self.kv_stats.on_refused();
                if let Some(buf) = &mut self.trace {
                    // How long the release schedule says the deficit
                    // takes to free up.
                    let est_wait = self.probe_scratch.estimate_mem_wait(need - reclaimable);
                    buf.push((
                        now,
                        TraceEvent::AdmissionRefused {
                            req: id.0,
                            need_bytes: need,
                            free_bytes: reclaimable,
                            est_wait,
                        },
                    ));
                }
                self.sched.on_finish(adm.queue_index, adm.charged_tokens);
                self.sched.requeue_front(queued.requeued_at(now));
                return false;
            }
        }
        // With admission armed, pin a resident adapter *before* the KV
        // make_room: the completability check excluded its bytes from the
        // reclaimable sum, so no eviction pass may spend them (referenced
        // adapters are never evicted). `None` preserves the optimistic
        // baseline's acquire-after-allocate order byte for byte.
        let pre_acquired = if self.kv_spec.is_some_and(|s| s.admission) {
            Some(self.cache.acquire(&mut self.mem, adapter, now))
        } else {
            None
        };
        if self.mem.free() < kv_bytes {
            self.cache
                .make_room(&mut self.mem, kv_bytes, now, &self.protected_buf);
        }
        if self.kv.allocate(&mut self.mem, id, kv_tokens).is_err() {
            // Snapshot was optimistic; push back and stop. With the KV
            // stats plane armed this is a requeue-front storm — the event
            // admission control exists to eliminate.
            if self.kv_stats.enabled {
                self.kv_stats.on_storm();
            }
            if pre_acquired == Some(true) {
                self.cache.release(&mut self.mem, adapter, now);
            }
            self.sched.on_finish(adm.queue_index, adm.charged_tokens);
            self.sched.requeue_front(queued.requeued_at(now));
            return false;
        }

        // 2. Adapter residency.
        let mut load_on_path = SimDuration::ZERO;
        let hit = match pre_acquired {
            Some(h) => h,
            None => self.cache.acquire(&mut self.mem, adapter, now),
        };
        if hit {
            // Hit: nothing to do.
        } else if let Some(l) = self.loading.get_mut(&adapter) {
            // Already in flight (prefetch or earlier admission).
            l.waiters += 1;
            load_on_path = l.ready_at.saturating_since(now);
        } else {
            // Cold: reserve memory and start the transfer.
            if self.mem.free() < spec.bytes() {
                self.cache
                    .make_room(&mut self.mem, spec.bytes(), now, &self.protected_buf);
            }
            if self
                .mem
                .reserve(Region::AdaptersInUse, spec.bytes())
                .is_err()
            {
                // No memory for the adapter: undo the KV reservation.
                if self.kv_stats.enabled {
                    self.kv_stats.on_storm();
                }
                self.kv.free(&mut self.mem, id);
                self.sched.on_finish(adm.queue_index, adm.charged_tokens);
                self.sched.requeue_front(queued.requeued_at(now));
                return false;
            }
            let ready_at = self.issue_adapter_transfer(spec.bytes(), now);
            self.loading.insert(
                adapter,
                Loading {
                    ready_at,
                    bytes: spec.bytes(),
                    waiters: 1,
                },
            );
            out.push((ready_at, EngineEvent::LoadDone(adapter)));
            load_on_path = ready_at.saturating_since(now);
        }

        // 3. Bookkeeping.
        if adm.bypassed {
            self.collector.on_bypass(id);
            // Identify the blocked head (r1) as the current head of the
            // same queue, if any, for the squash rule. `adapters_buf` is
            // the ordered queued-adapter list refreshed above; the queues
            // have not changed since.
            if let Some(r1) = self.adapters_buf.first().copied() {
                // Approximation: protect against squashing storms by
                // recording the blocked adapter's byte need as tokens.
                // Admission reserves input + predicted output, so the
                // blocked head's token need must count both — input alone
                // under-fires the §4.3.3 squash rule.
                let r1_tokens = self
                    .pool
                    .get(r1)
                    .map(|a| a.bytes() / self.kv_bytes_per_token)
                    .unwrap_or(0)
                    + u64::from(req.input_tokens())
                    + u64::from(queued.predicted_output());
                self.bypass_pairs.push(BypassPair {
                    r2: id,
                    r1: RequestId(u64::MAX), // matched by adapter need only
                    r1_tokens,
                });
            }
        }
        self.collector.on_admitted(id, now, load_on_path);
        self.running.push(Running {
            prefill_remaining: req.input_tokens(),
            produced: 0,
            kv_reserved: kv_tokens,
            predicted_output: queued.predicted_output(),
            charged_tokens: adm.charged_tokens,
            queue_index: adm.queue_index,
            admitted_at: now,
            req,
        });
        true
    }

    /// §4.3.3 squash rule: if memory sufficient for a previously blocked
    /// request has freed while a bypasser is still running, squash the
    /// bypasser for later re-execution.
    fn check_squash(&mut self, now: SimTime) {
        if self.bypass_pairs.is_empty() {
            return;
        }
        let free_tokens = self.free_memory_bytes() / self.kv_bytes_per_token;
        // Two persistent vectors trade roles each call: `bypass_pairs` is
        // emptied (so `squash`'s retain sees the same empty list the old
        // `mem::take` produced), survivors accumulate in the scratch, and
        // a final swap makes the scratch the live list — no allocation.
        let pairs = std::mem::take(&mut self.bypass_pairs);
        debug_assert!(self.pairs_scratch.is_empty());
        for &pair in &pairs {
            let r2_running = self.running.iter().any(|r| r.req.id() == pair.r2);
            if !r2_running {
                continue; // bypasser finished: pair dissolves
            }
            // Memory for the blocked request is now available even without
            // squashing: the pair dissolves (r1 will admit normally).
            if free_tokens >= pair.r1_tokens {
                continue;
            }
            // Would squashing r2 free enough?
            let r2 = self
                .running
                .iter()
                .find(|r| r.req.id() == pair.r2)
                .expect("checked running");
            let r2_frees = u64::from(r2.kv_reserved)
                + self
                    .pool
                    .get(r2.req.adapter())
                    .map(|a| a.bytes() / self.kv_bytes_per_token)
                    .unwrap_or(0);
            if free_tokens + r2_frees >= pair.r1_tokens {
                self.squash(pair.r2, now);
            } else {
                self.pairs_scratch.push(pair);
            }
        }
        std::mem::swap(&mut self.bypass_pairs, &mut self.pairs_scratch);
        self.pairs_scratch = pairs;
        self.pairs_scratch.clear();
    }

    /// Squashes a running request: its generated state is discarded and it
    /// returns to the front of its queue for re-execution.
    fn squash(&mut self, id: RequestId, now: SimTime) {
        let Some(idx) = self.running.iter().position(|r| r.req.id() == id) else {
            return;
        };
        let r = self.running.swap_remove(idx);
        self.kv.free(&mut self.mem, id);
        // The adapter may still be in flight (a request can be squashed
        // before its prefill ever started): drop the waiter instead of
        // releasing a cache reference that does not exist yet.
        if let Some(l) = self.loading.get_mut(&r.req.adapter()) {
            l.waiters = l.waiters.saturating_sub(1);
        } else {
            self.cache.release(&mut self.mem, r.req.adapter(), now);
        }
        self.sched.on_finish(r.queue_index, r.charged_tokens);
        self.collector.on_squash(id);
        self.squashes += 1;
        // Re-annotate and requeue at the front. The system has observed the
        // request produce `produced` tokens already, so the re-execution
        // reserves at least that much plus a block of headroom — otherwise
        // an under-predicted request would OOM and squash again forever.
        let spec = self.pool.get(r.req.adapter()).expect("known").clone();
        let predicted = r
            .predicted_output
            .max(r.produced + self.cfg.kv_block_tokens)
            .min(r.req.output_tokens().max(1));
        let wrs = self
            .wrs_cfg
            .compute(r.req.input_tokens(), predicted, spec.bytes());
        let queued = QueuedRequest::new(
            r.req,
            predicted,
            spec.bytes(),
            spec.bytes() / self.kv_bytes_per_token,
            wrs,
            now,
        );
        self.sched.requeue_front(queued);
        self.bypass_pairs.retain(|p| p.r2 != id);
    }

    fn squash_youngest_except(&mut self, keep: RequestId, now: SimTime) {
        let youngest = self
            .running
            .iter()
            .filter(|r| r.req.id() != keep)
            .max_by_key(|r| (r.admitted_at, r.req.id()))
            .map(|r| r.req.id());
        if let Some(id) = youngest {
            self.squash(id, now);
        }
    }

    /// Chooses and launches the next iteration.
    fn launch_step(&mut self, now: SimTime, out: &mut Vec<(SimTime, EngineEvent)>) {
        if self.current_step.is_some() {
            return;
        }
        let adapter_ready = |e: &Engine, a: AdapterId| -> bool { e.cache.is_resident(a) };
        // S-LoRA batch semantics (§2): the engine does not launch the next
        // iteration while an admitted request's adapter is still loading —
        // the scheduler synchronously loads missing adapters before sending
        // the batch. Chameleon's asynchronous cache manager avoids this.
        if self.cfg.block_on_load
            && self
                .running
                .iter()
                .any(|r| r.prefill_remaining > 0 && !adapter_ready(self, r.req.adapter()))
        {
            return; // a LoadDone event will re-trigger dispatch
        }
        self.prefill_idx.clear();
        self.decode_idx.clear();
        let cache = &self.cache;
        for (i, r) in self.running.iter().enumerate() {
            if !cache.is_resident(r.req.adapter()) {
                continue;
            }
            if r.prefill_remaining > 0 {
                self.prefill_idx.push(i);
            } else if !r.finished() {
                self.decode_idx.push(i);
            }
        }

        let plan = if self.cfg.chunked_prefill {
            self.plan_chunked()
        } else {
            self.plan_plain()
        };
        let Some((plan, duration)) = plan else {
            return; // nothing executable: waiting on loads or truly idle
        };
        // Straggler windows stretch every iteration; the healthy-path
        // branch (factor exactly 1.0) skips the multiply so arming the
        // fault plane elsewhere cannot perturb this engine's timeline.
        let duration = if self.slowdown != 1.0 {
            duration.mul_f64(self.slowdown)
        } else {
            duration
        };
        self.step_seq += 1;
        self.current_step = Some(plan);
        self.busy_until = now + duration;
        out.push((self.busy_until, EngineEvent::StepDone(self.step_seq)));
    }

    /// Default (LightLLM/S-LoRA-style) execution: pending prefills run as a
    /// dedicated prefill iteration before decoding continues.
    ///
    /// Reads `prefill_idx`/`decode_idx` (filled by `launch_step`) and
    /// builds the plan out of the pooled buffers, which `on_step_done`
    /// recycles when the step completes.
    fn plan_plain(&mut self) -> Option<(StepPlan, SimDuration)> {
        if !self.prefill_idx.is_empty() {
            // Cap the prompt tokens processed this iteration so a wave of
            // admissions cannot stall running decodes indefinitely.
            let mut budget = self.cfg.max_prefill_batch_tokens;
            let mut ids = std::mem::take(&mut self.ids_pool);
            let mut chunks = std::mem::take(&mut self.chunks_pool);
            ids.clear();
            chunks.clear();
            self.prefill_items.clear();
            for &i in &self.prefill_idx {
                if budget == 0 {
                    break;
                }
                let r = &self.running[i];
                let take = r.prefill_remaining.min(budget);
                budget -= take;
                ids.push(r.req.id());
                chunks.push(take);
                self.prefill_items.push(PrefillItem {
                    tokens: take,
                    rank: Some(r.req.rank()),
                });
            }
            let dur = self.cost.prefill_time(&self.prefill_items);
            return Some((StepPlan::Prefill { ids, chunks }, dur));
        }
        if self.decode_idx.is_empty() {
            return None;
        }
        let mut ids = std::mem::take(&mut self.ids_pool);
        ids.clear();
        ids.extend(self.decode_idx.iter().map(|&i| self.running[i].req.id()));
        self.fill_decode_items();
        let dur = self.cost.decode_step_time(&self.decode_items);
        let mut folded = std::mem::take(&mut self.folded_pool);
        folded.clear();
        Some((
            StepPlan::Decode {
                ids,
                folded_prefill: folded,
            },
            dur,
        ))
    }

    /// Fills `decode_items` with the cost-model view of `decode_idx`.
    fn fill_decode_items(&mut self) {
        self.decode_items.clear();
        let running = &self.running;
        self.decode_items.extend(self.decode_idx.iter().map(|&i| {
            let r = &running[i];
            DecodeItem {
                kv_tokens: r.req.input_tokens() + r.produced,
                rank: Some(r.req.rank()),
            }
        }));
    }

    /// Sarathi-style chunked prefill: decode every iteration, folding in up
    /// to `prefill_chunk_tokens` of pending prompt work.
    fn plan_chunked(&mut self) -> Option<(StepPlan, SimDuration)> {
        if self.prefill_idx.is_empty() && self.decode_idx.is_empty() {
            return None;
        }
        let mut budget = self.cfg.prefill_chunk_tokens;
        let mut folded = std::mem::take(&mut self.folded_pool);
        folded.clear();
        self.prefill_items.clear();
        for &i in &self.prefill_idx {
            if budget == 0 {
                break;
            }
            let r = &self.running[i];
            let chunk = r.prefill_remaining.min(budget);
            budget -= chunk;
            folded.push((r.req.id(), chunk));
            self.prefill_items.push(PrefillItem {
                tokens: chunk,
                rank: Some(r.req.rank()),
            });
        }
        let mut ids = std::mem::take(&mut self.ids_pool);
        ids.clear();
        ids.extend(self.decode_idx.iter().map(|&i| self.running[i].req.id()));
        self.fill_decode_items();
        // Folding shares one iteration: the chunk's compute rides along,
        // minus one duplicated fixed overhead.
        let mut dur = self.cost.decode_step_time(&self.decode_items);
        if !self.prefill_items.is_empty() {
            let pf = self.cost.prefill_time(&self.prefill_items);
            let overhead = self.cost.calibration().prefill_overhead;
            dur = if dur.is_zero() {
                pf
            } else {
                dur + pf.saturating_sub(overhead)
            };
        }
        Some((
            StepPlan::Decode {
                ids,
                folded_prefill: folded,
            },
            dur,
        ))
    }

    /// Issues the host→GPU copy for an adapter load and returns the
    /// instant the adapter is usable. With an armed fault injector, each
    /// failed copy still occupies the link for its full duration and the
    /// retry queues back-to-back behind it — a flaky link shows up as
    /// load latency and bandwidth pressure, never as lost work. Without
    /// one this is exactly the pre-fault load path.
    fn issue_adapter_transfer(&mut self, bytes: u64, now: SimTime) -> SimTime {
        let occupancy = self.cost.adapter_link_occupancy(bytes);
        let mut rec = self.link.transfer_with_duration(bytes, occupancy, now);
        if let Some(inj) = self.pcie_faults.as_mut() {
            while inj.transfer_fails() {
                rec = self.link.transfer_with_duration(bytes, occupancy, rec.end);
            }
        }
        rec.start + self.cost.adapter_load_time(bytes)
    }

    // ------------------------------------------------------------------
    // Prefetch
    // ------------------------------------------------------------------

    /// Issues asynchronous adapter loads for queued requests (§2) and,
    /// when enabled, for predicted future requests (§4.2 3).
    fn prefetch(&mut self, now: SimTime, out: &mut Vec<(SimTime, EngineEvent)>) {
        if !self.cfg.prefetch_queued && !self.cfg.predictive_prefetch {
            return;
        }
        self.prefetch_buf.clear();
        if self.cfg.prefetch_queued {
            self.sched.queued_adapters_into(&mut self.prefetch_buf);
        }
        if self.cfg.predictive_prefetch {
            let predicted = self
                .load_predictor
                .candidates(now, self.cfg.prefetch_window);
            self.prefetch_buf.extend(predicted);
        }
        let mut issued = 0;
        for k in 0..self.prefetch_buf.len() {
            let adapter = self.prefetch_buf[k];
            if issued >= self.cfg.prefetch_depth {
                break;
            }
            if self.warm_load(adapter, now, out).is_some() {
                issued += 1;
            }
        }
    }

    /// Starts a speculative (no waiters) host→GPU transfer of `adapter`'s
    /// weights, returning the bytes issued, or `None` when the adapter is
    /// already resident or in flight, unknown, or memory is too tight.
    ///
    /// This is the warm-insert primitive shared by the engine's own
    /// prefetcher and the cluster's predictive control plane
    /// (pre-replication onto spill targets, drain-time shard handoff).
    /// Warm loads never evict: they use only genuinely free memory and
    /// keep headroom for KV growth, so speculation can cost queued work
    /// nothing. The transfer is PCIe-cost-modelled — it queues on this
    /// engine's link like any demand load and completes via the returned
    /// [`EngineEvent::LoadDone`] pushed to `out`.
    pub fn warm_load(
        &mut self,
        adapter: AdapterId,
        now: SimTime,
        out: &mut Vec<(SimTime, EngineEvent)>,
    ) -> Option<u64> {
        if self.cache.is_resident(adapter) || self.loading.contains_key(&adapter) {
            return None;
        }
        let spec = self.pool.get(adapter)?.clone();
        // Never evict for speculation: only genuinely free memory, with
        // headroom for a few KV blocks.
        if self.mem.free() < spec.bytes() + 4 * self.kv.block_bytes() {
            return None;
        }
        if self
            .mem
            .reserve(Region::AdaptersInUse, spec.bytes())
            .is_err()
        {
            return None;
        }
        let ready_at = self.issue_adapter_transfer(spec.bytes(), now);
        self.loading.insert(
            adapter,
            Loading {
                ready_at,
                bytes: spec.bytes(),
                waiters: 0,
            },
        );
        out.push((ready_at, EngineEvent::LoadDone(adapter)));
        Some(spec.bytes())
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("scheduler", &self.sched.name())
            .field("running", &self.running.len())
            .field("queued", &self.sched.len())
            .field("loading", &self.loading.len())
            .field("completed", &self.completed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_cache::EvictionPolicy;
    use chameleon_models::{AdapterRank, GpuSpec, LlmSpec, PoolConfig};
    use chameleon_predictor::OraclePredictor;
    use chameleon_sched::FifoScheduler;

    fn mk_engine() -> Engine {
        let llm = LlmSpec::llama_7b();
        let pool = AdapterPool::generate(&llm, &PoolConfig::paper_default(10));
        let cfg = EngineConfig::new(llm, GpuSpec::a40());
        let wrs = WrsConfig::paper(2048.0, 1024.0, (256 << 20) as f64);
        Engine::new(
            cfg,
            pool,
            Box::new(FifoScheduler::new()),
            Box::new(OraclePredictor::new()),
            AdapterCache::new(EvictionPolicy::chameleon()),
            wrs,
        )
    }

    fn drive(engine: &mut Engine, mut pending: Vec<(SimTime, EngineEvent)>) -> SimTime {
        use chameleon_simcore::EventQueue;
        let mut q = EventQueue::new();
        for (t, e) in pending.drain(..) {
            q.push(t, e);
        }
        let mut last = SimTime::ZERO;
        let mut out = Vec::new();
        while let Some((t, ev)) = q.pop() {
            last = t;
            engine.handle(t, ev, &mut out);
            for (at, e) in out.drain(..) {
                q.push(at, e);
            }
        }
        last
    }

    fn request(id: u64, at: f64, input: u32, output: u32, adapter: u32) -> Request {
        Request::new(
            RequestId(id),
            SimTime::from_secs_f64(at),
            input,
            output,
            AdapterId(adapter),
            AdapterRank::new(8), // pool adapter 0 has rank 8
        )
    }

    #[test]
    fn single_request_full_lifecycle() {
        let mut e = mk_engine();
        let last = drive(
            &mut e,
            vec![(
                SimTime::ZERO,
                EngineEvent::Arrival(request(0, 0.0, 256, 8, 0)),
            )],
        );
        assert_eq!(e.completed(), 1);
        assert!(!e.has_work());
        let report = e.into_report();
        let rec = &report.records[0];
        assert!(rec.is_complete());
        let ttft = rec.ttft().unwrap();
        // Cold adapter + prefill: tens of milliseconds.
        assert!((0.030..0.200).contains(&ttft.as_secs_f64()), "TTFT {ttft}");
        // 8 tokens: 7 decode gaps.
        assert_eq!(rec.tbt_gaps.len(), 7);
        assert!(rec.load_on_critical_path > SimDuration::ZERO, "cold load");
        assert!(last > SimTime::ZERO);
        // All memory returned except weights + headroom... the adapter
        // stays cached (Chameleon retains idle adapters).
        assert_eq!(report.cache_stats.misses, 1);
    }

    #[test]
    fn second_request_same_adapter_hits_cache() {
        let mut e = mk_engine();
        drive(
            &mut e,
            vec![
                (
                    SimTime::ZERO,
                    EngineEvent::Arrival(request(0, 0.0, 128, 4, 0)),
                ),
                (
                    SimTime::from_secs_f64(5.0),
                    EngineEvent::Arrival(request(1, 5.0, 128, 4, 0)),
                ),
            ],
        );
        let report = e.into_report();
        assert_eq!(report.cache_stats.hits, 1);
        assert_eq!(report.cache_stats.misses, 1);
        let second = &report.records[1];
        assert_eq!(second.load_on_critical_path, SimDuration::ZERO);
        // Warm TTFT strictly below cold TTFT.
        assert!(second.ttft().unwrap() < report.records[0].ttft().unwrap());
    }

    #[test]
    fn concurrent_requests_batch_and_finish() {
        let mut e = mk_engine();
        let events: Vec<(SimTime, EngineEvent)> = (0..8)
            .map(|i| {
                (
                    SimTime::from_secs_f64(i as f64 * 0.01),
                    EngineEvent::Arrival(request(i, i as f64 * 0.01, 64, 16, (i % 3) as u32)),
                )
            })
            .collect();
        drive(&mut e, events);
        assert_eq!(e.completed(), 8);
        let report = e.into_report();
        assert!(report.records.iter().all(|r| r.is_complete()));
        // Batching: total time far below the sum of isolated times.
        let finish = report
            .records
            .iter()
            .map(|r| r.finished.unwrap())
            .max()
            .unwrap();
        assert!(finish < SimTime::from_secs_f64(8.0 * 16.0 * 0.03));
    }

    #[test]
    fn memory_sampling_and_refresh_events() {
        let mut e = mk_engine();
        drive(
            &mut e,
            vec![
                (
                    SimTime::ZERO,
                    EngineEvent::Arrival(request(0, 0.0, 64, 4, 0)),
                ),
                (SimTime::from_secs_f64(0.01), EngineEvent::MemSample),
                (SimTime::from_secs_f64(0.02), EngineEvent::Refresh),
            ],
        );
        let report = e.into_report();
        assert_eq!(report.mem_series.len(), 1);
        let s = &report.mem_series[0];
        assert_eq!(s.weights, LlmSpec::llama_7b().weight_bytes());
        assert!(s.kv > 0, "request holds KV during sampling");
    }

    #[test]
    fn tracing_buffers_lifecycle_decisions() {
        let mut e = mk_engine();
        e.enable_tracing();
        drive(
            &mut e,
            vec![
                (
                    SimTime::ZERO,
                    EngineEvent::Arrival(request(0, 0.0, 256, 8, 0)),
                ),
                (SimTime::from_secs_f64(0.01), EngineEvent::MemSample),
            ],
        );
        let events = e.take_trace_events();
        let kinds: Vec<&str> = events.iter().map(|(_, ev)| ev.kind()).collect();
        assert!(kinds.contains(&"batch"), "admission emits BatchFormed");
        assert!(
            kinds.contains(&"cache_admit"),
            "cold load journals an admit"
        );
        assert!(kinds.contains(&"first_token"), "prefill emits FirstToken");
        assert!(kinds.contains(&"queue"), "MemSample emits QueueSample");
        // Times are non-decreasing: the buffer is in execution order.
        assert!(events.windows(2).all(|w| w[0].0 <= w[1].0));
        // Drained once, the buffer restarts empty.
        assert!(e.take_trace_events().is_empty());
    }

    #[test]
    fn tracing_disabled_buffers_nothing() {
        let mut e = mk_engine();
        drive(
            &mut e,
            vec![(
                SimTime::ZERO,
                EngineEvent::Arrival(request(0, 0.0, 64, 4, 0)),
            )],
        );
        assert!(!e.tracing_enabled());
        assert!(e.take_trace_events().is_empty());
    }

    #[test]
    fn stale_step_done_is_ignored() {
        let mut e = mk_engine();
        let mut out = Vec::new();
        e.handle(SimTime::ZERO, EngineEvent::StepDone(99), &mut out);
        assert!(out.is_empty());
        assert_eq!(e.completed(), 0);
    }

    /// Installs a running request with `kv_reserved` tokens of allocated
    /// KV, registered with the collector so squash/retire paths stay
    /// valid. The adapter is marked in-flight so a squash drops a waiter
    /// instead of releasing a never-acquired cache reference.
    fn install_running(e: &mut Engine, req: Request, kv_reserved: u32, admitted_at: SimTime) {
        let id = req.id();
        e.collector.on_arrival(
            id,
            req.arrival(),
            req.input_tokens(),
            req.output_tokens(),
            req.adapter(),
            req.rank(),
        );
        e.kv.allocate(&mut e.mem, id, kv_reserved)
            .expect("test fixture KV fits");
        e.loading.entry(req.adapter()).or_insert(Loading {
            ready_at: SimTime::from_secs_f64(100.0),
            bytes: 0,
            waiters: 0,
        });
        if let Some(l) = e.loading.get_mut(&req.adapter()) {
            l.waiters += 1;
        }
        e.running.push(Running {
            prefill_remaining: 0,
            produced: 1,
            kv_reserved,
            predicted_output: 1,
            charged_tokens: 0,
            queue_index: 0,
            admitted_at,
            req,
        });
    }

    /// Regression for the spurious-squash bug: a decode token that fits in
    /// the sequence's already-allocated block reserves zero bytes, so KV
    /// growth must succeed — and never preempt a neighbour — even with no
    /// free memory and nothing evictable.
    #[test]
    fn within_block_kv_growth_never_squashes() {
        let mut e = mk_engine();
        let now = SimTime::from_secs_f64(2.0);
        // 17 reserved tokens occupy 2 × 16-token blocks: room for 32.
        install_running(&mut e, request(1, 0.0, 16, 8, 0), 17, SimTime::ZERO);
        // A younger neighbour — the victim the buggy path would squash.
        install_running(
            &mut e,
            request(2, 0.0, 8, 8, 1),
            16,
            SimTime::from_secs_f64(1.0),
        );
        // Exhaust every free byte so any demand for a fresh block fails.
        let free = e.mem.free();
        e.mem
            .reserve(Region::Activations, free)
            .expect("free bytes just measured");
        assert!(e.mem.free() < e.kv.block_bytes());
        let squashes_before = e.squashes;
        // Token 18 of request 1 (16 input + produced 2) fits in block 2.
        e.apply_decode_progress(RequestId(1), now);
        assert_eq!(e.squashes, squashes_before, "within-block growth preempted");
        assert_eq!(e.running.len(), 2, "victim stayed in the batch");
        assert_eq!(e.kv.tokens_of(RequestId(1)), Some(18));
        assert_eq!(e.kv.total_bytes(), e.mem.used(Region::KvCache));
    }

    /// Crossing a block boundary with no memory and nothing evictable
    /// still preempts (the pre-existing OOM path is preserved).
    #[test]
    fn block_boundary_growth_without_memory_still_squashes() {
        let mut e = mk_engine();
        let now = SimTime::from_secs_f64(2.0);
        // 18 reserved = 2 blocks exactly at 32 tokens? No: 18 tokens → 2
        // blocks, full at 32. Use 32 so the next token needs block 3.
        install_running(&mut e, request(1, 0.0, 30, 8, 0), 32, SimTime::ZERO);
        install_running(
            &mut e,
            request(2, 0.0, 8, 8, 1),
            16,
            SimTime::from_secs_f64(1.0),
        );
        let free = e.mem.free();
        e.mem
            .reserve(Region::Activations, free)
            .expect("free bytes just measured");
        // Request 1 produced token → needed = 30 + 2 = 32... grow to 33
        // requires a new block. Force needed > reserved by bumping produced.
        if let Some(r) = e.running.iter_mut().find(|r| r.req.id() == RequestId(1)) {
            r.produced = 2; // needed = 33 > reserved 32 after the +1 below
        }
        e.apply_decode_progress(RequestId(1), now);
        assert_eq!(e.squashes, 1, "boundary growth under OOM must preempt");
        assert_eq!(e.kv.total_bytes(), e.mem.used(Region::KvCache));
    }

    /// The probe's predicted release schedule reports block-rounded bytes —
    /// exactly what `KvAllocator::free` will release at retirement.
    #[test]
    fn release_schedule_is_block_rounded() {
        let mut e = mk_engine();
        // 17 tokens round up to 2 blocks.
        install_running(&mut e, request(1, 0.0, 16, 8, 0), 17, SimTime::ZERO);
        let adapter_bytes = e.pool.get(AdapterId(0)).unwrap().bytes();
        let probe = e.take_probe(SimTime::from_secs_f64(1.0));
        let sched = &probe.mem_release_schedule;
        assert_eq!(sched.len(), 1);
        assert_eq!(
            sched[0].1,
            e.kv.bytes_for(17) + adapter_bytes,
            "schedule must match the block-rounded bytes retirement frees"
        );
        assert!(sched[0].1 > 17 * e.kv.bytes_per_token() + adapter_bytes);
    }

    /// §4.3.3 squash rule, dissolve branch: when enough memory has freed
    /// for the blocked head even without squashing, the pair dissolves.
    #[test]
    fn bypass_pair_dissolves_when_memory_freed() {
        let mut e = mk_engine();
        install_running(&mut e, request(2, 0.0, 8, 8, 0), 16, SimTime::ZERO);
        // Plenty of free memory: tiny r1 need dissolves without a squash.
        e.bypass_pairs.push(BypassPair {
            r2: RequestId(2),
            r1: RequestId(u64::MAX),
            r1_tokens: 8,
        });
        e.check_squash(SimTime::from_secs_f64(1.0));
        assert_eq!(e.squashes, 0);
        assert!(e.bypass_pairs.is_empty(), "satisfied pair dissolves");
        assert_eq!(e.running.len(), 1, "bypasser keeps running");
    }

    /// §4.3.3 squash rule, squash branch: when the blocked head's need —
    /// input *plus predicted output*, as admission reserves — cannot be
    /// met from free memory but squashing the bypasser covers it, the
    /// bypasser is squashed and requeued.
    #[test]
    fn bypass_pair_squashes_when_freeing_bypasser_suffices() {
        let mut e = mk_engine();
        install_running(&mut e, request(2, 0.0, 8, 8, 0), 32, SimTime::ZERO);
        let free = e.mem.free();
        e.mem
            .reserve(Region::Activations, free)
            .expect("free bytes just measured");
        let free_tokens = e.free_memory_bytes() / e.kv_bytes_per_token;
        let r2_frees = 32 + e.pool.get(AdapterId(0)).unwrap().bytes() / e.kv_bytes_per_token;
        // Need sits strictly between "free now" and "free after squash".
        let r1_tokens = free_tokens + r2_frees;
        e.bypass_pairs.push(BypassPair {
            r2: RequestId(2),
            r1: RequestId(u64::MAX),
            r1_tokens,
        });
        e.check_squash(SimTime::from_secs_f64(1.0));
        assert_eq!(e.squashes, 1, "freeing the bypasser satisfies the head");
        assert!(e.running.is_empty());
        assert_eq!(e.sched.len(), 1, "squashed bypasser requeued");
        assert_eq!(e.kv.total_bytes(), e.mem.used(Region::KvCache));
    }
}
