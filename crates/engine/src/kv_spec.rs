//! Configuration of the unified GPU-memory economy (KV plane).
//!
//! [`KvSpec`] arms two mechanisms that make KV occupancy a schedulable,
//! evictable, first-class quantity instead of a background cost carved
//! out of whatever the adapter cache left free:
//!
//! * **KV-aware admission control**: batch formation refuses an
//!   admission whose block-rounded KV footprint (input + predicted
//!   output) cannot be satisfied even by evicting every idle cached
//!   adapter — *before* touching the allocator — instead of
//!   optimistically allocating and unwinding via requeue-front. The
//!   refusal consults the probe's release schedule so the trace records
//!   how long the request would have had to wait.
//! * **Hybrid cache mode** (Apt-Serve-style): under a configurable KV
//!   pressure threshold, a running request hit by out-of-memory growth
//!   is demoted to a compact hidden-state proxy entry (a configurable
//!   fraction of its full KV) rather than squashed outright; the proxy
//!   is restored to full residency over PCIe once memory frees up.
//!
//! Like `PredictiveSpec`, `FaultSpec` and `DispatchSpec`, the KV plane
//! is a strict opt-in overlay: `SystemConfig.kv = None` (the default)
//! leaves every run byte-identical to the digest-pinned oracles.

/// Tuning knobs of the KV plane. `Default` arms both mechanisms with
/// the paper-calibrated settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvSpec {
    /// Refuse admissions whose KV footprint cannot complete (vs the
    /// optimistic allocate-then-unwind baseline).
    pub admission: bool,
    /// Demote running requests to hidden-state proxies under pressure
    /// instead of squashing them.
    pub hybrid: bool,
    /// KV pressure (KV bytes over usable memory) at or above which
    /// demotion is preferred over squash.
    pub pressure_threshold: f64,
    /// Proxy size as a fraction of the full KV footprint it replaces
    /// (Apt-Serve's compact hidden-state entry).
    pub proxy_ratio: f64,
    /// Maximum demoted + restoring requests held at once; beyond this
    /// the engine falls back to squashing.
    pub max_proxies: usize,
}

impl KvSpec {
    /// Both mechanisms armed: KV-aware admission plus hybrid demotion,
    /// 80% pressure threshold, 1/8 proxy ratio, 16 proxies.
    pub fn new() -> Self {
        KvSpec {
            admission: true,
            hybrid: true,
            pressure_threshold: 0.80,
            proxy_ratio: 0.125,
            max_proxies: 16,
        }
    }

    /// Observe-only metering: neither mechanism intervenes, but the KV
    /// stats plane is armed — requeue-front storms and peak pressure are
    /// counted. The bench baseline arm.
    pub fn observe() -> Self {
        KvSpec {
            admission: false,
            hybrid: false,
            ..KvSpec::new()
        }
    }

    /// Admission control alone (no hybrid demotion) — isolates the
    /// refusal mechanism.
    pub fn admission_only() -> Self {
        KvSpec {
            hybrid: false,
            ..KvSpec::new()
        }
    }

    /// Sets the demotion pressure threshold.
    pub fn with_pressure_threshold(mut self, t: f64) -> Self {
        self.pressure_threshold = t;
        self
    }

    /// Sets the proxy size ratio.
    pub fn with_proxy_ratio(mut self, r: f64) -> Self {
        self.proxy_ratio = r;
        self
    }

    /// Sets the proxy population cap.
    pub fn with_max_proxies(mut self, n: usize) -> Self {
        self.max_proxies = n;
        self
    }
}

impl Default for KvSpec {
    fn default() -> Self {
        KvSpec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_arms_both_mechanisms() {
        let s = KvSpec::new();
        assert!(s.admission && s.hybrid);
        assert!(s.pressure_threshold > 0.0 && s.pressure_threshold <= 1.0);
        assert!(s.proxy_ratio > 0.0 && s.proxy_ratio < 1.0);
        assert!(s.max_proxies > 0);
        assert_eq!(KvSpec::default(), s);
    }

    #[test]
    fn observe_meters_without_intervening() {
        let s = KvSpec::observe();
        assert!(!s.admission && !s.hybrid);
        // Thresholds stay at their armed values so flipping a mechanism
        // on is the only delta between bench arms.
        assert_eq!(s.pressure_threshold, KvSpec::new().pressure_threshold);
    }

    #[test]
    fn builders_compose() {
        let s = KvSpec::admission_only()
            .with_pressure_threshold(0.5)
            .with_proxy_ratio(0.25)
            .with_max_proxies(4);
        assert!(s.admission && !s.hybrid);
        assert_eq!(s.pressure_threshold, 0.5);
        assert_eq!(s.proxy_ratio, 0.25);
        assert_eq!(s.max_proxies, 4);
    }
}
