//! The paper's workloads, scaled for the simulated testbed (§5.1).
//!
//! "Because our testbed has modest memory, we have scaled down the input
//! and output lengths in these large-scale system traces using a constant
//! factor" — we apply the same treatment: the Splitwise / WildChat / LMSYS
//! length models from `chameleon-workload` are scaled by a constant factor
//! chosen so the A40 testbed saturates in the paper's 5–13 RPS load range.

use chameleon_models::AdapterPool;
use chameleon_simcore::{SimRng, SimTime};
use chameleon_workload::generator::TokenLengthModel;
use chameleon_workload::{ArrivalModel, BurstEpisode, LengthModel, Trace, TraceGenerator};

/// Constant length-scaling factor (§5.1's memory-fit scaling).
pub const LENGTH_SCALE: f64 = 0.25;

fn scaled(model: LengthModel) -> LengthModel {
    let scale = |m: TokenLengthModel| TokenLengthModel {
        median: (m.median * LENGTH_SCALE).max(2.0),
        sigma: m.sigma,
        min: ((m.min as f64 * LENGTH_SCALE) as u32).max(2),
        max: ((m.max as f64 * LENGTH_SCALE) as u32).max(4),
    };
    LengthModel::Custom {
        input: scale(model.input_model()),
        output: scale(model.output_model()),
    }
}

/// The scaled Splitwise conversation workload at `rps` for `secs` seconds.
pub fn splitwise(rps: f64, secs: f64, seed: u64, pool: &AdapterPool) -> Trace {
    trace_from(LengthModel::SplitwiseLike, rps, secs, seed, pool)
}

/// The scaled WildChat-1M workload (§5.4.4).
pub fn wildchat(rps: f64, secs: f64, seed: u64, pool: &AdapterPool) -> Trace {
    trace_from(LengthModel::WildChatLike, rps, secs, seed, pool)
}

/// The scaled LMSYS-Chat-1M workload (§5.4.4).
pub fn lmsys(rps: f64, secs: f64, seed: u64, pool: &AdapterPool) -> Trace {
    trace_from(LengthModel::LmsysLike, rps, secs, seed, pool)
}

/// A Splitwise-like workload with a load burst around `burst_at` seconds —
/// the §5.4.1 predictor-sensitivity scenario ("during a load burst (at
/// around 300s)").
pub fn splitwise_bursty(
    rps: f64,
    secs: f64,
    burst_at: f64,
    burst_secs: f64,
    burst_factor: f64,
    seed: u64,
    pool: &AdapterPool,
) -> Trace {
    let arrivals = ArrivalModel::poisson(rps).with_burst(BurstEpisode {
        start: SimTime::from_secs_f64(burst_at),
        end: SimTime::from_secs_f64(burst_at + burst_secs),
        rate_multiplier: burst_factor,
    });
    let gen = TraceGenerator::new(scaled(LengthModel::SplitwiseLike), arrivals);
    let mut rng = SimRng::seed(seed);
    gen.generate(pool, SimTime::from_secs_f64(secs), &mut rng)
}

fn trace_from(model: LengthModel, rps: f64, secs: f64, seed: u64, pool: &AdapterPool) -> Trace {
    let gen = TraceGenerator::new(scaled(model), ArrivalModel::poisson(rps));
    let mut rng = SimRng::seed(seed);
    gen.generate(pool, SimTime::from_secs_f64(secs), &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_models::{LlmSpec, PoolConfig};

    fn pool() -> AdapterPool {
        AdapterPool::generate(&LlmSpec::llama_7b(), &PoolConfig::paper_default(100))
    }

    #[test]
    fn scaled_splitwise_medians() {
        let p = pool();
        let t = splitwise(10.0, 120.0, 1, &p);
        let s = t.summary();
        // Median input 512·0.25 = 128; log-normal mean ≈ 1.5× median.
        assert!(
            (100.0..350.0).contains(&s.mean_input),
            "mean input {}",
            s.mean_input
        );
        assert!(
            (25.0..90.0).contains(&s.mean_output),
            "mean output {}",
            s.mean_output
        );
    }

    #[test]
    fn workload_ordering_preserved() {
        let p = pool();
        let sw = splitwise(5.0, 120.0, 2, &p).summary();
        let wc = wildchat(5.0, 120.0, 2, &p).summary();
        let lm = lmsys(5.0, 120.0, 2, &p).summary();
        assert!(sw.mean_input > wc.mean_input);
        assert!(wc.mean_input >= lm.mean_input * 0.9);
    }

    #[test]
    fn bursty_trace_has_burst() {
        let p = pool();
        let t = splitwise_bursty(5.0, 500.0, 300.0, 50.0, 4.0, 3, &p);
        let during = t
            .iter()
            .filter(|r| {
                r.arrival() >= SimTime::from_secs_f64(300.0)
                    && r.arrival() < SimTime::from_secs_f64(350.0)
            })
            .count() as f64
            / 50.0;
        let before = t
            .iter()
            .filter(|r| r.arrival() < SimTime::from_secs_f64(300.0))
            .count() as f64
            / 300.0;
        assert!(during > 2.0 * before, "burst rps {during} vs base {before}");
    }
}
