//! System configuration: every knob of a serving system under study.

use chameleon_engine::{
    AutoscalerConfig, ClusterExecution, DispatchSpec, FaultSpec, KvSpec, PredictiveSpec,
};
use chameleon_models::{GpuSpec, LlmSpec, PoolConfig, PopularityDist};
use chameleon_router::RouterPolicy;
use chameleon_simcore::SimDuration;
use chameleon_trace::TraceSpec;

/// Shape of one engine in a (possibly heterogeneous) fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSpec {
    /// Tensor-parallel degree of this engine.
    pub tp_degree: u32,
    /// GPU platform override; `None` uses the system's default GPU.
    pub gpu: Option<GpuSpec>,
}

impl EngineSpec {
    /// A TP-`tp` engine on the system's default GPU.
    pub fn tp(tp_degree: u32) -> Self {
        EngineSpec {
            tp_degree,
            gpu: None,
        }
    }
}

/// The correlated failure unit an engine lives in: a host within a rack.
/// Correlated fault injections ([`FaultSpec::with_domain_crash`] and
/// friends) take out every engine sharing a rack, and domain-aware
/// placement keeps spill / pre-replication copies *outside* the primary's
/// rack so exactly those copies survive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultDomain {
    /// Host index within the rack.
    pub host: u32,
    /// Rack (power/network domain) index — the correlated failure unit.
    pub rack: u32,
}

/// Physical topology of the initial fleet: one [`FaultDomain`] per engine
/// in `EngineId` order. Engines added by the autoscaler are placed in
/// fresh singleton domains (nothing else fails with them).
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySpec {
    /// One domain per engine, in `EngineId` order.
    pub domains: Vec<FaultDomain>,
    /// When true (the default) the weighted-rendezvous *second* choice —
    /// the spill / pre-replication / failover target — prefers the
    /// best-ranked engine outside the primary's rack whenever one exists.
    /// `false` attaches domains (so correlated injections and the
    /// flight-recorder colocation predicate still resolve rack members)
    /// but keeps placement topology-blind — the efficacy ablation.
    pub anti_affinity: bool,
}

impl TopologySpec {
    /// One domain per entry of `racks`: engine `i` is host `i` in rack
    /// `racks[i]`.
    pub fn racks(racks: &[u32]) -> Self {
        TopologySpec {
            domains: racks
                .iter()
                .enumerate()
                .map(|(i, &rack)| FaultDomain {
                    host: i as u32,
                    rack,
                })
                .collect(),
            anti_affinity: true,
        }
    }

    /// Builder-style: keeps the domains but makes placement ignore them
    /// (the topology-blind ablation).
    pub fn without_anti_affinity(mut self) -> Self {
        self.anti_affinity = false;
        self
    }

    /// The domain of initial-fleet engine `i`; `None` past the fleet
    /// (autoscaled engines live in fresh singleton domains).
    pub fn domain_of(&self, i: usize) -> Option<FaultDomain> {
        self.domains.get(i).copied()
    }

    /// Number of distinct racks in the topology.
    pub fn rack_count(&self) -> usize {
        let mut racks: Vec<u32> = self.domains.iter().map(|d| d.rack).collect();
        racks.sort_unstable();
        racks.dedup();
        racks.len()
    }
}

/// Per-engine description of a data-parallel fleet — the heterogeneous
/// generalisation of a bare engine count. The §5.6 tensor-parallel
/// evaluation becomes a fleet axis: `FleetSpec::mixed_tp(&[1, 1, 2, 4])`
/// builds a fleet whose capacity-weighted rendezvous shards are
/// proportional to each engine's memory.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// One spec per engine, in `EngineId` order.
    pub engines: Vec<EngineSpec>,
    /// Physical fault-domain layout of the fleet. `None` — the default —
    /// treats every engine as its own domain and keeps placement
    /// byte-identical to the topology-less stack.
    pub topology: Option<TopologySpec>,
}

impl FleetSpec {
    /// `n` identical TP-`tp` engines.
    pub fn homogeneous(n: usize, tp_degree: u32) -> Self {
        FleetSpec {
            engines: vec![EngineSpec::tp(tp_degree); n],
            topology: None,
        }
    }

    /// One engine per entry of `tps`, each with that TP degree.
    pub fn mixed_tp(tps: &[u32]) -> Self {
        FleetSpec {
            engines: tps.iter().map(|&tp| EngineSpec::tp(tp)).collect(),
            topology: None,
        }
    }

    /// Builder-style: attaches a fault-domain topology (one domain per
    /// engine; must match the fleet size).
    pub fn with_topology(mut self, topology: TopologySpec) -> Self {
        assert_eq!(
            topology.domains.len(),
            self.engines.len(),
            "topology must name one fault domain per engine"
        );
        self.topology = Some(topology);
        self
    }

    /// Number of engines in the initial fleet.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// True for an empty fleet (rejected by the simulation).
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }
}

/// Runtime fleet-scaling configuration: the controller tunables plus what
/// kind of engine the fleet grows by.
#[derive(Debug, Clone)]
pub struct AutoscaleSpec {
    /// The queue-depth/SLO-watching controller's tunables.
    pub controller: AutoscalerConfig,
    /// Specs for engines added at runtime, cycled in growth order (the
    /// fleet can grow heterogeneously). Empty falls back to the system's
    /// default engine shape.
    pub growth: Vec<EngineSpec>,
}

impl AutoscaleSpec {
    /// Scale between `min` and `max` engines with the default controller
    /// tunables, growing by TP-1 default-GPU engines.
    pub fn new(min_engines: usize, max_engines: usize) -> Self {
        AutoscaleSpec {
            controller: AutoscalerConfig {
                min_engines,
                max_engines,
                ..AutoscalerConfig::default()
            },
            growth: Vec::new(),
        }
    }

    /// Sets the growth engine shapes (cycled).
    pub fn with_growth(mut self, growth: Vec<EngineSpec>) -> Self {
        self.growth = growth;
        self
    }
}

/// Which iteration-level scheduling policy the system runs (§3.3, §4.3).
#[derive(Debug, Clone, PartialEq)]
pub enum SchedPolicy {
    /// S-LoRA's FIFO.
    Fifo,
    /// μServe's speculative SJF with aging (tokens/second of credit).
    Sjf {
        /// Aging credit in predicted-tokens per second of waiting.
        aging_tokens_per_sec: f64,
    },
    /// The Chameleon multi-level queue (§4.3).
    ChameleonMlq {
        /// Re-derive queues/quotas every `T_refresh` (§4.3.4); false gives
        /// the §5.4.5 "Static" behaviour when combined with fixed cutoffs.
        dynamic: bool,
        /// Opportunistic bypass (§4.3.3).
        bypass: bool,
        /// Use only the predicted output length in the WRS (§5.4
        /// "OutputOnly") instead of the full formula.
        output_only: bool,
    },
    /// Chameleon with the degree-1 (linear) WRS — the §4.3.1 ablation.
    ChameleonLinearWrs,
    /// The §5.4.5 static four-queue baseline.
    StaticMlq,
}

/// Which adapter-cache policy the system runs (§4.2, §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicy {
    /// No cache: discard adapters when unused (S-LoRA, §2).
    Discard,
    /// LRU eviction.
    Lru,
    /// LFU eviction.
    Lfu,
    /// Equal-weight compound score (§5.3 "FairShare").
    FairShare,
    /// The tuned Chameleon compound score (F=0.45, R=0.10, S=0.45).
    Chameleon,
    /// Greedy-Dual-Size-Frequency (§5.3 comparison).
    Gdsf,
}

impl CachePolicy {
    /// Converts to the cache crate's policy (None = discard mode).
    pub fn to_eviction(self) -> Option<chameleon_cache::EvictionPolicy> {
        use chameleon_cache::EvictionPolicy as E;
        match self {
            CachePolicy::Discard => None,
            CachePolicy::Lru => Some(E::Lru),
            CachePolicy::Lfu => Some(E::Lfu),
            CachePolicy::FairShare => Some(E::FairShare),
            CachePolicy::Chameleon => Some(E::chameleon()),
            CachePolicy::Gdsf => Some(E::Gdsf),
        }
    }
}

/// Full description of a serving system plus its adapter environment.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Human-readable label used in reports.
    pub label: String,
    /// Base LLM.
    pub llm: LlmSpec,
    /// GPU platform.
    pub gpu: GpuSpec,
    /// Tensor-parallel degree.
    pub tp_degree: u32,
    /// Data-parallel engine count (a homogeneous fleet; superseded by
    /// [`fleet`](Self::fleet) when set).
    pub data_parallel: usize,
    /// Per-engine fleet description for heterogeneous clusters. `None`
    /// builds `data_parallel` identical engines.
    pub fleet: Option<FleetSpec>,
    /// Runtime fleet scaling; `None` keeps the fleet fixed for the run.
    pub autoscale: Option<AutoscaleSpec>,
    /// Cluster-level predictive control plane (burst pre-replication onto
    /// spill targets, SLO/forecast autoscaling signals, drain-time shard
    /// handoff). `None` — the default — keeps the cluster purely reactive
    /// and byte-identical to the pre-control-plane stack; ignored for
    /// single-engine runs.
    pub predictive: Option<PredictiveSpec>,
    /// Deterministic fault-injection and recovery plane: scheduled engine
    /// crashes, straggler windows, flaky PCIe transfers and delayed
    /// autoscaler provisioning, recovered through timeout detection,
    /// capped-backoff re-dispatch, shard re-homing and SLO-aware load
    /// shedding. `None` — the default — injects nothing and keeps every
    /// run byte-identical to the fault-free stack; ignored for
    /// single-engine runs (faults are observed at cluster barriers).
    pub fault: Option<FaultSpec>,
    /// Amortised dispatch barriers: consecutive arrivals coalesce into a
    /// single cluster barrier, routed from one cached snapshot generation
    /// under the router's declared staleness budget (optionally tightened
    /// by the spec). `None` — the default — keeps the legacy
    /// one-barrier-per-arrival dispatch loop byte-identical to the
    /// pre-batching stack; ignored for single-engine runs.
    pub dispatch: Option<DispatchSpec>,
    /// Unified GPU-memory economy: KV-aware admission control (refuse
    /// admissions whose block-rounded KV footprint cannot complete,
    /// instead of optimistically allocating and unwinding) and the
    /// Apt-Serve-style hybrid cache (demote running requests to compact
    /// hidden-state proxies under pressure instead of squashing). `None`
    /// — the default — keeps every engine byte-identical to the
    /// optimistic baseline. Applies per engine, single-engine and cluster
    /// runs alike.
    pub kv: Option<KvSpec>,
    /// Global routing policy dispatching requests across data-parallel
    /// engines (ignored for single-engine runs). The paper's two-level
    /// scheduler uses [`RouterPolicy::JoinShortestQueue`];
    /// [`RouterPolicy::AdapterAffinity`] partitions the adapter working
    /// set across engines instead of replicating it.
    pub router: RouterPolicy,
    /// How cluster runs step their engines between dispatch/autoscale
    /// barriers: on the coordinator thread
    /// ([`ClusterExecution::Serial`], the default) or on an
    /// epoch-synchronised worker pool ([`ClusterExecution::Parallel`],
    /// bit-identical results for every worker count). Ignored for
    /// single-engine runs.
    pub cluster_exec: ClusterExecution,
    /// Number of distinct adapters `N_a` (§5.1; default 100).
    pub num_adapters: usize,
    /// Rank-popularity distribution (§5.1: uniform by default).
    pub rank_popularity: PopularityDist,
    /// Within-rank adapter popularity (§5.1: power-law by default).
    pub within_rank_popularity: PopularityDist,
    /// Scheduling policy.
    pub sched: SchedPolicy,
    /// Adapter-cache policy.
    pub cache: CachePolicy,
    /// Chunked-prefill execution (the Figure 8 baseline).
    pub chunked_prefill: bool,
    /// Prefetch adapters of queued requests (S-LoRA and Chameleon both do).
    pub prefetch_queued: bool,
    /// Histogram-based predictive prefetch (Chameleon+Prefetch, Fig. 18).
    pub predictive_prefetch: bool,
    /// Output-length predictor accuracy in `[0, 1]`; `1.0` uses the oracle.
    pub predictor_accuracy: f64,
    /// The system has no output-length predictor and must provision KV
    /// memory for the worst case (S-LoRA, §5.2.1).
    pub worst_case_predictor: bool,
    /// TTFT SLO; `None` derives 5× the mean isolated E2E latency (§5.1).
    pub slo: Option<SimDuration>,
    /// Maximum concurrent requests per engine.
    pub max_batch_requests: usize,
    /// Decision tracing and flight-recorder configuration. `None` — the
    /// default — emits nothing and keeps every run byte-for-byte
    /// identical to the untraced stack; `Some` records the deterministic
    /// decision stream into [`RunReport::trace`](crate::RunReport) and
    /// arms the spec's anomaly predicates.
    pub trace: Option<TraceSpec>,
    /// Measure the wall-clock barrier/epoch profile of cluster runs
    /// (dispatch vs step vs barrier wait). Wall-clock only: never
    /// perturbs simulation results, never part of the trace stream.
    pub profile_barriers: bool,
}

impl SystemConfig {
    /// Baseline skeleton on the paper's primary platform (Llama-7B, A40,
    /// 100 adapters).
    pub fn base(label: impl Into<String>) -> Self {
        SystemConfig {
            label: label.into(),
            llm: LlmSpec::llama_7b(),
            gpu: GpuSpec::a40(),
            tp_degree: 1,
            data_parallel: 1,
            fleet: None,
            autoscale: None,
            predictive: None,
            fault: None,
            dispatch: None,
            kv: None,
            router: RouterPolicy::JoinShortestQueue,
            cluster_exec: ClusterExecution::Serial,
            num_adapters: 100,
            rank_popularity: PopularityDist::Uniform,
            within_rank_popularity: PopularityDist::power_law(),
            sched: SchedPolicy::Fifo,
            cache: CachePolicy::Discard,
            chunked_prefill: false,
            prefetch_queued: true,
            predictive_prefetch: false,
            predictor_accuracy: 0.8,
            worst_case_predictor: false,
            slo: None,
            max_batch_requests: 256,
            trace: None,
            profile_barriers: false,
        }
    }

    /// The adapter-pool configuration implied by this system.
    pub fn pool_config(&self) -> PoolConfig {
        PoolConfig {
            num_adapters: self.num_adapters,
            ranks: chameleon_models::AdapterRank::PAPER_SET.to_vec(),
            rank_popularity: self.rank_popularity,
            within_rank_popularity: self.within_rank_popularity,
        }
    }

    /// Builder-style: sets the model.
    pub fn with_llm(mut self, llm: LlmSpec) -> Self {
        self.llm = llm;
        self
    }

    /// Builder-style: sets the GPU.
    pub fn with_gpu(mut self, gpu: GpuSpec) -> Self {
        self.gpu = gpu;
        self
    }

    /// Builder-style: sets the adapter count.
    pub fn with_adapters(mut self, n: usize) -> Self {
        self.num_adapters = n;
        self
    }

    /// Builder-style: sets tensor parallelism.
    pub fn with_tp(mut self, tp: u32) -> Self {
        self.tp_degree = tp;
        self
    }

    /// Builder-style: sets the data-parallel engine count.
    pub fn with_data_parallel(mut self, engines: usize) -> Self {
        self.data_parallel = engines;
        self
    }

    /// Builder-style: sets a per-engine (possibly heterogeneous) fleet.
    pub fn with_fleet(mut self, fleet: FleetSpec) -> Self {
        assert!(!fleet.is_empty(), "empty fleet");
        self.fleet = Some(fleet);
        self
    }

    /// Builder-style: enables runtime fleet scaling.
    pub fn with_autoscale(mut self, autoscale: AutoscaleSpec) -> Self {
        self.autoscale = Some(autoscale);
        self
    }

    /// Builder-style: enables the predictive control plane.
    pub fn with_predictive(mut self, predictive: PredictiveSpec) -> Self {
        self.predictive = Some(predictive);
        self
    }

    /// Builder-style: arms the fault-injection plane.
    pub fn with_fault(mut self, fault: FaultSpec) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Builder-style: enables amortised dispatch barriers.
    pub fn with_dispatch(mut self, dispatch: DispatchSpec) -> Self {
        self.dispatch = Some(dispatch);
        self
    }

    /// Builder-style: arms the unified GPU-memory economy (KV-aware
    /// admission + hybrid cache).
    pub fn with_kv(mut self, kv: KvSpec) -> Self {
        self.kv = Some(kv);
        self
    }

    /// The fault-domain topology of the initial fleet, when one is
    /// attached via [`FleetSpec::with_topology`].
    pub fn topology(&self) -> Option<&TopologySpec> {
        self.fleet.as_ref().and_then(|f| f.topology.as_ref())
    }

    /// Number of engines the initial fleet is built with.
    pub fn engine_count(&self) -> usize {
        self.fleet
            .as_ref()
            .map_or(self.data_parallel, FleetSpec::len)
    }

    /// True when the run goes through the cluster dispatch layer (more
    /// than one engine, or a fleet that can scale past one).
    pub fn is_cluster(&self) -> bool {
        self.engine_count() > 1 || self.autoscale.is_some()
    }

    /// The shape of engine `i` in the initial fleet.
    pub fn engine_spec(&self, i: usize) -> EngineSpec {
        match &self.fleet {
            Some(fleet) => fleet.engines[i % fleet.engines.len()].clone(),
            None => EngineSpec::tp(self.tp_degree),
        }
    }

    /// The shape of the `k`-th engine added by the autoscaler (cycling
    /// through the growth specs; the system default when none are given).
    pub fn growth_spec(&self, k: usize) -> EngineSpec {
        match self.autoscale.as_ref().filter(|a| !a.growth.is_empty()) {
            Some(a) => a.growth[k % a.growth.len()].clone(),
            None => EngineSpec::tp(self.tp_degree),
        }
    }

    /// Builder-style: sets the cluster routing policy.
    pub fn with_router(mut self, router: RouterPolicy) -> Self {
        self.router = router;
        self
    }

    /// Builder-style: sets the cluster execution mode.
    pub fn with_cluster_exec(mut self, exec: ClusterExecution) -> Self {
        self.cluster_exec = exec;
        self
    }

    /// Builder-style: parallel cluster execution with `workers` worker
    /// threads (`0` = auto: `CHAMELEON_WORKERS`, else the machine's
    /// cores).
    pub fn with_parallel_cluster(self, workers: usize) -> Self {
        self.with_cluster_exec(ClusterExecution::Parallel { workers })
    }

    /// Builder-style: sets the predictor accuracy.
    pub fn with_predictor_accuracy(mut self, acc: f64) -> Self {
        self.predictor_accuracy = acc;
        self
    }

    /// Builder-style: relabels the system.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Builder-style: enables decision tracing with `spec`.
    pub fn with_trace(mut self, spec: TraceSpec) -> Self {
        self.trace = Some(spec);
        self
    }

    /// Builder-style: enables wall-clock barrier/epoch profiling.
    pub fn with_barrier_profiling(mut self) -> Self {
        self.profile_barriers = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_matches_paper_defaults() {
        let c = SystemConfig::base("test");
        assert_eq!(c.num_adapters, 100);
        assert_eq!(c.llm.name(), "Llama-7B");
        assert_eq!(c.gpu.name(), "A40");
        assert_eq!(c.rank_popularity, PopularityDist::Uniform);
        assert!(matches!(
            c.within_rank_popularity,
            PopularityDist::PowerLaw { .. }
        ));
    }

    #[test]
    fn cache_policy_mapping() {
        assert!(CachePolicy::Discard.to_eviction().is_none());
        assert!(CachePolicy::Chameleon.to_eviction().is_some());
        assert_eq!(
            CachePolicy::Lru.to_eviction(),
            Some(chameleon_cache::EvictionPolicy::Lru)
        );
    }

    #[test]
    fn builders_chain() {
        let c = SystemConfig::base("x")
            .with_llm(LlmSpec::llama_13b())
            .with_gpu(GpuSpec::a100_80gb())
            .with_adapters(500)
            .with_tp(4)
            .with_predictor_accuracy(0.6)
            .with_label("y");
        assert_eq!(c.llm.name(), "Llama-13B");
        assert_eq!(c.num_adapters, 500);
        assert_eq!(c.tp_degree, 4);
        assert_eq!(c.predictor_accuracy, 0.6);
        assert_eq!(c.label, "y");
    }

    #[test]
    fn fleet_overrides_data_parallel_count() {
        let c = SystemConfig::base("x").with_fleet(FleetSpec::mixed_tp(&[1, 2, 4]));
        assert_eq!(c.engine_count(), 3);
        assert!(c.is_cluster());
        assert_eq!(c.engine_spec(0), EngineSpec::tp(1));
        assert_eq!(c.engine_spec(2), EngineSpec::tp(4));
        // Without a fleet, the spec falls back to the system's TP.
        let d = SystemConfig::base("y").with_tp(2).with_data_parallel(4);
        assert_eq!(d.engine_count(), 4);
        assert_eq!(d.engine_spec(3), EngineSpec::tp(2));
        assert!(!SystemConfig::base("z").is_cluster());
    }

    #[test]
    fn autoscale_growth_cycles_and_defaults() {
        let c = SystemConfig::base("x").with_autoscale(
            AutoscaleSpec::new(1, 4).with_growth(vec![EngineSpec::tp(2), EngineSpec::tp(4)]),
        );
        assert!(c.is_cluster(), "an elastic single engine is a cluster");
        assert_eq!(c.growth_spec(0), EngineSpec::tp(2));
        assert_eq!(c.growth_spec(1), EngineSpec::tp(4));
        assert_eq!(c.growth_spec(2), EngineSpec::tp(2));
        let d = SystemConfig::base("y").with_autoscale(AutoscaleSpec::new(1, 2));
        assert_eq!(d.growth_spec(0), EngineSpec::tp(1), "default shape");
    }

    #[test]
    fn cluster_exec_axis_defaults_serial() {
        let c = SystemConfig::base("x");
        assert_eq!(c.cluster_exec, ClusterExecution::Serial);
        assert_eq!(c.cluster_exec.worker_count(), 1);
        let p = SystemConfig::base("x").with_parallel_cluster(3);
        assert_eq!(p.cluster_exec, ClusterExecution::Parallel { workers: 3 });
        assert_eq!(p.cluster_exec.worker_count(), 3);
        // Auto resolves to at least one worker.
        assert!(ClusterExecution::parallel_auto().worker_count() >= 1);
    }

    #[test]
    fn telemetry_axes_default_off() {
        let c = SystemConfig::base("x");
        assert!(c.trace.is_none() && !c.profile_barriers);
        let t = SystemConfig::base("x")
            .with_trace(TraceSpec::new().with_wasted_warm_trigger())
            .with_barrier_profiling();
        assert!(t.trace.is_some_and(|s| s.wasted_warm_trigger));
        assert!(t.profile_barriers);
    }

    #[test]
    fn fault_axis_defaults_off() {
        use chameleon_simcore::SimTime;
        let c = SystemConfig::base("x");
        assert!(c.fault.is_none());
        let f = SystemConfig::base("x").with_fault(
            FaultSpec::new()
                .with_crash(1, SimTime::from_secs_f64(10.0))
                .with_shedding(8.0),
        );
        let spec = f.fault.expect("fault plane armed");
        assert_eq!(spec.crashes.len(), 1);
        assert!(spec.sheds());
    }

    #[test]
    fn topology_attaches_fault_domains_per_engine() {
        let c = SystemConfig::base("x");
        assert!(c.topology().is_none(), "no fleet, no topology");
        let t = SystemConfig::base("x").with_fleet(
            FleetSpec::homogeneous(4, 1).with_topology(TopologySpec::racks(&[0, 0, 1, 1])),
        );
        let topo = t.topology().expect("topology attached");
        assert!(topo.anti_affinity, "anti-affinity defaults on");
        assert_eq!(topo.rack_count(), 2);
        assert_eq!(topo.domain_of(1), Some(FaultDomain { host: 1, rack: 0 }));
        assert_eq!(topo.domain_of(3), Some(FaultDomain { host: 3, rack: 1 }));
        assert_eq!(topo.domain_of(4), None, "autoscaled engines: singleton");
        let blind = TopologySpec::racks(&[0, 1]).without_anti_affinity();
        assert!(!blind.anti_affinity);
    }

    #[test]
    #[should_panic(expected = "one fault domain per engine")]
    fn topology_must_cover_the_fleet() {
        let _ = FleetSpec::homogeneous(3, 1).with_topology(TopologySpec::racks(&[0, 1]));
    }

    #[test]
    fn kv_axis_defaults_off() {
        let c = SystemConfig::base("x");
        assert!(c.kv.is_none());
        let armed = SystemConfig::base("x").with_kv(KvSpec::new());
        let spec = armed.kv.expect("kv plane armed");
        assert!(spec.admission && spec.hybrid);
        let observed = SystemConfig::base("x").with_kv(KvSpec::observe());
        assert!(observed.kv.is_some_and(|s| !s.admission && !s.hybrid));
    }

    #[test]
    fn pool_config_reflects_distributions() {
        let c = SystemConfig::base("x").with_adapters(50);
        let p = c.pool_config();
        assert_eq!(p.num_adapters, 50);
        assert_eq!(p.ranks.len(), 5);
    }
}
