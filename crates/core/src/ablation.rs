//! Ablation experiments for Chameleon's design choices.
//!
//! The paper asserts several micro design decisions without dedicated
//! figures; this module makes each one measurable:
//!
//! * [`wrs_degree`] — §4.3.1: "using this polynomial of degree 2 improves
//!   Chameleon's performance by up to 10 % over ... degree 1".
//! * [`frs_weights`] — §4.2: the tuned F/R/S = 0.45/0.10/0.45 eviction
//!   weights versus alternative weightings.
//! * [`bypass_effect`] — §4.3.3: opportunistic bypass on/off.
//! * [`k_max_effect`] — §4.3.4: K_max = 4 versus fewer/more queues.
//!
//! Every experiment returns `(label, p99_ttft_seconds)` rows so callers
//! (the `ablations` binary, tests) can assert or print them.

use crate::sim::Simulation;
use crate::system::{CachePolicy, SchedPolicy, SystemConfig};
use crate::{preset, workloads};

/// One ablation data point.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationPoint {
    /// Variant label.
    pub label: String,
    /// P99 TTFT in seconds.
    pub p99_ttft: f64,
    /// P50 TTFT in seconds.
    pub p50_ttft: f64,
    /// Fraction of requests violating the SLO.
    pub violations: f64,
}

fn measure(cfg: SystemConfig, rps: f64, secs: f64, seed: u64) -> AblationPoint {
    let label = cfg.label.clone();
    let mut sim = Simulation::new(cfg, seed);
    let trace = workloads::splitwise(rps, secs, seed, sim.pool());
    let report = sim.run(&trace);
    AblationPoint {
        label,
        p99_ttft: report.p99_ttft(),
        p50_ttft: report.p50_ttft(),
        violations: report.slo_violation_fraction(),
    }
}

/// §4.3.1: degree-2 (product) WRS vs degree-1 (linear) vs output-only.
pub fn wrs_degree(rps: f64, secs: f64, seed: u64) -> Vec<AblationPoint> {
    vec![
        measure(preset::chameleon(), rps, secs, seed),
        measure(preset::chameleon_linear_wrs(), rps, secs, seed),
        measure(preset::chameleon_output_only(), rps, secs, seed),
    ]
}

/// §4.2: cache-policy weighting sensitivity (tuned vs equal vs single-knob
/// policies), under cache pressure (large adapter pool).
pub fn frs_weights(rps: f64, secs: f64, seed: u64) -> Vec<AblationPoint> {
    [
        preset::chameleon(),
        preset::chameleon_fairshare(),
        preset::chameleon_lru(),
        SystemConfig {
            cache: CachePolicy::Lfu,
            ..preset::chameleon()
        }
        .with_label("Ch-LFU"),
        preset::chameleon_gdsf(),
    ]
    .into_iter()
    .map(|cfg| measure(cfg.with_adapters(400), rps, secs, seed))
    .collect()
}

/// §4.3.3: opportunistic bypass enabled vs disabled.
pub fn bypass_effect(rps: f64, secs: f64, seed: u64) -> Vec<AblationPoint> {
    let mut off = preset::chameleon();
    off.sched = SchedPolicy::ChameleonMlq {
        dynamic: true,
        bypass: false,
        output_only: false,
    };
    vec![
        measure(preset::chameleon().with_label("bypass-on"), rps, secs, seed),
        measure(off.with_label("bypass-off"), rps, secs, seed),
    ]
}

/// §4.3.4: queue-count cap K_max (the paper uses 4).
///
/// Implemented by replaying the recorded WRS distribution through the
/// K-means selection at different caps and measuring the resulting system.
pub fn k_max_effect(rps: f64, secs: f64, seed: u64) -> Vec<AblationPoint> {
    // K_max is plumbed through ChameleonConfig; the preset path always uses
    // the paper value, so this ablation builds the scheduler variants via
    // the public Simulation API with modified presets. K_max = 1 degenerates
    // to FIFO-with-quota (a useful lower bound).
    [1usize, 2, 4, 8]
        .into_iter()
        .map(|k| {
            let cfg = preset::chameleon().with_label(format!("Kmax={k}"));
            let mut sim = Simulation::new(cfg, seed);
            let trace = workloads::splitwise(rps, secs, seed, sim.pool());
            let report = sim.run_with_k_max(&trace, k);
            AblationPoint {
                label: format!("Kmax={k}"),
                p99_ttft: report.p99_ttft(),
                p50_ttft: report.p50_ttft(),
                violations: report.slo_violation_fraction(),
            }
        })
        .collect()
}

/// Prints rows in a fixed-width table.
pub fn print_table(title: &str, points: &[AblationPoint]) {
    println!("== {title} ==");
    println!(
        "{:<16} {:>10} {:>10} {:>10}",
        "variant", "p50_ttft", "p99_ttft", "viol_%"
    );
    for p in points {
        println!(
            "{:<16} {:>9.3}s {:>9.3}s {:>9.2}",
            p.label,
            p.p50_ttft,
            p.p99_ttft,
            p.violations * 100.0
        );
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrs_degree_produces_three_variants() {
        let pts = wrs_degree(6.0, 20.0, 1);
        assert_eq!(pts.len(), 3);
        assert!(pts.iter().all(|p| p.p99_ttft > 0.0));
        assert_eq!(pts[0].label, "Chameleon");
        assert_eq!(pts[1].label, "Ch-LinearWRS");
    }

    #[test]
    fn bypass_points_are_labelled() {
        let pts = bypass_effect(6.0, 15.0, 1);
        assert_eq!(pts[0].label, "bypass-on");
        assert_eq!(pts[1].label, "bypass-off");
    }

    #[test]
    fn k_max_variants_run() {
        let pts = k_max_effect(6.0, 15.0, 1);
        assert_eq!(pts.len(), 4);
        assert!(pts.iter().all(|p| p.p99_ttft > 0.0));
    }
}
