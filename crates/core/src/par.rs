//! Deterministic scoped-thread parallelism: a fire-once work pool for
//! independent experiment points, and the epoch-synchronised sharded
//! pool behind parallel cluster execution.
//!
//! Sweeps run many completely independent simulations (one per load or
//! policy point); [`parallel_map`] fans them out over a fixed number of
//! `std::thread::scope` workers pulling indices from a shared atomic
//! counter. The build environment is offline (no `rayon`), so the pool is
//! ~40 lines of std.
//!
//! Parallelism *inside* one simulation needs a different shape — stateful
//! per-engine workers advancing long-lived mutable shards in lockstep
//! epochs with coordinator barriers between them. That pool lives in
//! [`chameleon_simcore::shard`] (so the engine crate can reach it) and is
//! re-exported here: [`with_shard_pool`], [`ShardPool`], and the
//! [`workers_from_env`] `CHAMELEON_WORKERS` override that CI uses to
//! force the parallel cluster path.
//!
//! # Determinism
//!
//! Results are delivered tagged with their input index and re-assembled
//! in input order, so as long as `f` itself is deterministic (every
//! simulation is: seeded RNG, deterministic event queue, id-tie-broken
//! eviction), `parallel_map(items, w, f)` returns *bit-identical* output
//! to the serial `items.iter().map(...)` for every worker count — the
//! property the sweep determinism tests assert byte-for-byte. The shard
//! pool carries the same guarantee for cluster runs: each shard is
//! stepped by exactly one worker per epoch, so worker count and
//! scheduling are unobservable.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

pub use chameleon_simcore::shard::{with_shard_pool, workers_from_env, ShardPool};

/// The machine's available parallelism (≥ 1).
pub fn default_workers() -> usize {
    chameleon_simcore::shard::default_workers()
}

/// Maps `f` over `items` on up to `workers` scoped threads, returning the
/// results in input order. `f` receives `(index, &item)`. With `workers
/// <= 1` (or a single item) the map runs inline on the caller's thread.
///
/// # Panics
///
/// Propagates worker panics once the scope joins.
pub fn parallel_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                if tx.send((i, f(i, &items[i]))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (i, r) in rx {
            debug_assert!(slots[i].is_none(), "index {i} delivered twice");
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|r| r.expect("a worker died before delivering its point"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_map_for_every_worker_count() {
        let items: Vec<u64> = (0..57).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for workers in [1, 2, 3, 4, 8, 64] {
            let par = parallel_map(&items, workers, |_, &x| x * x + 1);
            assert_eq!(par, serial, "workers={workers}");
        }
    }

    #[test]
    fn index_argument_matches_position() {
        let items = ["a", "b", "c"];
        let out = parallel_map(&items, 3, |i, s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = parallel_map(&[] as &[u32], 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn default_workers_positive() {
        assert!(default_workers() >= 1);
    }
}
