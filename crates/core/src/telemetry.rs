//! Windowed time-series export: the run's observable state over time,
//! flattened into one tidy `(series, engine, t_ns, value)` table and
//! serialised as CSV or JSONL (hand-rolled; the workspace's `serde` is
//! an offline no-op stub).
//!
//! Two sources feed the table:
//!
//! * the per-request records and memory samples every run carries —
//!   sliding-window TTFT percentiles ([`WindowedSeries`]) and aggregate
//!   KV/adapter-cache occupancy;
//! * the deterministic trace stream, when the system opted into tracing —
//!   per-engine queue depth, running batch size, KV/cache bytes, and a
//!   binned utilisation estimate derived from the queue samples.
//!
//! Rows are emitted in a fixed series order with time ascending inside
//! each series, so the export is deterministic whenever the run is.

use crate::report::RunReport;
use chameleon_metrics::series::BinnedSeries;
use chameleon_metrics::WindowedSeries;
use chameleon_simcore::{SimDuration, SimTime};
use chameleon_trace::{Lane, TraceEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One exported sample: `engine` is `None` for fleet-aggregate series.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryRow {
    /// Series name (`ttft_p99_window`, `queue_depth`, …).
    pub series: &'static str,
    /// Source engine, `None` for aggregates.
    pub engine: Option<u32>,
    /// Sample instant.
    pub at: SimTime,
    /// Sample value (bytes, counts, or seconds, per series).
    pub value: f64,
}

/// The flattened time-series table of one run.
#[derive(Debug, Clone, Default)]
pub struct TelemetryExport {
    rows: Vec<TelemetryRow>,
}

/// Default sliding window for the TTFT percentile series.
pub fn default_window() -> SimDuration {
    SimDuration::from_secs(5)
}

/// Collects the run's time series with the [`default_window`].
pub fn collect(report: &RunReport) -> TelemetryExport {
    collect_windowed(report, default_window())
}

/// Collects the run's time series; `window` sizes both the sliding TTFT
/// percentile window (stride `window / 4`) and the utilisation bins.
pub fn collect_windowed(report: &RunReport, window: SimDuration) -> TelemetryExport {
    let mut rows = Vec::new();
    ttft_percentile_rows(report, window, &mut rows);
    availability_rows(report, window, &mut rows);
    memory_rows(report, &mut rows);
    queue_sample_rows(report, window, &mut rows);
    TelemetryExport { rows }
}

/// Per-window offered availability: the fraction of requests offered in
/// each window that the fleet admitted rather than refused (aggregate).
/// Admissions come from the request records (every record was admitted;
/// shed requests never produce one); refusals come from the fault
/// ledger's shed instants (`FaultStats::shed_times`), recorded whenever
/// the fault plane is armed — trace on or off — so fault-armed
/// brownouts dent the series at the window where shedding bit. Traced
/// runs carry the same instants as `RequestShed` events; the ledger is
/// preferred so both flavours emit identically (and neither
/// double-counts).
fn availability_rows(report: &RunReport, window: SimDuration, rows: &mut Vec<TelemetryRow>) {
    let mut offered = BinnedSeries::new();
    for rec in &report.records {
        offered.push(rec.arrival, 1.0);
    }
    for &at in &report.routing.fault.shed_times {
        offered.push(at, 0.0);
    }
    for (at, avail) in offered.mean_bins(window) {
        rows.push(TelemetryRow {
            series: "availability_window",
            engine: None,
            at,
            value: avail,
        });
    }
}

/// Sliding-window P99 TTFT over first-token instants (aggregate).
fn ttft_percentile_rows(report: &RunReport, window: SimDuration, rows: &mut Vec<TelemetryRow>) {
    let mut samples: Vec<(SimTime, f64)> = report
        .records
        .iter()
        .filter_map(|r| Some((r.first_token?, r.ttft()?.as_secs_f64())))
        .collect();
    samples.sort_by_key(|&(at, _)| at);
    let mut series = WindowedSeries::new(window);
    for (at, ttft) in samples {
        series.push(at, ttft).expect("sorted samples are monotonic");
    }
    let stride = SimDuration::from_nanos((window.as_nanos() / 4).max(1));
    for (at, p99) in series.percentile_series(stride, 99.0) {
        rows.push(TelemetryRow {
            series: "ttft_p99_window",
            engine: None,
            at,
            value: p99,
        });
    }
}

/// Aggregate KV and adapter-cache occupancy from the memory samples.
fn memory_rows(report: &RunReport, rows: &mut Vec<TelemetryRow>) {
    for sample in &report.mem_series {
        rows.push(TelemetryRow {
            series: "kv_occupancy",
            engine: None,
            at: sample.at,
            value: sample.kv as f64,
        });
    }
    for sample in &report.mem_series {
        rows.push(TelemetryRow {
            series: "cache_occupancy",
            engine: None,
            at: sample.at,
            value: sample.adapter_cache as f64,
        });
    }
}

/// Per-engine series from the trace stream's queue samples: depth,
/// running batch, KV/cache bytes, and binned utilisation (fraction of
/// samples with a non-empty running batch).
fn queue_sample_rows(report: &RunReport, window: SimDuration, rows: &mut Vec<TelemetryRow>) {
    /// One engine's queue sample: `(at, queued, running, kv, cache)`.
    type QueueSampleRow = (SimTime, u32, u32, u64, u64);
    let Some(log) = &report.trace else {
        return;
    };
    // Group samples per engine; BTreeMap pins engine order.
    let mut per_engine: BTreeMap<u32, Vec<QueueSampleRow>> = BTreeMap::new();
    for ev in log.events() {
        if let TraceEvent::QueueSample {
            queued,
            running,
            kv_bytes,
            cache_bytes,
        } = ev.event
        {
            let Lane::Engine(engine) = ev.lane else {
                continue;
            };
            per_engine.entry(engine).or_default().push((
                ev.at,
                queued,
                running,
                kv_bytes,
                cache_bytes,
            ));
        }
    }
    for (series, pick) in [
        ("queue_depth", 0usize),
        ("running", 1),
        ("kv_bytes", 2),
        ("cache_bytes", 3),
    ] {
        for (&engine, samples) in &per_engine {
            for &(at, queued, running, kv, cache) in samples {
                let value = match pick {
                    0 => f64::from(queued),
                    1 => f64::from(running),
                    2 => kv as f64,
                    _ => cache as f64,
                };
                rows.push(TelemetryRow {
                    series,
                    engine: Some(engine),
                    at,
                    value,
                });
            }
        }
    }
    for (&engine, samples) in &per_engine {
        let mut busy = BinnedSeries::new();
        for &(at, _, running, _, _) in samples {
            busy.push(at, if running > 0 { 1.0 } else { 0.0 });
        }
        for (at, util) in busy.mean_bins(window) {
            rows.push(TelemetryRow {
                series: "utilisation",
                engine: Some(engine),
                at,
                value: util,
            });
        }
    }
}

impl TelemetryExport {
    /// The flattened rows, fixed series order, time-ascending within.
    pub fn rows(&self) -> &[TelemetryRow] {
        &self.rows
    }

    /// Number of exported samples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// CSV with a `series,engine,t_ns,value` header; the engine column is
    /// empty for aggregate series.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(32 + self.rows.len() * 40);
        out.push_str("series,engine,t_ns,value\n");
        for row in &self.rows {
            match row.engine {
                Some(e) => {
                    let _ = writeln!(
                        out,
                        "{},{},{},{}",
                        row.series,
                        e,
                        row.at.as_nanos(),
                        row.value
                    );
                }
                None => {
                    let _ = writeln!(out, "{},,{},{}", row.series, row.at.as_nanos(), row.value);
                }
            }
        }
        out
    }

    /// JSONL: one object per row; `engine` is `null` for aggregates.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64 + self.rows.len() * 72);
        for row in &self.rows {
            let _ = write!(out, "{{\"series\":\"{}\",\"engine\":", row.series);
            match row.engine {
                Some(e) => {
                    let _ = write!(out, "{e}");
                }
                None => out.push_str("null"),
            }
            let _ = writeln!(
                out,
                ",\"t_ns\":{},\"value\":{}}}",
                row.at.as_nanos(),
                row.value
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preset;
    use crate::sim::Simulation;
    use crate::workloads;
    use chameleon_trace::TraceSpec;

    fn traced_report() -> RunReport {
        let cfg = preset::chameleon().with_trace(TraceSpec::new());
        let mut sim = Simulation::new(cfg, 3);
        let trace = workloads::splitwise(5.0, 15.0, 3, sim.pool());
        sim.run(&trace)
    }

    #[test]
    fn collects_all_series_kinds_from_a_traced_run() {
        let export = collect(&traced_report());
        assert!(!export.is_empty());
        let names: std::collections::BTreeSet<&str> =
            export.rows().iter().map(|r| r.series).collect();
        for expected in [
            "ttft_p99_window",
            "availability_window",
            "kv_occupancy",
            "cache_occupancy",
            "queue_depth",
            "running",
            "kv_bytes",
            "cache_bytes",
            "utilisation",
        ] {
            assert!(names.contains(expected), "missing series {expected}");
        }
    }

    #[test]
    fn untraced_runs_still_export_aggregates() {
        let mut sim = Simulation::new(preset::chameleon(), 3);
        let trace = workloads::splitwise(5.0, 15.0, 3, sim.pool());
        let export = collect(&sim.run(&trace));
        assert!(export.rows().iter().any(|r| r.series == "ttft_p99_window"));
        assert!(export.rows().iter().any(|r| r.series == "kv_occupancy"));
        assert!(
            export.rows().iter().all(|r| r.engine.is_none()),
            "per-engine series need the trace stream"
        );
    }

    #[test]
    fn csv_and_jsonl_shapes() {
        let export = collect(&traced_report());
        let csv = export.to_csv();
        assert!(csv.starts_with("series,engine,t_ns,value\n"));
        assert_eq!(csv.lines().count(), export.len() + 1);
        let jsonl = export.to_jsonl();
        assert_eq!(jsonl.lines().count(), export.len());
        assert!(jsonl.lines().all(|l| l.starts_with("{\"series\":\"")));
        assert!(jsonl.contains("\"engine\":null"));
        assert!(jsonl.contains("\"engine\":0"));
    }

    #[test]
    fn availability_windows_expose_fault_brownouts() {
        use crate::FaultSpec;
        let cfg = preset::chameleon_cluster(2)
            .with_fault(FaultSpec::new().with_shedding(0.25))
            .with_trace(TraceSpec::new());
        let mut sim = Simulation::new(cfg, 3);
        let trace = workloads::splitwise(60.0, 10.0, 3, sim.pool());
        let report = sim.run(&trace);
        assert!(
            report.routing.fault.requests_shed > 0,
            "load too light to trigger shedding — the brownout check needs sheds"
        );
        let avail: Vec<f64> = collect(&report)
            .rows()
            .iter()
            .filter(|r| r.series == "availability_window")
            .map(|r| r.value)
            .collect();
        assert!(!avail.is_empty());
        assert!(
            avail.iter().any(|v| *v < 1.0),
            "shed requests never dented an availability window"
        );
        assert!(avail.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn untraced_shedding_runs_emit_the_availability_series_from_the_ledger() {
        use crate::FaultSpec;
        let run = |traced: bool| {
            let mut cfg =
                preset::chameleon_cluster(2).with_fault(FaultSpec::new().with_shedding(0.25));
            if traced {
                cfg = cfg.with_trace(TraceSpec::new());
            }
            let mut sim = Simulation::new(cfg, 3);
            let trace = workloads::splitwise(60.0, 10.0, 3, sim.pool());
            sim.run(&trace)
        };
        let report = run(false);
        assert!(report.routing.fault.requests_shed > 0);
        assert_eq!(
            report.routing.fault.shed_times.len(),
            report.routing.fault.requests_shed as usize,
            "one ledger instant per shed, trace on or off"
        );
        let series = |r: &RunReport| -> Vec<(SimTime, f64)> {
            collect(r)
                .rows()
                .iter()
                .filter(|row| row.series == "availability_window")
                .map(|row| (row.at, row.value))
                .collect()
        };
        let untraced = series(&report);
        assert!(
            untraced.iter().any(|&(_, v)| v < 1.0),
            "sheds must dent the untraced series: the ledger carries the \
             refusal instants even without a trace stream"
        );
        // The ledger and the trace stream describe the same instants, so
        // both flavours emit the identical series.
        assert_eq!(untraced, series(&run(true)));
    }

    #[test]
    fn export_is_deterministic() {
        let a = collect(&traced_report()).to_csv();
        let b = collect(&traced_report()).to_csv();
        assert_eq!(a, b);
    }
}
