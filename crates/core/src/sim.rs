//! The simulation runner: configured system × trace → report.

use crate::isolated;
use crate::report::RunReport;
use crate::system::{SchedPolicy, SystemConfig};
use chameleon_cache::AdapterCache;
use chameleon_engine::{driver, Autoscaler, Cluster, Engine, EngineConfig};
use chameleon_gpu::CostModel;
use chameleon_models::AdapterPool;
use chameleon_predictor::{NoisyBucketPredictor, OraclePredictor, OutputLenPredictor};
use chameleon_sched::{
    ChameleonConfig, ChameleonScheduler, FifoScheduler, Scheduler, SjfScheduler,
    StaticMlqScheduler, WrsConfig,
};
use chameleon_simcore::{SimDuration, SimRng};
use chameleon_trace::{
    AnomalyPredicate, FlightRecorder, Lane, ReplicaColocatedPredicate, RetryStormPredicate,
    ShedIdlePredicate, TraceBuffer, TtftSloPredicate, WastedWarmPredicate,
};
use chameleon_workload::Trace;

/// Runs traces through one configured serving system.
///
/// See the crate docs for a quickstart. The adapter pool is generated once
/// per simulation (from the config and seed) so that different policies
/// compared under the same seed see the same adapters.
pub struct Simulation {
    cfg: SystemConfig,
    seed: u64,
    pool: AdapterPool,
    cost: CostModel,
}

impl Simulation {
    /// Creates a simulation of `cfg` with a deterministic `seed`.
    pub fn new(cfg: SystemConfig, seed: u64) -> Self {
        let pool = AdapterPool::generate(&cfg.llm, &cfg.pool_config());
        let cost = CostModel::new(cfg.llm.clone(), cfg.gpu.clone(), cfg.tp_degree);
        Simulation {
            pool,
            cost,
            cfg,
            seed,
        }
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The adapter pool requests draw from.
    pub fn pool(&self) -> &AdapterPool {
        &self.pool
    }

    /// The cost model of the configured engine (isolated-latency oracle).
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The WRS normalisation for a given trace envelope.
    fn wrs_config(&self, trace: &Trace) -> WrsConfig {
        let s = trace.summary();
        let max_in = f64::from(s.max_input.max(1));
        let max_out = f64::from(s.max_output.max(1));
        let cfg = WrsConfig::paper(max_in, max_out, self.pool.max_adapter_bytes().max(1) as f64);
        match self.cfg.sched {
            SchedPolicy::ChameleonMlq {
                output_only: true, ..
            } => cfg.output_only(),
            SchedPolicy::ChameleonLinearWrs => cfg.linear(),
            _ => cfg,
        }
    }

    /// The TTFT SLO in effect for `trace` (§5.1: configured, or 5× the
    /// mean isolated E2E).
    pub fn slo_for(&self, trace: &Trace) -> SimDuration {
        self.cfg
            .slo
            .unwrap_or_else(|| isolated::derive_slo(&self.cost, trace))
    }

    fn build_scheduler(
        &self,
        slo: SimDuration,
        wrs: WrsConfig,
        k_max: Option<usize>,
    ) -> Box<dyn Scheduler> {
        let apply_k = |mut cfg: ChameleonConfig| {
            if let Some(k) = k_max {
                cfg.k_max = k;
            }
            cfg
        };
        match &self.cfg.sched {
            SchedPolicy::Fifo => Box::new(FifoScheduler::new()),
            SchedPolicy::Sjf {
                aging_tokens_per_sec,
            } => Box::new(SjfScheduler::with_aging(*aging_tokens_per_sec)),
            SchedPolicy::ChameleonMlq {
                dynamic, bypass, ..
            } => {
                let cfg = apply_k(ChameleonConfig {
                    dynamic: *dynamic,
                    enable_bypass: *bypass,
                    ..ChameleonConfig::paper(slo)
                });
                Box::new(ChameleonScheduler::new(cfg, wrs))
            }
            SchedPolicy::ChameleonLinearWrs => {
                let cfg = apply_k(ChameleonConfig::paper(slo));
                Box::new(ChameleonScheduler::new(cfg, wrs))
            }
            SchedPolicy::StaticMlq => Box::new(StaticMlqScheduler::new(slo, wrs, 0.0, 1.0)),
        }
    }

    fn build_predictor(&self, engine_idx: usize, max_output: u32) -> Box<dyn OutputLenPredictor> {
        if self.cfg.worst_case_predictor {
            return Box::new(chameleon_predictor::WorstCasePredictor::new(
                max_output.max(1),
            ));
        }
        if self.cfg.predictor_accuracy >= 1.0 {
            Box::new(OraclePredictor::new())
        } else {
            let mut rng = SimRng::seed(self.seed ^ 0x9e37_79b9_7f4a_7c15);
            let rng = rng.fork(&format!("predictor-{engine_idx}"));
            Box::new(NoisyBucketPredictor::new(self.cfg.predictor_accuracy, rng))
        }
    }

    fn build_engine(
        &self,
        slo: SimDuration,
        wrs: WrsConfig,
        idx: usize,
        max_output: u32,
        k_max: Option<usize>,
        spec: &crate::system::EngineSpec,
    ) -> Engine {
        let gpu = spec.gpu.clone().unwrap_or_else(|| self.cfg.gpu.clone());
        let mut ecfg = EngineConfig::new(self.cfg.llm.clone(), gpu).with_tp(spec.tp_degree);
        ecfg.max_batch_requests = self.cfg.max_batch_requests;
        ecfg.chunked_prefill = self.cfg.chunked_prefill;
        ecfg.prefetch_queued = self.cfg.prefetch_queued;
        ecfg.predictive_prefetch = self.cfg.predictive_prefetch;
        // The KV-economy axis applies per engine, so single-engine and
        // cluster paths both honour it through this shared constructor.
        ecfg.kv = self.cfg.kv;
        // Systems without the Chameleon cache follow S-LoRA's synchronous
        // load-before-batch semantics (§2); the cache manager is async.
        ecfg.block_on_load = matches!(self.cfg.cache, crate::system::CachePolicy::Discard);
        let cache = match self.cfg.cache.to_eviction() {
            Some(policy) => AdapterCache::new(policy),
            None => AdapterCache::discard_mode(),
        };
        Engine::new(
            ecfg,
            self.pool.clone(),
            self.build_scheduler(slo, wrs, k_max),
            self.build_predictor(idx, max_output),
            cache,
            wrs,
        )
    }

    /// Runs `trace` to completion and reports.
    pub fn run(&mut self, trace: &Trace) -> RunReport {
        self.run_inner(trace, None)
    }

    /// Runs `trace` with the Chameleon scheduler's `K_max` overridden —
    /// the §4.3.4 queue-count ablation. Non-Chameleon schedulers ignore it.
    pub fn run_with_k_max(&mut self, trace: &Trace, k_max: usize) -> RunReport {
        self.run_inner(trace, Some(k_max))
    }

    fn run_inner(&mut self, trace: &Trace, k_max: Option<usize>) -> RunReport {
        let slo = self.slo_for(trace);
        let wrs = self.wrs_config(trace);
        let max_output = trace.summary().max_output;
        let tracing = self.cfg.trace.is_some();
        let (engine_report, horizon, events, trace_log, barrier_profile) = if self.cfg.is_cluster()
        {
            let initial = self.cfg.engine_count();
            let mut cluster = Cluster::with_router(
                initial,
                |i| self.build_engine(slo, wrs, i, max_output, k_max, &self.cfg.engine_spec(i)),
                self.cfg.router.build(self.seed),
            );
            if let Some(topo) = self.cfg.topology() {
                cluster.set_topology(
                    &topo.domains.iter().map(|d| d.rack).collect::<Vec<_>>(),
                    topo.anti_affinity,
                );
            }
            if let Some(spec) = &self.cfg.predictive {
                cluster.set_predictive(*spec);
            }
            if let Some(spec) = &self.cfg.fault {
                cluster.set_fault(spec.clone(), Some(slo));
            }
            if let Some(spec) = &self.cfg.dispatch {
                cluster.set_dispatch(*spec);
            }
            if tracing {
                cluster.enable_tracing();
            }
            if self.cfg.profile_barriers {
                cluster.enable_barrier_profiling();
            }
            let exec = self.cfg.cluster_exec;
            let last = match &self.cfg.autoscale {
                Some(auto) => {
                    let mut controller = auto.controller.clone();
                    // The predictive SLO signal compares per-engine TTFT
                    // violation estimates against this run's SLO (§5.1:
                    // configured, or derived from the isolated oracle).
                    if self.cfg.predictive.is_some_and(|p| p.slo_autoscale)
                        && controller.ttft_slo.is_none()
                    {
                        controller.ttft_slo = Some(slo);
                    }
                    let mut scaler = Autoscaler::new(controller);
                    let mut grow = |id: chameleon_router::EngineId| {
                        let spec = self
                            .cfg
                            .growth_spec((id.0 as usize).saturating_sub(initial));
                        self.build_engine(slo, wrs, id.0 as usize, max_output, k_max, &spec)
                    };
                    cluster.run_elastic_with(trace, &mut scaler, &mut grow, exec)
                }
                None => cluster.run_with(trace, exec),
            };
            let events = cluster.events_processed();
            let (report, log, profile) = cluster.into_report_with_trace();
            (report, last, events, log, profile)
        } else {
            let spec = self.cfg.engine_spec(0);
            let mut engine = self.build_engine(slo, wrs, 0, max_output, k_max, &spec);
            if tracing {
                engine.enable_tracing();
            }
            let (last, events) = driver::run_engine_counted(&mut engine, trace);
            // A lone engine is lane 0, matching its cluster EngineId.
            let log = tracing.then(|| {
                let mut buf = TraceBuffer::new();
                buf.extend_lane(Lane::Engine(0), engine.take_trace_events());
                buf.finish()
            });
            (engine.into_report(), last, events, log, None)
        };
        let isolated_e2e = engine_report
            .records
            .iter()
            .map(|r| {
                let req = chameleon_workload::Request::new(
                    r.id,
                    r.arrival,
                    r.input_tokens,
                    r.output_tokens,
                    r.adapter,
                    r.rank,
                );
                (r.id, isolated::isolated(&self.cost, &req, true).e2e)
            })
            .collect();
        let mut report = RunReport::new(
            self.cfg.label.clone(),
            self.cfg.llm.clone(),
            engine_report,
            slo,
            horizon,
            isolated_e2e,
            wrs,
            trace.summary().mean_rps,
            events,
        );
        report.barrier_profile = barrier_profile;
        if let (Some(spec), Some(log)) = (&self.cfg.trace, trace_log) {
            let mut predicates: Vec<Box<dyn AnomalyPredicate>> = Vec::new();
            if let Some(trigger) = spec.ttft_slo_trigger {
                predicates.push(Box::new(TtftSloPredicate::new(trigger)));
            }
            if spec.wasted_warm_trigger {
                predicates.push(Box::new(WastedWarmPredicate::new()));
            }
            if let Some((count, window)) = spec.retry_storm_trigger {
                predicates.push(Box::new(RetryStormPredicate::new(count, window)));
            }
            if spec.shed_idle_trigger {
                predicates.push(Box::new(ShedIdlePredicate));
            }
            if spec.colocated_replica_trigger {
                // Resolves racks from the fleet topology; without one
                // every engine is a singleton domain and the predicate
                // never fires.
                let racks = self
                    .cfg
                    .topology()
                    .map(|t| {
                        t.domains
                            .iter()
                            .enumerate()
                            .map(|(i, d)| (i as u32, d.rack))
                            .collect()
                    })
                    .unwrap_or_default();
                predicates.push(Box::new(ReplicaColocatedPredicate::new(racks)));
            }
            if !predicates.is_empty() {
                let recorder = FlightRecorder::new(spec.flight_capacity, spec.max_dumps);
                let (dumps, firings) = recorder.scan(&log, &mut predicates);
                report.flight_dumps = dumps;
                report.flight_firings = firings;
            }
            report.trace = Some(log);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preset;
    use crate::workloads;

    #[test]
    fn slora_runs_a_small_trace() {
        let mut sim = Simulation::new(preset::slora(), 1);
        let trace = workloads::splitwise(4.0, 20.0, 1, sim.pool());
        let n = trace.len();
        let report = sim.run(&trace);
        assert_eq!(report.completed(), n);
        assert!(report.ttft_summary().is_some());
        assert!(report.slo.as_secs_f64() > 0.1);
    }

    #[test]
    fn chameleon_runs_and_caches() {
        let mut sim = Simulation::new(preset::chameleon(), 1);
        let trace = workloads::splitwise(4.0, 30.0, 1, sim.pool());
        let report = sim.run(&trace);
        assert!(report.hit_rate() > 0.0, "some adapter reuse expected");
        assert_eq!(report.scheduler, "chameleon-mlq");
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut sim = Simulation::new(preset::chameleon(), 9);
            let trace = workloads::splitwise(5.0, 15.0, 9, sim.pool());
            let r = sim.run(&trace);
            (
                r.completed(),
                r.ttft_summary().map(|s| s.p99),
                r.cache_stats.hits,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn tracing_harvests_a_log_and_arms_the_recorder() {
        use chameleon_trace::{TraceEvent, TraceSpec};
        let cfg = preset::chameleon()
            .with_trace(TraceSpec::new().with_ttft_slo_trigger(SimDuration::from_nanos(1)));
        let mut sim = Simulation::new(cfg, 5);
        let trace = workloads::splitwise(5.0, 10.0, 5, sim.pool());
        let report = sim.run(&trace);
        let log = report.trace.as_ref().expect("traced run carries a log");
        assert!(!log.is_empty());
        assert!(log
            .events()
            .iter()
            .any(|e| matches!(e.event, TraceEvent::FirstToken { .. })));
        // Every first token beats a 1ns SLO trigger, so the recorder fires.
        assert!(report.flight_firings > 0);
        assert!(!report.flight_dumps.is_empty());
        // Untraced runs carry nothing.
        let mut plain = Simulation::new(preset::chameleon(), 5);
        let trace = workloads::splitwise(5.0, 10.0, 5, plain.pool());
        let r = plain.run(&trace);
        assert!(r.trace.is_none() && r.flight_dumps.is_empty() && r.flight_firings == 0);
    }

    #[test]
    fn tracing_does_not_change_results() {
        let run = |traced: bool| {
            let mut cfg = preset::chameleon();
            cfg.data_parallel = 2;
            if traced {
                cfg = cfg.with_trace(chameleon_trace::TraceSpec::new());
            }
            let mut sim = Simulation::new(cfg, 7);
            let trace = workloads::splitwise(6.0, 12.0, 7, sim.pool());
            sim.run(&trace).canonical_text()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn data_parallel_runs() {
        let mut cfg = preset::chameleon();
        cfg.data_parallel = 2;
        let mut sim = Simulation::new(cfg, 2);
        let trace = workloads::splitwise(6.0, 15.0, 2, sim.pool());
        let n = trace.len();
        let report = sim.run(&trace);
        assert_eq!(report.completed(), n);
    }

    #[test]
    fn hetero_fleet_runs() {
        let mut sim = Simulation::new(preset::chameleon_cluster_hetero(), 4);
        let trace = workloads::splitwise(8.0, 15.0, 4, sim.pool());
        let n = trace.len();
        let report = sim.run(&trace);
        assert_eq!(report.completed(), n);
        assert_eq!(report.routing.engine_ids.len(), 4);
        assert_eq!(report.routing.dispatched as usize, n);
    }

    #[test]
    fn elastic_fleet_scales_up_under_a_burst() {
        let mut cfg = preset::chameleon_cluster_elastic();
        // Tighten the controller so a short test trace exercises it.
        let auto = cfg.autoscale.as_mut().expect("elastic preset");
        auto.controller.interval = SimDuration::from_millis(500);
        auto.controller.cooldown = SimDuration::from_secs(2);
        auto.controller.scale_up_mean_queue = 4.0;
        let mut sim = Simulation::new(cfg, 6);
        let trace = workloads::splitwise(60.0, 20.0, 6, sim.pool());
        let n = trace.len();
        let report = sim.run(&trace);
        assert_eq!(report.completed(), n, "elastic run lost requests");
        assert!(
            report.routing.engines_added > 0,
            "overload never grew the fleet: {:?}",
            report.routing
        );
        assert!(report.routing.adapters_rehomed > 0);
        assert!(report.routing.engine_ids.len() > 2);
    }
}
