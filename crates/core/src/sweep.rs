//! Load sweeps and SLO-bounded throughput (§5.2), plus the cluster
//! routing-policy axis.
//!
//! The paper's throughput metric is "the load that a system can sustain
//! without violating this SLO" (§5.2.2), read off a sweep of P99 TTFT
//! against offered load (Figure 11). [`LoadSweep`] runs that sweep.
//! [`RouterSweep`] holds the system and trace fixed and varies the
//! cluster routing policy instead, making `RouterPolicy` an experiment
//! dimension next to scheduler and eviction policy.

use crate::par;
use crate::report::RunReport;
use crate::sim::Simulation;
use crate::system::SystemConfig;
use crate::workloads;
use chameleon_metrics::summary::throughput_at_slo;
use chameleon_models::AdapterPool;
use chameleon_router::RouterPolicy;
use chameleon_workload::Trace;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Offered load, requests/second.
    pub rps: f64,
    /// The full report at that load.
    pub report: RunReport,
}

/// Result of sweeping one system across loads.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// System label.
    pub label: String,
    /// Points in ascending load order.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// `(load, p99_ttft_seconds)` pairs.
    pub fn p99_curve(&self) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|p| (p.rps, p.report.p99_ttft()))
            .collect()
    }

    /// `(load, p50_ttft_seconds)` pairs.
    pub fn p50_curve(&self) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|p| (p.rps, p.report.p50_ttft()))
            .collect()
    }

    /// `(load, p99_tbt_seconds)` pairs.
    pub fn p99_tbt_curve(&self) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|p| (p.rps, p.report.tbt_summary().map(|s| s.p99).unwrap_or(0.0)))
            .collect()
    }

    /// SLO-bounded throughput (§5.2.2) against `slo` seconds.
    pub fn throughput(&self, slo: f64) -> Option<f64> {
        throughput_at_slo(&self.p99_curve(), slo)
    }
}

/// Sweeps a system configuration across offered loads using the scaled
/// Splitwise workload (§5.1 methodology).
pub struct LoadSweep {
    cfg: SystemConfig,
    seed: u64,
    /// Trace duration per load point, seconds.
    pub trace_secs: f64,
}

impl LoadSweep {
    /// Creates a sweep of `cfg`.
    pub fn new(cfg: SystemConfig, seed: u64) -> Self {
        LoadSweep {
            cfg,
            seed,
            trace_secs: 120.0,
        }
    }

    /// Sets the per-point trace duration.
    pub fn with_trace_secs(mut self, secs: f64) -> Self {
        self.trace_secs = secs;
        self
    }

    /// One self-contained sweep point: fresh simulation, per-load trace,
    /// full run. Pure in (cfg, seed, rps), which is what makes the
    /// parallel runner bit-identical to the serial one.
    fn point(&self, rps: f64) -> SweepPoint {
        let mut sim = Simulation::new(self.cfg.clone(), self.seed);
        let trace =
            workloads::splitwise(rps, self.trace_secs, self.seed ^ rps.to_bits(), sim.pool());
        let report = sim.run(&trace);
        SweepPoint { rps, report }
    }

    /// One sweep point over a caller-provided trace (pure in
    /// (cfg, seed, trace)); shared by the serial and parallel trace
    /// runners so their per-point behaviour cannot drift apart.
    fn trace_point(&self, rps: f64, trace: &Trace) -> SweepPoint {
        let mut sim = Simulation::new(self.cfg.clone(), self.seed);
        let report = sim.run(trace);
        SweepPoint { rps, report }
    }

    /// Runs the sweep at each load in `loads` (requests/second).
    ///
    /// The same seed produces the same trace per load across systems, so
    /// policies are compared on identical request streams.
    pub fn run(&self, loads: &[f64]) -> SweepResult {
        SweepResult {
            label: self.cfg.label.clone(),
            points: loads.iter().map(|&rps| self.point(rps)).collect(),
        }
    }

    /// Runs the sweep with up to `workers` load points in flight
    /// concurrently (a `std::thread::scope` work pool; see [`par`]).
    /// Bit-identical to [`run`](Self::run): every point is an independent
    /// deterministic simulation and results are assembled in load order —
    /// asserted byte-for-byte (serialised reports) by the crate's
    /// determinism tests.
    pub fn run_parallel(&self, loads: &[f64], workers: usize) -> SweepResult {
        SweepResult {
            label: self.cfg.label.clone(),
            points: par::parallel_map(loads, workers, |_, &rps| self.point(rps)),
        }
    }

    /// Runs the sweep over custom traces (one per load), for non-default
    /// workloads.
    pub fn run_traces(&self, traces: &[(f64, Trace)]) -> SweepResult {
        SweepResult {
            label: self.cfg.label.clone(),
            points: traces
                .iter()
                .map(|(rps, trace)| self.trace_point(*rps, trace))
                .collect(),
        }
    }

    /// Parallel variant of [`run_traces`](Self::run_traces); bit-identical
    /// point-for-point.
    pub fn run_traces_parallel(&self, traces: &[(f64, Trace)], workers: usize) -> SweepResult {
        SweepResult {
            label: self.cfg.label.clone(),
            points: par::parallel_map(traces, workers, |_, (rps, trace)| {
                self.trace_point(*rps, trace)
            }),
        }
    }

    /// The adapter pool the sweep's simulations will use (for generating
    /// matching traces externally).
    pub fn pool(&self) -> AdapterPool {
        AdapterPool::generate(&self.cfg.llm, &self.cfg.pool_config())
    }
}

/// One routing-policy sweep point.
#[derive(Debug, Clone)]
pub struct RouterPoint {
    /// The routing policy this point ran under.
    pub policy: RouterPolicy,
    /// The full report under that policy.
    pub report: RunReport,
}

/// Sweeps one data-parallel system across cluster routing policies on a
/// single shared trace, so policies are compared on identical request
/// streams (the §4.4 axis the paper leaves fixed).
pub struct RouterSweep {
    cfg: SystemConfig,
    seed: u64,
}

impl RouterSweep {
    /// Creates a routing sweep of `cfg`.
    ///
    /// # Panics
    ///
    /// Panics unless `cfg` describes a multi-engine fleet (via
    /// `data_parallel` or a [`FleetSpec`](crate::system::FleetSpec),
    /// heterogeneous fleets included) — routing needs a cluster.
    pub fn new(cfg: SystemConfig, seed: u64) -> Self {
        assert!(
            cfg.engine_count() > 1,
            "router sweep needs a data-parallel cluster"
        );
        RouterSweep { cfg, seed }
    }

    /// One routing-policy point on `trace` (pure in (cfg, seed, policy)).
    fn point(&self, policy: RouterPolicy, trace: &Trace) -> RouterPoint {
        let cfg = self.cfg.clone().with_router(policy).with_label(format!(
            "{}/{}",
            self.cfg.label,
            policy.name()
        ));
        let mut sim = Simulation::new(cfg, self.seed);
        let report = sim.run(trace);
        RouterPoint { policy, report }
    }

    /// Runs `trace` under each policy in `policies`.
    pub fn run_trace(&self, policies: &[RouterPolicy], trace: &Trace) -> Vec<RouterPoint> {
        policies
            .iter()
            .map(|&policy| self.point(policy, trace))
            .collect()
    }

    /// Runs `trace` under each policy with up to `workers` points in
    /// flight concurrently; bit-identical to
    /// [`run_trace`](Self::run_trace) point-for-point.
    pub fn run_trace_parallel(
        &self,
        policies: &[RouterPolicy],
        trace: &Trace,
        workers: usize,
    ) -> Vec<RouterPoint> {
        par::parallel_map(policies, workers, |_, &policy| self.point(policy, trace))
    }

    /// The shared workload of [`run_all`](Self::run_all) and its parallel
    /// variant — one construction site, so the serial and parallel entry
    /// points cannot drift onto different traces.
    fn default_trace(&self, rps: f64, secs: f64) -> Trace {
        let pool = AdapterPool::generate(&self.cfg.llm, &self.cfg.pool_config());
        workloads::splitwise(rps, secs, self.seed, &pool)
    }

    /// Runs all built-in policies over the scaled Splitwise workload at
    /// `rps` for `secs` seconds.
    pub fn run_all(&self, rps: f64, secs: f64) -> Vec<RouterPoint> {
        self.run_trace(&RouterPolicy::ALL, &self.default_trace(rps, secs))
    }

    /// Parallel variant of [`run_all`](Self::run_all).
    pub fn run_all_parallel(&self, rps: f64, secs: f64, workers: usize) -> Vec<RouterPoint> {
        self.run_trace_parallel(&RouterPolicy::ALL, &self.default_trace(rps, secs), workers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preset;

    #[test]
    fn sweep_produces_monotone_load_points() {
        let sweep = LoadSweep::new(preset::slora(), 3).with_trace_secs(10.0);
        let result = sweep.run(&[2.0, 6.0]);
        assert_eq!(result.points.len(), 2);
        assert!(result.points[0].rps < result.points[1].rps);
        let curve = result.p99_curve();
        assert!(curve.iter().all(|&(_, p99)| p99 > 0.0));
    }

    #[test]
    fn router_sweep_compares_policies_on_one_trace() {
        let sweep = RouterSweep::new(preset::chameleon_cluster(2), 5);
        let points = sweep.run_all(8.0, 10.0);
        assert_eq!(points.len(), RouterPolicy::ALL.len());
        let n = points[0].report.records.len();
        for p in &points {
            assert_eq!(p.report.records.len(), n, "policies saw different traces");
            assert_eq!(p.report.routing.policy, p.policy.name());
            assert_eq!(p.report.routing.dispatched, n as u64);
        }
    }

    #[test]
    #[should_panic(expected = "data-parallel")]
    fn router_sweep_rejects_single_engine() {
        let _ = RouterSweep::new(preset::chameleon(), 1);
    }

    /// The determinism guarantee of the parallel runner: byte-identical
    /// serialised reports against the serial runner, across two seeds.
    #[test]
    fn parallel_sweep_bit_identical_to_serial() {
        for seed in [3, 17] {
            let sweep = LoadSweep::new(preset::chameleon(), seed).with_trace_secs(6.0);
            let loads = [2.0, 5.0, 8.0];
            let serial = sweep.run(&loads);
            let parallel = sweep.run_parallel(&loads, 4);
            assert_eq!(serial.points.len(), parallel.points.len());
            for (a, b) in serial.points.iter().zip(&parallel.points) {
                assert_eq!(a.rps, b.rps);
                assert_eq!(
                    a.report.canonical_text(),
                    b.report.canonical_text(),
                    "seed {seed} rps {} diverged",
                    a.rps
                );
            }
        }
    }

    #[test]
    fn parallel_trace_sweep_bit_identical_to_serial() {
        let sweep = LoadSweep::new(preset::chameleon(), 13).with_trace_secs(5.0);
        let pool = sweep.pool();
        let traces: Vec<(f64, chameleon_workload::Trace)> = [3.0, 6.0]
            .iter()
            .map(|&rps| (rps, crate::workloads::splitwise(rps, 5.0, 13, &pool)))
            .collect();
        let serial = sweep.run_traces(&traces);
        let parallel = sweep.run_traces_parallel(&traces, 4);
        for (a, b) in serial.points.iter().zip(&parallel.points) {
            assert_eq!(a.rps, b.rps);
            assert_eq!(
                a.report.canonical_text(),
                b.report.canonical_text(),
                "rps {} diverged",
                a.rps
            );
        }
    }

    #[test]
    fn parallel_router_sweep_bit_identical_to_serial() {
        for seed in [5, 23] {
            let sweep = RouterSweep::new(preset::chameleon_cluster(2), seed);
            let pool = sweep.cfg.pool_config();
            let pool = chameleon_models::AdapterPool::generate(&sweep.cfg.llm, &pool);
            let trace = crate::workloads::splitwise(6.0, 6.0, seed, &pool);
            let serial = sweep.run_trace(&RouterPolicy::ALL, &trace);
            let parallel = sweep.run_trace_parallel(&RouterPolicy::ALL, &trace, 4);
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.policy, b.policy);
                assert_eq!(
                    a.report.canonical_text(),
                    b.report.canonical_text(),
                    "seed {seed} policy {} diverged",
                    a.policy.name()
                );
            }
        }
    }

    #[test]
    fn throughput_reads_off_curve() {
        let sweep = LoadSweep::new(preset::slora(), 4).with_trace_secs(10.0);
        let result = sweep.run(&[1.0, 2.0]);
        // With a generous SLO nothing violates: throughput = max load.
        let t = result.throughput(1e9).unwrap();
        assert_eq!(t, 2.0);
    }
}
