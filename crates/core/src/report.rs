//! Experiment-level run reports.

use chameleon_cache::CacheStats;
use chameleon_engine::EngineReport;
use chameleon_gpu::pcie::TransferRecord;
use chameleon_metrics::series::BinnedSeries;
use chameleon_metrics::{
    KvStats, LatencySummary, MemorySample, RequestRecord, RoutingStats, SizeClass,
};
use chameleon_models::adapter::adapter_bytes;
use chameleon_models::LlmSpec;
use chameleon_sched::WrsConfig;
use chameleon_simcore::stats::percentile;
use chameleon_simcore::{SimDuration, SimTime};
use chameleon_trace::{BarrierProfile, FlightDump, TraceLog};
use chameleon_workload::RequestId;
use std::collections::HashMap;

/// Everything measured in one run of one system over one trace.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// System label (preset name).
    pub label: String,
    /// Base model served (for rank → bytes in per-rank breakdowns).
    pub llm: LlmSpec,
    /// Per-request records sorted by arrival.
    pub records: Vec<RequestRecord>,
    /// Adapter-cache statistics.
    pub cache_stats: CacheStats,
    /// Total bytes over the host link.
    pub pcie_total_bytes: u64,
    /// Total host-link busy time.
    pub pcie_busy: SimDuration,
    /// Raw transfer history for binned bandwidth.
    pub pcie_history: Vec<TransferRecord>,
    /// GPU memory-occupancy series (Figure 6).
    pub mem_series: Vec<MemorySample>,
    /// Squash count (§4.3.3).
    pub squashes: u64,
    /// The TTFT SLO in effect.
    pub slo: SimDuration,
    /// Instant of the last processed event.
    pub horizon: SimTime,
    /// Per-request isolated E2E latency (slowdown denominator, §3.3).
    pub isolated_e2e: HashMap<RequestId, SimDuration>,
    /// WRS configuration used (for post-hoc classification).
    pub wrs: WrsConfig,
    /// Mean offered load of the trace, requests/second.
    pub offered_rps: f64,
    /// Scheduler label.
    pub scheduler: &'static str,
    /// Cluster-routing statistics (empty for single-engine runs).
    pub routing: RoutingStats,
    /// KV-memory-economy counters (admission refusals, requeue-front
    /// storms, demotions/restores, peak pressure). Disabled — and absent
    /// from [`canonical_text`](RunReport::canonical_text) — unless the
    /// run armed a `KvSpec`.
    pub kv: KvStats,
    /// Simulation events processed by the driver (throughput denominator
    /// for the benchmark harness's events/sec).
    pub events_processed: u64,
    /// The merged deterministic decision stream, present only when the
    /// system opted into tracing ([`SystemConfig::trace`]). Never feeds
    /// [`canonical_text`](RunReport::canonical_text): traced and
    /// untraced runs of the same system are behaviourally identical.
    ///
    /// [`SystemConfig::trace`]: crate::SystemConfig
    pub trace: Option<TraceLog>,
    /// Flight-recorder dumps from the armed anomaly predicates (empty
    /// when tracing is off or nothing fired).
    pub flight_dumps: Vec<FlightDump>,
    /// Total anomaly firings, including those past the dump cap.
    pub flight_firings: u64,
    /// Wall-clock barrier/epoch profile of cluster runs, present only
    /// when the system opted into profiling. Host-dependent by nature —
    /// excluded from the canonical text.
    pub barrier_profile: Option<BarrierProfile>,
}

impl RunReport {
    /// Assembles a report from an engine report plus run context.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        label: String,
        llm: LlmSpec,
        engine: EngineReport,
        slo: SimDuration,
        horizon: SimTime,
        isolated_e2e: HashMap<RequestId, SimDuration>,
        wrs: WrsConfig,
        offered_rps: f64,
        events_processed: u64,
    ) -> Self {
        RunReport {
            label,
            llm,
            routing: engine.routing,
            kv: engine.kv,
            records: engine.records,
            cache_stats: engine.cache_stats,
            pcie_total_bytes: engine.pcie_total_bytes,
            pcie_busy: engine.pcie_busy,
            pcie_history: engine.pcie_history,
            mem_series: engine.mem_series,
            squashes: engine.squashes,
            slo,
            horizon,
            isolated_e2e,
            wrs,
            offered_rps,
            scheduler: engine.scheduler,
            events_processed,
            trace: None,
            flight_dumps: Vec::new(),
            flight_firings: 0,
            barrier_profile: None,
        }
    }

    /// Completed requests.
    pub fn completed(&self) -> usize {
        self.records.iter().filter(|r| r.is_complete()).count()
    }

    /// TTFT samples in seconds (completed requests only).
    pub fn ttft_seconds(&self) -> Vec<f64> {
        self.records
            .iter()
            .filter_map(|r| r.ttft())
            .map(|d| d.as_secs_f64())
            .collect()
    }

    /// E2E samples in seconds.
    pub fn e2e_seconds(&self) -> Vec<f64> {
        self.records
            .iter()
            .filter_map(|r| r.e2e())
            .map(|d| d.as_secs_f64())
            .collect()
    }

    /// All inter-token gaps in seconds (TBT samples).
    pub fn tbt_seconds(&self) -> Vec<f64> {
        self.records
            .iter()
            .flat_map(|r| r.tbt_gaps.iter())
            .map(|d| d.as_secs_f64())
            .collect()
    }

    /// TTFT percentile summary.
    pub fn ttft_summary(&self) -> Option<LatencySummary> {
        LatencySummary::from_seconds(&self.ttft_seconds())
    }

    /// TBT percentile summary.
    pub fn tbt_summary(&self) -> Option<LatencySummary> {
        LatencySummary::from_seconds(&self.tbt_seconds())
    }

    /// E2E percentile summary.
    pub fn e2e_summary(&self) -> Option<LatencySummary> {
        LatencySummary::from_seconds(&self.e2e_seconds())
    }

    /// P99 TTFT in seconds (0 when empty) — the headline metric.
    pub fn p99_ttft(&self) -> f64 {
        self.ttft_summary().map(|s| s.p99).unwrap_or(0.0)
    }

    /// P50 TTFT in seconds (0 when empty).
    pub fn p50_ttft(&self) -> f64 {
        self.ttft_summary().map(|s| s.p50).unwrap_or(0.0)
    }

    /// Fraction of requests whose TTFT exceeds the SLO.
    pub fn slo_violation_fraction(&self) -> f64 {
        LatencySummary::violation_fraction(&self.ttft_seconds(), self.slo.as_secs_f64())
    }

    /// Adapter-cache hit rate.
    pub fn hit_rate(&self) -> f64 {
        self.cache_stats.hit_rate()
    }

    /// Fraction of cluster dispatches that landed on an engine with the
    /// request's adapter already resident (0 for single-engine runs).
    pub fn affinity_hit_rate(&self) -> f64 {
        self.routing.affinity_hit_rate()
    }

    /// Fraction of cluster dispatches diverted off their home engine by
    /// load-aware spill (0 for non-affinity routing).
    pub fn spill_rate(&self) -> f64 {
        self.routing.spill_rate()
    }

    /// Coefficient of variation of per-engine dispatch counts (0 for
    /// single-engine runs).
    pub fn load_imbalance(&self) -> f64 {
        self.routing.load_imbalance()
    }

    /// Mean consumed PCIe bandwidth over the run (bytes/second).
    pub fn pcie_mean_bandwidth(&self) -> f64 {
        let secs = self.horizon.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.pcie_total_bytes as f64 / secs
        }
    }

    /// Per-request slowdowns: observed E2E / isolated E2E (§3.3).
    pub fn slowdowns(&self) -> Vec<f64> {
        self.records
            .iter()
            .filter_map(|r| {
                let e2e = r.e2e()?;
                let iso = self.isolated_e2e.get(&r.id)?;
                Some(e2e.as_secs_f64() / iso.as_secs_f64().max(1e-9))
            })
            .collect()
    }

    /// Adapter-load latency on the critical path, in seconds (Figure 14).
    pub fn load_on_path_seconds(&self) -> Vec<f64> {
        self.records
            .iter()
            .filter(|r| r.is_complete())
            .map(|r| r.load_on_critical_path.as_secs_f64())
            .collect()
    }

    /// The WRS of a record, using its *true* lengths (post-hoc analysis).
    pub fn wrs_of(&self, r: &RequestRecord) -> f64 {
        self.wrs.compute(
            r.input_tokens,
            r.output_tokens,
            adapter_bytes(&self.llm, r.rank),
        )
    }

    /// Classifies records into small/medium/large by WRS tertiles of this
    /// run (the cross-policy classification Figure 16 needs) and returns
    /// the mean queue delay per class in seconds.
    pub fn queue_delay_by_class(&self) -> Vec<(SizeClass, f64, usize)> {
        let wrs: Vec<f64> = self.records.iter().map(|r| self.wrs_of(r)).collect();
        if wrs.is_empty() {
            return Vec::new();
        }
        let t1 = percentile(&wrs, 33.3).expect("non-empty");
        let t2 = percentile(&wrs, 66.6).expect("non-empty");
        let mut sums = [0.0f64; 3];
        let mut counts = [0usize; 3];
        for (r, &w) in self.records.iter().zip(&wrs) {
            let Some(delay) = r.queue_delay() else {
                continue;
            };
            let class = if w < t1 {
                0
            } else if w < t2 {
                1
            } else {
                2
            };
            sums[class] += delay.as_secs_f64();
            counts[class] += 1;
        }
        vec![
            (SizeClass::Small, avg(sums[0], counts[0]), counts[0]),
            (SizeClass::Medium, avg(sums[1], counts[1]), counts[1]),
            (SizeClass::Large, avg(sums[2], counts[2]), counts[2]),
        ]
    }

    /// Per-time-bin P99 TTFT (Figures 15/19), keyed by arrival time.
    pub fn ttft_over_time(&self, bin: SimDuration) -> Vec<(SimTime, f64)> {
        let mut series = BinnedSeries::new();
        for r in &self.records {
            if let Some(ttft) = r.ttft() {
                series.push(r.arrival, ttft.as_secs_f64());
            }
        }
        series.p99_bins(bin)
    }

    /// P99 TTFT restricted to requests of one adapter rank (Figure 17/18).
    pub fn p99_ttft_for_rank(&self, rank: u32) -> Option<f64> {
        let xs: Vec<f64> = self
            .records
            .iter()
            .filter(|r| r.rank.get() == rank)
            .filter_map(|r| r.ttft())
            .map(|d| d.as_secs_f64())
            .collect();
        percentile(&xs, 99.0)
    }

    /// Fraction of requests squashed at least once (§4.3.3 bound check).
    pub fn squash_fraction(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.squashes > 0).count() as f64 / self.records.len() as f64
    }

    /// Requests the run finished without (shed at admission or failed
    /// past the retry budget). Zero unless the fault plane was armed.
    pub fn requests_lost_to_faults(&self) -> u64 {
        self.routing.fault.requests_shed + self.routing.fault.requests_failed
    }

    /// Fraction of offered requests served (not shed, not failed) —
    /// `1.0` for fault-free runs.
    pub fn availability(&self, offered: usize) -> f64 {
        self.routing.fault.availability(offered as u64)
    }

    /// Verifies request conservation against the number of requests the
    /// trace offered: every offered request must be accounted for exactly
    /// once — completed, still in flight at the horizon, shed at
    /// admission, or failed past the retry budget — and no request may
    /// appear in the records twice (a crash re-dispatch that duplicated
    /// work would).
    pub fn verify_request_conservation(&self, offered: usize) -> Result<(), String> {
        let mut seen = std::collections::HashSet::with_capacity(self.records.len());
        for rec in &self.records {
            if !seen.insert(rec.id) {
                return Err(format!("request {} recorded twice", rec.id.0));
            }
        }
        let accounted = self.records.len() as u64 + self.requests_lost_to_faults();
        if accounted != offered as u64 {
            return Err(format!(
                "conservation violated: offered={} but records={} + shed={} + failed={} = {}",
                offered,
                self.records.len(),
                self.routing.fault.requests_shed,
                self.routing.fault.requests_failed,
                accounted,
            ));
        }
        Ok(())
    }

    /// Panicking form of [`verify_request_conservation`] for tests.
    ///
    /// [`verify_request_conservation`]: RunReport::verify_request_conservation
    pub fn assert_request_conservation(&self, offered: usize) {
        if let Err(e) = self.verify_request_conservation(offered) {
            panic!("{e} (label={})", self.label);
        }
    }

    /// Canonical textual serialisation of the run: stable field order,
    /// integer nanoseconds for every instant/duration, and exact IEEE-754
    /// bit patterns for floats. Two runs are behaviourally identical iff
    /// their canonical texts are byte-identical — this is what the
    /// parallel-vs-serial sweep determinism tests and the benchmark
    /// harness compare. (The workspace's `serde` is an offline no-op stub,
    /// so serialisation is hand-rolled.)
    pub fn canonical_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(64 + self.records.len() * 96);
        let _ = writeln!(
            s,
            "label={} sched={} slo_ns={} horizon_ns={} rps_bits={:016x} events={}",
            self.label,
            self.scheduler,
            self.slo.as_nanos(),
            self.horizon.as_nanos(),
            self.offered_rps.to_bits(),
            self.events_processed,
        );
        let c = &self.cache_stats;
        let _ = writeln!(
            s,
            "cache hits={} misses={} evictions={} bytes_evicted={} bytes_loaded={}",
            c.hits, c.misses, c.evictions, c.bytes_evicted, c.bytes_loaded
        );
        let _ = writeln!(
            s,
            "pcie bytes={} busy_ns={} transfers={} squashes={}",
            self.pcie_total_bytes,
            self.pcie_busy.as_nanos(),
            self.pcie_history.len(),
            self.squashes
        );
        let r = &self.routing;
        let ids: Vec<u32> = r.engine_ids.iter().map(|e| e.0).collect();
        let _ = writeln!(
            s,
            "routing policy={} dispatched={} engines={:?} per_engine={:?} affinity_hits={} \
             spills={} added={} drained={} rehomed={}",
            r.policy,
            r.dispatched,
            ids,
            r.per_engine,
            r.affinity_hits,
            r.spills,
            r.engines_added,
            r.engines_drained,
            r.adapters_rehomed,
        );
        // The predictive line exists only for runs that opted into the
        // control plane: non-predictive runs stay byte-identical to the
        // pre-control-plane format (the opt-in oracle suite pins this).
        if r.predictive.enabled {
            let p = &r.predictive;
            let _ = writeln!(
                s,
                "predictive prewarms={} prewarm_bytes={} prewarm_hits={} prewarm_wasted={} \
                 handoff_n={} handoff_bytes={} slo_scaleups={} forecast_scaleups={}",
                p.prewarms_issued,
                p.prewarm_bytes,
                p.prewarm_hits,
                p.prewarm_wasted,
                p.handoff_adapters,
                p.handoff_bytes,
                p.slo_scaleups,
                p.forecast_scaleups,
            );
        }
        // Like the predictive line, the fault line exists only for runs
        // that armed the fault plane: fault-free runs stay byte-identical
        // to the pre-fault-plane format.
        if r.fault.enabled {
            let f = &r.fault;
            // MTTR means print as bit patterns: byte-for-byte f64
            // equality is exactly the serial↔parallel claim, and a
            // decimal rendering could round two different means onto the
            // same text.
            let _ = writeln!(
                s,
                "fault engines_failed={} recovered={} retries={} failed={} shed={} \
                 pcie_retries={} shard_n={} shard_bytes={} prov_delays={} prov_failures={} \
                 domains_failed={} partitions={} mttr_redispatch={:016x} mttr_complete={:016x}",
                f.engines_failed,
                f.requests_recovered,
                f.retries,
                f.requests_failed,
                f.requests_shed,
                f.pcie_retries,
                f.shard_adapters_recovered,
                f.shard_bytes_recovered,
                f.provision_delays,
                f.provision_failures,
                f.domains_failed,
                f.partitions,
                f.mttr_redispatch.to_bits(),
                f.mttr_complete.to_bits(),
            );
        }
        // Like predictive and fault, the kv line exists only for runs
        // that armed the KV-economy axis: unmetered runs stay
        // byte-identical to the pre-KV-plane format. Peak pressure is a
        // float, so it prints as its IEEE-754 bit pattern.
        if self.kv.enabled {
            let k = &self.kv;
            let _ = writeln!(
                s,
                "kv admission={} hybrid={} refused={} storms={} demotions={} restores={} \
                 restore_bytes={} proxy_peak={} pressure_bits={:016x}",
                k.admission,
                k.hybrid,
                k.refused,
                k.storms,
                k.demotions,
                k.restores,
                k.restore_bytes,
                k.proxy_bytes_peak,
                k.pressure_peak.to_bits(),
            );
        }
        let opt = |t: Option<SimTime>| t.map(|t| t.as_nanos()).unwrap_or(u64::MAX);
        for rec in &self.records {
            let tbt_ns: u64 = rec.tbt_gaps.iter().map(|d| d.as_nanos()).sum();
            let _ = writeln!(
                s,
                "req {} arr={} in={} out={} a={} rank={} adm={} ft={} fin={} tbt_n={} tbt_ns={} load_ns={} sq={} by={}",
                rec.id.0,
                rec.arrival.as_nanos(),
                rec.input_tokens,
                rec.output_tokens,
                rec.adapter.0,
                rec.rank.get(),
                opt(rec.admitted),
                opt(rec.first_token),
                opt(rec.finished),
                rec.tbt_gaps.len(),
                tbt_ns,
                rec.load_on_critical_path.as_nanos(),
                rec.squashes,
                rec.bypasses,
            );
        }
        let mut iso: Vec<(RequestId, SimDuration)> =
            self.isolated_e2e.iter().map(|(&k, &v)| (k, v)).collect();
        iso.sort_unstable_by_key(|&(id, _)| id);
        for (id, d) in iso {
            let _ = writeln!(s, "iso {} {}", id.0, d.as_nanos());
        }
        s
    }

    /// One-line human-readable summary.
    pub fn summary_line(&self) -> String {
        format!(
            "{:<20} rps={:>5.1} n={:>5} p50={:>7.3}s p99={:>7.3}s hit={:>5.1}% viol={:>5.1}%",
            self.label,
            self.offered_rps,
            self.completed(),
            self.p50_ttft(),
            self.p99_ttft(),
            self.hit_rate() * 100.0,
            self.slo_violation_fraction() * 100.0,
        )
    }
}

fn avg(sum: f64, n: usize) -> f64 {
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_models::{AdapterId, AdapterRank};

    fn record(id: u64, arrival: f64, ttft: f64, e2e: f64, rank: u32) -> RequestRecord {
        let mut r = RequestRecord::arrive(
            RequestId(id),
            SimTime::from_secs_f64(arrival),
            100,
            20,
            AdapterId(0),
            AdapterRank::new(rank),
        );
        r.admitted = Some(SimTime::from_secs_f64(arrival + ttft / 2.0));
        r.first_token = Some(SimTime::from_secs_f64(arrival + ttft));
        r.finished = Some(SimTime::from_secs_f64(arrival + e2e));
        r
    }

    fn report(records: Vec<RequestRecord>) -> RunReport {
        let iso: HashMap<RequestId, SimDuration> = records
            .iter()
            .map(|r| (r.id, SimDuration::from_secs(1)))
            .collect();
        RunReport {
            label: "test".into(),
            llm: LlmSpec::llama_7b(),
            records,
            cache_stats: CacheStats::default(),
            pcie_total_bytes: 1_000_000,
            pcie_busy: SimDuration::from_millis(10),
            pcie_history: Vec::new(),
            mem_series: Vec::new(),
            squashes: 0,
            slo: SimDuration::from_secs(5),
            horizon: SimTime::from_secs_f64(100.0),
            isolated_e2e: iso,
            wrs: WrsConfig::paper(1000.0, 1000.0, (256u64 << 20) as f64),
            offered_rps: 1.0,
            scheduler: "test",
            routing: RoutingStats::default(),
            kv: KvStats::default(),
            events_processed: 0,
            trace: None,
            flight_dumps: Vec::new(),
            flight_firings: 0,
            barrier_profile: None,
        }
    }

    #[test]
    fn summaries_and_percentiles() {
        let r = report(vec![
            record(0, 0.0, 0.1, 2.0, 8),
            record(1, 1.0, 0.2, 3.0, 16),
            record(2, 2.0, 0.3, 4.0, 32),
        ]);
        assert_eq!(r.completed(), 3);
        let s = r.ttft_summary().unwrap();
        assert!((s.p50 - 0.2).abs() < 1e-9);
        assert!(r.p99_ttft() > 0.29);
        assert_eq!(r.slo_violation_fraction(), 0.0);
        // Slowdowns: e2e / 1s isolated.
        let sd = r.slowdowns();
        assert_eq!(sd.len(), 3);
        assert!((sd[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn violation_fraction_counts() {
        let mut rep = report(vec![
            record(0, 0.0, 6.0, 7.0, 8),
            record(1, 0.0, 1.0, 2.0, 8),
        ]);
        rep.slo = SimDuration::from_secs(5);
        assert!((rep.slo_violation_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn per_rank_p99() {
        let r = report(vec![
            record(0, 0.0, 0.1, 1.0, 8),
            record(1, 0.0, 0.5, 1.0, 128),
        ]);
        assert!(r.p99_ttft_for_rank(128).unwrap() > r.p99_ttft_for_rank(8).unwrap());
        assert!(r.p99_ttft_for_rank(64).is_none());
    }

    #[test]
    fn class_delays_partition_records() {
        // Ranks 8 vs 128 put requests in different WRS classes.
        let recs: Vec<RequestRecord> = (0..30)
            .map(|i| {
                record(
                    i,
                    0.0,
                    0.2,
                    1.0,
                    if i < 10 {
                        8
                    } else if i < 20 {
                        32
                    } else {
                        128
                    },
                )
            })
            .collect();
        let by_class = report(recs).queue_delay_by_class();
        assert_eq!(by_class.len(), 3);
        let total: usize = by_class.iter().map(|&(_, _, n)| n).sum();
        assert_eq!(total, 30);
    }

    #[test]
    fn ttft_over_time_bins_by_arrival() {
        let r = report(vec![
            record(0, 0.5, 0.1, 1.0, 8),
            record(1, 0.6, 0.3, 1.0, 8),
            record(2, 5.0, 0.9, 1.5, 8),
        ]);
        let series = r.ttft_over_time(SimDuration::from_secs(1));
        assert_eq!(series.len(), 2);
        assert!(series[0].1 >= 0.29);
        assert!((series[1].1 - 0.9).abs() < 1e-9);
    }

    #[test]
    fn conservation_accounts_for_shed_and_failed() {
        let mut r = report(vec![
            record(0, 0.0, 0.1, 1.0, 8),
            record(1, 1.0, 0.2, 1.0, 8),
        ]);
        r.verify_request_conservation(2)
            .expect("clean run conserves");
        assert!(r.verify_request_conservation(3).is_err(), "missing request");
        r.routing.fault.requests_shed = 1;
        r.verify_request_conservation(3).expect("shed accounted");
        assert!((r.availability(3) - 2.0 / 3.0).abs() < 1e-9);
        // A duplicated record id is a conservation violation even when
        // the totals line up.
        let dup = r.records[0].clone();
        r.records.push(dup);
        assert!(r.verify_request_conservation(4).is_err(), "duplicate id");
    }

    #[test]
    fn canonical_text_kv_line_is_armed_only() {
        let mut r = report(vec![record(0, 0.0, 0.1, 1.0, 8)]);
        let off = r.canonical_text();
        assert!(!off.contains("\nkv "), "unmetered runs carry no kv line");
        r.kv.enabled = true;
        r.kv.admission = true;
        r.kv.refused = 3;
        r.kv.pressure_peak = 0.9;
        let on = r.canonical_text();
        assert!(on.contains("kv admission=true hybrid=false refused=3"));
        assert!(on.contains(&format!("pressure_bits={:016x}", 0.9f64.to_bits())));
    }

    #[test]
    fn summary_line_contains_label() {
        let r = report(vec![record(0, 0.0, 0.1, 1.0, 8)]);
        assert!(r.summary_line().contains("test"));
    }
}
