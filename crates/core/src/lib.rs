//! Chameleon — adaptive caching and scheduling for many-adapter LLM
//! inference (MICRO 2025), reproduced as a calibrated discrete-event
//! simulation.
//!
//! This crate is the public face of the reproduction: it wires the
//! substrate crates (GPU models, schedulers, adapter cache, serving
//! engine) into runnable *systems* and provides the experiment machinery
//! the paper's evaluation needs.
//!
//! * [`system`] — [`SystemConfig`]: every knob of a serving system
//!   (model, GPU, parallelism, scheduler policy, cache policy, prefetch,
//!   predictor accuracy).
//! * [`preset`] — the named systems of the paper: `slora()`,
//!   `slora_sjf()`, `chameleon()`, the ablations `chameleon_no_cache()` /
//!   `chameleon_no_sched()`, cache-policy variants, and more.
//! * [`sim`] — [`Simulation`]: runs a workload trace through a configured
//!   system and produces a [`RunReport`].
//! * [`report`] — [`RunReport`]: TTFT/TBT/E2E summaries, slowdowns,
//!   per-class queue delays, cache and PCIe statistics.
//! * [`isolated`] — the isolated-execution oracle behind the paper's
//!   slowdown metric (§3.3) and SLO definition (§5.1).
//! * [`sweep`] — load sweeps and SLO-bounded throughput (§5.2), with
//!   serial and bit-identical parallel runners.
//! * [`par`] — the scoped-thread work pool behind the parallel sweeps.
//! * [`ablation`] — measurable versions of the paper's un-figured design
//!   claims (WRS degree, eviction weights, bypass, K_max).
//! * [`telemetry`] — windowed time-series export (sliding TTFT
//!   percentiles, queue depth, occupancy, utilisation) as CSV/JSONL,
//!   fed by the run report and the opt-in decision trace
//!   (`SystemConfig::trace`, flight recorder, barrier profile).
//! * [`workloads`] — the scaled-down paper workloads (§5.1).
//!
//! # Quickstart
//!
//! ```
//! use chameleon_core::{preset, sim::Simulation, workloads};
//!
//! let cfg = preset::chameleon();
//! let mut sim = Simulation::new(cfg, 42);
//! let trace = workloads::splitwise(8.0, 30.0, 42, sim.pool());
//! let report = sim.run(&trace);
//! assert!(report.completed() > 0);
//! println!("P99 TTFT = {:.3}s", report.ttft_summary().unwrap().p99);
//! ```

pub mod ablation;
pub mod isolated;
pub mod par;
pub mod preset;
pub mod report;
pub mod sim;
pub mod sweep;
pub mod system;
pub mod telemetry;
pub mod workloads;

pub use chameleon_engine::{
    ClusterExecution, DispatchSpec, FaultSpec, KvSpec, PredictiveSpec, StragglerWindow,
};
pub use chameleon_router::{EngineId, RouterPolicy};
pub use chameleon_trace::{BarrierProfile, FlightDump, TraceLog, TraceSpec};
pub use report::RunReport;
pub use sim::Simulation;
pub use system::{
    AutoscaleSpec, CachePolicy, EngineSpec, FaultDomain, FleetSpec, SchedPolicy, SystemConfig,
    TopologySpec,
};
